//! Umbrella package for the `atomask` workspace.
//!
//! This package hosts the cross-crate integration tests (in `tests/`) and the
//! runnable examples (in `examples/`). The library surface simply re-exports
//! the public facade crate so that examples and tests can use one import.

pub use atomask::*;
pub use atomask_mor::Program;

//! Differential property of the two before-state capture strategies: over
//! the full Table 1 suite, `CaptureMode::Eager` (snapshot every observed
//! call) and `CaptureMode::Lazy` (heap journal + as-of reconstruction)
//! must classify identically — same marks, same outcomes, same journals —
//! differing only in the capture statistics they report.

use atomask_suite::{Campaign, CampaignConfig, CaptureMode, RunResult, TraceMode};

/// Cap per app: enough points to cross every app's non-atomic territory
/// while keeping the differential sweep fast in debug builds.
const CAP: u64 = 120;

/// Zeroes the fields the two capture modes legitimately disagree on.
/// Eager snapshots every observed call; lazy snapshots only on exception,
/// so `snapshots`/`capture_bytes` differ by design. Everything else — the
/// semantic content of a run — must be bit-for-bit identical.
fn normalized(run: &RunResult) -> RunResult {
    let mut run = run.clone();
    run.snapshots = 0;
    run.capture_bytes = 0;
    run
}

fn config(capture: CaptureMode) -> CampaignConfig {
    CampaignConfig {
        capture,
        // Pinned off, not Auto: lazy capture emits journal push/commit
        // trace events that eager capture has no reason to, so under a
        // live recorder the `trace_events` counts would differ by design.
        trace: TraceMode::Off,
        ..CampaignConfig::default()
    }
}

#[test]
fn eager_and_lazy_capture_classify_identically_across_the_suite() {
    for spec in atomask_suite::apps::all_apps() {
        let program = spec.program();
        let eager = Campaign::new(&program)
            .config(config(CaptureMode::Eager))
            .max_points(CAP)
            .run();
        let lazy = Campaign::new(&program)
            .config(config(CaptureMode::Lazy))
            .max_points(CAP)
            .run();

        assert_eq!(eager.total_points, lazy.total_points, "{}", spec.name);
        assert_eq!(eager.baseline_calls, lazy.baseline_calls, "{}", spec.name);
        assert_eq!(eager.runs.len(), lazy.runs.len(), "{}", spec.name);
        for (e, l) in eager.runs.iter().zip(&lazy.runs) {
            assert_eq!(
                normalized(e),
                normalized(l),
                "{} point {}: capture modes disagree",
                spec.name,
                e.injection_point
            );
        }

        // The journals agree the same way: serialize both with the capture
        // stats normalized and compare the text forms byte for byte.
        let strip = |result: &atomask_suite::CampaignResult| {
            let mut journal = atomask_suite::CampaignJournal::new();
            journal.bind(&result.program);
            journal.record_baseline(result.total_points, &result.baseline_calls);
            for run in &result.runs {
                journal.record_run(&normalized(run));
            }
            journal.serialize()
        };
        assert_eq!(
            strip(&eager),
            strip(&lazy),
            "{}: journals diverge",
            spec.name
        );
    }
}

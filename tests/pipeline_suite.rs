//! End-to-end pipeline over every Table 1 application: detection finds
//! non-atomic methods where the workload plants them, and the corrected
//! program always verifies failure atomic.

use atomask_suite::{Lang, Pipeline, Policy};

/// Full pipeline on every suite app, capped to keep the suite fast in
/// debug builds (the `report` binary runs the uncapped sweeps).
#[test]
fn every_app_masks_to_failure_atomic() {
    for spec in atomask_suite::apps::all_apps() {
        let program = spec.program();
        let report = Pipeline::new(&program).max_points(250).run();
        assert!(
            report.corrected_is_atomic(),
            "{}: corrected program still non-atomic: {:#?}",
            spec.name,
            report
                .verified
                .methods
                .iter()
                .filter(|m| m.nonatomic_marks > 0)
                .map(|m| &m.name)
                .collect::<Vec<_>>()
        );
    }
}

/// Two small apps get the full, uncapped treatment (one per language).
#[test]
fn full_sweep_small_apps() {
    for name in ["xml2xml1", "LinkedBuffer"] {
        let program = atomask_suite::apps::program_by_name(name).unwrap();
        let report = Pipeline::new(&program).run();
        assert_eq!(
            report.detection.injections() as u64,
            report.detection.total_points,
            "{name}: full sweep executes every point"
        );
        assert!(report.corrected_is_atomic(), "{name}");
        assert!(
            report.classification.method_counts.pure_nonatomic > 0,
            "{name}: the workload plants at least one pure non-atomic method"
        );
    }
}

/// Wrapping everything (conditionals included) must also verify, and uses
/// a superset of the default mask set.
#[test]
fn conservative_policy_also_verifies() {
    let program = atomask_suite::apps::program_by_name("stdQ").unwrap();
    let default = Pipeline::new(&program).run();
    let conservative = Pipeline::new(&program)
        .policy(Policy::wrap_everything())
        .run();
    assert!(conservative.corrected_is_atomic());
    assert!(conservative.mask_set.is_superset(&default.mask_set));
}

/// The language split of the suite matches the paper's Table 1.
#[test]
fn suite_composition() {
    let apps = atomask_suite::apps::all_apps();
    let cpp = apps.iter().filter(|a| a.lang == Lang::Cpp).count();
    let java = apps.iter().filter(|a| a.lang == Lang::Java).count();
    assert_eq!((cpp, java), (6, 10));
}

//! Property tests of the incremental graph fingerprints: on randomized
//! heaps with randomized journaled write sets, the fingerprint comparison
//! the injection wrapper performs on its exception path must reach the
//! same verdict as the full structural diff ([`Snapshot`] equality), and
//! dirty-set invalidation must make a stale cache indistinguishable from
//! a cold recomputation.

use atomask_suite::{
    fingerprint_of_roots, graph_fingerprint, FingerprintCache, ObjId, Profile, RegistryBuilder,
    Snapshot, Value, Vm,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Construction ops for heaps of `Node {left, right, tag}` (indices are
/// taken modulo the live node count).
#[derive(Debug, Clone)]
enum Op {
    Alloc(i64),
    LinkLeft(usize, usize),
    LinkRight(usize, usize),
    CutLeft(usize),
    Retag(usize, i64),
    /// Retag with a float chosen to stress bit-exact comparison
    /// (`-0.0` vs `0.0`, `NaN`).
    RetagFloat(usize, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..8).prop_map(Op::Alloc),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::LinkLeft(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::LinkRight(a, b)),
        any::<usize>().prop_map(Op::CutLeft),
        (any::<usize>(), 0i64..8).prop_map(|(a, t)| Op::Retag(a, t)),
        (any::<usize>(), 0u8..4).prop_map(|(a, f)| Op::RetagFloat(a, f)),
    ]
}

fn node_vm() -> Vm {
    let mut rb = RegistryBuilder::new(Profile::java());
    rb.class("Node", |c| {
        c.field("left", Value::Null);
        c.field("right", Value::Null);
        c.field("tag", Value::Int(0));
    });
    Vm::new(rb.build())
}

fn apply(vm: &mut Vm, nodes: &mut Vec<ObjId>, ops: &[Op]) {
    const FLOATS: [f64; 4] = [0.0, -0.0, 1.5, f64::NAN];
    for op in ops {
        match op {
            Op::Alloc(tag) => {
                let id = vm.alloc_raw("Node");
                vm.root(id);
                vm.heap_mut()
                    .set_field(id, "tag", Value::Int(*tag))
                    .unwrap();
                nodes.push(id);
            }
            Op::LinkLeft(a, b) if !nodes.is_empty() => {
                let (x, y) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                vm.heap_mut().set_field(x, "left", Value::Ref(y)).unwrap();
            }
            Op::LinkRight(a, b) if !nodes.is_empty() => {
                let (x, y) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                vm.heap_mut().set_field(x, "right", Value::Ref(y)).unwrap();
            }
            Op::CutLeft(a) if !nodes.is_empty() => {
                let x = nodes[a % nodes.len()];
                vm.heap_mut().set_field(x, "left", Value::Null).unwrap();
            }
            Op::Retag(a, t) if !nodes.is_empty() => {
                let x = nodes[a % nodes.len()];
                vm.heap_mut().set_field(x, "tag", Value::Int(*t)).unwrap();
            }
            Op::RetagFloat(a, f) if !nodes.is_empty() => {
                let x = nodes[a % nodes.len()];
                vm.heap_mut()
                    .set_field(x, "tag", Value::Float(FLOATS[*f as usize % FLOATS.len()]))
                    .unwrap();
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wrapper's exception-path comparison, end to end: fill the cache
    /// from the after-state, reconstruct the before-fingerprint over the
    /// undo log's as-of view with the journal's touched set as the dirty
    /// set, and the fingerprints agree **iff** the full structural diff
    /// finds the graphs equal.
    #[test]
    fn fingerprint_verdict_matches_structural_diff(
        build in prop::collection::vec(op_strategy(), 1..30),
        writes in prop::collection::vec(op_strategy(), 0..20),
    ) {
        let mut vm = node_vm();
        let mut nodes = Vec::new();
        apply(&mut vm, &mut nodes, &build);
        prop_assume!(!nodes.is_empty());
        let root = nodes[0];
        let before_snapshot = Snapshot::of(vm.heap(), root);
        let before_cold_fp = fingerprint_of_roots(vm.heap(), &[root]);

        vm.heap_mut().push_journal();
        apply(&mut vm, &mut nodes, &writes);

        // The hook's stage-2 sequence.
        let mut cache = FingerprintCache::new();
        let after_fp =
            graph_fingerprint(vm.heap(), &[root], &mut cache, &HashSet::new());
        let dirty = vm.heap().journal_innermost_touched();
        let asof = vm.heap().asof_innermost().expect("journal layer is open");
        let reconstructed_before_fp =
            graph_fingerprint(&asof, &[root], &mut cache, &dirty);

        // The before-reconstruction is exact, not merely verdict-equal.
        prop_assert_eq!(reconstructed_before_fp, before_cold_fp);

        // Verdict equivalence against the full structural diff.
        let after_snapshot = Snapshot::of(vm.heap(), root);
        let structurally_equal = before_snapshot == after_snapshot;
        let fingerprints_equal = reconstructed_before_fp == after_fp;
        prop_assert_eq!(
            fingerprints_equal,
            structurally_equal,
            "fingerprint verdict diverged from Snapshot::first_difference: {:?}",
            before_snapshot.first_difference(&after_snapshot)
        );

        vm.heap_mut().abort_journal();
    }

    /// Dirty-set invalidation is exact: a cache filled before the writes,
    /// then reused with the journal's touched set, yields the same
    /// fingerprint as a cold walk of the mutated heap.
    #[test]
    fn stale_cache_with_dirty_set_equals_cold_recomputation(
        build in prop::collection::vec(op_strategy(), 1..30),
        writes in prop::collection::vec(op_strategy(), 0..20),
    ) {
        let mut vm = node_vm();
        let mut nodes = Vec::new();
        apply(&mut vm, &mut nodes, &build);
        prop_assume!(!nodes.is_empty());
        let root = nodes[0];
        let mut cache = FingerprintCache::new();
        graph_fingerprint(vm.heap(), &[root], &mut cache, &HashSet::new());

        vm.heap_mut().push_journal();
        apply(&mut vm, &mut nodes, &writes);
        let dirty = vm.heap().journal_innermost_touched();
        let warm = graph_fingerprint(vm.heap(), &[root], &mut cache, &dirty);
        let cold = fingerprint_of_roots(vm.heap(), &[root]);
        prop_assert_eq!(warm, cold);
        vm.heap_mut().commit_journal();
    }
}

//! Property-based tests over object graphs: canonical-trace equality is a
//! structural equivalence, and checkpoint/restore is an exact inverse of
//! arbitrary mutation.

use atomask_suite::{Checkpoint, ObjId, Profile, RegistryBuilder, Snapshot, Value, Vm};
use proptest::prelude::*;

/// A little construction language for heaps of `Node {left, right, tag}`.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate a node with the given tag.
    Alloc(i64),
    /// Point `left` of node (a % live) at node (b % live).
    LinkLeft(usize, usize),
    /// Point `right` of node (a % live) at node (b % live).
    LinkRight(usize, usize),
    /// Null out `left` of node (a % live).
    CutLeft(usize),
    /// Retag node (a % live).
    Retag(usize, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..8).prop_map(Op::Alloc),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::LinkLeft(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::LinkRight(a, b)),
        any::<usize>().prop_map(Op::CutLeft),
        (any::<usize>(), 0i64..8).prop_map(|(a, t)| Op::Retag(a, t)),
    ]
}

fn node_vm() -> Vm {
    let mut rb = RegistryBuilder::new(Profile::java());
    rb.class("Node", |c| {
        c.field("left", Value::Null);
        c.field("right", Value::Null);
        c.field("tag", Value::Int(0));
    });
    Vm::new(rb.build())
}

/// Builds a heap from the op script; returns all allocated node ids
/// (all rooted, so reclamation never interferes).
fn build(vm: &mut Vm, ops: &[Op]) -> Vec<ObjId> {
    let mut nodes: Vec<ObjId> = Vec::new();
    for op in ops {
        match op {
            Op::Alloc(tag) => {
                let id = vm.alloc_raw("Node");
                vm.root(id);
                vm.heap_mut()
                    .set_field(id, "tag", Value::Int(*tag))
                    .unwrap();
                nodes.push(id);
            }
            Op::LinkLeft(a, b) if !nodes.is_empty() => {
                let (x, y) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                vm.heap_mut().set_field(x, "left", Value::Ref(y)).unwrap();
            }
            Op::LinkRight(a, b) if !nodes.is_empty() => {
                let (x, y) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                vm.heap_mut().set_field(x, "right", Value::Ref(y)).unwrap();
            }
            Op::CutLeft(a) if !nodes.is_empty() => {
                let x = nodes[a % nodes.len()];
                vm.heap_mut().set_field(x, "left", Value::Null).unwrap();
            }
            Op::Retag(a, t) if !nodes.is_empty() => {
                let x = nodes[a % nodes.len()];
                vm.heap_mut().set_field(x, "tag", Value::Int(*t)).unwrap();
            }
            _ => {}
        }
    }
    nodes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Two structurally identical builds (different ObjIds) produce equal
    /// snapshots: trace equality is identity-insensitive.
    #[test]
    fn snapshot_ignores_object_identity(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut vm = node_vm();
        // Interleave a decoy allocation to shift all ids of the second copy.
        let first = build(&mut vm, &ops);
        let decoy = vm.alloc_raw("Node");
        vm.root(decoy);
        let second = build(&mut vm, &ops);
        for (&a, &b) in first.iter().zip(&second) {
            prop_assert_eq!(Snapshot::of(vm.heap(), a), Snapshot::of(vm.heap(), b));
        }
    }

    /// Snapshot equality is reflexive and stable under re-capture.
    #[test]
    fn snapshot_capture_is_deterministic(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut vm = node_vm();
        let nodes = build(&mut vm, &ops);
        for &n in &nodes {
            let s1 = Snapshot::of(vm.heap(), n);
            let s2 = Snapshot::of(vm.heap(), n);
            prop_assert_eq!(s1, s2);
        }
    }

    /// checkpoint -> arbitrary further mutation -> restore returns the graph
    /// to exactly its checkpointed form (including refcount consistency).
    #[test]
    fn checkpoint_restore_round_trips(
        build_ops in prop::collection::vec(op_strategy(), 1..30),
        mutate_ops in prop::collection::vec(op_strategy(), 1..30),
    ) {
        let mut vm = node_vm();
        let nodes = build(&mut vm, &build_ops);
        prop_assume!(!nodes.is_empty());
        let root = nodes[0];
        let before = Snapshot::of(vm.heap(), root);
        let cp = Checkpoint::capture(vm.heap(), &[root]);

        build(&mut vm, &mutate_ops);
        cp.restore(vm.heap_mut());
        prop_assert_eq!(Snapshot::of(vm.heap(), root), before);

        // Refcounts stay consistent with the actual in-degrees.
        let mut indegree = std::collections::HashMap::new();
        for (_, obj) in vm.heap().iter() {
            for v in obj.fields() {
                if let Value::Ref(t) = v {
                    *indegree.entry(*t).or_insert(0usize) += 1;
                }
            }
        }
        for (id, _) in vm.heap().iter() {
            prop_assert_eq!(
                vm.heap().refcount(id),
                indegree.get(&id).copied().unwrap_or(0),
                "refcount mismatch on {}", id
            );
        }
    }

    /// A mutation to any *reachable* node changes the root's snapshot
    /// (retag flips to a distinct value to guarantee a difference).
    #[test]
    fn reachable_mutations_are_visible(ops in prop::collection::vec(op_strategy(), 1..30)) {
        let mut vm = node_vm();
        let nodes = build(&mut vm, &ops);
        prop_assume!(!nodes.is_empty());
        let root = nodes[0];
        let before = Snapshot::of(vm.heap(), root);
        // Mutate the root itself: guaranteed reachable.
        vm.heap_mut().set_field(root, "tag", Value::Int(99)).unwrap();
        prop_assert_ne!(before, Snapshot::of(vm.heap(), root));
    }
}

//! Detection-phase semantics against ground truth, and the aggregate
//! "shape" claims of the paper's §6.1.

use atomask_suite::report::evaluate;
use atomask_suite::synthetic::{ground_truth, validation_program};
use atomask_suite::{classify, Campaign, Lang, MarkFilter, Verdict};

/// §6: the synthetic benchmark with known combinations of (pure /
/// conditional) failure (non-)atomic methods is classified exactly right.
#[test]
fn synthetic_ground_truth() {
    let p = validation_program();
    let result = Campaign::new(&p).run();
    let c = classify(&result, &MarkFilter::default());
    for (name, expected) in ground_truth() {
        assert_eq!(
            c.method(name).unwrap().verdict,
            Some(expected),
            "{name} misclassified"
        );
    }
}

/// A method is failure atomic iff *never* marked non-atomic: a method that
/// is atomic for some injections and non-atomic for others must be
/// classified non-atomic.
#[test]
fn single_nonatomic_mark_decides() {
    let p = validation_program();
    let result = Campaign::new(&p).run();
    let c = classify(&result, &MarkFilter::default());
    // `delegate` is marked atomic when the injection aborts `mutateDirty`
    // at its entry (nothing had changed yet) and non-atomic when it lands
    // deeper (mutateDirty's partial write is visible). One non-atomic mark
    // outweighs any number of atomic ones.
    let delegate = c.method("Probe::delegate").unwrap();
    assert!(delegate.nonatomic_marks > 0);
    assert!(
        delegate.atomic_marks > 0,
        "delegate is atomic for injections that abort its callee at entry"
    );
    assert_ne!(delegate.verdict, Some(Verdict::FailureAtomic));
}

/// Paper §6.1, Figs. 2 vs 3: the Java applications exhibit a markedly
/// higher pure failure non-atomic fraction than the carefully written C++
/// (Self*) applications.
#[test]
fn java_has_higher_pure_fraction_than_cpp() {
    // Representative subset for test-suite speed; the report binary runs
    // all sixteen.
    let cpp: Vec<_> = atomask_suite::apps::cpp_apps()
        .into_iter()
        .filter(|a| matches!(a.name, "stdQ" | "xml2xml1" | "xml2Ctcp"))
        .collect();
    let java: Vec<_> = atomask_suite::apps::java_apps()
        .into_iter()
        .filter(|a| matches!(a.name, "LinkedList" | "LLMap" | "LinkedBuffer"))
        .collect();
    let pure_pct = |rows: &[atomask_suite::report::AppEvaluation]| {
        let (pure, total) = rows.iter().fold((0u64, 0u64), |(p, t), r| {
            (
                p + r.method_counts.pure_nonatomic,
                t + r.method_counts.total(),
            )
        });
        pure as f64 * 100.0 / total as f64
    };
    let cpp_rows: Vec<_> = cpp.iter().map(|s| evaluate(s, None)).collect();
    let java_rows: Vec<_> = java.iter().map(|s| evaluate(s, None)).collect();
    let (cpp_pure, java_pure) = (pure_pct(&cpp_rows), pure_pct(&java_rows));
    assert!(
        java_pure > cpp_pure,
        "expected Java pure% ({java_pure:.1}) > C++ pure% ({cpp_pure:.1})"
    );
    assert!(
        cpp_pure < 20.0,
        "C++ pure fraction should stay small, got {cpp_pure:.1}%"
    );
}

/// Paper §6.1, Figs. 2b/3b: failure non-atomic methods are called
/// (proportionally) less frequently than failure atomic methods.
#[test]
fn nonatomic_methods_are_called_less_often() {
    for name in ["LinkedList", "HashedMap", "Dynarray"] {
        let spec = atomask_suite::apps::all_apps()
            .into_iter()
            .find(|a| a.name == name)
            .unwrap();
        let row = evaluate(&spec, None);
        let pure_methods = row.method_counts.pct(Verdict::PureNonAtomic);
        let pure_calls = row.call_counts.pct(Verdict::PureNonAtomic);
        assert!(
            pure_calls < pure_methods,
            "{name}: pure methods {pure_methods:.1}% of methods but {pure_calls:.1}% of calls"
        );
    }
}

/// The Java core-class limitation (§5.2): core classes contribute no
/// injection points and are never classified.
#[test]
fn core_classes_are_invisible() {
    let program = atomask_suite::apps::program_by_name("RegExp").unwrap();
    let result = Campaign::new(&program).run();
    let c = classify(&result, &MarkFilter::default());
    let char_at = c.method("CharOps::charAt").unwrap();
    assert_eq!(char_at.verdict, Some(Verdict::FailureAtomic));
    assert_eq!(char_at.nonatomic_marks + char_at.atomic_marks, 0);
    // But under C++ rules the same class *would* be instrumented.
    assert_eq!(result.registry.profile().lang, Lang::Java);
}

/// Injections into constructors happen and are counted (Table 1 counts
/// "method and constructor calls").
#[test]
fn constructors_receive_injections() {
    let program = atomask_suite::apps::program_by_name("LLMap").unwrap();
    let result = Campaign::new(&program).run();
    let ctor_injections = result
        .runs
        .iter()
        .filter_map(|r| r.injected)
        .filter(|(m, _)| result.registry.method(*m).is_ctor)
        .count();
    assert!(ctor_injections > 0);
}

//! Detection-phase semantics against ground truth, the aggregate "shape"
//! claims of the paper's §6.1, and the campaign resilience layer (fuel
//! budgets, panic isolation, resumable sweeps).

use atomask_suite::report::evaluate;
use atomask_suite::synthetic::{ground_truth, validation_program};
use atomask_suite::{
    classify, Budget, Campaign, CampaignConfig, FnProgram, Lang, MarkFilter, Profile,
    RegistryBuilder, RetryPolicy, RunOutcome, Value, Verdict,
};

/// §6: the synthetic benchmark with known combinations of (pure /
/// conditional) failure (non-)atomic methods is classified exactly right.
#[test]
fn synthetic_ground_truth() {
    let p = validation_program();
    let result = Campaign::new(&p).run();
    let c = classify(&result, &MarkFilter::default());
    for (name, expected) in ground_truth() {
        assert_eq!(
            c.method(name).unwrap().verdict,
            Some(expected),
            "{name} misclassified"
        );
    }
}

/// A method is failure atomic iff *never* marked non-atomic: a method that
/// is atomic for some injections and non-atomic for others must be
/// classified non-atomic.
#[test]
fn single_nonatomic_mark_decides() {
    let p = validation_program();
    let result = Campaign::new(&p).run();
    let c = classify(&result, &MarkFilter::default());
    // `delegate` is marked atomic when the injection aborts `mutateDirty`
    // at its entry (nothing had changed yet) and non-atomic when it lands
    // deeper (mutateDirty's partial write is visible). One non-atomic mark
    // outweighs any number of atomic ones.
    let delegate = c.method("Probe::delegate").unwrap();
    assert!(delegate.nonatomic_marks > 0);
    assert!(
        delegate.atomic_marks > 0,
        "delegate is atomic for injections that abort its callee at entry"
    );
    assert_ne!(delegate.verdict, Some(Verdict::FailureAtomic));
}

/// Paper §6.1, Figs. 2 vs 3: the Java applications exhibit a markedly
/// higher pure failure non-atomic fraction than the carefully written C++
/// (Self*) applications.
#[test]
fn java_has_higher_pure_fraction_than_cpp() {
    // Representative subset for test-suite speed; the report binary runs
    // all sixteen.
    let cpp: Vec<_> = atomask_suite::apps::cpp_apps()
        .into_iter()
        .filter(|a| matches!(a.name, "stdQ" | "xml2xml1" | "xml2Ctcp"))
        .collect();
    let java: Vec<_> = atomask_suite::apps::java_apps()
        .into_iter()
        .filter(|a| matches!(a.name, "LinkedList" | "LLMap" | "LinkedBuffer"))
        .collect();
    let pure_pct = |rows: &[atomask_suite::report::AppEvaluation]| {
        let (pure, total) = rows.iter().fold((0u64, 0u64), |(p, t), r| {
            (
                p + r.method_counts.pure_nonatomic,
                t + r.method_counts.total(),
            )
        });
        pure as f64 * 100.0 / total as f64
    };
    let cpp_rows: Vec<_> = cpp.iter().map(|s| evaluate(s, None)).collect();
    let java_rows: Vec<_> = java.iter().map(|s| evaluate(s, None)).collect();
    let (cpp_pure, java_pure) = (pure_pct(&cpp_rows), pure_pct(&java_rows));
    assert!(
        java_pure > cpp_pure,
        "expected Java pure% ({java_pure:.1}) > C++ pure% ({cpp_pure:.1})"
    );
    assert!(
        cpp_pure < 20.0,
        "C++ pure fraction should stay small, got {cpp_pure:.1}%"
    );
}

/// Paper §6.1, Figs. 2b/3b: failure non-atomic methods are called
/// (proportionally) less frequently than failure atomic methods.
#[test]
fn nonatomic_methods_are_called_less_often() {
    for name in ["LinkedList", "HashedMap", "Dynarray"] {
        let spec = atomask_suite::apps::all_apps()
            .into_iter()
            .find(|a| a.name == name)
            .unwrap();
        let row = evaluate(&spec, None);
        let pure_methods = row.method_counts.pct(Verdict::PureNonAtomic);
        let pure_calls = row.call_counts.pct(Verdict::PureNonAtomic);
        assert!(
            pure_calls < pure_methods,
            "{name}: pure methods {pure_methods:.1}% of methods but {pure_calls:.1}% of calls"
        );
    }
}

/// The Java core-class limitation (§5.2): core classes contribute no
/// injection points and are never classified.
#[test]
fn core_classes_are_invisible() {
    let program = atomask_suite::apps::program_by_name("RegExp").unwrap();
    let result = Campaign::new(&program).run();
    let c = classify(&result, &MarkFilter::default());
    let char_at = c.method("CharOps::charAt").unwrap();
    assert_eq!(char_at.verdict, Some(Verdict::FailureAtomic));
    assert_eq!(char_at.nonatomic_marks + char_at.atomic_marks, 0);
    // But under C++ rules the same class *would* be instrumented.
    assert_eq!(result.registry.profile().lang, Lang::Java);
}

/// A program whose *reaction* to injected failures is pathological: one
/// injection point corrupts state that an application-level retry loop
/// spins on forever, and another trips a host-level panic. A resilient
/// campaign must isolate both and classify the rest normally.
fn pathological_program() -> FnProgram {
    FnProgram::new(
        "suite-pathological",
        || {
            let mut profile = Profile::cpp();
            profile.runtime_exceptions = vec!["Fault".to_owned()];
            let mut rb = RegistryBuilder::new(profile);
            rb.exception("StateError");
            rb.class("P", |c| {
                c.field("locked", Value::Bool(false));
                c.field("done", Value::Int(0));
                c.method("transact", |ctx, this, _| {
                    if ctx.get_bool(this, "locked") {
                        return Err(ctx.exception("StateError", "still locked"));
                    }
                    ctx.set(this, "locked", Value::Bool(true));
                    // Non-atomic: an exception here leaks the lock.
                    ctx.call(this, "commit", &[])?;
                    ctx.set(this, "locked", Value::Bool(false));
                    Ok(Value::Null)
                });
                c.method("commit", |_, _, _| Ok(Value::Null));
                c.method("strict", |ctx, this, _| {
                    if ctx.call(this, "probe", &[]).is_err() {
                        panic!("invariant violated: probe can never fail");
                    }
                    Ok(Value::Null)
                });
                c.method("probe", |_, _, _| Ok(Value::Null));
                c.method("calm", |ctx, this, _| {
                    let d = ctx.get_int(this, "done");
                    ctx.set(this, "done", Value::Int(d + 1));
                    Ok(Value::Null)
                });
            });
            rb.build()
        },
        |vm| {
            let p = vm.construct("P", &[])?;
            vm.root(p);
            // Application-level retry loop: swallows failures and tries
            // again; the leaked lock turns it into an infinite loop that
            // only the fuel budget can end.
            loop {
                match vm.call(p, "transact", &[]) {
                    Ok(_) => break,
                    Err(_) => continue,
                }
            }
            let _ = vm.call(p, "strict", &[]);
            vm.call(p, "calm", &[])
        },
    )
}

fn resilient_config() -> CampaignConfig {
    CampaignConfig {
        budget: Budget::fuel(20_000),
        retry: RetryPolicy::none(),
        max_failures: None,
        ..CampaignConfig::default()
    }
}

/// Tentpole acceptance: a full sweep over the pathological program
/// completes, reports exactly one diverged and one panicked run, and
/// classifies the remaining points normally.
#[test]
fn pathological_sweep_isolates_divergence_and_panic() {
    let p = pathological_program();
    let result = Campaign::new(&p).config(resilient_config()).run();
    let health = result.health();
    assert_eq!(health.diverged, 1, "exactly one diverging point: {health}");
    assert_eq!(health.panicked, 1, "exactly one panicking point: {health}");
    assert_eq!(health.skipped, 0, "{health}");
    assert_eq!(health.total(), result.total_points, "full sweep");

    // The diverging run is the injection into `commit` (lock leak); the
    // campaign cut it off via the fuel budget.
    let diverged = result
        .runs
        .iter()
        .find(|r| r.outcome == RunOutcome::Diverged)
        .unwrap();
    let (m, _) = diverged.injected.unwrap();
    assert_eq!(result.registry.method_display(m), "P::commit");

    // The panicking run was confined: the panic message is captured and
    // its neighbours completed normally.
    let panicked = result
        .runs
        .iter()
        .find(|r| r.outcome == RunOutcome::Panicked)
        .unwrap();
    assert!(
        panicked.top_error.as_deref().unwrap().contains("invariant"),
        "{:?}",
        panicked.top_error
    );

    // Unhealthy runs contribute no marks, but the healthy remainder still
    // classifies; the health tally rides along on the classification.
    let c = classify(&result, &MarkFilter::default());
    assert_eq!(c.health.unhealthy(), 2);
    assert!(c.method("P::calm").is_some());
}

/// Resume semantics at suite level: interrupting a sweep halfway and
/// resuming from the journal reproduces the uninterrupted sweep
/// bit-for-bit, including the unhealthy runs.
#[test]
fn resumed_pathological_sweep_is_bit_for_bit() {
    let p = pathological_program();
    let full = Campaign::new(&p).config(resilient_config()).run();
    let mut journal = full.journal();
    journal.truncate_runs(full.runs.len() / 2);
    let resumed = Campaign::new(&p)
        .config(resilient_config())
        .resume(&mut journal);
    assert_eq!(resumed.runs, full.runs, "resume is bit-for-bit");

    // The journal survives a trip through its text format.
    let text = journal.serialize();
    let reparsed = atomask_suite::CampaignJournal::parse(&text).unwrap();
    assert_eq!(reparsed, journal);
}

/// Injections into constructors happen and are counted (Table 1 counts
/// "method and constructor calls").
#[test]
fn constructors_receive_injections() {
    let program = atomask_suite::apps::program_by_name("LLMap").unwrap();
    let result = Campaign::new(&program).run();
    let ctor_injections = result
        .runs
        .iter()
        .filter_map(|r| r.injected)
        .filter(|(m, _)| result.registry.method(*m).is_ctor)
        .count();
    assert!(ctor_injections > 0);
}

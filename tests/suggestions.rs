//! The exception-free suggestion workflow (the Analyzer improvement the
//! paper's §4.3 leaves as future work), applied to the real §6.1 subject:
//! suggestions alone — no code changes — already remove a large share of
//! the spurious pure failure non-atomic classifications.

use atomask_suite::{classify, suggest_exception_free, Campaign, MarkFilter, Verdict};

#[test]
fn suggestions_match_the_case_study_annotations() {
    // The fixed LinkedList variant annotates the LLCell accessors as
    // never-throwing by hand; the suggester must find exactly those
    // methods (plus other quiet leaves) on the *original* program.
    let buggy = atomask_suite::apps::collections::linked_list::program();
    use atomask_suite::Program;
    let registry = buggy.build_registry();
    let suggested: Vec<String> = suggest_exception_free(&buggy)
        .into_iter()
        .map(|m| registry.method_display(m))
        .collect();
    for expected in [
        "LLCell::value",
        "LLCell::setValue",
        "LLCell::next",
        "LLCell::setNext",
    ] {
        assert!(
            suggested.iter().any(|s| s == expected),
            "{expected} missing from {suggested:?}"
        );
    }
    // Methods that make calls or throw must not be suggested.
    for forbidden in [
        "LinkedList::insertFirst",
        "LinkedList::first",
        "LinkedList::at",
    ] {
        assert!(
            !suggested.iter().any(|s| s == forbidden),
            "{forbidden} wrongly suggested"
        );
    }
}

#[test]
fn suggestions_shrink_the_pure_set_without_code_changes() {
    let buggy = atomask_suite::apps::collections::linked_list::program();
    let result = Campaign::new(&buggy).run();
    let plain = classify(&result, &MarkFilter::default());
    let suggested = suggest_exception_free(&buggy);
    let informed = classify(&result, &MarkFilter::exception_free(suggested));
    assert!(
        informed.method_counts.pure_nonatomic < plain.method_counts.pure_nonatomic,
        "suggestions should discount some spurious classifications: {} -> {}",
        plain.method_counts.pure_nonatomic,
        informed.method_counts.pure_nonatomic
    );
    // And they are *sound* on this workload: nothing atomic became
    // non-atomic (discounting can only remove marks).
    for (p, i) in plain.methods.iter().zip(&informed.methods) {
        if p.verdict == Some(Verdict::FailureAtomic) {
            assert_eq!(i.verdict, Some(Verdict::FailureAtomic), "{}", p.name);
        }
    }
}

#[test]
fn suggestions_feed_the_masking_policy() {
    use atomask_suite::{Pipeline, Policy};
    let buggy = atomask_suite::apps::collections::linked_list::program();
    let policy = Policy {
        exception_free: suggest_exception_free(&buggy).into_iter().collect(),
        ..Policy::default()
    };
    let report = Pipeline::new(&buggy).policy(policy).run();
    // Fewer wrappers than the uninformed pipeline...
    let uninformed = Pipeline::new(&buggy).run();
    assert!(report.mask_set.len() <= uninformed.mask_set.len());
    // ...and the corrected program still verifies failure atomic (under
    // the same filter, i.e. modulo the asserted-impossible exceptions).
    assert!(
        report.corrected_is_atomic(),
        "{:#?}",
        report.verified.method_counts
    );
}

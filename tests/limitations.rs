//! Executable documentation of the paper's §4.4 and §5.1 limitations: the
//! tool's blind spots behave exactly as the paper describes them.

use atomask_suite::{
    classify, Campaign, FnProgram, MarkFilter, Profile, RegistryBuilder, Value, Verdict,
};
use std::sync::{Arc, Mutex};

/// §4.4 limitation 1: methods with *external* side effects (writing to a
/// file, sending a packet) are outside the definition of failure
/// atomicity — the detector cannot see state that is not on the managed
/// heap, so such a method is classified atomic even though a failed call
/// left half its output behind.
#[test]
fn external_side_effects_are_invisible() {
    // The "file" lives outside the heap, as host state. (Arc + Mutex so the
    // program closures stay shareable across campaign worker threads.)
    let file: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let file_in_body = file.clone();
    let program = FnProgram::new(
        "external",
        move || {
            let file = file_in_body.clone();
            let mut rb = RegistryBuilder::new(Profile::cpp());
            rb.class("Logger", |c| {
                c.field("dummy", Value::Null);
                c.method("helper", |_, _, _| Ok(Value::Null));
                let file = file.clone();
                c.method("logTwice", move |ctx, this, args| {
                    let v = args[0].as_int().unwrap_or(0);
                    // External write, then a throwing call, then another:
                    // a failure leaves the "file" half-written.
                    file.lock().unwrap().push(v);
                    ctx.call(this, "helper", &[])?;
                    file.lock().unwrap().push(v);
                    Ok(Value::Null)
                });
            });
            rb.build()
        },
        |vm| {
            let l = vm.construct("Logger", &[])?;
            vm.root(l);
            vm.call(l, "logTwice", &[Value::Int(7)])
        },
    );
    let result = Campaign::new(&program).run();
    let c = classify(&result, &MarkFilter::default());
    // The heap never changed, so the detector is blind to the torn write...
    assert_eq!(
        c.method("Logger::logTwice").unwrap().verdict,
        Some(Verdict::FailureAtomic),
        "external side effects are not covered by Def. 2"
    );
    // ...even though some injected run really did tear it.
    let torn = file
        .lock()
        .unwrap()
        .windows(2)
        .filter(|w| w[0] != w[1])
        .count();
    let len = file.lock().unwrap().len();
    assert!(
        len % 2 == 1 || torn > 0 || len > 0,
        "the campaign exercised the external path"
    );
}

/// §5.1 limitation 2: checkpointing an *incomplete* object graph (here: a
/// dangling reference the traversal cannot follow) "may impact the
/// completeness of our detection system, but will never cause failure
/// atomic methods to be reported as failure non-atomic".
#[test]
fn incomplete_graphs_never_create_false_positives() {
    let program = FnProgram::new(
        "dangling",
        || {
            let mut rb = RegistryBuilder::new(Profile::cpp());
            rb.class("Holder", |c| {
                c.field("mystery", Value::Null);
                c.method("helper", |_, _, _| Ok(Value::Null));
                // Read-only method on an object holding a dangling pointer.
                c.method("peek", |ctx, this, _| {
                    ctx.call(this, "helper", &[])?;
                    Ok(ctx.get(this, "mystery"))
                });
            });
            rb.build()
        },
        |vm| {
            let h = vm.construct("Holder", &[])?;
            vm.root(h);
            // Plant a pointer to an id that was never allocated: the
            // traversal records a hole instead of a subgraph.
            vm.heap_mut()
                .set_field(
                    h,
                    "mystery",
                    Value::Ref(atomask_suite::ObjId::from_raw(u64::MAX)),
                )
                .unwrap();
            vm.call(h, "peek", &[])?;
            vm.call(h, "peek", &[])
        },
    );
    let result = Campaign::new(&program).run();
    let c = classify(&result, &MarkFilter::default());
    assert_eq!(
        c.method("Holder::peek").unwrap().verdict,
        Some(Verdict::FailureAtomic),
        "a hole in the graph must not read as a difference"
    );
}

/// §4.3 third point: conservative classification. A method that can only
/// throw where it cannot have mutated yet is still classified non-atomic
/// if the Analyzer cannot know the callee never throws — and the
/// exception-free annotation repairs exactly that, without code changes.
#[test]
fn conservative_classification_and_its_cure() {
    let build = |annotated: bool| {
        FnProgram::new(
            if annotated {
                "annotated"
            } else {
                "conservative"
            },
            move || {
                let mut rb = RegistryBuilder::new(Profile::java());
                rb.class("A", |c| {
                    c.field("x", Value::Int(0));
                    let mut cfg = c.method("pureArith", |_, _, args| {
                        Ok(Value::Int(args[0].as_int().unwrap_or(0) * 2))
                    });
                    if annotated {
                        cfg.never_throws();
                    }
                    c.method("update", |ctx, this, args| {
                        let x = ctx.get_int(this, "x");
                        ctx.set(this, "x", Value::Int(x + 1));
                        // In reality pureArith cannot throw; the Analyzer
                        // does not know that.
                        let doubled = ctx.call(this, "pureArith", &[args[0].clone()])?;
                        ctx.set(this, "x", doubled);
                        Ok(Value::Null)
                    });
                });
                rb.build()
            },
            |vm| {
                let a = vm.construct("A", &[])?;
                vm.root(a);
                vm.call(a, "update", &[Value::Int(5)])
            },
        )
    };
    // Conservative: classified pure non-atomic on impossible exceptions.
    let c = classify(&Campaign::new(&build(false)).run(), &MarkFilter::default());
    assert_eq!(
        c.method("A::update").unwrap().verdict,
        Some(Verdict::PureNonAtomic)
    );
    // Annotated exception-free: reclassified atomic — "merely an
    // unnecessary loss in performance", never incorrect behaviour.
    let c = classify(&Campaign::new(&build(true)).run(), &MarkFilter::default());
    assert_eq!(
        c.method("A::update").unwrap().verdict,
        Some(Verdict::FailureAtomic)
    );
}

//! Golden-file snapshots of the report renderers.
//!
//! Every textual artifact the `report` binary prints (Table 1, Figs. 2–4,
//! the §6.1 case study) is compared byte-for-byte against a checked-in
//! golden file under `tests/golden/`. Campaigns are deterministic, so any
//! diff is a real behaviour change: inspect it, then re-bless with
//! `ATOMASK_BLESS=1 cargo test --test golden_reports`.
//!
//! Fig. 5 is excluded — it measures wall time and is not deterministic.

use atomask_suite::report::{
    evaluate, render_case_study, render_class_distribution, render_method_classification,
    render_replay, render_table1, AppEvaluation,
};
use atomask_suite::{classify, Campaign, Lang, MarkFilter};
use std::path::PathBuf;

/// Cap per campaign, chosen to keep the snapshot suite fast in debug
/// builds while still crossing every app's non-atomic territory.
const CAP: u64 = 120;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the golden file, or rewrites the golden file
/// when `ATOMASK_BLESS` is set.
fn assert_or_bless(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("ATOMASK_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); create it with ATOMASK_BLESS=1 cargo test --test golden_reports",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}: if the change is intended, re-bless with ATOMASK_BLESS=1"
    );
}

fn evaluation_rows() -> Vec<AppEvaluation> {
    atomask_suite::apps::all_apps()
        .iter()
        .map(|spec| evaluate(spec, Some(CAP)))
        .collect()
}

#[test]
fn table_and_figures_match_goldens() {
    let rows = evaluation_rows();
    assert_or_bless("table1.txt", &render_table1(&rows));
    assert_or_bless("fig2.txt", &render_method_classification(&rows, Lang::Cpp));
    assert_or_bless("fig3.txt", &render_method_classification(&rows, Lang::Java));
    assert_or_bless("fig4.txt", &render_class_distribution(&rows));
}

/// `report repro` regression guard: the rendered replay of one fixed
/// injection point — event trace, marks, and minimized divergence — is
/// byte-identical across releases. Replay deliberately keeps the
/// always-armed wrapper path (it needs the full trace and undo-log
/// context), so sweep-side throughput work must never change this output.
#[test]
fn repro_output_matches_golden() {
    let program = atomask_suite::apps::collections::linked_list::program();
    let replay = Campaign::new(&program).replay(3);
    assert_or_bless("repro_linkedlist_p3.txt", &render_replay(&replay));
}

#[test]
fn case_study_matches_golden() {
    let buggy_program = atomask_suite::apps::collections::linked_list::program();
    let fixed_program = atomask_suite::apps::collections::linked_list::fixed_program();
    let buggy = classify(
        &Campaign::new(&buggy_program).max_points(CAP).run(),
        &MarkFilter::default(),
    );
    let fixed = classify(
        &Campaign::new(&fixed_program).max_points(CAP).run(),
        &MarkFilter::default(),
    );
    assert_or_bless("casestudy.txt", &render_case_study(&buggy, &fixed));
}

//! Property-based tests of the masking guarantee itself: for *arbitrary*
//! guest method shapes (random interleavings of mutations and throwing
//! calls), a wrapped method is failure atomic under every injection point.

use atomask_suite::{
    classify, Campaign, FnProgram, MarkFilter, MaskingHook, Pipeline, Profile, RegistryBuilder,
    Value,
};
use proptest::prelude::*;

/// One step of a generated method body.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Write a field.
    Mutate(i64),
    /// Call the (possibly injected) helper.
    CallHelper,
    /// Allocate a node and link it to the chain head.
    Grow,
    /// Drop the chain head.
    Shrink,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0i64..100).prop_map(Step::Mutate),
        Just(Step::CallHelper),
        Just(Step::Grow),
        Just(Step::Shrink),
    ]
}

/// Builds a program whose `scripted` method performs the generated steps.
fn scripted_program(steps: Vec<Step>) -> FnProgram {
    FnProgram::new(
        "scripted",
        move || {
            let steps = steps.clone();
            let mut rb = RegistryBuilder::new(Profile::java());
            rb.class("Node", |c| {
                c.field("next", Value::Null);
            });
            rb.class("Scripted", |c| {
                c.field("state", Value::Int(0));
                c.field("chain", Value::Null);
                c.method("helper", |_, _, _| Ok(Value::Null));
                c.method("scripted", move |ctx, this, _| {
                    for step in &steps {
                        match step {
                            Step::Mutate(v) => ctx.set(this, "state", Value::Int(*v)),
                            Step::CallHelper => {
                                ctx.call(this, "helper", &[])?;
                            }
                            Step::Grow => {
                                let node = ctx.new_object("Node", &[])?;
                                let head = ctx.get(this, "chain");
                                ctx.set(node, "next", head);
                                ctx.set(this, "chain", Value::Ref(node));
                            }
                            Step::Shrink => {
                                if let Some(head) = ctx.get_ref(this, "chain") {
                                    let next = ctx.get(head, "next");
                                    ctx.set(this, "chain", next);
                                }
                            }
                        }
                    }
                    Ok(Value::Null)
                });
            });
            rb.build()
        },
        |vm| {
            let s = vm.construct("Scripted", &[])?;
            vm.root(s);
            vm.call(s, "scripted", &[])?;
            vm.call(s, "scripted", &[])
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever mutation/call interleaving the method body performs, the
    /// masked program verifies failure atomic under every injection point.
    #[test]
    fn masked_scripted_methods_are_atomic(
        steps in prop::collection::vec(step_strategy(), 1..12)
    ) {
        let program = scripted_program(steps);
        let report = Pipeline::new(&program).run();
        prop_assert!(
            report.corrected_is_atomic(),
            "verified: {:?}",
            report.verified.method_counts
        );
    }

    /// Detection soundness: a generated method is classified non-atomic
    /// IFF some injection actually produced a before/after difference —
    /// never because of a snapshot artefact. We check one direction
    /// explicitly: methods whose steps contain no mutation-before-call
    /// pattern and no call-after-mutation pattern are classified atomic.
    #[test]
    fn pure_reader_scripts_classify_atomic(
        n_calls in 1usize..6
    ) {
        let steps = vec![Step::CallHelper; n_calls];
        let program = scripted_program(steps);
        let result = Campaign::new(&program).run();
        let c = classify(&result, &MarkFilter::default());
        prop_assert_eq!(
            c.method("Scripted::scripted").unwrap().verdict,
            Some(atomask_suite::Verdict::FailureAtomic)
        );
    }

    /// Masking transparency under load: wrapped or not, a fault-free run
    /// computes the same final state.
    #[test]
    fn masking_preserves_fault_free_results(
        steps in prop::collection::vec(step_strategy(), 1..12)
    ) {
        use atomask_suite::{Program, Snapshot, Vm};
        let program = scripted_program(steps);

        let mut plain = Vm::new(program.build_registry());
        program.run(&mut plain).unwrap();

        let mut masked = Vm::new(program.build_registry());
        let all: std::collections::HashSet<_> =
            masked.registry().method_ids().collect();
        masked.set_hook(Some(std::rc::Rc::new(std::cell::RefCell::new(
            MaskingHook::new(all),
        ))));
        program.run(&mut masked).unwrap();

        let find = |vm: &Vm| {
            vm.heap()
                .iter()
                .find(|(_, o)| vm.registry().class(o.class_id()).name == "Scripted")
                .map(|(id, _)| id)
                .expect("scripted object")
        };
        let (a, b) = (find(&plain), find(&masked));
        prop_assert_eq!(
            Snapshot::of(plain.heap(), a),
            Snapshot::of(masked.heap(), b)
        );
    }
}

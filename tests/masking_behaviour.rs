//! Behavioural tests of the masking phase on real data structures: under
//! *every* injection point, a masked red-black tree keeps its invariants
//! and a masked queue keeps its contents.

use atomask_mor::HookChain;
use atomask_suite::{InjectionHook, MaskingHook, Pipeline, Program, Value, Vm};
use std::cell::RefCell;
use std::rc::Rc;

/// Runs `program` once per injection point with the mask set derived from
/// a detection pipeline, returning the VM of each faulted run for
/// inspection.
fn faulted_runs(program: &atomask_suite::FnProgram, inspect: impl Fn(&Vm)) {
    let report = Pipeline::new(program).run();
    let mask_set = report.mask_set.clone();
    let total = report.detection.total_points;
    for ip in 1..=total {
        let mut vm = Vm::new(program.build_registry());
        let injector = Rc::new(RefCell::new(InjectionHook::with_injection_point(ip)));
        let masker = Rc::new(RefCell::new(MaskingHook::new(mask_set.clone())));
        let chain = HookChain::new(vec![injector, masker]);
        vm.set_hook(Some(Rc::new(RefCell::new(chain))));
        let _ = program.run(&mut vm);
        vm.set_hook(None);
        inspect(&vm);
    }
}

/// The paper's core promise, applied to the trickiest structure in the
/// suite: with masking in place, *no* injection point can leave a
/// red-black map structurally invalid.
#[test]
fn masked_rbmap_never_breaks_its_invariant() {
    let program = atomask_suite::apps::program_by_name("RBMap").unwrap();
    faulted_runs(&program, |vm| {
        for (id, obj) in vm.heap().iter() {
            if vm.registry().class(obj.class_id()).name == "RBMap" {
                assert!(
                    atomask_suite::apps::collections::rbmap::invariant_holds(vm, id),
                    "masked RBMap lost its red-black invariant"
                );
            }
        }
    });
}

/// Counter check: *without* masking, some injection point does corrupt the
/// structure (otherwise the previous test proves nothing).
#[test]
fn unmasked_rbmap_does_break_under_injection() {
    let program = atomask_suite::apps::program_by_name("RBMap").unwrap();
    let total = {
        let r = atomask_suite::Campaign::new(&program).max_points(1).run();
        r.total_points
    };
    let mut broken = 0usize;
    for ip in 1..=total {
        let mut vm = Vm::new(program.build_registry());
        let injector = Rc::new(RefCell::new(InjectionHook::with_injection_point(ip)));
        vm.set_hook(Some(injector));
        let _ = program.run(&mut vm);
        vm.set_hook(None);
        for (id, obj) in vm.heap().iter() {
            if vm.registry().class(obj.class_id()).name == "RBMap"
                && !atomask_suite::apps::collections::rbmap::invariant_holds(&vm, id)
            {
                broken += 1;
            }
        }
    }
    assert!(
        broken > 0,
        "expected at least one injection to corrupt the unmasked tree"
    );
}

/// Masked queues keep size == chain length under every injection point.
#[test]
fn masked_queue_sizes_stay_consistent() {
    let program = atomask_suite::apps::program_by_name("stdQ").unwrap();
    faulted_runs(&program, |vm| {
        for (id, obj) in vm.heap().iter() {
            if vm.registry().class(obj.class_id()).name != "StdQueue" {
                continue;
            }
            let size = vm.heap().field(id, "size").unwrap().as_int().unwrap();
            let mut n = 0;
            let mut cur = vm.heap().field(id, "head").unwrap();
            while let Value::Ref(node) = cur {
                n += 1;
                cur = vm.heap().field(node, "next").unwrap();
            }
            assert_eq!(size, n, "masked queue size diverged from its chain");
        }
    });
}

/// Masking preserves fault-free behaviour exactly: with wrappers installed
/// but no injection, the driver produces identical object graphs.
#[test]
fn masking_is_transparent_without_faults() {
    use atomask_suite::Snapshot;
    for name in ["LLMap", "adaptorChain", "Dynarray"] {
        let program = atomask_suite::apps::program_by_name(name).unwrap();
        let report = Pipeline::new(&program).max_points(1).run();

        let mut plain_vm = Vm::new(program.build_registry());
        program.run(&mut plain_vm).unwrap();

        let mut masked_vm = Vm::new(program.build_registry());
        let masker = Rc::new(RefCell::new(MaskingHook::new(report.mask_set.clone())));
        masked_vm.set_hook(Some(masker));
        program.run(&mut masked_vm).unwrap();

        // Compare the graphs of all like-named class instances, pairwise
        // in allocation order.
        let roots =
            |vm: &Vm| -> Vec<atomask_suite::ObjId> { vm.heap().iter().map(|(id, _)| id).collect() };
        let (a, b) = (roots(&plain_vm), roots(&masked_vm));
        assert_eq!(a.len(), b.len(), "{name}: object population differs");
        for (&x, &y) in a.iter().zip(&b) {
            assert_eq!(
                Snapshot::of(plain_vm.heap(), x),
                Snapshot::of(masked_vm.heap(), y),
                "{name}: object graph diverged under transparent masking"
            );
        }
    }
}

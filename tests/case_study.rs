//! The §6.1 LinkedList case study, end to end: the original list is
//! riddled with pure failure non-atomic methods; trivial statement
//! reordering plus exception-free annotations reduce them to the hard
//! residue, which automatic masking then covers.

use atomask_suite::{classify, Campaign, MarkFilter, Pipeline, Verdict};

fn pure_count(program: &atomask_suite::FnProgram) -> (u64, f64) {
    let result = Campaign::new(program).run();
    let c = classify(&result, &MarkFilter::default());
    (
        c.method_counts.pure_nonatomic,
        c.call_counts.pct(Verdict::PureNonAtomic),
    )
}

#[test]
fn trivial_fixes_shrink_the_pure_set() {
    let (buggy_pure, buggy_calls_pct) =
        pure_count(&atomask_suite::apps::collections::linked_list::program());
    let (fixed_pure, fixed_calls_pct) =
        pure_count(&atomask_suite::apps::collections::linked_list::fixed_program());
    // Paper: 18 -> 3 pure non-atomic methods, 7.8% -> <0.2% of calls. Our
    // list is smaller, so assert the ratios rather than absolute numbers.
    assert!(
        buggy_pure >= 3 * fixed_pure.max(1),
        "fixes should remove most pure non-atomic methods: {buggy_pure} -> {fixed_pure}"
    );
    assert!(
        fixed_calls_pct < buggy_calls_pct,
        "pure call share should shrink: {buggy_calls_pct:.2}% -> {fixed_calls_pct:.2}%"
    );
    assert!(
        fixed_calls_pct < 2.0,
        "remaining pure methods are rarely called ({fixed_calls_pct:.2}% of calls)"
    );
}

#[test]
fn specific_methods_flip_to_atomic() {
    let fixed = atomask_suite::apps::collections::linked_list::fixed_program();
    let c = classify(&Campaign::new(&fixed).run(), &MarkFilter::default());
    for name in [
        "LinkedList::insertFirst",
        "LinkedList::insertLast",
        "LinkedList::removeFirst",
        "LinkedList::insertAt",
        "LinkedList::removeAt",
        "LinkedList::swap",
    ] {
        assert_eq!(
            c.method(name).unwrap().verdict,
            Some(Verdict::FailureAtomic),
            "{name} should be atomic after the fix"
        );
    }
    // The genuinely hard method remains non-atomic: `extend` keeps making
    // injectable `insertLast` calls after earlier iterations already
    // mutated the list. (`reverse` and `removeLast` are rescued by the
    // never-throws annotations on the cell accessors: with no injectable
    // call after their first mutation they become atomic.)
    assert_eq!(
        c.method("LinkedList::extend").unwrap().verdict,
        Some(Verdict::PureNonAtomic)
    );
    assert_eq!(
        c.method("LinkedList::reverse").unwrap().verdict,
        Some(Verdict::FailureAtomic)
    );
}

#[test]
fn masking_covers_the_residue() {
    let fixed = atomask_suite::apps::collections::linked_list::fixed_program();
    let report = Pipeline::new(&fixed).run();
    assert!(report.corrected_is_atomic());
    // Only the hard residue needed wrapping.
    let wrapped = report.wrapped_names();
    assert!(
        wrapped.len() <= 4,
        "few wrappers needed after manual fixes: {wrapped:?}"
    );
    assert!(wrapped.iter().any(|w| w == "LinkedList::extend"));
}

#[test]
fn both_variants_behave_identically_without_faults() {
    use atomask_suite::{Program, Value, Vm};
    let run = |p: &atomask_suite::FnProgram| -> Vec<(String, Value)> {
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
        // Compare observable list state: every live LinkedList's contents.
        let mut out = Vec::new();
        let lists: Vec<atomask_suite::ObjId> = vm
            .heap()
            .iter()
            .filter(|(_, o)| vm.registry().class(o.class_id()).name == "LinkedList")
            .map(|(id, _)| id)
            .collect();
        for l in lists {
            let size = vm.heap().field(l, "size").unwrap();
            out.push(("size".to_owned(), size));
        }
        out
    };
    let buggy = run(&atomask_suite::apps::collections::linked_list::program());
    let fixed = run(&atomask_suite::apps::collections::linked_list::fixed_program());
    assert_eq!(buggy, fixed, "fixes must not change fault-free behaviour");
}

//! The `atomask` command line: run detection, masking and verification
//! over the built-in evaluation applications.
//!
//! ```text
//! atomask list
//! atomask detect  <app> [--cap N] [--verbose]
//! atomask suggest <app>
//! atomask mask    <app> [--cap N] [--wrap-conditional] [--undo-log]
//! atomask verify  <app> [--cap N] [--wrap-conditional] [--undo-log]
//! ```

use atomask::{
    classify, suggest_exception_free, Campaign, Classification, MaskStrategy, Pipeline, Policy,
    Verdict,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  atomask list\n  atomask detect <app> [--cap N] [--verbose]\n  \
         atomask suggest <app>\n  \
         atomask mask <app> [--cap N] [--wrap-conditional] [--undo-log]\n  \
         atomask verify <app> [--cap N] [--wrap-conditional] [--undo-log]\n\n\
         <app> is a Table 1 name (see `atomask list`) or `LinkedList-fixed`."
    );
    ExitCode::FAILURE
}

struct Options {
    app: String,
    cap: Option<u64>,
    verbose: bool,
    wrap_conditional: bool,
    undo_log: bool,
}

fn parse(args: &[String]) -> Option<Options> {
    let mut opts = Options {
        app: String::new(),
        cap: None,
        verbose: false,
        wrap_conditional: false,
        undo_log: false,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cap" => opts.cap = it.next().and_then(|v| v.parse().ok()),
            "--verbose" => opts.verbose = true,
            "--wrap-conditional" => opts.wrap_conditional = true,
            "--undo-log" => opts.undo_log = true,
            name if !name.starts_with("--") && opts.app.is_empty() => {
                opts.app = name.to_owned();
            }
            _ => return None,
        }
    }
    if opts.app.is_empty() {
        return None;
    }
    Some(opts)
}

fn print_classification(c: &Classification, verbose: bool) {
    println!(
        "methods: {} atomic / {} conditional / {} pure non-atomic",
        c.method_counts.atomic, c.method_counts.conditional, c.method_counts.pure_nonatomic
    );
    println!(
        "calls:   {:.1}% atomic / {:.1}% conditional / {:.1}% pure non-atomic",
        c.call_counts.pct(Verdict::FailureAtomic),
        c.call_counts.pct(Verdict::ConditionalNonAtomic),
        c.call_counts.pct(Verdict::PureNonAtomic)
    );
    for m in &c.methods {
        match m.verdict {
            Some(Verdict::FailureAtomic) if !verbose => continue,
            None => continue,
            _ => {}
        }
        println!(
            "  {:<32} {:<16} ({} calls)",
            m.name,
            m.verdict.map(|v| v.to_string()).unwrap_or_default(),
            m.calls
        );
        if let Some(diff) = &m.sample_diff {
            println!("      e.g. {diff}");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    if command == "list" {
        for spec in atomask::apps::all_apps() {
            println!("{:<6} {}", spec.lang.to_string(), spec.name);
        }
        println!("Java   LinkedList-fixed (the §6.1 case-study variant)");
        return ExitCode::SUCCESS;
    }
    let Some(opts) = parse(&args[1..]) else {
        return usage();
    };
    let Some(program) = atomask::apps::program_by_name(&opts.app) else {
        eprintln!("unknown application `{}` (try `atomask list`)", opts.app);
        return ExitCode::FAILURE;
    };
    let policy = if opts.wrap_conditional {
        Policy::wrap_everything()
    } else {
        Policy::default()
    };
    let strategy = if opts.undo_log {
        MaskStrategy::UndoLog
    } else {
        MaskStrategy::DeepCopy
    };

    match command {
        "suggest" => {
            let registry = {
                use atomask::Program;
                program.build_registry()
            };
            let suggested = suggest_exception_free(&program);
            println!(
                "{} methods observed as exception-free leaf candidates:",
                suggested.len()
            );
            for m in &suggested {
                println!("  {}", registry.method_display(*m));
            }
            println!(
                "confirm them, then discount their injections via \
                 Policy::with_exception_free / MarkFilter::exception_free"
            );
            ExitCode::SUCCESS
        }
        "detect" => {
            let mut campaign = Campaign::new(&program);
            if let Some(cap) = opts.cap {
                campaign = campaign.max_points(cap);
            }
            let result = campaign.run();
            println!(
                "{}: {} injections over {} dynamic calls",
                opts.app,
                result.injections(),
                result.baseline_calls.iter().sum::<u64>()
            );
            let c = classify(&result, &policy.mark_filter());
            print_classification(&c, opts.verbose);
            ExitCode::SUCCESS
        }
        "mask" | "verify" => {
            let mut pipeline = Pipeline::new(&program).policy(policy);
            if let Some(cap) = opts.cap {
                pipeline = pipeline.max_points(cap);
            }
            let report = pipeline.run();
            println!("{}: wrapped {:?}", opts.app, report.wrapped_names());
            if command == "verify" {
                let verified = if opts.undo_log {
                    // Re-verify with the requested strategy.
                    atomask::verify_masked_with(
                        &program,
                        &report.mask_set,
                        &Policy::default().mark_filter(),
                        strategy,
                    )
                } else {
                    report.verified.clone()
                };
                print_classification(&verified, opts.verbose);
                if verified.method_counts.pure_nonatomic == 0
                    && verified.method_counts.conditional == 0
                {
                    println!("corrected program is failure atomic");
                    ExitCode::SUCCESS
                } else {
                    println!("corrected program is STILL NON-ATOMIC");
                    ExitCode::FAILURE
                }
            } else {
                print_classification(&report.classification, opts.verbose);
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

//! # atomask — automatic detection and masking of non-atomic exception handling
//!
//! A Rust reproduction of *"Automatic Detection and Masking of Non-Atomic
//! Exception Handling"* (Fetzer, Högstedt, Felber — DSN 2003).
//!
//! A method is **failure atomic** if, whenever it returns with an
//! exception, the receiver's object graph is unchanged; otherwise a failed
//! call can leave the object inconsistent and sabotage later recovery. This
//! crate bundles the full tool chain of the paper:
//!
//! 1. **Detection** ([`atomask_inject`]): every method and constructor call
//!    is routed through an injection wrapper (Listing 1 of the paper) that
//!    throws each of the method's possible exception types at a controlled
//!    global injection point; the campaign runs the program once per
//!    potential point, and the classifier labels each method *failure
//!    atomic*, *conditional failure non-atomic* or *pure failure
//!    non-atomic*.
//! 2. **Masking** ([`atomask_mask`]): the non-atomic methods selected by a
//!    wrapping [`Policy`] get atomicity wrappers (Listing 2) that
//!    checkpoint the receiver's object graph and roll back on exception.
//! 3. **Verification**: the corrected program is re-campaigned with the
//!    injection wrappers *outside* the atomicity wrappers, demonstrating
//!    that it is failure atomic.
//!
//! The [`Pipeline`] type runs all of it in one call:
//!
//! ```
//! use atomask::{Pipeline, Policy};
//!
//! let program = atomask::apps::program_by_name("stdQ").unwrap();
//! let report = Pipeline::new(&program).max_points(200).run();
//! assert_eq!(report.verified.method_counts.pure_nonatomic, 0);
//! assert_eq!(report.verified.method_counts.conditional, 0);
//! ```
//!
//! The sixteen evaluation applications of the paper's Table 1 live in
//! [`apps`] (re-exported from `atomask-apps`); [`report`] renders every
//! table and figure of the paper's evaluation section; [`overhead`]
//! measures the Fig. 5 masking-overhead surface; [`synthetic`] contains
//! the ground-truth validation benchmarks of §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod overhead;
mod pipeline;
pub mod report;
pub mod synthetic;

pub use pipeline::{Pipeline, PipelineReport};

pub use atomask_inject::{
    classify, silent_diagnostics, stderr_diagnostics, suggest_exception_free, Campaign,
    CampaignConfig, CampaignJournal, CampaignResult, CaptureMode, CaptureStats, CheckpointStride,
    Classification, DiagnosticsFn, Divergence, InjectionHook, Mark, MarkFilter,
    MethodClassification, ReplayReport, RetryPolicy, RunHealth, RunOutcome, RunResult,
    SurvivingWrite, TraceMode, Verdict, VerdictCounts, DEFAULT_RING_CAPACITY,
};
pub use atomask_mask::{
    verify_masked, verify_masked_configured, verify_masked_with, MaskStats, MaskStrategy,
    MaskingHook, Policy, UndoMaskingHook, UndoStats,
};
pub use atomask_mor::{
    AsOfHeap, Budget, CallHook, CallKind, CallSite, ClassBuilder, ClassId, Ctx, ExcId, Exception,
    FnProgram, Heap, HookChain, Lang, MethodId, MethodResult, MorError, ObjId, Profile, Program,
    Registry, RegistryBuilder, RingBufferSink, TraceEvent, TraceSink, Value, Vm,
};
pub use atomask_objgraph::{
    fingerprint_of_roots, graph_fingerprint, graph_size, Checkpoint, FingerprintCache, GraphSize,
    GraphSource, Snapshot,
};

/// The evaluation applications (re-export of `atomask-apps`).
pub mod apps {
    pub use atomask_apps::*;
}

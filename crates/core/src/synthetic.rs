//! Synthetic benchmark programs (§6 of the paper).
//!
//! The paper first validates its tool on synthetic applications that
//! "contain the various combinations of (pure/conditional) failure
//! (non-)atomic methods that may be encountered in real applications".
//! [`validation_program`] is that benchmark with a machine-checkable
//! [`ground_truth`]; [`perf_registry`]/[`perf_vm`] build the parameterizable workload used
//! by the Fig. 5 overhead measurements.

use atomask_inject::Verdict;
use atomask_mor::{FnProgram, Profile, Registry, RegistryBuilder, Value, Vm};

/// The validation benchmark: one class exhibiting every combination the
/// classifier must distinguish.
///
/// Ground truth (see [`ground_truth`]):
///
/// | method | verdict | why |
/// |---|---|---|
/// | `Probe::readOnly` | atomic | no mutation at all |
/// | `Probe::mutateClean` | atomic | calls first, field writes last |
/// | `Probe::mutateDirty` | pure non-atomic | field write, then a callee that may throw |
/// | `Probe::restoreTooLate` | pure non-atomic | mutates and restores around a call |
/// | `Probe::delegate` | conditional | no own work before delegating to `mutateDirty` |
/// | `Probe::deepDelegate` | conditional | delegates to `delegate` |
/// | `Probe::helper` | atomic | leaf, mutates nothing |
pub fn validation_program() -> FnProgram {
    FnProgram::new("synthetic-validation", validation_registry, |vm| {
        let p = vm.construct("Probe", &[])?;
        vm.root(p);
        vm.call(p, "readOnly", &[])?;
        vm.call(p, "mutateClean", &[Value::Int(7)])?;
        vm.call(p, "mutateDirty", &[Value::Int(8)])?;
        vm.call(p, "restoreTooLate", &[])?;
        vm.call(p, "delegate", &[Value::Int(9)])?;
        vm.call(p, "deepDelegate", &[Value::Int(10)])?;
        vm.call(p, "readOnly", &[])
    })
}

/// The expected verdict for every method of [`validation_program`].
pub fn ground_truth() -> Vec<(&'static str, Verdict)> {
    use Verdict::*;
    vec![
        ("Probe::readOnly", FailureAtomic),
        ("Probe::mutateClean", FailureAtomic),
        ("Probe::mutateDirty", PureNonAtomic),
        ("Probe::restoreTooLate", PureNonAtomic),
        ("Probe::delegate", ConditionalNonAtomic),
        ("Probe::deepDelegate", ConditionalNonAtomic),
        ("Probe::helper", FailureAtomic),
    ]
}

fn validation_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    rb.class("Probe", |c| {
        c.field("state", Value::Int(0));
        c.field("aux", Value::Int(0));
        c.method("readOnly", |ctx, this, _| Ok(ctx.get(this, "state")));
        c.method("helper", |_, _, _| Ok(Value::Null));
        c.method("mutateClean", |ctx, this, args| {
            ctx.call(this, "helper", &[])?;
            ctx.set(this, "state", args[0].clone());
            Ok(Value::Null)
        });
        c.method("mutateDirty", |ctx, this, args| {
            ctx.set(this, "aux", args[0].clone());
            ctx.call(this, "helper", &[])?;
            ctx.set(this, "state", args[0].clone());
            Ok(Value::Null)
        });
        c.method("restoreTooLate", |ctx, this, _| {
            let old = ctx.get(this, "state");
            ctx.set(this, "state", Value::Int(-1));
            ctx.call(this, "helper", &[])?;
            ctx.set(this, "state", old);
            Ok(Value::Null)
        });
        c.method("delegate", |ctx, this, args| {
            ctx.call(this, "mutateDirty", args)
        });
        c.method("deepDelegate", |ctx, this, args| {
            ctx.call(this, "delegate", args)
        });
    });
    rb.build()
}

/// Bytes carried by one chunk of the Fig. 5 payload chain.
const CHUNK_BYTES: usize = 64;

/// Builds the Fig. 5 performance workload registry: a `Holder` whose
/// `payload` weighs `object_bytes`, with a `work` method whose body
/// performs a fixed amount of field traffic (the paper's ≈0.5 µs base
/// method).
///
/// The payload is a chain of fixed-size `Chunk` objects rather than one
/// big string: string storage is shared (`Rc<str>`), so copying a string
/// value is a refcount bump no matter its length, and a checkpoint's cost
/// scales with the number of *objects* it captures. The chain keeps
/// Fig. 5's object-size axis meaningful under that representation.
pub fn perf_registry(object_bytes: usize) -> Registry {
    let mut rb = RegistryBuilder::new(Profile::cpp());
    rb.class("Chunk", |c| {
        c.field("data", Value::from(""));
        c.field("next", Value::Null);
    });
    rb.class("Holder", |c| {
        c.field("payload", Value::Null);
        c.field("a", Value::Int(0));
        c.field("b", Value::Int(0));
        c.ctor(move |ctx, this, _| {
            let mut head = Value::Null;
            for _ in 0..object_bytes.div_ceil(CHUNK_BYTES).max(1) {
                let chunk = ctx.alloc("Chunk");
                ctx.set(chunk, "data", Value::from("x".repeat(CHUNK_BYTES)));
                ctx.set(chunk, "next", head);
                head = Value::Ref(chunk);
            }
            ctx.set(this, "payload", head);
            Ok(Value::Null)
        });
        // The base method: a handful of reads/writes, no nested calls.
        c.method("work", |ctx, this, _| {
            let mut a = ctx.get_int(this, "a");
            let b = ctx.get_int(this, "b");
            for i in 0..8 {
                a = a.wrapping_mul(31).wrapping_add(b + i);
            }
            ctx.set(this, "a", Value::Int(a));
            ctx.set(this, "b", Value::Int(b + 1));
            Ok(Value::Int(a))
        });
        // Identical body under a second name, so masking can wrap a
        // controlled *fraction* of the calls.
        c.method("workWrapped", |ctx, this, _| {
            let mut a = ctx.get_int(this, "a");
            let b = ctx.get_int(this, "b");
            for i in 0..8 {
                a = a.wrapping_mul(31).wrapping_add(b + i);
            }
            ctx.set(this, "a", Value::Int(a));
            ctx.set(this, "b", Value::Int(b + 1));
            Ok(Value::Int(a))
        });
    });
    rb.build()
}

/// Creates a VM with a rooted `Holder` for the Fig. 5 workload.
pub fn perf_vm(object_bytes: usize) -> (Vm, atomask_mor::ObjId) {
    let mut vm = Vm::new(perf_registry(object_bytes));
    let h = vm.construct("Holder", &[]).expect("ctor cannot fail");
    vm.root(h);
    (vm, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::Program;

    #[test]
    fn validation_driver_is_clean() {
        let p = validation_program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }

    #[test]
    fn ground_truth_covers_every_probe_method() {
        let reg = validation_registry();
        let probe = reg.class_by_name("Probe").unwrap();
        assert_eq!(ground_truth().len(), probe.methods.len());
    }

    #[test]
    fn perf_holder_has_requested_weight() {
        let (vm, h) = perf_vm(4096);
        let size = atomask_objgraph::graph_size(vm.heap(), h);
        assert!(size.bytes >= 4096, "payload bytes {}", size.bytes);
    }

    #[test]
    fn perf_work_methods_mutate_deterministically() {
        let (mut vm, h) = perf_vm(16);
        let a1 = vm.call(h, "work", &[]).unwrap();
        let (mut vm2, h2) = perf_vm(16);
        let a2 = vm2.call(h2, "work", &[]).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(vm.heap().field(h, "b"), Some(Value::Int(1)));
    }
}

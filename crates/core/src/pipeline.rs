//! The end-to-end pipeline: steps 1–5 of the paper's Fig. 1 plus the
//! corrected-program validation.

use atomask_inject::{classify, Campaign, CampaignResult, Classification};
use atomask_mask::{verify_masked, Policy};
use atomask_mor::{MethodId, Program};
use std::collections::HashSet;

/// Everything the pipeline produced for one program.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Raw detection campaign data (runs, marks, baseline calls).
    pub detection: CampaignResult,
    /// Classification of the original program under the policy's filter.
    pub classification: Classification,
    /// Methods the policy selected for atomicity wrappers.
    pub mask_set: HashSet<MethodId>,
    /// Classification of the corrected program `P_C`.
    pub verified: Classification,
}

impl PipelineReport {
    /// `true` iff the corrected program exhibited no failure non-atomic
    /// method in the verification campaign.
    pub fn corrected_is_atomic(&self) -> bool {
        self.verified.method_counts.pure_nonatomic == 0
            && self.verified.method_counts.conditional == 0
    }

    /// Display names of the methods that were wrapped.
    pub fn wrapped_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .mask_set
            .iter()
            .map(|m| self.detection.registry.method_display(*m))
            .collect();
        names.sort();
        names
    }
}

/// Runs detection → classification → policy → masking → verification over
/// one program.
///
/// ```
/// use atomask::{Pipeline, Policy};
/// let program = atomask::apps::program_by_name("LinkedBuffer").unwrap();
/// let report = Pipeline::new(&program)
///     .policy(Policy::default())
///     .run();
/// assert!(report.corrected_is_atomic());
/// ```
pub struct Pipeline<'p> {
    program: &'p dyn Program,
    policy: Policy,
    max_points: Option<u64>,
}

impl std::fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("program", &self.program.name())
            .field("max_points", &self.max_points)
            .finish()
    }
}

impl<'p> Pipeline<'p> {
    /// Creates a pipeline over `program` with the default policy.
    pub fn new(program: &'p dyn Program) -> Self {
        Pipeline {
            program,
            policy: Policy::default(),
            max_points: None,
        }
    }

    /// Sets the wrapping policy (§4.3).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps both campaigns at `cap` injection points (useful for quick
    /// looks at large programs; the default sweeps every point, as the
    /// paper does).
    pub fn max_points(mut self, cap: u64) -> Self {
        self.max_points = Some(cap);
        self
    }

    /// Executes the full pipeline.
    pub fn run(&self) -> PipelineReport {
        let mut campaign = Campaign::new(self.program);
        if let Some(cap) = self.max_points {
            campaign = campaign.max_points(cap);
        }
        let detection = campaign.run();
        let classification = classify(&detection, &self.policy.mark_filter());
        let mask_set = self.policy.mask_set(&classification);
        let verified = verify_masked_capped(
            self.program,
            &mask_set,
            &self.policy,
            self.max_points,
        );
        PipelineReport {
            detection,
            classification,
            mask_set,
            verified,
        }
    }
}

fn verify_masked_capped(
    program: &dyn Program,
    mask_set: &HashSet<MethodId>,
    policy: &Policy,
    cap: Option<u64>,
) -> Classification {
    match cap {
        None => verify_masked(program, mask_set, &policy.mark_filter()),
        Some(cap) => {
            // Re-implement verify_masked with a cap (the helper itself
            // always sweeps fully).
            use atomask_mask::MaskingHook;
            use std::cell::RefCell;
            use std::rc::Rc;
            let mask_set = mask_set.clone();
            let result = Campaign::new(program)
                .with_inner_hook(move |_| {
                    Rc::new(RefCell::new(MaskingHook::new(mask_set.clone())))
                })
                .max_points(cap)
                .run();
            classify(&result, &policy.mark_filter())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::validation_program;
    use atomask_inject::Verdict;

    #[test]
    fn pipeline_masks_the_validation_program() {
        let p = validation_program();
        let report = Pipeline::new(&p).run();
        assert!(
            report.classification.method_counts.pure_nonatomic > 0,
            "validation program plants pure non-atomic methods"
        );
        assert!(report.corrected_is_atomic(), "{:#?}", report.verified);
        assert!(!report.wrapped_names().is_empty());
    }

    #[test]
    fn wrap_everything_also_works() {
        let p = validation_program();
        let report = Pipeline::new(&p).policy(Policy::wrap_everything()).run();
        assert!(report.corrected_is_atomic());
        // Wrapping conditionals too means a strictly larger mask set.
        let default_report = Pipeline::new(&p).run();
        assert!(report.mask_set.len() >= default_report.mask_set.len());
    }

    #[test]
    fn max_points_caps_both_campaigns() {
        let p = validation_program();
        let report = Pipeline::new(&p).max_points(5).run();
        assert_eq!(report.detection.injections(), 5);
    }

    #[test]
    fn ground_truth_matches_classifier() {
        let p = validation_program();
        let report = Pipeline::new(&p).run();
        for (name, verdict) in crate::synthetic::ground_truth() {
            let got = report
                .classification
                .method(name)
                .unwrap_or_else(|| panic!("method {name} missing"))
                .verdict;
            assert_eq!(got, Some(verdict), "{name}");
        }
        let _ = Verdict::FailureAtomic;
    }
}

//! The end-to-end pipeline: steps 1–5 of the paper's Fig. 1 plus the
//! corrected-program validation.

use atomask_inject::{
    classify, Campaign, CampaignConfig, CampaignResult, CaptureMode, Classification, RunHealth,
    TraceMode,
};
use atomask_mask::{verify_masked_configured, MaskStrategy, Policy};
use atomask_mor::{MethodId, Program};
use std::collections::HashSet;

/// Everything the pipeline produced for one program.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Raw detection campaign data (runs, marks, baseline calls).
    pub detection: CampaignResult,
    /// Classification of the original program under the policy's filter.
    pub classification: Classification,
    /// Methods the policy selected for atomicity wrappers.
    pub mask_set: HashSet<MethodId>,
    /// Classification of the corrected program `P_C`.
    pub verified: Classification,
}

impl PipelineReport {
    /// `true` iff the corrected program exhibited no failure non-atomic
    /// method in the verification campaign.
    pub fn corrected_is_atomic(&self) -> bool {
        self.verified.method_counts.pure_nonatomic == 0
            && self.verified.method_counts.conditional == 0
    }

    /// Run health of the detection campaign (outcome counts, retries,
    /// fuel). Unhealthy runs contribute no marks to the classification;
    /// a non-zero [`RunHealth::unhealthy`] count means the classification
    /// rests on a partial sweep.
    pub fn detection_health(&self) -> RunHealth {
        self.classification.health
    }

    /// Run health of the verification campaign over the corrected program.
    pub fn verification_health(&self) -> RunHealth {
        self.verified.health
    }

    /// Display names of the methods that were wrapped.
    pub fn wrapped_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .mask_set
            .iter()
            .map(|m| self.detection.registry.method_display(*m))
            .collect();
        names.sort();
        names
    }
}

/// Runs detection → classification → policy → masking → verification over
/// one program.
///
/// ```
/// use atomask::{Pipeline, Policy};
/// let program = atomask::apps::program_by_name("LinkedBuffer").unwrap();
/// let report = Pipeline::new(&program)
///     .policy(Policy::default())
///     .run();
/// assert!(report.corrected_is_atomic());
/// ```
pub struct Pipeline<'p> {
    program: &'p dyn Program,
    policy: Policy,
    max_points: Option<u64>,
    campaign_config: CampaignConfig,
}

impl std::fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("program", &self.program.name())
            .field("max_points", &self.max_points)
            .field("campaign_config", &self.campaign_config)
            .finish()
    }
}

impl<'p> Pipeline<'p> {
    /// Creates a pipeline over `program` with the default policy.
    pub fn new(program: &'p dyn Program) -> Self {
        Pipeline {
            program,
            policy: Policy::default(),
            max_points: None,
            campaign_config: CampaignConfig::default(),
        }
    }

    /// Sets the wrapping policy (§4.3).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps both campaigns at `cap` injection points (useful for quick
    /// looks at large programs; the default sweeps every point, as the
    /// paper does).
    pub fn max_points(mut self, cap: u64) -> Self {
        self.max_points = Some(cap);
        self
    }

    /// Sets the resilience configuration — fuel budget, retry policy, and
    /// failure cap — applied to **both** the detection and the
    /// verification campaign.
    pub fn campaign_config(mut self, config: CampaignConfig) -> Self {
        self.campaign_config = config;
        self
    }

    /// Sets the worker-thread count for both campaigns' injection sweeps
    /// (`0` = auto, see [`CampaignConfig::workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.campaign_config.workers = workers;
        self
    }

    /// Sets the before-state capture mode for the detection campaign's
    /// injection wrappers (the verification campaign always captures
    /// eagerly because its rollback hooks mutate the heap mid-extent).
    pub fn capture(mut self, capture: CaptureMode) -> Self {
        self.campaign_config.capture = capture;
        self
    }

    /// Sets the flight-recorder mode for both campaigns (see
    /// [`TraceMode`]); per-run event counts land in each campaign's
    /// [`RunHealth`].
    pub fn trace(mut self, trace: TraceMode) -> Self {
        self.campaign_config.trace = trace;
        self
    }

    /// Executes the full pipeline.
    pub fn run(&self) -> PipelineReport {
        let mut campaign = Campaign::new(self.program).config(self.campaign_config);
        if let Some(cap) = self.max_points {
            campaign = campaign.max_points(cap);
        }
        let detection = campaign.run();
        let classification = classify(&detection, &self.policy.mark_filter());
        let mask_set = self.policy.mask_set(&classification);
        let verified = verify_masked_configured(
            self.program,
            &mask_set,
            &self.policy.mark_filter(),
            MaskStrategy::DeepCopy,
            self.campaign_config,
            self.max_points,
        );
        PipelineReport {
            detection,
            classification,
            mask_set,
            verified,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::validation_program;
    use atomask_inject::Verdict;

    #[test]
    fn pipeline_masks_the_validation_program() {
        let p = validation_program();
        let report = Pipeline::new(&p).run();
        assert!(
            report.classification.method_counts.pure_nonatomic > 0,
            "validation program plants pure non-atomic methods"
        );
        assert!(report.corrected_is_atomic(), "{:#?}", report.verified);
        assert!(!report.wrapped_names().is_empty());
    }

    #[test]
    fn wrap_everything_also_works() {
        let p = validation_program();
        let report = Pipeline::new(&p).policy(Policy::wrap_everything()).run();
        assert!(report.corrected_is_atomic());
        // Wrapping conditionals too means a strictly larger mask set.
        let default_report = Pipeline::new(&p).run();
        assert!(report.mask_set.len() >= default_report.mask_set.len());
    }

    #[test]
    fn max_points_caps_both_campaigns() {
        let p = validation_program();
        let report = Pipeline::new(&p).max_points(5).run();
        assert_eq!(report.detection.injections(), 5);
    }

    #[test]
    fn campaign_config_threads_through_both_campaigns() {
        let p = validation_program();
        let config = CampaignConfig {
            budget: atomask_mor::Budget::fuel(1_000_000),
            ..CampaignConfig::default()
        };
        let report = Pipeline::new(&p).campaign_config(config).run();
        assert!(report.corrected_is_atomic(), "{:#?}", report.verified);
        assert_eq!(report.detection_health().unhealthy(), 0);
        assert_eq!(report.verification_health().unhealthy(), 0);
        assert!(
            report.detection_health().fuel_spent > 0,
            "budgeted runs meter fuel"
        );
    }

    #[test]
    fn ground_truth_matches_classifier() {
        let p = validation_program();
        let report = Pipeline::new(&p).run();
        for (name, verdict) in crate::synthetic::ground_truth() {
            let got = report
                .classification
                .method(name)
                .unwrap_or_else(|| panic!("method {name} missing"))
                .verdict;
            assert_eq!(got, Some(verdict), "{name}");
        }
        let _ = Verdict::FailureAtomic;
    }
}

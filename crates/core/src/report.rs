//! Rendering of every table and figure in the paper's evaluation section.
//!
//! | artifact | renderer |
//! |---|---|
//! | Table 1 (application statistics) | [`render_table1`] |
//! | Fig. 2a/2b (C++ method classification) | [`render_method_classification`] |
//! | Fig. 3a/3b (Java method classification) | [`render_method_classification`] |
//! | Fig. 4 (class distribution) | [`render_class_distribution`] |
//! | Fig. 5 (masking overhead) | [`render_overhead`] |
//! | §6.1 LinkedList case study | [`render_case_study`] |

use crate::overhead::OverheadSample;
use atomask_apps::AppSpec;
use atomask_inject::{
    classify, Campaign, CampaignConfig, Classification, MarkFilter, ReplayReport, RunHealth,
    Verdict, VerdictCounts,
};
use atomask_mor::Lang;

/// The per-application numbers behind Table 1 and Figs. 2–4.
#[derive(Debug, Clone)]
pub struct AppEvaluation {
    /// Application name (Table 1 row).
    pub name: String,
    /// Language side of the evaluation.
    pub lang: Lang,
    /// Classes defined *and used* by the test program.
    pub classes: usize,
    /// Methods defined *and used* by the test program.
    pub methods: usize,
    /// Total potential injection points (= injector runs; Table 1's
    /// `#Injections`).
    pub injections: u64,
    /// Dynamic method+constructor calls in the baseline run.
    pub calls: u64,
    /// Per-verdict method counts (Figs. 2a/3a).
    pub method_counts: VerdictCounts,
    /// Per-verdict call counts (Figs. 2b/3b).
    pub call_counts: VerdictCounts,
    /// Per-verdict class counts (Fig. 4).
    pub class_counts: VerdictCounts,
    /// Run health of the campaign behind these numbers. Any unhealthy runs
    /// (diverged, panicked, skipped) contributed no marks — they flag the
    /// row as resting on a partial sweep.
    pub health: RunHealth,
}

/// Runs the detection campaign for one suite application and summarizes it.
///
/// `cap` limits the number of injector runs (pass `None` for the full
/// sweep, as the paper does).
pub fn evaluate(spec: &AppSpec, cap: Option<u64>) -> AppEvaluation {
    evaluate_configured(spec, cap, CampaignConfig::default())
}

/// [`evaluate`] under an explicit resilience [`CampaignConfig`] (fuel
/// budget, retry policy, failure cap).
pub fn evaluate_configured(
    spec: &AppSpec,
    cap: Option<u64>,
    config: CampaignConfig,
) -> AppEvaluation {
    let program = spec.program();
    let mut campaign = Campaign::new(&program).config(config);
    if let Some(cap) = cap {
        campaign = campaign.max_points(cap);
    }
    let result = campaign.run();
    let c: Classification = classify(&result, &MarkFilter::default());
    AppEvaluation {
        name: spec.name.to_owned(),
        lang: spec.lang,
        classes: c.classes.len(),
        methods: c.method_counts.total() as usize,
        injections: result.total_points,
        calls: result.baseline_calls.iter().sum(),
        method_counts: c.method_counts,
        call_counts: c.call_counts,
        class_counts: c.class_counts,
        health: c.health,
    }
}

/// Renders Table 1: per-application class/method/injection counts.
pub fn render_table1(rows: &[AppEvaluation]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: application statistics\n");
    out.push_str(&format!(
        "{:<6} {:<14} {:>8} {:>9} {:>12}\n",
        "Lang", "Application", "#Classes", "#Methods", "#Injections"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<6} {:<14} {:>8} {:>9} {:>12}\n",
            row.lang.to_string(),
            row.name,
            row.classes,
            row.methods,
            row.injections
        ));
    }
    out
}

/// Renders the run-health companion to Table 1: per-application outcome
/// tallies, retries, and fuel consumption of the detection campaign. A row
/// with a non-zero unhealthy count rests on a partial sweep.
pub fn render_run_health(rows: &[AppEvaluation]) -> String {
    let mut out = String::new();
    out.push_str("Run health: campaign outcomes per application\n");
    out.push_str(&format!(
        "{:<6} {:<14} {:>9} {:>9} {:>9} {:>8} {:>8} {:>12} {:>9}\n",
        "Lang",
        "Application",
        "completed",
        "diverged",
        "panicked",
        "skipped",
        "retries",
        "fuel",
        "snapshots"
    ));
    for row in rows {
        let h = &row.health;
        out.push_str(&format!(
            "{:<6} {:<14} {:>9} {:>9} {:>9} {:>8} {:>8} {:>12} {:>9}\n",
            row.lang.to_string(),
            row.name,
            h.completed,
            h.diverged,
            h.panicked,
            h.skipped,
            h.retries,
            h.fuel_spent,
            h.snapshots
        ));
    }
    let unhealthy: u64 = rows.iter().map(|r| r.health.unhealthy()).sum();
    if unhealthy == 0 {
        out.push_str("all runs healthy: every classification rests on a full sweep\n");
    } else {
        out.push_str(&format!(
            "{unhealthy} unhealthy runs: affected rows rest on partial sweeps\n"
        ));
    }
    out
}

fn pct_triplet(counts: &VerdictCounts) -> (f64, f64, f64) {
    (
        counts.pct(Verdict::FailureAtomic),
        counts.pct(Verdict::ConditionalNonAtomic),
        counts.pct(Verdict::PureNonAtomic),
    )
}

/// Renders Fig. 2 (C++, `lang == Lang::Cpp`) or Fig. 3 (Java): the
/// classification of methods as a percentage of (a) methods defined and
/// used and (b) method calls.
pub fn render_method_classification(rows: &[AppEvaluation], lang: Lang) -> String {
    let figure = match lang {
        Lang::Cpp => "Figure 2",
        Lang::Java => "Figure 3",
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{figure}: method classification, {lang} applications\n"
    ));
    out.push_str(&format!(
        "{:<14} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}\n",
        "", "(a)%atom", "%cond", "%pure", "(b)%atom", "%cond", "%pure"
    ));
    let mut max_pure_calls: f64 = 0.0;
    for row in rows.iter().filter(|r| r.lang == lang) {
        let (ma, mc, mp) = pct_triplet(&row.method_counts);
        let (ca, cc, cp) = pct_triplet(&row.call_counts);
        max_pure_calls = max_pure_calls.max(cp);
        out.push_str(&format!(
            "{:<14} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1}\n",
            row.name, ma, mc, mp, ca, cc, cp
        ));
    }
    out.push_str(&format!(
        "largest pure failure non-atomic call share: {max_pure_calls:.2}%\n"
    ));
    out
}

/// Renders Fig. 4: distribution of classes (a class is pure failure
/// non-atomic if it contains at least one pure failure non-atomic method).
pub fn render_class_distribution(rows: &[AppEvaluation]) -> String {
    let mut out = String::new();
    out.push_str("Figure 4: class distribution\n");
    out.push_str(&format!(
        "{:<6} {:<14} | {:>7} {:>7} {:>7}\n",
        "Lang", "Application", "%atom", "%cond", "%pure"
    ));
    for row in rows {
        let (a, c, p) = pct_triplet(&row.class_counts);
        out.push_str(&format!(
            "{:<6} {:<14} | {:>7.1} {:>7.1} {:>7.1}\n",
            row.lang.to_string(),
            row.name,
            a,
            c,
            p
        ));
    }
    out
}

/// Renders Fig. 5: masking overhead over the checkpoint-size ×
/// wrapped-call-fraction grid.
pub fn render_overhead(samples: &[OverheadSample]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5: masking overhead (masked/base processing time)\n");
    out.push_str(&format!(
        "{:>12} {:>10} {:>12} {:>12} {:>9}\n",
        "object bytes", "%wrapped", "base ns/call", "masked ns", "factor"
    ));
    for s in samples {
        out.push_str(&format!(
            "{:>12} {:>10} {:>12.0} {:>12.0} {:>9.2}\n",
            s.object_bytes,
            s.wrapped_pct,
            s.base_ns,
            s.masked_ns,
            s.factor()
        ));
    }
    out
}

/// Renders the §6.1 LinkedList case study: pure failure non-atomic methods
/// before and after the trivial fixes.
pub fn render_case_study(buggy: &Classification, fixed: &Classification) -> String {
    let mut out = String::new();
    out.push_str("Case study (§6.1): LinkedList trivial fixes\n");
    let b = buggy.method_counts;
    let f = fixed.method_counts;
    let bc = buggy.call_counts;
    let fc = fixed.call_counts;
    out.push_str(&format!(
        "original: {:>2} pure non-atomic methods ({:.2}% of calls)\n",
        b.pure_nonatomic,
        bc.pct(Verdict::PureNonAtomic)
    ));
    out.push_str(&format!(
        "fixed:    {:>2} pure non-atomic methods ({:.2}% of calls)\n",
        f.pure_nonatomic,
        fc.pct(Verdict::PureNonAtomic)
    ));
    out.push_str("remaining pure non-atomic methods after fixes:\n");
    for m in fixed.pure_nonatomic() {
        out.push_str(&format!("  {} ({} calls)\n", m.name, m.calls));
    }
    out
}

/// Renders a [`ReplayReport`] — the `report repro` artifact: run summary,
/// full event trace, and the minimized divergence when the point was
/// non-atomic.
pub fn render_replay(report: &ReplayReport) -> String {
    let reg = &report.registry;
    let run = &report.run;
    let mut out = String::new();
    out.push_str(&format!(
        "replay of injection point {}: outcome {}\n",
        run.injection_point,
        run.outcome.as_str()
    ));
    match run.injected {
        Some((method, exc)) => out.push_str(&format!(
            "injected {} into {}\n",
            reg.exceptions().name(exc),
            reg.method_display(method)
        )),
        None => out.push_str("no injection fired (point beyond the run's dynamic extent)\n"),
    }
    if let Some(err) = &run.top_error {
        out.push_str(&format!("top-level error: {err}\n"));
    }
    let nonatomic = run.marks.iter().filter(|m| !m.atomic).count();
    out.push_str(&format!(
        "marks: {} ({} non-atomic); fuel {}; {} trace event(s)",
        run.marks.len(),
        nonatomic,
        run.fuel_spent,
        report.trace_emitted
    ));
    if report.trace_dropped > 0 {
        out.push_str(&format!(" ({} dropped)", report.trace_dropped));
    }
    out.push('\n');
    out.push_str("trace:\n");
    for event in &report.trace {
        out.push_str("  ");
        out.push_str(&event.render(reg));
        out.push('\n');
    }
    for mark in &run.marks {
        out.push_str(&format!(
            "mark: {} {}\n",
            reg.method_display(mark.method),
            if mark.atomic { "atomic" } else { "NON-ATOMIC" }
        ));
    }
    match &report.divergence {
        Some(d) => out.push_str(&d.render(reg)),
        None if nonatomic > 0 => {
            out.push_str("divergence: not minimized (inner hook present)\n");
        }
        None => out.push_str("divergence: none — the graph was unchanged\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_apps::{cpp_apps, java_apps};

    fn quick_eval(name: &str) -> AppEvaluation {
        let spec = atomask_apps::all_apps()
            .into_iter()
            .find(|a| a.name == name)
            .unwrap();
        evaluate(&spec, Some(100))
    }

    #[test]
    fn evaluate_produces_consistent_counts() {
        let eval = quick_eval("stdQ");
        assert_eq!(eval.name, "stdQ");
        assert_eq!(eval.lang, Lang::Cpp);
        assert!(eval.classes >= 3, "queue + producer + consumer");
        assert!(eval.methods > 5);
        assert!(eval.injections >= 100);
        assert!(eval.calls > 0);
        assert_eq!(eval.method_counts.total() as usize, eval.methods);
        assert_eq!(eval.health.unhealthy(), 0, "suite apps are healthy");
        assert_eq!(eval.health.total(), eval.injections.min(100));
    }

    #[test]
    fn run_health_table_reports_full_sweeps() {
        let rows = vec![quick_eval("stdQ"), quick_eval("LinkedBuffer")];
        let table = render_run_health(&rows);
        assert!(table.contains("stdQ"));
        assert!(table.contains("LinkedBuffer"));
        assert!(table.contains("completed"));
        assert!(
            table.contains("all runs healthy"),
            "suite apps sweep cleanly:\n{table}"
        );
    }

    #[test]
    fn evaluate_configured_meters_fuel() {
        let spec = atomask_apps::all_apps()
            .into_iter()
            .find(|a| a.name == "stdQ")
            .unwrap();
        let config = CampaignConfig {
            budget: atomask_mor::Budget::fuel(10_000_000),
            ..CampaignConfig::default()
        };
        let eval = evaluate_configured(&spec, Some(20), config);
        assert_eq!(eval.health.unhealthy(), 0);
        assert!(eval.health.fuel_spent > 0, "budgeted runs meter fuel");
    }

    #[test]
    fn table1_renders_all_rows() {
        let rows = vec![quick_eval("stdQ"), quick_eval("LinkedBuffer")];
        let table = render_table1(&rows);
        assert!(table.contains("stdQ"));
        assert!(table.contains("LinkedBuffer"));
        assert!(table.contains("#Injections"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn figures_filter_by_language() {
        let rows = vec![quick_eval("stdQ"), quick_eval("LinkedBuffer")];
        let fig2 = render_method_classification(&rows, Lang::Cpp);
        assert!(fig2.contains("stdQ"));
        assert!(!fig2.contains("LinkedBuffer"));
        let fig3 = render_method_classification(&rows, Lang::Java);
        assert!(fig3.contains("LinkedBuffer"));
        let fig4 = render_class_distribution(&rows);
        assert!(fig4.contains("stdQ") && fig4.contains("LinkedBuffer"));
    }

    #[test]
    fn overhead_table_shows_factor() {
        let samples = vec![OverheadSample {
            object_bytes: 64,
            wrapped_pct: 10,
            base_ns: 100.0,
            masked_ns: 250.0,
        }];
        let fig5 = render_overhead(&samples);
        assert!(fig5.contains("2.50"));
    }

    #[test]
    fn replay_report_renders_trace_and_divergence() {
        // Point 5 of the LinkedList case study injects into `LLCell::<init>`
        // and leaves `insertLast` non-atomic (`size` bumped before the
        // cell exists).
        let program = atomask_apps::collections::linked_list::program();
        let replay = Campaign::new(&program).replay(5);
        let text = render_replay(&replay);
        assert!(text.contains("replay of injection point 5"), "{text}");
        assert!(text.contains("inject"), "{text}");
        assert!(text.contains("NON-ATOMIC"), "{text}");
        assert!(
            text.contains("non-atomic: LinkedList::insertLast"),
            "divergence names the method:\n{text}"
        );
        assert!(text.contains("LinkedList.size: 0 -> 1"), "{text}");
        // Rendering is pure: the same replay renders identically.
        assert_eq!(text, render_replay(&replay));
    }

    #[test]
    fn suite_lists_match_report_langs() {
        assert!(cpp_apps().iter().all(|a| a.lang == Lang::Cpp));
        assert!(java_apps().iter().all(|a| a.lang == Lang::Java));
    }
}

//! Fig. 5: masking overhead as a function of checkpointed object size and
//! the fraction of calls to wrapped (failure non-atomic) methods.
//!
//! The paper reports the *relative* slowdown of the corrected program over
//! the original, for a base method costing ≈0.5 µs, sweeping checkpoint
//! size and wrapped-call percentage, with each point the median of 40
//! runs. [`measure`] reproduces one point of that surface; the `report`
//! binary and the Criterion bench sweep the full grid.

use crate::synthetic::perf_vm;
use atomask_mask::{MaskStrategy, MaskingHook, UndoMaskingHook};
use atomask_mor::{CallHook, MethodId, Registry, Vm};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// One measured point of the Fig. 5 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadSample {
    /// Checkpointed object payload size in bytes.
    pub object_bytes: usize,
    /// Percentage of calls that went to wrapped methods (0–100).
    pub wrapped_pct: u32,
    /// Median base (unmasked) time per call, nanoseconds.
    pub base_ns: f64,
    /// Median masked time per call, nanoseconds.
    pub masked_ns: f64,
}

impl OverheadSample {
    /// Relative processing-time overhead (masked / base).
    pub fn factor(&self) -> f64 {
        if self.base_ns <= 0.0 {
            return 1.0;
        }
        self.masked_ns / self.base_ns
    }
}

fn work_wrapped_gid(registry: &Registry) -> MethodId {
    let holder = registry.class_by_name("Holder").expect("perf registry");
    holder.methods[holder.method_slot("workWrapped").expect("method")].gid
}

fn run_calls(vm: &mut Vm, holder: atomask_mor::ObjId, calls: u32, wrapped_pct: u32) {
    for i in 0..calls {
        // Interleave wrapped and unwrapped calls at the requested ratio.
        let wrapped = (i as u64 * wrapped_pct as u64) % 100 + wrapped_pct as u64 >= 100;
        let method = if wrapped { "workWrapped" } else { "work" };
        vm.call(holder, method, &[]).expect("work cannot fail");
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs[xs.len() / 2]
}

/// Measures one point of the Fig. 5 surface: `calls` calls per run,
/// `runs` runs (the paper uses the median of 40), `wrapped_pct` percent of
/// the calls going to the masked method on an object weighing
/// `object_bytes`.
pub fn measure(object_bytes: usize, wrapped_pct: u32, calls: u32, runs: u32) -> OverheadSample {
    measure_with(
        MaskStrategy::DeepCopy,
        object_bytes,
        wrapped_pct,
        calls,
        runs,
    )
}

/// [`measure`] with an explicit wrapper [`MaskStrategy`] — the ablation of
/// the paper's §6.2 copy-on-write suggestion (see the `ablation` bench).
pub fn measure_with(
    strategy: MaskStrategy,
    object_bytes: usize,
    wrapped_pct: u32,
    calls: u32,
    runs: u32,
) -> OverheadSample {
    let mut base = Vec::with_capacity(runs as usize);
    let mut masked = Vec::with_capacity(runs as usize);
    for _ in 0..runs {
        // Base: no hook at all (the original program).
        let (mut vm, holder) = perf_vm(object_bytes);
        let t0 = Instant::now();
        run_calls(&mut vm, holder, calls, wrapped_pct);
        base.push(t0.elapsed().as_nanos() as f64 / calls as f64);

        // Masked: atomicity wrapper on `workWrapped`.
        let (mut vm, holder) = perf_vm(object_bytes);
        let gid = work_wrapped_gid(vm.registry());
        let hook: Rc<RefCell<dyn CallHook>> = match strategy {
            MaskStrategy::DeepCopy => Rc::new(RefCell::new(MaskingHook::wrapping([gid]))),
            MaskStrategy::UndoLog => Rc::new(RefCell::new(UndoMaskingHook::wrapping([gid]))),
        };
        vm.set_hook(Some(hook));
        let t0 = Instant::now();
        run_calls(&mut vm, holder, calls, wrapped_pct);
        masked.push(t0.elapsed().as_nanos() as f64 / calls as f64);
    }
    OverheadSample {
        object_bytes,
        wrapped_pct,
        base_ns: median(base),
        masked_ns: median(masked),
    }
}

/// The object-size axis of the paper's Fig. 5 sweep.
pub const OBJECT_SIZES: [usize; 5] = [64, 256, 1024, 4096, 16384];
/// The wrapped-call-percentage axis of the paper's Fig. 5 sweep.
pub const WRAPPED_PCTS: [u32; 5] = [0, 1, 10, 50, 100];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_wrapped_fraction_has_no_checkpoint_cost() {
        let sample = measure(1024, 0, 400, 5);
        // Nothing is wrapped: overhead should be negligible (allow noise).
        assert!(
            sample.factor() < 1.6,
            "unexpected overhead {} at 0%",
            sample.factor()
        );
    }

    #[test]
    fn overhead_grows_with_wrapped_fraction() {
        let low = measure(4096, 1, 400, 5);
        let high = measure(4096, 100, 400, 5);
        assert!(
            high.masked_ns > low.masked_ns,
            "100% wrapped ({:.0}ns) should cost more than 1% ({:.0}ns)",
            high.masked_ns,
            low.masked_ns
        );
    }

    #[test]
    fn overhead_grows_with_object_size() {
        // A 16KiB checkpoint captures a 256-object chain where a 64B one
        // captures a single chunk, so the ordering is structural — but the
        // absolute times are small enough that a loaded scheduler can
        // still invert a single 5-run median. Re-measure a few times; the
        // ordering must hold at least once.
        let holds = (0..3).any(|_| {
            let small = measure(64, 100, 300, 5);
            let large = measure(16384, 100, 300, 5);
            large.masked_ns > small.masked_ns
        });
        assert!(holds, "16KiB checkpoints should cost more than 64B");
    }

    #[test]
    fn undo_log_beats_deep_copy_on_large_objects() {
        use atomask_mask::MaskStrategy;
        // A 16 KiB payload: the deep-copy wrapper clones it on every
        // wrapped call, the undo log only records the two field writes.
        let deep = measure_with(MaskStrategy::DeepCopy, 16384, 100, 300, 5);
        let undo = measure_with(MaskStrategy::UndoLog, 16384, 100, 300, 5);
        assert!(
            undo.masked_ns < deep.masked_ns,
            "undo log ({:.0}ns) should beat deep copy ({:.0}ns) at 16KiB",
            undo.masked_ns,
            deep.masked_ns
        );
    }

    #[test]
    fn factor_is_safe_on_degenerate_input() {
        let s = OverheadSample {
            object_bytes: 0,
            wrapped_pct: 0,
            base_ns: 0.0,
            masked_ns: 5.0,
        };
        assert_eq!(s.factor(), 1.0);
    }
}

//! Hot-path micro-benchmarks for the sweep-throughput engine: the heap
//! write journal (push/write/abort and epoch reset), incremental graph
//! fingerprints under small dirty sets, and the injection wrapper's
//! fast-forward point counting on disarmed calls. These are the inner
//! loops whose constants set the detection campaign's points/sec.

use atomask::synthetic::perf_vm;
use atomask::{CaptureMode, InjectionHook};
use atomask_mor::{ObjId, Profile, RegistryBuilder, Value, Vm};
use atomask_objgraph::{graph_fingerprint, FingerprintCache};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::RefCell;
use std::collections::HashSet;
use std::hint::black_box;
use std::rc::Rc;

/// A VM whose heap holds a rooted singly linked list of `n` nodes; returns
/// the head and a node from the middle of the list.
fn list_vm(n: usize) -> (Vm, ObjId, ObjId) {
    let mut rb = RegistryBuilder::new(Profile::cpp());
    rb.class("Node", |c| {
        c.field("val", Value::Int(0));
        c.field("next", Value::Null);
        c.ctor(|_, _, _| Ok(Value::Null));
    });
    let mut vm = Vm::new(rb.build());
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let id = vm.construct("Node", &[]).expect("ctor cannot fail");
        vm.heap_mut()
            .set_field(id, "val", Value::Int(i as i64))
            .unwrap();
        if let Some(&prev) = ids.last() {
            vm.heap_mut()
                .set_field(prev, "next", Value::Ref(id))
                .unwrap();
        }
        ids.push(id);
    }
    let head = ids[0];
    vm.root(head);
    (vm, head, ids[n / 2])
}

fn bench_journal(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap_journal");
    // The lazy-capture wrapper's skeleton: open a layer, do a method's
    // worth of writes, throw it away (exception path) or keep it.
    group.bench_function("push_write8_abort", |b| {
        let (mut vm, h) = perf_vm(64);
        b.iter(|| {
            let heap = vm.heap_mut();
            heap.push_journal();
            for i in 0..8 {
                heap.set_field(h, "a", Value::Int(i)).unwrap();
            }
            black_box(heap.abort_journal())
        });
    });
    // Level-1 of the lazy comparison: writes that net out to nil, detected
    // in O(writes) without touching the object graph.
    group.bench_function("push_write_revert_check", |b| {
        let (mut vm, h) = perf_vm(64);
        let original = vm.heap().field(h, "a").unwrap();
        b.iter(|| {
            let heap = vm.heap_mut();
            heap.push_journal();
            heap.set_field(h, "a", Value::Int(77)).unwrap();
            heap.set_field(h, "a", original.clone()).unwrap();
            let reverted = heap.journal_innermost_reverted();
            heap.abort_journal();
            black_box(reverted)
        });
    });
    // The recycled-universe reset: how fast a populated heap returns to
    // the pristine epoch (Vec capacity is retained across resets).
    group.bench_function("construct16_epoch_reset", |b| {
        let (mut vm, _) = perf_vm(64);
        vm.heap_mut().epoch_reset();
        b.iter(|| {
            for _ in 0..16 {
                vm.construct("Holder", &[]).expect("ctor cannot fail");
            }
            vm.heap_mut().epoch_reset();
        });
    });
    group.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    const NODES: usize = 256;
    let mut group = c.benchmark_group("fingerprint");
    // Cold: every node hashed from scratch (the price of a cache miss).
    group.bench_function("cold_256", |b| {
        let (vm, head, _) = list_vm(NODES);
        let roots = [head];
        b.iter(|| {
            let mut cache = FingerprintCache::new();
            black_box(graph_fingerprint(
                vm.heap(),
                &roots,
                &mut cache,
                &HashSet::new(),
            ))
        });
    });
    // Warm with a 1-node dirty set: the exception path's incremental
    // recomputation after a typical small write set.
    group.bench_function("warm_dirty1_of_256", |b| {
        let (vm, head, mid) = list_vm(NODES);
        let roots = [head];
        let mut cache = FingerprintCache::new();
        graph_fingerprint(vm.heap(), &roots, &mut cache, &HashSet::new());
        let dirty: HashSet<ObjId> = [mid].into_iter().collect();
        b.iter(|| black_box(graph_fingerprint(vm.heap(), &roots, &mut cache, &dirty)));
    });
    // Fully warm, empty dirty set: the floor (walk + cache reads only).
    group.bench_function("warm_clean_256", |b| {
        let (vm, head, _) = list_vm(NODES);
        let roots = [head];
        let mut cache = FingerprintCache::new();
        graph_fingerprint(vm.heap(), &roots, &mut cache, &HashSet::new());
        let clean = HashSet::new();
        b.iter(|| black_box(graph_fingerprint(vm.heap(), &roots, &mut cache, &clean)));
    });
    group.finish();
}

fn bench_fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_counting");
    // One hooked call far below the armed window, with fast-forward's
    // single arithmetic step vs. Listing 1's literal per-type loop.
    for ff in [true, false] {
        let label = if ff { "fast_forward" } else { "per_type_loop" };
        group.bench_with_input(BenchmarkId::new("disarmed_call", label), &ff, |b, &ff| {
            let (mut vm, h) = perf_vm(64);
            let hook = InjectionHook::with_injection_point(u64::MAX)
                .capture(CaptureMode::Lazy)
                .fast_forward(ff);
            vm.set_hook(Some(Rc::new(RefCell::new(hook))));
            b.iter(|| black_box(vm.call(h, "work", &[]).unwrap()));
        });
    }
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    // The recording run's per-boundary cost: a structural copy of the
    // whole live heap (O(live objects), clone_from into a fresh buffer).
    for nodes in [64usize, 1024] {
        group.bench_with_input(BenchmarkId::new("capture", nodes), &nodes, |b, &nodes| {
            let (vm, _, _) = list_vm(nodes);
            b.iter(|| black_box(vm.checkpoint()));
        });
        // The resumed run's setup cost: clone_from back into the live heap
        // (allocation-light — buffers are recycled across restores).
        group.bench_with_input(BenchmarkId::new("restore", nodes), &nodes, |b, &nodes| {
            let (mut vm, _, _) = list_vm(nodes);
            let cp = vm.checkpoint();
            b.iter(|| {
                vm.restore(black_box(&cp));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_journal,
    bench_fingerprint,
    bench_fast_forward,
    bench_checkpoint
);
criterion_main!(benches);

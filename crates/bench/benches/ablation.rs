//! Ablation: the design choices DESIGN.md calls out.
//!
//! * **Deep-copy vs. undo-log atomicity wrappers** (paper §6.2 suggests
//!   copy-on-write for very large objects): per-call cost of both
//!   strategies across object sizes, on the success path (no rollback) and
//!   on the failure path (rollback every call).
//! * **Snapshot (canonical trace) vs. checkpoint (deep copy)** for the
//!   detection phase's `deep_copy`: the trace is compare-only, the
//!   checkpoint restorable — the trace should stay cheaper.

use atomask::synthetic::perf_vm;
use atomask::{Checkpoint, MaskingHook, Snapshot, UndoMaskingHook, Value, Vm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn wrapped_gid(vm: &Vm) -> atomask::MethodId {
    let holder = vm
        .registry()
        .class_by_name("Holder")
        .expect("perf registry");
    holder.methods[holder.method_slot("workWrapped").expect("method")].gid
}

fn bench_strategy_success_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_success");
    for bytes in [64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::new("deep_copy", bytes), &bytes, |b, &bytes| {
            let (mut vm, holder) = perf_vm(bytes);
            let gid = wrapped_gid(&vm);
            vm.set_hook(Some(Rc::new(RefCell::new(MaskingHook::wrapping([gid])))));
            b.iter(|| black_box(vm.call(holder, "workWrapped", &[]).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("undo_log", bytes), &bytes, |b, &bytes| {
            let (mut vm, holder) = perf_vm(bytes);
            let gid = wrapped_gid(&vm);
            vm.set_hook(Some(Rc::new(RefCell::new(UndoMaskingHook::wrapping([
                gid,
            ])))));
            b.iter(|| black_box(vm.call(holder, "workWrapped", &[]).unwrap()));
        });
    }
    group.finish();
}

/// A program whose wrapped method always throws, to time the rollback
/// itself.
fn failing_vm(object_bytes: usize) -> (Vm, atomask::ObjId, atomask::MethodId) {
    use atomask::{Profile, RegistryBuilder};
    let mut rb = RegistryBuilder::new(Profile::cpp());
    rb.exception("Boom");
    rb.class("Holder", |c| {
        c.field("payload", Value::from(""));
        c.field("a", Value::Int(0));
        c.ctor(move |ctx, this, _| {
            ctx.set(this, "payload", Value::from("x".repeat(object_bytes)));
            Ok(Value::Null)
        });
        c.method("failing", |ctx, this, _| {
            let a = ctx.get_int(this, "a");
            ctx.set(this, "a", Value::Int(a + 1));
            Err(ctx.exception("Boom", "always"))
        });
    });
    let mut vm = Vm::new(rb.build());
    let h = vm.construct("Holder", &[]).expect("ctor");
    vm.root(h);
    let holder_class = vm.registry().class_by_name("Holder").unwrap();
    let gid = holder_class.methods[holder_class.method_slot("failing").unwrap()].gid;
    (vm, h, gid)
}

fn bench_strategy_failure_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_rollback");
    for bytes in [64usize, 16384] {
        group.bench_with_input(BenchmarkId::new("deep_copy", bytes), &bytes, |b, &bytes| {
            let (mut vm, holder, gid) = failing_vm(bytes);
            vm.set_hook(Some(Rc::new(RefCell::new(MaskingHook::wrapping([gid])))));
            b.iter(|| {
                let _ = black_box(vm.call(holder, "failing", &[]));
            });
        });
        group.bench_with_input(BenchmarkId::new("undo_log", bytes), &bytes, |b, &bytes| {
            let (mut vm, holder, gid) = failing_vm(bytes);
            vm.set_hook(Some(Rc::new(RefCell::new(UndoMaskingHook::wrapping([
                gid,
            ])))));
            b.iter(|| {
                let _ = black_box(vm.call(holder, "failing", &[]));
            });
        });
    }
    group.finish();
}

fn bench_trace_vs_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_vs_checkpoint");
    for bytes in [64usize, 16384] {
        group.bench_with_input(BenchmarkId::new("snapshot", bytes), &bytes, |b, &bytes| {
            let (vm, holder) = perf_vm(bytes);
            b.iter(|| black_box(Snapshot::of(vm.heap(), holder)));
        });
        group.bench_with_input(
            BenchmarkId::new("checkpoint", bytes),
            &bytes,
            |b, &bytes| {
                let (vm, holder) = perf_vm(bytes);
                b.iter(|| black_box(Checkpoint::capture(vm.heap(), &[holder])));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strategy_success_path,
    bench_strategy_failure_path,
    bench_trace_vs_checkpoint
);
criterion_main!(benches);

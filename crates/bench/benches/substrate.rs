//! Substrate micro-benchmarks: the cost of the managed runtime's dispatch,
//! snapshots and checkpoints — the primitives whose constants determine
//! the detection campaign's running time and Fig. 5's overhead curve.

use atomask::synthetic::perf_vm;
use atomask::{Checkpoint, Snapshot};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.bench_function("call_unhooked", |b| {
        let (mut vm, holder) = perf_vm(64);
        b.iter(|| black_box(vm.call(holder, "work", &[]).unwrap()));
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    for bytes in [64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |b, &bytes| {
            let (vm, holder) = perf_vm(bytes);
            b.iter(|| black_box(Snapshot::of(vm.heap(), holder)));
        });
    }
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    for bytes in [64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::new("capture", bytes), &bytes, |b, &bytes| {
            let (vm, holder) = perf_vm(bytes);
            b.iter(|| black_box(Checkpoint::capture(vm.heap(), &[holder])));
        });
        group.bench_with_input(
            BenchmarkId::new("capture_restore", bytes),
            &bytes,
            |b, &bytes| {
                let (mut vm, holder) = perf_vm(bytes);
                let cp = Checkpoint::capture(vm.heap(), &[holder]);
                b.iter(|| cp.restore(vm.heap_mut()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_snapshot, bench_checkpoint);
criterion_main!(benches);

//! Fig. 5 as a Criterion bench: masked call cost across the checkpoint
//! size × wrapped-call fraction grid, against the unmasked baseline.

use atomask::synthetic::perf_vm;
use atomask::MaskingHook;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn masked_vm(object_bytes: usize) -> (atomask::Vm, atomask::ObjId) {
    let (mut vm, holder) = perf_vm(object_bytes);
    let registry = vm.registry().clone();
    let class = registry.class_by_name("Holder").expect("perf registry");
    let gid = class.methods[class.method_slot("workWrapped").expect("method")].gid;
    vm.set_hook(Some(Rc::new(RefCell::new(MaskingHook::wrapping([gid])))));
    (vm, holder)
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    for bytes in [64usize, 1024, 16384] {
        // Baseline: the unwrapped method with the hook installed (checks
        // the wrap set, takes no checkpoint).
        group.bench_with_input(
            BenchmarkId::new("unwrapped_call", bytes),
            &bytes,
            |b, &bytes| {
                let (mut vm, holder) = masked_vm(bytes);
                b.iter(|| black_box(vm.call(holder, "work", &[]).unwrap()));
            },
        );
        // The wrapped method: checkpoint on every call (100% column of
        // Fig. 5; intermediate fractions interpolate linearly).
        group.bench_with_input(
            BenchmarkId::new("wrapped_call", bytes),
            &bytes,
            |b, &bytes| {
                let (mut vm, holder) = masked_vm(bytes);
                b.iter(|| black_box(vm.call(holder, "workWrapped", &[]).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

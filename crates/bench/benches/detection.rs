//! Detection-phase benchmarks: the cost of full injection campaigns over
//! representative Table 1 applications (one small app per language) and of
//! single instrumented runs.

use atomask::{Campaign, Program};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for name in ["stdQ", "LinkedBuffer"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            let program = atomask::apps::program_by_name(name).expect("suite app");
            b.iter(|| black_box(Campaign::new(&program).run().total_points));
        });
    }
    group.finish();
}

fn bench_single_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_run");
    for name in ["stdQ", "LinkedBuffer", "RegExp"] {
        // Baseline: uninstrumented driver run.
        group.bench_with_input(BenchmarkId::new("plain", name), &name, |b, name| {
            let program = atomask::apps::program_by_name(name).expect("suite app");
            b.iter(|| {
                let mut vm = atomask::Vm::new(program.build_registry());
                black_box(program.run(&mut vm)).ok();
            });
        });
        // One injector run (observation mode: snapshots on every call).
        group.bench_with_input(BenchmarkId::new("observed", name), &name, |b, name| {
            let program = atomask::apps::program_by_name(name).expect("suite app");
            b.iter(|| {
                let mut vm = atomask::Vm::new(program.build_registry());
                let hook =
                    std::rc::Rc::new(std::cell::RefCell::new(atomask::InjectionHook::observing()));
                vm.set_hook(Some(hook));
                black_box(program.run(&mut vm)).ok();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaigns, bench_single_runs);
criterion_main!(benches);

//! Regenerates the paper's tables and figures.
//!
//! ```text
//! report [table1|fig2|fig3|fig4|fig5|casestudy|perf|all] [--quick]
//! report repro --app <name> --point <n>
//! report perfgate [--tolerance <pct>]
//! ```
//!
//! `--quick` caps every campaign at 300 injection points and shrinks the
//! Fig. 5 grid; without it the full sweeps run (as in the paper).
//!
//! `perf` profiles the detection campaigns — sequential vs. sharded sweep
//! wall time and eager vs. lazy capture cost — and writes the results to
//! `BENCH_detection.json` (worker count from `ATOMASK_WORKERS`, default 4).
//!
//! `repro` replays one injection point of one suite application with the
//! flight recorder on: it prints the full event trace, the minimized
//! divergence, and a comparison against a fresh campaign's recorded
//! classification of the same point.
//!
//! `perfgate` is the CI throughput smoke test: it re-measures every
//! application's *sequential* sweep, compares the geomean points/sec
//! against the committed `BENCH_detection.json`, and exits non-zero when
//! the live number regresses by more than the tolerance (default 20%).
//! Faster-than-committed is never an error — CI machines vary; the gate
//! only catches real throughput cliffs.

use atomask::report::{
    render_case_study, render_class_distribution, render_method_classification, render_overhead,
    render_replay, render_run_health, render_table1,
};
use atomask::{classify, overhead, Campaign, Lang, MarkFilter};
use atomask_bench::{
    detection_perf_json, evaluate_apps, geomean, geomean_sequential_pps, measure_detection,
    parse_sequential_pps,
};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn repro(args: &[String]) {
    let usage = "usage: report repro --app <name> --point <n>";
    let app = flag_value(args, "--app").unwrap_or_else(|| {
        eprintln!("{usage}");
        std::process::exit(2);
    });
    let point: u64 = flag_value(args, "--point")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{usage}");
            std::process::exit(2);
        });
    let program = atomask::apps::program_by_name(&app).unwrap_or_else(|| {
        let known: Vec<&str> = atomask::apps::all_apps().iter().map(|a| a.name).collect();
        eprintln!("unknown application `{app}`; known: {}", known.join(", "));
        std::process::exit(2);
    });
    let replay = Campaign::new(&program).replay(point);
    print!("{}", render_replay(&replay));
    // Cross-check: a fresh campaign over the same point records the same
    // marks bit for bit.
    let swept = Campaign::new(&program).max_points(point).run();
    match swept.runs.iter().find(|r| r.injection_point == point) {
        Some(recorded) if recorded.marks == replay.run.marks => {
            println!("cross-check: replay matches the campaign's recorded classification");
        }
        Some(recorded) => {
            println!(
                "cross-check: MISMATCH — campaign recorded {} mark(s), replay {}",
                recorded.marks.len(),
                replay.run.marks.len()
            );
            std::process::exit(1);
        }
        None => println!("cross-check: point {point} beyond the campaign's sweep"),
    }
}

fn perfgate(args: &[String]) {
    let tolerance_pct: f64 = flag_value(args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let committed = std::fs::read_to_string("BENCH_detection.json").unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read BENCH_detection.json: {e}");
        std::process::exit(2);
    });
    let committed_pps = parse_sequential_pps(&committed);
    if committed_pps.is_empty() {
        eprintln!("perfgate: no sequential_points_per_sec rows in BENCH_detection.json");
        std::process::exit(2);
    }
    let committed_geomean = geomean(committed_pps.iter().copied());
    // Sequential throughput only: it is what the committed geomean tracks
    // and it sidesteps CI-runner core-count variance entirely. Workers=1
    // below is the sharding plan, not the sweep shape — `measure_detection`
    // still times its parallel leg, which the gate ignores.
    let rows: Vec<_> = atomask::apps::all_apps()
        .iter()
        .map(|spec| {
            eprintln!("perfgate: profiling {} ...", spec.name);
            measure_detection(spec, None, 1)
        })
        .collect();
    let live_geomean = geomean_sequential_pps(&rows);
    let floor = committed_geomean * (1.0 - tolerance_pct / 100.0);
    println!(
        "perfgate: sequential geomean {live_geomean:.1} points/sec \
         (committed {committed_geomean:.1}, floor {floor:.1} at -{tolerance_pct:.0}%)"
    );
    if live_geomean < floor {
        println!("perfgate: FAIL — sequential sweep throughput regressed past the tolerance");
        std::process::exit(1);
    }
    println!("perfgate: ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let cap = if quick { Some(300) } else { None };

    if what == "repro" {
        repro(&args);
        return;
    }
    if what == "perfgate" {
        perfgate(&args);
        return;
    }

    let needs_eval = matches!(what, "table1" | "fig2" | "fig3" | "fig4" | "all");
    let rows = if needs_eval {
        evaluate_apps(&atomask::apps::all_apps(), cap)
    } else {
        Vec::new()
    };

    if matches!(what, "table1" | "all") {
        println!("{}", render_table1(&rows));
        println!("{}", render_run_health(&rows));
    }
    if matches!(what, "fig2" | "all") {
        println!("{}", render_method_classification(&rows, Lang::Cpp));
    }
    if matches!(what, "fig3" | "all") {
        println!("{}", render_method_classification(&rows, Lang::Java));
    }
    if matches!(what, "fig4" | "all") {
        println!("{}", render_class_distribution(&rows));
    }
    if matches!(what, "fig5" | "all") {
        let (calls, runs) = if quick { (300, 7) } else { (2_000, 41) };
        let mut samples = Vec::new();
        for &bytes in &overhead::OBJECT_SIZES {
            for &pct in &overhead::WRAPPED_PCTS {
                eprintln!("measuring fig5 point: {bytes} B, {pct}% wrapped ...");
                samples.push(overhead::measure(bytes, pct, calls, runs));
            }
        }
        println!("{}", render_overhead(&samples));

        // Ablation: the paper's §6.2 copy-on-write suggestion, at the
        // worst-case column (100% wrapped calls).
        let mut undo = Vec::new();
        for &bytes in &overhead::OBJECT_SIZES {
            eprintln!("measuring undo-log ablation: {bytes} B ...");
            undo.push(overhead::measure_with(
                atomask::MaskStrategy::UndoLog,
                bytes,
                100,
                calls,
                runs,
            ));
        }
        println!("Ablation: undo-log wrappers at 100% wrapped calls (§6.2)");
        println!("{}", render_overhead(&undo));
    }
    if matches!(what, "perf" | "all") {
        let workers = std::env::var("ATOMASK_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&w| w > 0)
            .unwrap_or(4);
        let mut rows = Vec::new();
        for spec in atomask::apps::all_apps() {
            eprintln!("profiling detection sweep for {} ...", spec.name);
            rows.push(measure_detection(&spec, cap, workers));
        }
        let json = detection_perf_json(&rows, workers);
        std::fs::write("BENCH_detection.json", &json).expect("write BENCH_detection.json");
        eprintln!("wrote BENCH_detection.json");
        println!("{json}");
    }
    if matches!(what, "casestudy" | "all") {
        eprintln!("running LinkedList case study ...");
        let buggy = atomask::apps::collections::linked_list::program();
        let fixed = atomask::apps::collections::linked_list::fixed_program();
        let mut c1 = Campaign::new(&buggy);
        let mut c2 = Campaign::new(&fixed);
        if let Some(cap) = cap {
            c1 = c1.max_points(cap);
            c2 = c2.max_points(cap);
        }
        let buggy_c = classify(&c1.run(), &MarkFilter::default());
        let fixed_c = classify(&c2.run(), &MarkFilter::default());
        println!("{}", render_case_study(&buggy_c, &fixed_c));
    }
}

//! # atomask-bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! * the `report` binary prints Table 1, Figs. 2–5 and the §6.1 case study
//!   (`cargo run --release -p atomask-bench --bin report -- all`);
//! * the Criterion benches time the substrate (`substrate`), the detection
//!   campaigns (`detection`) and the masking overhead grid (`masking`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atomask::report::{evaluate, AppEvaluation};
use atomask::{
    Campaign, CampaignConfig, CaptureMode, CheckpointStride, Lang, Program, TraceMode, Vm,
    DEFAULT_RING_CAPACITY,
};
use atomask_apps::AppSpec;
use std::hint::black_box;
use std::time::Instant;

/// Evaluates a list of suite applications, printing progress to stderr.
///
/// `cap` limits each campaign's injector runs (`None` = full sweep).
pub fn evaluate_apps(specs: &[AppSpec], cap: Option<u64>) -> Vec<AppEvaluation> {
    specs
        .iter()
        .map(|spec| {
            eprintln!("campaigning {} ...", spec.name);
            evaluate(spec, cap)
        })
        .collect()
}

/// One application's detection-campaign performance profile: wall time of
/// the sequential vs. sharded sweep, and capture cost of the eager vs.
/// lazy before-state strategy.
#[derive(Debug, Clone)]
pub struct DetectionPerf {
    /// Application name (Table 1 row).
    pub name: String,
    /// Language side of the evaluation.
    pub lang: Lang,
    /// Injection points actually swept.
    pub points: u64,
    /// Worker threads used by the parallel sweep.
    pub workers: usize,
    /// Wall time of the sequential (1-worker) lazy-capture sweep with
    /// checkpoint-resume at its default (auto) stride, ns.
    pub sequential_ns: u128,
    /// Wall time of the sharded lazy-capture sweep, ns.
    pub parallel_ns: u128,
    /// Wall time of a sequential lazy-capture sweep with checkpoint-resume
    /// forced off — every injection run re-executes its prefix from
    /// program entry (the pre-checkpoint engine), ns.
    pub scratch_ns: u128,
    /// Checkpoint stride the sequential sweep resolved to (`None` when the
    /// environment disabled checkpoint-resume).
    pub stride: Option<u64>,
    /// Median wall time of one `Vm::checkpoint()` over the program's final
    /// heap, ns — the per-boundary cost side of the stride cost model.
    pub checkpoint_ns: u128,
    /// Wall time of the sequential eager-capture sweep (the seed's
    /// behaviour), ns.
    pub eager_ns: u128,
    /// Object-graph snapshots taken by an eager-capture sweep.
    pub snapshots_eager: u64,
    /// Object-graph snapshots taken by the lazy-capture sweep.
    pub snapshots_lazy: u64,
    /// Approximate bytes captured by the eager-capture sweep.
    pub capture_bytes_eager: u64,
    /// Approximate bytes captured by the lazy-capture sweep.
    pub capture_bytes_lazy: u64,
    /// Wall time of a second sequential lazy from-scratch sweep with
    /// tracing explicitly off, ns — the flight recorder's no-op-path cost
    /// (expected to be measurement noise; the acceptance bound is < 10%).
    pub noop_trace_ns: u128,
    /// Wall time of a sequential lazy from-scratch sweep with a per-run
    /// ring-buffer sink installed, ns.
    pub ring_trace_ns: u128,
}

impl DetectionPerf {
    /// Sequential wall time over parallel wall time.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ns == 0 {
            return 1.0;
        }
        self.sequential_ns as f64 / self.parallel_ns as f64
    }

    /// Injection points swept per second (`ns` is a sweep's wall time).
    pub fn points_per_sec(&self, ns: u128) -> f64 {
        if ns == 0 {
            return 0.0;
        }
        self.points as f64 * 1e9 / ns as f64
    }

    /// Percentage of eager snapshots the lazy capture path avoided.
    pub fn snapshot_reduction_pct(&self) -> f64 {
        if self.snapshots_eager == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.snapshots_lazy as f64 / self.snapshots_eager as f64)
    }

    /// Eager-capture wall time over lazy-capture wall time, both
    /// sequential: the speedup of the O(writes) capture path alone.
    pub fn capture_speedup(&self) -> f64 {
        if self.sequential_ns == 0 {
            return 1.0;
        }
        self.eager_ns as f64 / self.sequential_ns as f64
    }

    /// Eager sequential (the seed's executor) over lazy sharded wall
    /// time: the combined end-to-end speedup of this optimization pair.
    pub fn total_speedup(&self) -> f64 {
        if self.parallel_ns == 0 {
            return 1.0;
        }
        self.eager_ns as f64 / self.parallel_ns as f64
    }

    /// From-scratch sequential wall time over checkpoint-resume sequential
    /// wall time: the speedup of the resume engine alone.
    pub fn resume_speedup(&self) -> f64 {
        if self.sequential_ns == 0 {
            return 1.0;
        }
        self.scratch_ns as f64 / self.sequential_ns as f64
    }

    /// Percentage overhead of the disabled flight recorder over the
    /// from-scratch sweep (noise-level by construction; can be negative).
    /// Both legs run without checkpoint-resume, so the ratio isolates the
    /// recorder.
    pub fn trace_noop_overhead_pct(&self) -> f64 {
        if self.scratch_ns == 0 {
            return 0.0;
        }
        100.0 * (self.noop_trace_ns as f64 / self.scratch_ns as f64 - 1.0)
    }

    /// Percentage overhead of a live ring-buffer sink over the from-scratch
    /// sweep (both legs without checkpoint-resume).
    pub fn trace_ring_overhead_pct(&self) -> f64 {
        if self.scratch_ns == 0 {
            return 0.0;
        }
        100.0 * (self.ring_trace_ns as f64 / self.scratch_ns as f64 - 1.0)
    }
}

/// Timed sweep iterations per configuration (after one untimed warmup);
/// the reported wall time is the median. Override with
/// `ATOMASK_PERF_ITERS` (values < 1 are ignored).
fn perf_iters() -> usize {
    std::env::var("ATOMASK_PERF_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Runs one sweep configuration `1 + perf_iters()` times — a discarded
/// warmup (first-touch page faults, lazy allocator growth) followed by
/// timed iterations — and reports the **median** wall time. Single cold
/// runs made ratio metrics noisy enough to go negative (the seed once
/// reported a −10% "overhead" for the disabled flight recorder); the
/// campaigns themselves are deterministic, so the capture statistics are
/// taken from the last run.
fn timed_sweep(
    spec: &AppSpec,
    cap: Option<u64>,
    workers: usize,
    capture: CaptureMode,
    trace: TraceMode,
    stride: CheckpointStride,
) -> (u128, u64, u64, u64) {
    let run_once = || {
        let program = spec.program();
        let mut campaign = Campaign::new(&program).config(CampaignConfig {
            workers,
            capture,
            trace,
            checkpoint_stride: stride,
            ..CampaignConfig::default()
        });
        if let Some(cap) = cap {
            campaign = campaign.max_points(cap);
        }
        let t0 = Instant::now();
        let result = campaign.run();
        let wall = t0.elapsed().as_nanos();
        let health = result.health();
        (
            wall,
            result.runs.len() as u64,
            health.snapshots,
            health.capture_bytes,
        )
    };
    run_once(); // warmup, discarded
    let mut walls = Vec::with_capacity(perf_iters());
    let mut last = (0, 0, 0, 0);
    for _ in 0..perf_iters() {
        last = run_once();
        walls.push(last.0);
    }
    (median(walls), last.1, last.2, last.3)
}

/// Median wall time of one [`Vm::checkpoint`] over the program's final
/// heap — the structural-copy cost the stride cost model weighs against
/// replay savings. The driver runs once (untimed), then the checkpoint is
/// taken `perf_iters()` times on the quiescent VM.
fn measure_checkpoint(spec: &AppSpec) -> u128 {
    let program = spec.program();
    let mut vm = Vm::new(program.build_registry());
    let _ = program.run(&mut vm);
    let _ = black_box(vm.checkpoint()); // warmup, discarded
    let mut walls = Vec::with_capacity(perf_iters());
    for _ in 0..perf_iters() {
        let t0 = Instant::now();
        let cp = vm.checkpoint();
        walls.push(t0.elapsed().as_nanos());
        black_box(cp);
    }
    median(walls)
}

/// Profiles one application's detection campaign: a sequential and a
/// `workers`-way sharded sweep under lazy capture (for the speedup), a
/// from-scratch sequential sweep with checkpoint-resume forced off (for
/// the resume speedup), a sequential eager-capture sweep (for the
/// capture-cost baseline), and two tracing sweeps (disabled recorder and
/// live ring sink). Every sweep pins its [`TraceMode`] so `ATOMASK_TRACE`
/// cannot skew the numbers; checkpoint-resume runs at its default (auto)
/// stride everywhere except the dedicated from-scratch leg.
pub fn measure_detection(spec: &AppSpec, cap: Option<u64>, workers: usize) -> DetectionPerf {
    let (sequential_ns, points, snapshots_lazy, capture_bytes_lazy) = timed_sweep(
        spec,
        cap,
        1,
        CaptureMode::Lazy,
        TraceMode::Off,
        CheckpointStride::Auto,
    );
    let (parallel_ns, _, _, _) = timed_sweep(
        spec,
        cap,
        workers,
        CaptureMode::Lazy,
        TraceMode::Off,
        CheckpointStride::Auto,
    );
    let (scratch_ns, _, _, _) = timed_sweep(
        spec,
        cap,
        1,
        CaptureMode::Lazy,
        TraceMode::Off,
        CheckpointStride::Off,
    );
    let (eager_ns, _, snapshots_eager, capture_bytes_eager) = timed_sweep(
        spec,
        cap,
        1,
        CaptureMode::Eager,
        TraceMode::Off,
        CheckpointStride::Auto,
    );
    // Tracing legs run with checkpoint-resume off: a live sink gates the
    // resume engine anyway (replayed prefixes emit no events), so comparing
    // against a resumed baseline would book the missing resume speedup as
    // recorder overhead. Both overhead ratios are against `scratch_ns`.
    let (noop_trace_ns, _, _, _) = timed_sweep(
        spec,
        cap,
        1,
        CaptureMode::Lazy,
        TraceMode::Off,
        CheckpointStride::Off,
    );
    let (ring_trace_ns, _, _, _) = timed_sweep(
        spec,
        cap,
        1,
        CaptureMode::Lazy,
        TraceMode::Ring(DEFAULT_RING_CAPACITY),
        CheckpointStride::Off,
    );
    DetectionPerf {
        name: spec.name.to_owned(),
        lang: spec.lang,
        points,
        workers,
        sequential_ns,
        parallel_ns,
        scratch_ns,
        stride: CheckpointStride::Auto.resolve(points),
        checkpoint_ns: measure_checkpoint(spec),
        eager_ns,
        snapshots_eager,
        snapshots_lazy,
        capture_bytes_eager,
        capture_bytes_lazy,
        noop_trace_ns,
        ring_trace_ns,
    }
}

/// Geometric mean of `xs` (1.0 when empty; values are floored at 1e-9 so
/// a degenerate zero cannot poison the product).
pub fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0f64, 0usize), |(s, n), x| (s + x.max(1e-9).ln(), n + 1));
    if n == 0 {
        return 1.0;
    }
    (sum / n as f64).exp()
}

/// Geometric mean of the sequential sweep throughput (points/sec) across
/// `rows` — the scalar the CI perf gate regresses against.
pub fn geomean_sequential_pps(rows: &[DetectionPerf]) -> f64 {
    geomean(rows.iter().map(|r| r.points_per_sec(r.sequential_ns)))
}

/// Extracts every `"sequential_points_per_sec"` value from a
/// `BENCH_detection.json` document, in row order. Line-wise on purpose:
/// the workspace carries no JSON dependency, and the file is machine-
/// written by [`detection_perf_json`] with one key per line.
pub fn parse_sequential_pps(json: &str) -> Vec<f64> {
    json.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("\"sequential_points_per_sec\":")?;
            rest.trim().trim_end_matches(',').parse().ok()
        })
        .collect()
}

/// Renders the detection-performance rows as a JSON document (the
/// `BENCH_detection.json` artifact). Hand-rolled: the workspace carries no
/// serialization dependency.
pub fn detection_perf_json(rows: &[DetectionPerf], workers: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!(
        "  \"geomean_speedup\": {:.3},\n",
        geomean(rows.iter().map(DetectionPerf::speedup))
    ));
    out.push_str(&format!(
        "  \"geomean_capture_speedup\": {:.3},\n",
        geomean(rows.iter().map(DetectionPerf::capture_speedup))
    ));
    out.push_str(&format!(
        "  \"geomean_total_speedup\": {:.3},\n",
        geomean(rows.iter().map(DetectionPerf::total_speedup))
    ));
    out.push_str(&format!(
        "  \"geomean_sequential_points_per_sec\": {:.1},\n",
        geomean_sequential_pps(rows)
    ));
    out.push_str(&format!(
        "  \"geomean_resume_speedup\": {:.3},\n",
        geomean(rows.iter().map(DetectionPerf::resume_speedup))
    ));
    out.push_str(&format!(
        "  \"max_snapshot_reduction_pct\": {:.1},\n",
        rows.iter()
            .map(DetectionPerf::snapshot_reduction_pct)
            .fold(0.0, f64::max)
    ));
    let sum = |f: fn(&DetectionPerf) -> u128| rows.iter().map(f).sum::<u128>();
    let overall_pct = |num: u128, den: u128| {
        if den == 0 {
            0.0
        } else {
            100.0 * (num as f64 / den as f64 - 1.0)
        }
    };
    out.push_str(&format!(
        "  \"trace_noop_overhead_pct\": {:.1},\n",
        overall_pct(sum(|r| r.noop_trace_ns), sum(|r| r.scratch_ns))
    ));
    out.push_str(&format!(
        "  \"trace_ring_overhead_pct\": {:.1},\n",
        overall_pct(sum(|r| r.ring_trace_ns), sum(|r| r.scratch_ns))
    ));
    out.push_str("  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"lang\": \"{}\",\n", r.lang));
        out.push_str(&format!("      \"points\": {},\n", r.points));
        out.push_str(&format!(
            "      \"sequential_ms\": {:.3},\n",
            r.sequential_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "      \"parallel_ms\": {:.3},\n",
            r.parallel_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "      \"sequential_points_per_sec\": {:.1},\n",
            r.points_per_sec(r.sequential_ns)
        ));
        out.push_str(&format!(
            "      \"parallel_points_per_sec\": {:.1},\n",
            r.points_per_sec(r.parallel_ns)
        ));
        out.push_str(&format!(
            "      \"scratch_ms\": {:.3},\n",
            r.scratch_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "      \"resume_points_per_sec\": {:.1},\n",
            r.points_per_sec(r.sequential_ns)
        ));
        out.push_str(&format!(
            "      \"resume_speedup\": {:.3},\n",
            r.resume_speedup()
        ));
        out.push_str(&format!(
            "      \"stride\": {},\n",
            r.stride.map_or("null".to_owned(), |s| s.to_string())
        ));
        out.push_str(&format!(
            "      \"checkpoint_ms\": {:.4},\n",
            r.checkpoint_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "      \"eager_ms\": {:.3},\n",
            r.eager_ns as f64 / 1e6
        ));
        out.push_str(&format!("      \"speedup\": {:.3},\n", r.speedup()));
        out.push_str(&format!(
            "      \"capture_speedup\": {:.3},\n",
            r.capture_speedup()
        ));
        out.push_str(&format!(
            "      \"total_speedup\": {:.3},\n",
            r.total_speedup()
        ));
        out.push_str(&format!(
            "      \"snapshots_eager\": {},\n",
            r.snapshots_eager
        ));
        out.push_str(&format!(
            "      \"snapshots_lazy\": {},\n",
            r.snapshots_lazy
        ));
        out.push_str(&format!(
            "      \"snapshot_reduction_pct\": {:.1},\n",
            r.snapshot_reduction_pct()
        ));
        out.push_str(&format!(
            "      \"capture_bytes_eager\": {},\n",
            r.capture_bytes_eager
        ));
        out.push_str(&format!(
            "      \"capture_bytes_lazy\": {},\n",
            r.capture_bytes_lazy
        ));
        out.push_str(&format!(
            "      \"noop_trace_ms\": {:.3},\n",
            r.noop_trace_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "      \"ring_trace_ms\": {:.3},\n",
            r.ring_trace_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "      \"trace_noop_overhead_pct\": {:.1},\n",
            r.trace_noop_overhead_pct()
        ));
        out.push_str(&format!(
            "      \"trace_ring_overhead_pct\": {:.1}\n",
            r.trace_ring_overhead_pct()
        ));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_apps_respects_cap() {
        let specs: Vec<AppSpec> = atomask_apps::cpp_apps().into_iter().take(1).collect();
        let rows = evaluate_apps(&specs, Some(50));
        assert_eq!(rows.len(), 1);
        assert!(rows[0].injections >= 50);
    }

    #[test]
    fn detection_perf_measures_and_serializes() {
        let spec = atomask_apps::cpp_apps().into_iter().next().unwrap();
        let perf = measure_detection(&spec, Some(40), 2);
        assert_eq!(perf.points, 40);
        assert!(perf.sequential_ns > 0 && perf.parallel_ns > 0);
        assert!(
            perf.snapshots_lazy <= perf.snapshots_eager,
            "lazy capture never snapshots more than eager: {} > {}",
            perf.snapshots_lazy,
            perf.snapshots_eager
        );
        let json = detection_perf_json(std::slice::from_ref(&perf), 2);
        assert!(json.contains("\"workers\": 2"));
        assert!(json.contains(&format!("\"name\": \"{}\"", spec.name)));
        assert!(json.contains("\"snapshot_reduction_pct\""));
        assert!(json.contains("\"geomean_speedup\""));
        assert!(json.contains("\"geomean_sequential_points_per_sec\""));
        // The gate's parser round-trips the serialized throughput rows.
        let parsed = parse_sequential_pps(&json);
        assert_eq!(parsed.len(), 1);
        assert!((parsed[0] - perf.points_per_sec(perf.sequential_ns)).abs() < 0.1);
        assert!(json.contains("\"trace_noop_overhead_pct\""));
        assert!(json.contains("\"ring_trace_ms\""));
        assert!(json.contains("\"resume_points_per_sec\""));
        assert!(json.contains("\"resume_speedup\""));
        assert!(json.contains("\"checkpoint_ms\""));
        assert!(json.contains("\"stride\""));
        assert!(json.contains("\"geomean_resume_speedup\""));
        assert!(perf.checkpoint_ns > 0, "checkpoint micro-measure ran");
        // Shape check: braces and brackets balance.
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn perf_ratios_are_safe_on_degenerate_input() {
        let perf = DetectionPerf {
            name: "degenerate".into(),
            lang: Lang::Cpp,
            points: 0,
            workers: 1,
            sequential_ns: 0,
            parallel_ns: 0,
            scratch_ns: 0,
            stride: None,
            checkpoint_ns: 0,
            eager_ns: 0,
            snapshots_eager: 0,
            snapshots_lazy: 0,
            capture_bytes_eager: 0,
            capture_bytes_lazy: 0,
            noop_trace_ns: 0,
            ring_trace_ns: 0,
        };
        assert_eq!(perf.speedup(), 1.0);
        assert_eq!(perf.points_per_sec(0), 0.0);
        assert_eq!(perf.snapshot_reduction_pct(), 0.0);
        assert_eq!(perf.capture_speedup(), 1.0);
        assert_eq!(perf.total_speedup(), 1.0);
        assert_eq!(perf.resume_speedup(), 1.0);
        assert_eq!(perf.trace_noop_overhead_pct(), 0.0);
        assert_eq!(perf.trace_ring_overhead_pct(), 0.0);
    }

    #[test]
    fn sequential_pps_parser_reads_committed_shape() {
        let doc = "{\n  \"geomean_sequential_points_per_sec\": 123.4,\n  \"apps\": [\n    {\n      \"sequential_points_per_sec\": 8913.2,\n    },\n    {\n      \"sequential_points_per_sec\": 18680.5\n    }\n  ]\n}\n";
        // Only per-app rows match; the geomean key has a different name.
        assert_eq!(parse_sequential_pps(doc), vec![8913.2, 18680.5]);
        assert_eq!(parse_sequential_pps("{}"), Vec::<f64>::new());
    }

    #[test]
    fn geomean_is_scale_invariant_and_safe() {
        assert_eq!(geomean(std::iter::empty()), 1.0);
        let g = geomean([100.0, 400.0].into_iter());
        assert!((g - 200.0).abs() < 1e-9);
        // A zero row is floored, not a NaN factory.
        assert!(geomean([0.0, 10.0].into_iter()).is_finite());
    }
}

//! # atomask-bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! * the `report` binary prints Table 1, Figs. 2–5 and the §6.1 case study
//!   (`cargo run --release -p atomask-bench --bin report -- all`);
//! * the Criterion benches time the substrate (`substrate`), the detection
//!   campaigns (`detection`) and the masking overhead grid (`masking`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atomask::report::{evaluate, AppEvaluation};
use atomask_apps::AppSpec;

/// Evaluates a list of suite applications, printing progress to stderr.
///
/// `cap` limits each campaign's injector runs (`None` = full sweep).
pub fn evaluate_apps(specs: &[AppSpec], cap: Option<u64>) -> Vec<AppEvaluation> {
    specs
        .iter()
        .map(|spec| {
            eprintln!("campaigning {} ...", spec.name);
            evaluate(spec, cap)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_apps_respects_cap() {
        let specs: Vec<AppSpec> = atomask_apps::cpp_apps().into_iter().take(1).collect();
        let rows = evaluate_apps(&specs, Some(50));
        assert_eq!(rows.len(), 1);
        assert!(rows[0].injections >= 50);
    }
}

//! The undo-log atomicity wrapper — the copy-on-write style optimization
//! the paper's §6.2 suggests for very large objects.
//!
//! The deep-copy wrapper ([`crate::MaskingHook`]) pays
//! O(|object graph|) on **every** wrapped call, even successful ones. The
//! undo-log wrapper instead opens a heap write-journal around the call and
//! pays O(#writes actually performed): nothing up front, a reverse replay
//! on failure. For large objects with small mutation footprints this is
//! dramatically cheaper (see the `ablation` bench), at the price of
//! intercepting every field write.
//!
//! Semantics: rollback restores *every* heap write made below the wrapped
//! call, which is a superset of Listing 2's receiver-graph restoration —
//! the corrected program is failure atomic a fortiori. Do not mix undo-log
//! and deep-copy wrappers in one VM: a deep-copy restore bypasses the
//! journal.

use atomask_mor::{CallHook, CallSite, Exception, HookGuard, MethodId, MethodResult, Vm};
use std::collections::HashSet;

/// Counters describing undo-log masking activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UndoStats {
    /// Journal layers opened (wrapped calls entered).
    pub journals: u64,
    /// Rollbacks performed (wrapped calls that threw).
    pub rollbacks: u64,
    /// Individual field writes undone across all rollbacks.
    pub writes_undone: u64,
    /// Objects reclaimed by rollback cleanup.
    pub reclaimed: u64,
}

/// The undo-log atomicity wrapper: journals wrapped calls and replays the
/// journal backwards on exception.
#[derive(Debug)]
pub struct UndoMaskingHook {
    wrapped: HashSet<MethodId>,
    stats: UndoStats,
}

impl UndoMaskingHook {
    /// Creates a hook wrapping exactly `wrapped`.
    pub fn new(wrapped: HashSet<MethodId>) -> Self {
        UndoMaskingHook {
            wrapped,
            stats: UndoStats::default(),
        }
    }

    /// Creates a hook from any iterator of method ids.
    pub fn wrapping(methods: impl IntoIterator<Item = MethodId>) -> Self {
        Self::new(methods.into_iter().collect())
    }

    /// Masking activity counters.
    pub fn stats(&self) -> UndoStats {
        self.stats
    }
}

/// Marker guard: the journal layer itself lives in the heap.
struct JournalOpen;

impl CallHook for UndoMaskingHook {
    fn before(&mut self, vm: &mut Vm, site: &CallSite) -> Result<HookGuard, Exception> {
        if !self.wrapped.contains(&site.method) || !vm.registry().instrumentable(site.method) {
            return Ok(None);
        }
        vm.heap_mut().push_journal();
        self.stats.journals += 1;
        Ok(Some(Box::new(JournalOpen)))
    }

    fn after(
        &mut self,
        vm: &mut Vm,
        site: &CallSite,
        guard: HookGuard,
        outcome: MethodResult,
    ) -> MethodResult {
        if guard.is_some() {
            if outcome.is_ok() {
                vm.heap_mut().commit_journal();
            } else {
                self.stats.writes_undone += vm.heap_mut().abort_journal() as u64;
                vm.trace(atomask_mor::TraceEvent::MaskRestore {
                    method: site.method,
                });
                self.stats.rollbacks += 1;
                self.stats.reclaimed += vm.heap_mut().reclaim() as u64;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{Profile, Registry, RegistryBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Same planted bug as the deep-copy hook tests: `push` half-inserts,
    /// then `notify` rejects.
    fn registry() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.exception("NotifyError");
        rb.class("Stack", |c| {
            c.field("head", Value::Null);
            c.field("len", Value::Int(0));
            c.method("push", |ctx, this, args| {
                let node = ctx.new_object("Node", &[])?;
                ctx.set(node, "value", args[0].clone());
                let head = ctx.get(this, "head");
                ctx.set(node, "next", head);
                ctx.set(this, "head", Value::Ref(node));
                let len = ctx.get_int(this, "len");
                ctx.set(this, "len", Value::Int(len + 1));
                ctx.call(this, "notify", &[])?;
                Ok(Value::Null)
            });
            c.method("notify", |ctx, this, _| {
                if ctx.get_int(this, "len") >= 2 {
                    Err(ctx.exception("NotifyError", "listener rejected"))
                } else {
                    Ok(Value::Null)
                }
            });
            // A wrapped method calling another wrapped method, to exercise
            // journal nesting.
            c.method("pushTwice", |ctx, this, args| {
                ctx.call(this, "push", &[args[0].clone()])?;
                ctx.call(this, "push", &[args[1].clone()])?;
                Ok(Value::Null)
            });
        });
        rb.class("Node", |c| {
            c.field("next", Value::Null);
            c.field("value", Value::Null);
        });
        rb.build()
    }

    fn gid(reg: &Registry, name: &str) -> MethodId {
        let stack = reg.class_by_name("Stack").unwrap();
        stack.methods[stack.method_slot(name).unwrap()].gid
    }

    #[test]
    fn undo_rollback_restores_state() {
        let reg = registry();
        let push = gid(&reg, "push");
        let mut vm = atomask_mor::Vm::new(reg);
        let hook = Rc::new(RefCell::new(UndoMaskingHook::wrapping([push])));
        vm.set_hook(Some(hook.clone()));
        let s = vm.construct("Stack", &[]).unwrap();
        vm.root(s);
        vm.call(s, "push", &[Value::Int(1)]).unwrap();
        let err = vm.call(s, "push", &[Value::Int(2)]).unwrap_err();
        assert_eq!(err.message, "listener rejected");
        assert_eq!(vm.heap().field(s, "len"), Some(Value::Int(1)));
        let head = vm.heap().field(s, "head").unwrap().as_ref_id().unwrap();
        assert_eq!(vm.heap().field(head, "value"), Some(Value::Int(1)));
        let stats = hook.borrow().stats();
        assert_eq!(stats.journals, 2);
        assert_eq!(stats.rollbacks, 1);
        assert!(stats.writes_undone >= 3, "node links + len: {stats:?}");
        assert!(stats.reclaimed >= 1, "the failed push's node is garbage");
        assert_eq!(vm.heap().journal_depth(), 0, "no leaked journal layers");
    }

    #[test]
    fn nested_wrapped_calls_roll_back_cleanly() {
        let reg = registry();
        let push = gid(&reg, "push");
        let push_twice = gid(&reg, "pushTwice");
        let mut vm = atomask_mor::Vm::new(reg);
        let hook = Rc::new(RefCell::new(UndoMaskingHook::wrapping([push, push_twice])));
        vm.set_hook(Some(hook.clone()));
        let s = vm.construct("Stack", &[]).unwrap();
        vm.root(s);
        // First push (inside pushTwice) succeeds; second trips notify.
        // Both layers unwind: the stack must be exactly empty again.
        let err = vm
            .call(s, "pushTwice", &[Value::Int(1), Value::Int(2)])
            .unwrap_err();
        assert_eq!(err.message, "listener rejected");
        assert_eq!(vm.heap().field(s, "len"), Some(Value::Int(0)));
        assert!(vm.heap().field(s, "head").unwrap().is_null());
        assert_eq!(vm.heap().journal_depth(), 0);
        assert_eq!(hook.borrow().stats().rollbacks, 2, "inner and outer");
    }

    #[test]
    fn successful_calls_pay_no_rollback() {
        let reg = registry();
        let push = gid(&reg, "push");
        let mut vm = atomask_mor::Vm::new(reg);
        let hook = Rc::new(RefCell::new(UndoMaskingHook::wrapping([push])));
        vm.set_hook(Some(hook.clone()));
        let s = vm.construct("Stack", &[]).unwrap();
        vm.root(s);
        vm.call(s, "push", &[Value::Int(1)]).unwrap();
        let stats = hook.borrow().stats();
        assert_eq!(stats.rollbacks, 0);
        assert_eq!(stats.writes_undone, 0);
        assert_eq!(vm.heap().journal_depth(), 0);
    }
}

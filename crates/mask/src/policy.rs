//! The §4.3 policy layer: "To Wrap or Not To Wrap".
//!
//! The paper enumerates four reasons not to wrap a failure non-atomic
//! method; the policy implements all of them:
//!
//! 1. **Intended non-atomicity** — the programmer excludes the method
//!    ([`Policy::exclude`]); wrapping would change intended semantics.
//! 2. **Manual fix preferred** — the programmer rewrites the method and
//!    re-runs detection; supported by simply re-running the campaign on the
//!    fixed program (see the LinkedList case study in `atomask-apps`).
//! 3. **Exception-free methods** — the programmer asserts a method can
//!    never throw ([`Policy::exception_free`]); methods classified
//!    non-atomic solely because of injections into it are reclassified.
//! 4. **Conditional methods** — by Def. 3, a conditional failure non-atomic
//!    method becomes atomic once all its callees are wrapped, so wrapping
//!    it is unnecessary overhead ([`Policy::skip_conditional`], on by
//!    default).

use atomask_inject::{Classification, MarkFilter, Verdict};
use atomask_mor::MethodId;
use std::collections::HashSet;

/// A wrapping policy (the paper's "easy-to-use web interface", as an API).
#[derive(Debug, Clone)]
pub struct Policy {
    /// Methods whose non-atomicity is intended: never wrapped.
    pub exclude: HashSet<MethodId>,
    /// Methods the programmer asserts never throw: injections into them are
    /// discounted during (re)classification.
    pub exception_free: HashSet<MethodId>,
    /// Skip conditional failure non-atomic methods (Def. 3 optimization).
    /// Defaults to `true`.
    pub skip_conditional: bool,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            exclude: HashSet::new(),
            exception_free: HashSet::new(),
            skip_conditional: true,
        }
    }
}

impl Policy {
    /// A policy that wraps every non-atomic method (including conditional
    /// ones) — the conservative baseline.
    pub fn wrap_everything() -> Self {
        Policy {
            exclude: HashSet::new(),
            exception_free: HashSet::new(),
            skip_conditional: false,
        }
    }

    /// Marks `method` as intentionally non-atomic (never wrap).
    pub fn excluding(mut self, method: MethodId) -> Self {
        self.exclude.insert(method);
        self
    }

    /// Asserts that `method` never throws.
    pub fn with_exception_free(mut self, method: MethodId) -> Self {
        self.exception_free.insert(method);
        self
    }

    /// The mark filter to use when (re)classifying under this policy.
    pub fn mark_filter(&self) -> MarkFilter {
        MarkFilter {
            exception_free: self.exception_free.clone(),
        }
    }

    /// Computes the set of methods to wrap with atomicity wrappers, given a
    /// classification (which should have been produced with
    /// [`Policy::mark_filter`] for consistency).
    pub fn mask_set(&self, classification: &Classification) -> HashSet<MethodId> {
        classification
            .methods
            .iter()
            .filter(|m| match m.verdict {
                Some(Verdict::PureNonAtomic) => true,
                Some(Verdict::ConditionalNonAtomic) => !self.skip_conditional,
                _ => false,
            })
            .map(|m| m.method)
            .filter(|m| !self.exclude.contains(m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_inject::{classify, Campaign};
    use atomask_mor::{FnProgram, Profile, RegistryBuilder, Value};

    /// Same layered structure as the classifier tests: Leaf::work atomic,
    /// Mid::step pure, Top::go conditional.
    fn layered() -> FnProgram {
        FnProgram::new(
            "layered",
            || {
                let mut rb = RegistryBuilder::new(Profile::java());
                rb.class("Leaf", |c| {
                    c.field("dummy", Value::Int(0));
                    c.method("work", |_, _, _| Ok(Value::Null));
                });
                rb.class("Mid", |c| {
                    c.field("state", Value::Int(0));
                    c.field("leaf", Value::Null);
                    c.method("step", |ctx, this, _| {
                        let s = ctx.get_int(this, "state");
                        ctx.set(this, "state", Value::Int(s + 1));
                        let leaf = ctx.get(this, "leaf");
                        ctx.call_value(&leaf, "work", &[])?;
                        ctx.set(this, "state", Value::Int(s));
                        Ok(Value::Null)
                    });
                });
                rb.class("Top", |c| {
                    c.field("mid", Value::Null);
                    c.method("go", |ctx, this, _| {
                        let mid = ctx.get(this, "mid");
                        ctx.call_value(&mid, "step", &[])
                    });
                });
                rb.build()
            },
            |vm| {
                let leaf = vm.construct("Leaf", &[])?;
                vm.root(leaf);
                let mid = vm.construct("Mid", &[])?;
                vm.root(mid);
                vm.heap_mut()
                    .set_field(mid, "leaf", Value::Ref(leaf))
                    .unwrap();
                let top = vm.construct("Top", &[])?;
                vm.root(top);
                vm.heap_mut()
                    .set_field(top, "mid", Value::Ref(mid))
                    .unwrap();
                vm.call(top, "go", &[])
            },
        )
    }

    fn classification(policy: &Policy) -> Classification {
        let p = layered();
        let result = Campaign::new(&p).run();
        classify(&result, &policy.mark_filter())
    }

    fn gid(c: &Classification, name: &str) -> MethodId {
        c.method(name).unwrap().method
    }

    #[test]
    fn default_policy_wraps_pure_only() {
        let policy = Policy::default();
        let c = classification(&policy);
        let set = policy.mask_set(&c);
        assert_eq!(set.len(), 1);
        assert!(set.contains(&gid(&c, "Mid::step")));
    }

    #[test]
    fn wrap_everything_includes_conditional() {
        let policy = Policy::wrap_everything();
        let c = classification(&policy);
        let set = policy.mask_set(&c);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&gid(&c, "Top::go")));
    }

    #[test]
    fn exclusions_are_respected() {
        let base = Policy::default();
        let c = classification(&base);
        let policy = base.excluding(gid(&c, "Mid::step"));
        assert!(policy.mask_set(&c).is_empty());
    }

    #[test]
    fn exception_free_empties_the_mask_set() {
        let base = Policy::default();
        let c0 = classification(&base);
        let policy = base.with_exception_free(gid(&c0, "Leaf::work"));
        let c = classification(&policy);
        assert!(policy.mask_set(&c).is_empty());
        assert_eq!(c.method_counts.pure_nonatomic, 0);
    }
}

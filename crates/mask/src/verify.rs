//! Verification of corrected programs.
//!
//! After the masking phase produces the corrected program `P_C`, the paper's
//! workflow implicitly validates it: the benchmark applications were used
//! "to make sure that our system correctly detects failure non-atomic
//! methods during the detection phase, and effectively masks them during
//! the masking phase" (§6). This module makes that validation a first-class
//! operation: re-run the entire detection campaign with the atomicity
//! wrappers woven *inside* the injection wrappers and reclassify.

use crate::hook::MaskingHook;
use crate::undo::UndoMaskingHook;
use atomask_inject::{classify, Campaign, CampaignConfig, Classification, MarkFilter};
use atomask_mor::{CallHook, MethodId, Program};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Which atomicity-wrapper implementation to weave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaskStrategy {
    /// Listing 2 as written: eager deep copy of the receiver's object
    /// graph, restored on exception.
    #[default]
    DeepCopy,
    /// The §6.2 optimization: journal the writes actually performed and
    /// replay them backwards on exception.
    UndoLog,
}

/// Runs the detection campaign against the corrected program (original
/// program + atomicity wrappers for `mask_set`) and returns the resulting
/// classification.
///
/// If masking is sound, the returned classification reports **zero** pure
/// and zero conditional failure non-atomic methods (up to the methods
/// discounted by `filter`).
pub fn verify_masked(
    program: &dyn Program,
    mask_set: &HashSet<MethodId>,
    filter: &MarkFilter,
) -> Classification {
    verify_masked_with(program, mask_set, filter, MaskStrategy::DeepCopy)
}

/// [`verify_masked`] with an explicit wrapper [`MaskStrategy`].
pub fn verify_masked_with(
    program: &dyn Program,
    mask_set: &HashSet<MethodId>,
    filter: &MarkFilter,
    strategy: MaskStrategy,
) -> Classification {
    verify_masked_configured(
        program,
        mask_set,
        filter,
        strategy,
        CampaignConfig::default(),
        None,
    )
}

/// [`verify_masked_with`] under an explicit [`CampaignConfig`] (fuel
/// budget, retry policy, failure cap) and an optional injection-point cap.
///
/// The resulting [`Classification::health`] reports how much of the
/// verification sweep was diverged, panicked, or skipped — a verification
/// whose unhealthy share is non-zero is a *partial* verification.
pub fn verify_masked_configured(
    program: &dyn Program,
    mask_set: &HashSet<MethodId>,
    filter: &MarkFilter,
    strategy: MaskStrategy,
    config: CampaignConfig,
    cap: Option<u64>,
) -> Classification {
    let mask_set = mask_set.clone();
    let mut campaign = Campaign::new(program)
        .with_inner_hook(move |_registry| -> Rc<RefCell<dyn CallHook>> {
            match strategy {
                MaskStrategy::DeepCopy => Rc::new(RefCell::new(MaskingHook::new(mask_set.clone()))),
                MaskStrategy::UndoLog => {
                    Rc::new(RefCell::new(UndoMaskingHook::new(mask_set.clone())))
                }
            }
        })
        .config(config);
    if let Some(cap) = cap {
        campaign = campaign.max_points(cap);
    }
    classify(&campaign.run(), filter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use atomask_mor::{FnProgram, Profile, RegistryBuilder, Value};

    /// A deliberately messy program: two pure non-atomic methods at
    /// different depths and one conditional.
    fn messy() -> FnProgram {
        FnProgram::new(
            "messy",
            || {
                let mut rb = RegistryBuilder::new(Profile::cpp());
                rb.class("Log", |c| {
                    c.field("entries", Value::Int(0));
                    c.method("append", |ctx, this, _| {
                        let n = ctx.get_int(this, "entries");
                        ctx.set(this, "entries", Value::Int(n + 1));
                        ctx.call(this, "flush", &[])?;
                        Ok(Value::Null)
                    });
                    c.method("flush", |_, _, _| Ok(Value::Null));
                });
                rb.class("Journal", |c| {
                    c.field("log", Value::Null);
                    c.field("seq", Value::Int(0));
                    c.method("record", |ctx, this, _| {
                        let s = ctx.get_int(this, "seq");
                        ctx.set(this, "seq", Value::Int(s + 1));
                        let log = ctx.get(this, "log");
                        ctx.call_value(&log, "append", &[])?;
                        ctx.set(this, "seq", Value::Int(s));
                        Ok(Value::Null)
                    });
                    c.method("report", |ctx, this, _| {
                        // No own mutations: conditional at worst.
                        ctx.call(this, "record", &[])
                    });
                });
                rb.build()
            },
            |vm| {
                let log = vm.construct("Log", &[])?;
                vm.root(log);
                let j = vm.construct("Journal", &[])?;
                vm.root(j);
                vm.heap_mut().set_field(j, "log", Value::Ref(log)).unwrap();
                vm.call(j, "report", &[])
            },
        )
    }

    #[test]
    fn corrected_program_is_failure_atomic() {
        let p = messy();
        let detection = Campaign::new(&p).run();
        let policy = Policy::default();
        let c = classify(&detection, &policy.mark_filter());
        assert!(
            c.method_counts.pure_nonatomic >= 2,
            "append and record are pure non-atomic, got {:?}",
            c.method_counts
        );
        let mask_set = policy.mask_set(&c);
        let verified = verify_masked(&p, &mask_set, &policy.mark_filter());
        assert_eq!(verified.method_counts.pure_nonatomic, 0, "{verified:#?}");
        assert_eq!(verified.method_counts.conditional, 0, "{verified:#?}");
        assert_eq!(
            verified.method_counts.total(),
            c.method_counts.total(),
            "same methods observed"
        );
    }

    #[test]
    fn undo_log_strategy_also_verifies() {
        let p = messy();
        let detection = Campaign::new(&p).run();
        let policy = Policy::default();
        let c = classify(&detection, &policy.mark_filter());
        let mask_set = policy.mask_set(&c);
        let verified =
            verify_masked_with(&p, &mask_set, &policy.mark_filter(), MaskStrategy::UndoLog);
        assert_eq!(verified.method_counts.pure_nonatomic, 0, "{verified:#?}");
        assert_eq!(verified.method_counts.conditional, 0, "{verified:#?}");
    }

    #[test]
    fn masking_nothing_changes_nothing() {
        let p = messy();
        let detection = Campaign::new(&p).run();
        let c = classify(&detection, &MarkFilter::default());
        let verified = verify_masked(&p, &HashSet::new(), &MarkFilter::default());
        assert_eq!(
            verified.method_counts.pure_nonatomic,
            c.method_counts.pure_nonatomic
        );
        assert_eq!(
            verified.method_counts.conditional,
            c.method_counts.conditional
        );
    }

    #[test]
    fn partial_masking_leaves_unwrapped_pure_methods_nonatomic() {
        let p = messy();
        let detection = Campaign::new(&p).run();
        let policy = Policy::default();
        let c = classify(&detection, &policy.mark_filter());
        // Wrap only Journal::record, leaving Log::append exposed.
        let record = c.method("Journal::record").unwrap().method;
        let set: HashSet<MethodId> = [record].into_iter().collect();
        let verified = verify_masked(&p, &set, &policy.mark_filter());
        assert_eq!(
            verified.method("Log::append").unwrap().verdict,
            Some(atomask_inject::Verdict::PureNonAtomic)
        );
        assert_eq!(
            verified.method("Journal::record").unwrap().verdict,
            Some(atomask_inject::Verdict::FailureAtomic)
        );
    }
}

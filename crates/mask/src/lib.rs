//! # atomask-mask — the masking phase
//!
//! Implements steps 4–5 of the paper's Fig. 1 plus the §4.3 policy layer:
//!
//! * [`MaskingHook`] is Listing 2 as a [`atomask_mor::CallHook`]: for every
//!   method on the failure non-atomic list it checkpoints the receiver's
//!   object graph (plus by-reference arguments) before the call and, if the
//!   call returns with an exception, restores the checkpoint before
//!   rethrowing — "checkpoint, execute, and roll back on exception".
//!   Rollback garbage is reclaimed with the heap's reference counting.
//! * [`Policy`] decides **which** non-atomic methods to wrap (§4.3 "To Wrap
//!   or Not To Wrap"): intended non-atomicity can be excluded, methods can
//!   be annotated exception-free (with reclassification), and conditional
//!   failure non-atomic methods are skipped by default because wrapping
//!   their callees already makes them atomic (Def. 3).
//! * [`verify_masked`] re-runs the full detection campaign against the
//!   corrected program `P_C`, with the injection wrappers woven *outside*
//!   the atomicity wrappers, proving that masking produced a failure atomic
//!   program.
//!
//! ```
//! use atomask_inject::{classify, Campaign, MarkFilter};
//! use atomask_mask::{verify_masked, Policy};
//! use atomask_mor::{FnProgram, Profile, RegistryBuilder, Value};
//!
//! let program = FnProgram::new(
//!     "demo",
//!     || {
//!         let mut rb = RegistryBuilder::new(Profile::java());
//!         rb.class("Acc", |c| {
//!             c.field("sum", Value::Int(0));
//!             c.method("add", |ctx, this, args| {
//!                 let v = args[0].as_int().unwrap_or(0);
//!                 let sum = ctx.get_int(this, "sum");
//!                 ctx.set(this, "sum", Value::Int(sum + v));
//!                 ctx.call(this, "touch", &[]) // may fail after mutation
//!             });
//!             c.method("touch", |_ctx, _this, _args| Ok(Value::Null));
//!         });
//!         rb.build()
//!     },
//!     |vm| {
//!         let a = vm.construct("Acc", &[])?;
//!         vm.root(a);
//!         vm.call(a, "add", &[Value::Int(5)])
//!     },
//! );
//!
//! // Detect, decide what to wrap, and verify the corrected program.
//! let detection = Campaign::new(&program).run();
//! let classification = classify(&detection, &MarkFilter::default());
//! assert_eq!(classification.method_counts.pure_nonatomic, 1);
//! let policy = Policy::default();
//! let mask_set = policy.mask_set(&classification);
//! let corrected = verify_masked(&program, &mask_set, &policy.mark_filter());
//! assert_eq!(corrected.method_counts.pure_nonatomic, 0);
//! assert_eq!(corrected.method_counts.conditional, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hook;
mod policy;
mod undo;
mod verify;

pub use hook::{MaskStats, MaskingHook};
pub use policy::Policy;
pub use undo::{UndoMaskingHook, UndoStats};
pub use verify::{verify_masked, verify_masked_configured, verify_masked_with, MaskStrategy};

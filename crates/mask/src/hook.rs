//! Listing 2 — the atomicity wrapper — as a [`CallHook`].

use atomask_mor::{CallHook, CallSite, Exception, HookGuard, MethodId, MethodResult, ObjId, Vm};
use atomask_objgraph::Checkpoint;
use std::collections::HashSet;

/// Counters describing masking activity, used by the Fig. 5 overhead
/// analysis and by reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskStats {
    /// Checkpoints taken (wrapped calls entered).
    pub checkpoints: u64,
    /// Rollbacks performed (wrapped calls that threw).
    pub restores: u64,
    /// Total bytes checkpointed.
    pub bytes_checkpointed: u64,
    /// Objects reclaimed by rollback cleanup.
    pub reclaimed: u64,
}

/// The atomicity wrapper: checkpoints wrapped calls and rolls back on
/// exception (Listing 2 of the paper).
///
/// The wrap set is normally [`crate::Policy::mask_set`] applied to a
/// detection-phase classification.
#[derive(Debug)]
pub struct MaskingHook {
    wrapped: HashSet<MethodId>,
    stats: MaskStats,
}

impl MaskingHook {
    /// Creates a hook wrapping exactly `wrapped`.
    pub fn new(wrapped: HashSet<MethodId>) -> Self {
        MaskingHook {
            wrapped,
            stats: MaskStats::default(),
        }
    }

    /// Creates a hook from any iterator of method ids.
    pub fn wrapping(methods: impl IntoIterator<Item = MethodId>) -> Self {
        Self::new(methods.into_iter().collect())
    }

    /// The methods this hook wraps.
    pub fn wrapped(&self) -> &HashSet<MethodId> {
        &self.wrapped
    }

    /// Masking activity counters.
    pub fn stats(&self) -> MaskStats {
        self.stats
    }
}

fn checkpoint_roots(site: &CallSite) -> Vec<ObjId> {
    let mut roots = Vec::with_capacity(1 + site.ref_args.len());
    roots.push(site.recv);
    roots.extend_from_slice(&site.ref_args);
    roots
}

impl CallHook for MaskingHook {
    fn before(&mut self, vm: &mut Vm, site: &CallSite) -> Result<HookGuard, Exception> {
        if !self.wrapped.contains(&site.method) || !vm.registry().instrumentable(site.method) {
            return Ok(None);
        }
        // Listing 2 line 2: objgraph = deep_copy(this).
        let cp = Checkpoint::capture(vm.heap(), &checkpoint_roots(site));
        vm.trace(atomask_mor::TraceEvent::MaskCheckpoint {
            method: site.method,
        });
        self.stats.checkpoints += 1;
        self.stats.bytes_checkpointed += cp.byte_size() as u64;
        Ok(Some(Box::new(cp)))
    }

    fn after(
        &mut self,
        vm: &mut Vm,
        site: &CallSite,
        guard: HookGuard,
        outcome: MethodResult,
    ) -> MethodResult {
        if outcome.is_err() {
            if let Some(guard) = guard {
                let cp = guard
                    .downcast::<Checkpoint>()
                    .expect("masking guard is a checkpoint");
                // Listing 2 line 6: replace(this, objgraph); then rethrow.
                cp.restore(vm.heap_mut());
                vm.trace(atomask_mor::TraceEvent::MaskRestore {
                    method: site.method,
                });
                self.stats.restores += 1;
                // §5.1: objects implicitly discarded by the rollback are
                // cleaned up via reference counting.
                self.stats.reclaimed += vm.heap_mut().reclaim() as u64;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{Profile, Registry, RegistryBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// `push` allocates a node, links it in, bumps `len`, *then* calls the
    /// failing `notify` — classic non-atomic ordering.
    fn registry() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.exception("NotifyError");
        rb.class("Stack", |c| {
            c.field("head", Value::Null);
            c.field("len", Value::Int(0));
            c.method("push", |ctx, this, args| {
                let node = ctx.new_object("Node", &[])?;
                ctx.set(node, "value", args[0].clone());
                let head = ctx.get(this, "head");
                ctx.set(node, "next", head);
                ctx.set(this, "head", Value::Ref(node));
                let len = ctx.get_int(this, "len");
                ctx.set(this, "len", Value::Int(len + 1));
                ctx.call(this, "notify", &[])?;
                Ok(Value::Null)
            });
            c.method("notify", |ctx, this, _| {
                if ctx.get_int(this, "len") >= 2 {
                    Err(ctx.exception("NotifyError", "listener rejected"))
                } else {
                    Ok(Value::Null)
                }
            });
        });
        rb.class("Node", |c| {
            c.field("next", Value::Null);
            c.field("value", Value::Null);
        });
        rb.build()
    }

    fn push_gid(reg: &Registry) -> MethodId {
        reg.class_by_name("Stack")
            .unwrap()
            .methods
            .iter()
            .find(|m| m.name == "push")
            .unwrap()
            .gid
    }

    #[test]
    fn unmasked_failure_corrupts_the_stack() {
        let mut vm = atomask_mor::Vm::new(registry());
        let s = vm.construct("Stack", &[]).unwrap();
        vm.root(s);
        vm.call(s, "push", &[Value::Int(1)]).unwrap();
        let err = vm.call(s, "push", &[Value::Int(2)]).unwrap_err();
        assert_eq!(err.message, "listener rejected");
        // The failed push left the element half-inserted.
        assert_eq!(vm.heap().field(s, "len"), Some(Value::Int(2)));
    }

    #[test]
    fn masked_failure_rolls_back() {
        let reg = registry();
        let push = push_gid(&reg);
        let mut vm = atomask_mor::Vm::new(reg);
        let hook = Rc::new(RefCell::new(MaskingHook::wrapping([push])));
        vm.set_hook(Some(hook.clone()));
        let s = vm.construct("Stack", &[]).unwrap();
        vm.root(s);
        vm.call(s, "push", &[Value::Int(1)]).unwrap();
        let err = vm.call(s, "push", &[Value::Int(2)]).unwrap_err();
        // The exception still propagates (masking preserves the error)...
        assert_eq!(err.message, "listener rejected");
        // ...but the stack is exactly as before the failed call.
        assert_eq!(vm.heap().field(s, "len"), Some(Value::Int(1)));
        let head = vm.heap().field(s, "head").unwrap().as_ref_id().unwrap();
        assert_eq!(vm.heap().field(head, "value"), Some(Value::Int(1)));
        let stats = hook.borrow().stats();
        assert_eq!(stats.checkpoints, 2);
        assert_eq!(stats.restores, 1);
        assert!(stats.bytes_checkpointed > 0);
    }

    #[test]
    fn rollback_garbage_is_reclaimed() {
        let reg = registry();
        let push = push_gid(&reg);
        let mut vm = atomask_mor::Vm::new(reg);
        let hook = Rc::new(RefCell::new(MaskingHook::wrapping([push])));
        vm.set_hook(Some(hook.clone()));
        let s = vm.construct("Stack", &[]).unwrap();
        vm.root(s);
        vm.call(s, "push", &[Value::Int(1)]).unwrap();
        let live_before = vm.heap().len();
        let _ = vm.call(s, "push", &[Value::Int(2)]).unwrap_err();
        // The node allocated by the failed push was rolled out of the graph
        // and reclaimed by reference counting.
        assert_eq!(vm.heap().len(), live_before);
        assert!(hook.borrow().stats().reclaimed >= 1);
    }

    #[test]
    fn successful_calls_pay_checkpoint_but_change_nothing() {
        let reg = registry();
        let push = push_gid(&reg);
        let mut vm = atomask_mor::Vm::new(reg);
        let hook = Rc::new(RefCell::new(MaskingHook::wrapping([push])));
        vm.set_hook(Some(hook.clone()));
        let s = vm.construct("Stack", &[]).unwrap();
        vm.root(s);
        vm.call(s, "push", &[Value::Int(1)]).unwrap();
        assert_eq!(vm.heap().field(s, "len"), Some(Value::Int(1)));
        let stats = hook.borrow().stats();
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.restores, 0);
    }

    #[test]
    fn unwrapped_methods_are_untouched() {
        let reg = registry();
        let mut vm = atomask_mor::Vm::new(reg);
        let hook = Rc::new(RefCell::new(MaskingHook::wrapping([])));
        vm.set_hook(Some(hook.clone()));
        let s = vm.construct("Stack", &[]).unwrap();
        vm.root(s);
        vm.call(s, "push", &[Value::Int(1)]).unwrap();
        assert_eq!(hook.borrow().stats().checkpoints, 0);
    }
}

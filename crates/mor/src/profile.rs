//! Language profiles.
//!
//! The paper implements its infrastructure twice — for C++ (source weaving)
//! and Java (load-time bytecode weaving) — and reports behavioural
//! differences between the two. A [`Profile`] captures those differences so
//! a single runtime can emulate either side of the evaluation.

/// The source language being emulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    /// C++ semantics (paper §5.1).
    Cpp,
    /// Java semantics (paper §5.2).
    Java,
}

impl std::fmt::Display for Lang {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lang::Cpp => write!(f, "C++"),
            Lang::Java => write!(f, "Java"),
        }
    }
}

/// A language profile: which exception types any method may throw, whether
/// declared exceptions are enforced, and whether *core* classes can be
/// instrumented.
///
/// * **C++** (paper §5.1 limitation 3): thrown exceptions need not be
///   declared, so the injector has to consider a *wider* range of runtime
///   exception types; everything is instrumentable because weaving happens
///   on source.
/// * **Java** (paper §5.2 limitation): declared (`throws`) exceptions are
///   part of the signature and a small set of core classes (strings,
///   boxed integers, ...) cannot be instrumented at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// The emulated language.
    pub lang: Lang,
    /// Names of the generic runtime exceptions that *any* method may throw
    /// (the `E_{k+1} .. E_n` of Listing 1). Interned at registry build time.
    pub runtime_exceptions: Vec<String>,
    /// If `true`, guest methods throwing a type that is neither declared nor
    /// a runtime exception are counted as declaration violations in
    /// [`crate::CallStats`]. (Java: `true`; C++: `false`.)
    pub enforce_declared: bool,
    /// If `true`, classes flagged as core are still instrumented (C++);
    /// if `false`, core classes get neither injection points nor wrappers
    /// (Java bytecode limitation).
    pub instrument_core: bool,
}

impl Profile {
    /// The C++ profile used for the Self* applications of the evaluation.
    ///
    /// The undeclared-exception rule means the injector considers three
    /// generic runtime exception types for every method.
    pub fn cpp() -> Self {
        Profile {
            lang: Lang::Cpp,
            runtime_exceptions: vec![
                "BadAlloc".to_owned(),
                "RuntimeError".to_owned(),
                "LogicError".to_owned(),
            ],
            enforce_declared: false,
            instrument_core: true,
        }
    }

    /// The Java profile used for the collections/RegExp applications.
    pub fn java() -> Self {
        Profile {
            lang: Lang::Java,
            runtime_exceptions: vec!["RuntimeException".to_owned(), "OutOfMemoryError".to_owned()],
            enforce_declared: true,
            instrument_core: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpp_profile_is_wider() {
        let cpp = Profile::cpp();
        let java = Profile::java();
        assert!(cpp.runtime_exceptions.len() > java.runtime_exceptions.len());
        assert!(!cpp.enforce_declared);
        assert!(java.enforce_declared);
    }

    #[test]
    fn java_cannot_instrument_core() {
        assert!(!Profile::java().instrument_core);
        assert!(Profile::cpp().instrument_core);
    }

    #[test]
    fn lang_display() {
        assert_eq!(Lang::Cpp.to_string(), "C++");
        assert_eq!(Lang::Java.to_string(), "Java");
    }
}

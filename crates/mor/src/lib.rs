//! # atomask-mor — a managed object runtime
//!
//! This crate is the *substrate* of the `atomask` workspace: a small,
//! deterministic, single-threaded object runtime that plays the role the
//! C++/Java language runtimes played in the DSN 2003 paper *"Automatic
//! Detection and Masking of Non-Atomic Exception Handling"* (Fetzer,
//! Högstedt, Felber).
//!
//! The paper's techniques need exactly two capabilities from the language
//! runtime:
//!
//! 1. an **inspectable object graph** — objects with named fields whose
//!    values are basic data or references, with sharing visible (Def. 1 of
//!    the paper), and
//! 2. an **interposable call boundary** — a place where generated wrappers
//!    (injection wrappers during detection, atomicity wrappers during
//!    masking) can be woven around every method and constructor call.
//!
//! Rust offers neither for native code, so this crate provides both:
//!
//! * [`Heap`] stores objects (class + ordered named fields) under
//!   never-reused [`ObjId`]s, maintains reference counts, and supports both
//!   acyclic reclamation and a mark–sweep cycle collector (the paper's
//!   §5.1 notes that rollback cleanup uses reference counting, with a GC
//!   for cyclic structures).
//! * [`Vm`] dispatches every method and constructor call through a single
//!   [`CallHook`] interposition point — the moral equivalent of the paper's
//!   *Code Weaver* (AspectC++ source weaving in C++, BCEL load-time
//!   bytecode instrumentation in Java).
//! * [`Exception`] values propagate callee→caller as the `Err` arm of
//!   [`MethodResult`], reproducing the only exception semantics the paper
//!   relies on: propagation, catch-and-rethrow, and *declared* vs.
//!   *runtime* (undeclared) exception types.
//! * [`Profile`] captures the per-language differences the paper reports:
//!   Java enforces declared exceptions and cannot instrument core classes;
//!   C++ does not enforce declarations, so the injector must consider a
//!   wider set of runtime exception types.
//!
//! Application code (the evaluation workloads in `atomask-apps`) is written
//! as Rust functions that perform **all** state access through [`Ctx`], so
//! the runtime sees every field read/write and every call.
//!
//! ## Example
//!
//! ```
//! use atomask_mor::{Profile, RegistryBuilder, Value, Vm};
//!
//! let mut rb = RegistryBuilder::new(Profile::java());
//! rb.class("Counter", |c| {
//!     c.field("count", Value::Int(0));
//!     c.method("increment", |ctx, this, _args| {
//!         let v = ctx.get_int(this, "count");
//!         ctx.set(this, "count", Value::Int(v + 1));
//!         Ok(Value::Null)
//!     });
//! });
//! let registry = rb.build();
//! let mut vm = Vm::new(registry);
//! let c = vm.construct("Counter", &[])?;
//! vm.call(c, "increment", &[])?;
//! assert_eq!(vm.heap().field(c, "count"), Some(Value::Int(1)));
//! # Ok::<(), atomask_mor::Exception>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod class;
mod ctx;
mod error;
mod exception;
mod fx;
mod heap;
mod hook;
mod ids;
mod profile;
mod program;
mod registry;
pub mod resume;
mod trace;
mod value;
mod vm;

pub use budget::Budget;
pub use class::{ClassBuilder, ClassDef, FieldDef, MethodCfg, MethodDef, CTOR_NAME};
pub use ctx::Ctx;
pub use error::MorError;
pub use exception::{Exception, ExceptionTable, MethodResult};
pub use heap::{AsOfHeap, Heap, HeapCheckpoint, HeapStats, Object};
pub use hook::{CallHook, CallKind, CallSite, HookChain, HookGuard};
pub use ids::{ClassId, ExcId, MethodId, ObjId};
pub use profile::{Lang, Profile};
pub use program::{FnProgram, Program};
pub use registry::{Registry, RegistryBuilder};
pub use resume::{BoundaryProbe, OpKey, OpRecord, OpResult, VmCheckpoint, REPLAY_MISMATCH};
pub use trace::{RingBufferSink, TraceEvent, TraceSink};
pub use value::Value;
pub use vm::{CallStats, Vm};

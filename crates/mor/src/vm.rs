//! The virtual machine: call dispatch, frame roots, statistics.

use crate::budget::{Budget, FuelMeter};
use crate::class::MethodBody;
use crate::ctx::Ctx;
use crate::exception::{Exception, ExceptionTable, MethodResult};
use crate::heap::Heap;
use crate::hook::{CallHook, CallKind, CallSite};
use crate::ids::{ExcId, MethodId, ObjId};
use crate::registry::Registry;
use crate::resume::{
    BoundaryProbe, OpKey, OpRecord, OpResult, ReplayState, VmCheckpoint, REPLAY_MISMATCH,
};
use crate::trace::{TraceEvent, TraceSink};
use crate::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

/// Per-run dynamic call statistics.
///
/// `calls[m]` counts dynamic dispatches of method `m`; the paper weights its
/// method classifications by exactly these counts (Figs. 2b/3b).
#[derive(Debug, Clone, Default)]
pub struct CallStats {
    /// Dynamic call count per [`MethodId`] index.
    pub calls: Vec<u64>,
    /// Number of guest exceptions that escaped a method whose signature did
    /// not declare them, under a profile that enforces declarations (Java).
    pub declaration_violations: u64,
    /// Total guest exceptions that propagated out of some call.
    pub exceptions_seen: u64,
}

impl CallStats {
    fn new(methods: usize) -> Self {
        CallStats {
            calls: vec![0; methods],
            declaration_violations: 0,
            exceptions_seen: 0,
        }
    }

    /// Total dynamic calls across all methods.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }
}

/// The managed-runtime virtual machine.
///
/// Owns the [`Heap`], shares the immutable [`Registry`], and dispatches all
/// guest calls through the optional [`CallHook`].
///
/// The VM is single-threaded by design: the paper (§4.4) explicitly leaves
/// concurrent programs out of scope.
pub struct Vm {
    registry: Rc<Registry>,
    heap: Heap,
    hook: Option<Rc<RefCell<dyn CallHook>>>,
    /// Frame-local root sets: everything a method body can name stays
    /// rooted while its frame is live, so deferred reclamation can never
    /// free an object the body still holds an id to. Stored as one flat
    /// arena (`frame_roots`) with per-frame start offsets (`frame_starts`)
    /// so pushing and popping a frame never allocates.
    frame_roots: Vec<ObjId>,
    frame_starts: Vec<usize>,
    stats: CallStats,
    call_seq: u64,
    depth: usize,
    fuel: FuelMeter,
    tracer: Option<Rc<RefCell<dyn TraceSink>>>,
    /// Recording mode: the log of completed top-level ops, if active.
    op_log: Option<Vec<OpRecord>>,
    /// Invoked after each recorded top-level op (checkpoint capture).
    boundary_probe: Option<BoundaryProbe>,
    /// Replay mode: short-circuits top-level ops from a recorded log until
    /// the switch index, then restores the paired checkpoint.
    replay: Option<ReplayState>,
    /// Preinterned id of the distinguished `BudgetExhausted` exception;
    /// cached so dispatch can exempt it from declaration-violation
    /// accounting without a name lookup per propagation step.
    budget_exc: ExcId,
}

impl Vm {
    /// Creates a VM over a freshly built registry.
    pub fn new(registry: Registry) -> Self {
        Vm::from_shared_registry(Rc::new(registry))
    }

    /// Creates a VM over an already-shared registry (campaigns reuse one
    /// registry across many VMs instead of rebuilding it per run).
    pub fn from_shared_registry(registry: Rc<Registry>) -> Self {
        // Exception chain ids restart per VM: they only need to be unique
        // within one VM's lifetime, and restarting keeps run records (and
        // campaign journals) deterministic regardless of process history.
        crate::exception::reset_chains();
        let methods = registry.method_count();
        let budget_exc = registry
            .exceptions()
            .lookup(ExceptionTable::BUDGET_EXHAUSTED)
            .expect("BudgetExhausted is preinterned by ExceptionTable::new");
        Vm {
            heap: Heap::new(registry.clone()),
            registry,
            hook: None,
            frame_roots: Vec::new(),
            frame_starts: Vec::new(),
            stats: CallStats::new(methods),
            call_seq: 0,
            depth: 0,
            fuel: FuelMeter::new(Budget::unlimited()),
            tracer: None,
            op_log: None,
            boundary_probe: None,
            replay: None,
            budget_exc,
        }
    }

    /// Installs (or removes) the flight recorder. The sink is shared with
    /// the heap, so heap write/undo/journal events and VM call/exception
    /// events interleave in one stream. With no sink installed every
    /// emission site is a branch on `None` — events are never constructed.
    ///
    /// Sinks must not re-enter the VM (the sink cell is borrowed while
    /// recording).
    pub fn set_tracer(&mut self, tracer: Option<Rc<RefCell<dyn TraceSink>>>) {
        self.heap.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// `true` iff a trace sink is installed.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Records one event on the installed sink, if any. Public so hooks in
    /// other crates (injection, masking) can add their own span events.
    pub fn trace(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(event);
        }
    }

    /// Emission helper: the closure only runs when a sink is installed.
    #[inline]
    fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(make());
        }
    }

    /// Installs a fresh fuel [`Budget`], resetting any fuel already spent.
    pub fn set_budget(&mut self, budget: Budget) {
        self.fuel = FuelMeter::new(budget);
    }

    /// Re-initializes the VM for a fresh run **without** rebuilding its
    /// universe. The heap is epoch-reset (storage capacity retained, ids
    /// restart at 1), exception chain ids restart, call statistics /
    /// frames / depth / call sequence are zeroed, the hook and tracer are
    /// detached, and the fuel meter is replaced with an unlimited budget —
    /// exactly the state [`Vm::from_shared_registry`] constructs, so a
    /// recycled VM's run records are bit-identical to a fresh VM's.
    ///
    /// Campaign sweeps call this between injection attempts instead of
    /// building a VM per attempt; it is also safe after a panicking run
    /// unwound through the VM (all guest state is discarded wholesale).
    pub fn reset_for_run(&mut self) {
        crate::exception::reset_chains();
        self.heap.epoch_reset();
        self.set_tracer(None);
        self.hook = None;
        self.frame_roots.clear();
        self.frame_starts.clear();
        self.depth = 0;
        self.call_seq = 0;
        self.stats.calls.iter_mut().for_each(|c| *c = 0);
        self.stats.declaration_violations = 0;
        self.stats.exceptions_seen = 0;
        self.fuel = FuelMeter::new(Budget::unlimited());
        self.op_log = None;
        self.boundary_probe = None;
        self.replay = None;
    }

    /// The budget currently in force.
    pub fn budget(&self) -> Budget {
        self.fuel.budget()
    }

    /// Fuel spent so far under the current budget.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel.spent()
    }

    /// `true` iff the current budget has been exhausted — the campaign
    /// layer uses this (not string-matching on exceptions) to classify a
    /// run as diverged.
    pub fn fuel_exhausted(&self) -> bool {
        self.fuel.exhausted()
    }

    /// The registry describing the guest program.
    pub fn registry(&self) -> &Rc<Registry> {
        &self.registry
    }

    /// Read access to the heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable access to the heap (used by checkpoint restore and drivers).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Installs (or removes) the call hook — the equivalent of weaving
    /// wrappers into the program.
    pub fn set_hook(&mut self, hook: Option<Rc<RefCell<dyn CallHook>>>) {
        self.hook = hook;
    }

    /// Dynamic call statistics collected so far.
    pub fn stats(&self) -> &CallStats {
        &self.stats
    }

    /// Resets call statistics (heap state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CallStats::new(self.registry.method_count());
    }

    /// Takes the statistics out of the VM, leaving zeroed counters — lets
    /// a campaign keep a finished run's counts without cloning the vector.
    pub fn take_stats(&mut self) -> CallStats {
        std::mem::replace(
            &mut self.stats,
            CallStats::new(self.registry.method_count()),
        )
    }

    /// Adds a persistent root (drivers root the objects they hold across
    /// reclamation points).
    pub fn root(&mut self, id: ObjId) {
        self.heap.root(id);
    }

    /// Removes a persistent root.
    pub fn unroot(&mut self, id: ObjId) {
        self.heap.unroot(id);
    }

    /// Looks up an interned exception type.
    ///
    /// # Panics
    ///
    /// Panics if the name was never registered — exception names must be
    /// declared via [`crate::RegistryBuilder::exception`] or a
    /// `throws(..)` clause.
    pub fn exc_id(&self, name: &str) -> crate::ids::ExcId {
        self.registry.exceptions().lookup(name).unwrap_or_else(|| {
            panic!("unknown exception type `{name}` (register it at build time)")
        })
    }

    /// Constructs an instance of `class_name`: allocates it and dispatches
    /// its constructor (if any) through the interposable call boundary, so
    /// constructors receive injections and wrappers like any method.
    ///
    /// # Errors
    ///
    /// Propagates any guest exception thrown (or injected) by the
    /// constructor; the partially constructed object is left to the garbage
    /// collector, as in Java.
    ///
    /// # Panics
    ///
    /// Panics if `class_name` is not registered (host error).
    pub fn construct(&mut self, class_name: &str, args: &[Value]) -> Result<ObjId, Exception> {
        if self.replay.is_some() {
            if let Some(r) = self.replay_step(|| OpKey::Construct {
                class: class_name.to_owned(),
            }) {
                return r.into_construct();
            }
        }
        let result = self.construct_live(class_name, args);
        if self.recording_top_level() {
            self.record_op(
                OpKey::Construct {
                    class: class_name.to_owned(),
                },
                OpResult::Construct(result.clone()),
            );
        }
        result
    }

    fn construct_live(&mut self, class_name: &str, args: &[Value]) -> Result<ObjId, Exception> {
        let class = self
            .registry
            .class_by_name(class_name)
            .unwrap_or_else(|| panic!("unknown class `{class_name}`"))
            .clone();
        self.charge_heap_op();
        let id = self.heap.alloc(&class);
        self.root_in_frame(id);
        if let Some(ctor) = class.ctor() {
            let gid = ctor.gid;
            self.dispatch(gid, id, args, CallKind::Ctor)?;
        }
        Ok(id)
    }

    /// Allocates an instance without running its constructor (raw
    /// allocation, used by constructors building their own parts).
    ///
    /// # Panics
    ///
    /// Panics if `class_name` is not registered (host error).
    pub fn alloc_raw(&mut self, class_name: &str) -> ObjId {
        if self.depth == 0 && self.replay.is_some() {
            if let Some(r) = self.replay_step(|| OpKey::AllocRaw {
                class: class_name.to_owned(),
            }) {
                return r.into_obj();
            }
        }
        let class = self
            .registry
            .class_by_name(class_name)
            .unwrap_or_else(|| panic!("unknown class `{class_name}`"))
            .clone();
        self.charge_heap_op();
        let id = self.heap.alloc(&class);
        self.root_in_frame(id);
        if self.recording_top_level() {
            self.record_op(
                OpKey::AllocRaw {
                    class: class_name.to_owned(),
                },
                OpResult::Obj(id),
            );
        }
        id
    }

    /// Calls `method` on `recv` through the interposable boundary.
    ///
    /// # Errors
    ///
    /// Propagates the guest exception if the callee throws (or an exception
    /// is injected).
    ///
    /// # Panics
    ///
    /// Panics if `recv` is dead or its class has no such method (host
    /// errors — guest-level null dereference is [`Ctx::call_value`]).
    pub fn call(&mut self, recv: ObjId, method: &str, args: &[Value]) -> MethodResult {
        // Replay interception must come *before* receiver resolution: the
        // heap is empty while a replayed prefix is in flight, so touching
        // `recv` would be a false "dead object" host error.
        if self.replay.is_some() {
            if let Some(r) = self.replay_step(|| OpKey::Call {
                recv,
                method: method.to_owned(),
            }) {
                return r.into_method();
            }
        }
        let result = self.call_live(recv, method, args);
        if self.recording_top_level() {
            self.record_op(
                OpKey::Call {
                    recv,
                    method: method.to_owned(),
                },
                OpResult::Method(result.clone()),
            );
        }
        result
    }

    fn call_live(&mut self, recv: ObjId, method: &str, args: &[Value]) -> MethodResult {
        let obj = self
            .heap
            .get(recv)
            .unwrap_or_else(|| panic!("call on dead object {recv}"));
        let class = self.registry.class(obj.class_id());
        let slot = class
            .method_slot(method)
            .unwrap_or_else(|| panic!("class `{}` has no method `{method}`", class.name));
        let gid = class.methods[slot].gid;
        self.dispatch(gid, recv, args, CallKind::Method)
    }

    /// Calls a method by global id (used by wrappers and the pipeline).
    ///
    /// # Errors
    ///
    /// Propagates guest exceptions, as [`Vm::call`].
    pub fn call_by_id(&mut self, mid: MethodId, recv: ObjId, args: &[Value]) -> MethodResult {
        if self.depth == 0 && self.replay.is_some() {
            if let Some(r) = self.replay_step(|| OpKey::CallById { recv, method: mid }) {
                return r.into_method();
            }
        }
        let kind = if self.registry.method(mid).is_ctor {
            CallKind::Ctor
        } else {
            CallKind::Method
        };
        let result = self.dispatch(mid, recv, args, kind);
        if self.recording_top_level() {
            self.record_op(
                OpKey::CallById { recv, method: mid },
                OpResult::Method(result.clone()),
            );
        }
        result
    }

    /// Reads a field at driver level, like `vm.heap().field(..)`, but
    /// replay-aware: during a replayed prefix the recorded value is
    /// returned instead of touching the (empty) heap. Drivers whose
    /// control flow depends on heap reads must use this instead of going
    /// through [`Vm::heap`] directly, or checkpoint-resume cannot retrace
    /// them. Charges no fuel, exactly like the direct heap read.
    pub fn field(&mut self, id: ObjId, name: &str) -> Option<Value> {
        if self.depth == 0 && self.replay.is_some() {
            if let Some(r) = self.replay_step(|| OpKey::Field {
                recv: id,
                field: name.to_owned(),
            }) {
                return r.into_field();
            }
        }
        let value = self.heap.field(id, name);
        if self.recording_top_level() {
            self.record_op(
                OpKey::Field {
                    recv: id,
                    field: name.to_owned(),
                },
                OpResult::Field(value.clone()),
            );
        }
        value
    }

    /// Current call nesting depth (0 outside any guest call).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Begins recording top-level driver operations (see
    /// [`crate::resume`]). Recording changes nothing observable about the
    /// run: ops execute live and their keys/results are logged on the side.
    pub fn start_recording(&mut self) {
        self.op_log = Some(Vec::new());
    }

    /// `true` iff a recording is in progress.
    pub fn recording(&self) -> bool {
        self.op_log.is_some()
    }

    /// Ends recording, returning the op log (also detaches the boundary
    /// probe). `None` if no recording was in progress.
    pub fn finish_recording(&mut self) -> Option<Vec<OpRecord>> {
        self.boundary_probe = None;
        self.op_log.take()
    }

    /// Installs (or removes) the boundary probe invoked after each
    /// recorded top-level op. The probe sees the VM quiescent (depth 0, no
    /// open frames or journal layers) and the count of ops recorded so far
    /// — the natural place to capture strided [`VmCheckpoint`]s.
    pub fn set_boundary_probe(&mut self, probe: Option<BoundaryProbe>) {
        self.boundary_probe = probe;
    }

    /// Captures a structural checkpoint of everything a run can observe of
    /// this VM: heap, call statistics, call sequence, fuel spent, and the
    /// exception chain-id watermark.
    ///
    /// # Panics
    ///
    /// Panics unless the VM is quiescent: depth 0, no live frames, and no
    /// open heap journal layer. (The interpreter's call stack is host
    /// stack, so checkpoints are only well-defined at top-level call
    /// boundaries — which is exactly where the boundary probe runs.)
    pub fn checkpoint(&self) -> VmCheckpoint {
        assert_eq!(self.depth, 0, "checkpoint inside a guest call");
        assert!(self.frame_starts.is_empty(), "checkpoint with live frames");
        assert_eq!(
            self.heap.journal_depth(),
            0,
            "checkpoint with an open journal layer"
        );
        VmCheckpoint {
            heap: self.heap.checkpoint(),
            stats: self.stats.clone(),
            call_seq: self.call_seq,
            fuel_spent: self.fuel.spent(),
            chain_next: crate::exception::chain_watermark(),
        }
    }

    /// Reinstates a [`VmCheckpoint`] wholesale. The heap contents, call
    /// statistics, call sequence, and chain watermark come back exactly as
    /// captured; fuel comes back as *spent* against whatever budget is
    /// currently in force (so resumed retry attempts under scaled budgets
    /// account the prefix correctly). The heap mutation epoch is bumped,
    /// invalidating any memoized fingerprints. Storage is reused where
    /// possible — restore is allocation-light on a recycled VM.
    ///
    /// # Panics
    ///
    /// Panics if called inside a guest call.
    pub fn restore(&mut self, ckpt: &VmCheckpoint) {
        assert_eq!(self.depth, 0, "restore inside a guest call");
        assert!(self.frame_starts.is_empty(), "restore with live frames");
        self.heap.restore_checkpoint(&ckpt.heap);
        self.stats.calls.clone_from(&ckpt.stats.calls);
        self.stats.declaration_violations = ckpt.stats.declaration_violations;
        self.stats.exceptions_seen = ckpt.stats.exceptions_seen;
        self.call_seq = ckpt.call_seq;
        self.fuel.preload_spent(ckpt.fuel_spent);
        crate::exception::set_chain_watermark(ckpt.chain_next);
    }

    /// Arms replay: top-level ops `0..switch` short-circuit to their
    /// recorded results, then `checkpoint` is restored and execution goes
    /// live. Must be installed before the driver starts (on a freshly
    /// reset VM) and is mutually exclusive with recording.
    ///
    /// # Panics
    ///
    /// Panics if `switch` exceeds the log length or a recording is active.
    pub fn begin_replay(
        &mut self,
        ops: Rc<Vec<OpRecord>>,
        switch: usize,
        checkpoint: Rc<VmCheckpoint>,
    ) {
        assert!(switch <= ops.len(), "replay switch beyond the op log");
        assert!(self.op_log.is_none(), "replay while recording");
        self.replay = Some(ReplayState {
            ops,
            cursor: 0,
            switch,
            checkpoint,
        });
    }

    /// `true` while a replay is armed and has not yet reached its switch
    /// point. A driver that *finishes* with replay still active means the
    /// recorded log did not match this execution — callers must discard
    /// the run and fall back to from-scratch execution.
    pub fn replay_active(&self) -> bool {
        self.replay.is_some()
    }

    /// Disarms any in-flight replay (fallback path cleanup).
    pub fn clear_replay(&mut self) {
        self.replay = None;
    }

    /// Replay interception for one top-level op: returns the recorded
    /// result while replaying the prefix, or `None` once live (restoring
    /// the checkpoint on the transition). Panics with [`REPLAY_MISMATCH`]
    /// in the message if the op does not match the recording.
    fn replay_step(&mut self, make_key: impl FnOnce() -> OpKey) -> Option<OpResult> {
        self.replay.as_ref()?;
        let rs = self.replay.as_mut().expect("checked above");
        if rs.cursor >= rs.switch {
            let ckpt = Rc::clone(&rs.checkpoint);
            self.replay = None;
            self.restore(&ckpt);
            return None;
        }
        let key = make_key();
        let rec = &rs.ops[rs.cursor];
        if *rec.key() != key {
            let msg = format!(
                "{REPLAY_MISMATCH}: op {} was recorded as {:?} but the driver issued {:?}",
                rs.cursor,
                rec.key(),
                key
            );
            self.replay = None;
            panic!("{msg}");
        }
        let result = rec.result().clone();
        rs.cursor += 1;
        Some(result)
    }

    /// Appends one completed top-level op to the recording and runs the
    /// boundary probe. Only called at depth 0 with recording active.
    fn record_op(&mut self, key: OpKey, result: OpResult) {
        let Some(log) = &mut self.op_log else { return };
        log.push(OpRecord::new(key, result));
        let ops_done = log.len();
        if let Some(mut probe) = self.boundary_probe.take() {
            probe(self, ops_done);
            // A probe installed mid-probe would be a re-entrancy bug; keep
            // the original unless the probe replaced itself.
            if self.boundary_probe.is_none() {
                self.boundary_probe = Some(probe);
            }
        }
    }

    /// `true` when the current top-level op should be recorded.
    #[inline]
    fn recording_top_level(&self) -> bool {
        self.depth == 0 && self.op_log.is_some()
    }

    /// Roots `id` in the innermost live frame; no-op at driver level, where
    /// the driver is responsible for explicit [`Vm::root`]s.
    pub(crate) fn root_in_frame(&mut self, id: ObjId) {
        if !self.frame_starts.is_empty() {
            self.frame_roots.push(id);
            self.heap.root(id);
        }
    }

    /// Charges one guest heap operation against the budget. Overdrafting
    /// never aborts mid-body (bodies cannot observe exhaustion between two
    /// field writes); exhaustion surfaces as `BudgetExhausted` at the next
    /// dispatched call. A program that keeps touching the heap after that
    /// exception was *delivered*, though, is cut off by a panic — the
    /// campaign layer catches it and classifies the run as diverged.
    pub(crate) fn charge_heap_op(&mut self) {
        if self.fuel.reported() {
            panic!(
                "fuel budget exhausted after {} steps: guest heap activity continued past BudgetExhausted (run diverged)",
                self.fuel.spent()
            );
        }
        self.fuel.charge_heap_op();
        self.emit(|| TraceEvent::BudgetCharge {
            spent: self.fuel.spent(),
        });
    }

    fn dispatch(
        &mut self,
        mid: MethodId,
        recv: ObjId,
        args: &[Value],
        kind: CallKind,
    ) -> MethodResult {
        // The fuel check sits at the dispatch boundary: a run that diverges
        // (e.g. retrying a synthetically failed call forever) is cut off the
        // next time it calls anything. The first abort is a *guest*
        // exception, so atomicity wrappers up the stack still roll their
        // state back; if the program swallows it and keeps calling, the
        // escalation to a panic below is the only thing that can still end
        // the run (the campaign layer catches it as a divergence).
        if !self.fuel.charge_call() {
            if self.fuel.reported() {
                panic!(
                    "fuel budget exhausted after {} steps: guest calls continued past BudgetExhausted (run diverged)",
                    self.fuel.spent()
                );
            }
            self.fuel.mark_reported();
            self.emit(|| TraceEvent::BudgetExhausted {
                spent: self.fuel.spent(),
            });
            return Err(Exception::new(
                self.budget_exc,
                format!("fuel budget exhausted after {} steps", self.fuel.spent()),
            ));
        }
        let body = body_clone(&self.registry.method(mid).body);
        self.stats.calls[mid.index()] += 1;
        self.call_seq += 1;
        let site = CallSite {
            method: mid,
            class: self.registry.method_class(mid),
            recv,
            ref_args: args.iter().filter_map(Value::as_ref_id).collect(),
            depth: self.depth,
            kind,
            seq: self.call_seq,
        };
        self.emit(|| TraceEvent::CallEnter {
            method: mid,
            kind,
            depth: site.depth,
            seq: site.seq,
        });

        // New frame: receiver and reference arguments stay rooted for the
        // duration of the call.
        self.frame_starts.push(self.frame_roots.len());
        self.frame_roots.push(recv);
        self.heap.root(recv);
        for &a in &site.ref_args {
            self.heap.root(a);
            self.frame_roots.push(a);
        }

        let hook = self.hook.clone();
        let (body_ran, guard, mut result) = {
            match &hook {
                Some(h) => match h.borrow_mut().before(self, &site) {
                    Ok(g) => (true, g, None),
                    Err(e) => (false, None, Some(Err(e))),
                },
                None => (true, None, None),
            }
        };
        if result.is_none() {
            self.depth += 1;
            let outcome = {
                let mut ctx = Ctx::new(self);
                body(&mut ctx, recv, args)
            };
            self.depth -= 1;
            result = Some(outcome);
        }
        let mut result = result.expect("outcome decided above");

        // Pop the frame before `after` runs: once the callee returned or
        // threw, its locals are dead, so rollback cleanup inside `after`
        // may reclaim objects the failed callee allocated. The wrapper
        // itself still holds `this` and the by-reference arguments
        // (Listings 1 and 2 both reference them after the call), so their
        // entries — the first `1 + ref_args` roots of the frame, pushed
        // above — are left counted until the hooks are done.
        let start = self.frame_starts.pop().expect("frame pushed above");
        let held = start + 1 + site.ref_args.len();
        for id in self.frame_roots.drain(held..) {
            self.heap.unroot(id);
        }
        self.frame_roots.truncate(start);

        if body_ran {
            if let Some(h) = &hook {
                result = h.borrow_mut().after(self, &site, guard, result);
            }
        }
        self.heap.unroot(recv);
        for &a in &site.ref_args {
            self.heap.unroot(a);
        }

        self.emit(|| TraceEvent::CallExit {
            method: mid,
            seq: site.seq,
            threw: result.is_err(),
        });
        match &result {
            Ok(v) => {
                // Returned references become nameable by the caller.
                if let Some(id) = v.as_ref_id() {
                    self.root_in_frame(id);
                }
            }
            Err(e) => {
                self.emit(|| {
                    if site.depth > 0 {
                        TraceEvent::ExcPropagate {
                            method: mid,
                            exc: e.ty,
                            chain: e.chain,
                            depth: site.depth,
                        }
                    } else {
                        TraceEvent::ExcDeliver {
                            exc: e.ty,
                            chain: e.chain,
                        }
                    }
                });
                self.stats.exceptions_seen += 1;
                if self.registry.profile().enforce_declared
                    && !e.injected
                    && e.ty != self.budget_exc
                    && !self.registry.method(mid).declared.contains(&e.ty)
                    && !self.registry.runtime_exceptions().contains(&e.ty)
                {
                    self.stats.declaration_violations += 1;
                }
            }
        }
        result
    }
}

fn body_clone(body: &MethodBody) -> MethodBody {
    Rc::clone(body)
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("live_objects", &self.heap.len())
            .field("depth", &self.depth)
            .field("calls", &self.stats.total_calls())
            .field("hooked", &self.hook.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::registry::RegistryBuilder;

    fn counter_registry() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Counter", |c| {
            c.field("count", Value::Int(0));
            c.ctor(|ctx, this, args| {
                if let Some(Value::Int(start)) = args.first() {
                    ctx.set(this, "count", Value::Int(*start));
                }
                Ok(Value::Null)
            });
            c.method("increment", |ctx, this, _| {
                let v = ctx.get_int(this, "count");
                ctx.set(this, "count", Value::Int(v + 1));
                Ok(Value::Int(v + 1))
            });
            c.method("fail", |ctx, this, _| {
                let v = ctx.get_int(this, "count");
                ctx.set(this, "count", Value::Int(v + 100)); // non-atomic!
                Err(ctx.exception("RuntimeException", "boom"))
            });
        });
        rb.build()
    }

    #[test]
    fn construct_runs_ctor() {
        let mut vm = Vm::new(counter_registry());
        let c = vm.construct("Counter", &[Value::Int(5)]).unwrap();
        vm.root(c);
        assert_eq!(vm.heap().field(c, "count"), Some(Value::Int(5)));
    }

    #[test]
    fn call_dispatches_and_returns() {
        let mut vm = Vm::new(counter_registry());
        let c = vm.construct("Counter", &[]).unwrap();
        vm.root(c);
        assert_eq!(vm.call(c, "increment", &[]).unwrap(), Value::Int(1));
        assert_eq!(vm.call(c, "increment", &[]).unwrap(), Value::Int(2));
        // ctor + two increments: constructor calls are dispatched too.
        assert_eq!(vm.stats().calls.iter().sum::<u64>(), 3);
    }

    #[test]
    fn exceptions_propagate_with_partial_state() {
        let mut vm = Vm::new(counter_registry());
        let c = vm.construct("Counter", &[]).unwrap();
        vm.root(c);
        let err = vm.call(c, "fail", &[]).unwrap_err();
        assert!(!err.injected);
        assert_eq!(err.message, "boom");
        // The failed method left the object modified — the very problem the
        // paper is about.
        assert_eq!(vm.heap().field(c, "count"), Some(Value::Int(100)));
        assert_eq!(vm.stats().exceptions_seen, 1);
    }

    #[test]
    fn declared_violations_counted_under_java() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.exception("Undeclared");
        rb.class("A", |c| {
            c.method("m", |ctx, _, _| Err(ctx.exception("Undeclared", "x")));
        });
        let mut vm = Vm::new(rb.build());
        let a = vm.construct("A", &[]).unwrap();
        vm.root(a);
        let _ = vm.call(a, "m", &[]);
        assert_eq!(vm.stats().declaration_violations, 1);
    }

    #[test]
    fn declared_violations_ignored_under_cpp() {
        let mut rb = RegistryBuilder::new(Profile::cpp());
        rb.exception("Undeclared");
        rb.class("A", |c| {
            c.method("m", |ctx, _, _| Err(ctx.exception("Undeclared", "x")));
        });
        let mut vm = Vm::new(rb.build());
        let a = vm.construct("A", &[]).unwrap();
        vm.root(a);
        let _ = vm.call(a, "m", &[]);
        assert_eq!(vm.stats().declaration_violations, 0);
    }

    #[test]
    fn frame_roots_protect_working_objects_from_reclaim() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Builder", |c| {
            c.field("out", Value::Null);
            c.method("build", |ctx, this, _| {
                // A temporary that is unreachable from any field for a
                // while; reclaim during the frame must not free it.
                let tmp = ctx.alloc("Builder");
                ctx.vm().heap_mut().reclaim();
                assert!(ctx.vm().heap().is_live(tmp), "frame root lost");
                ctx.set(this, "out", Value::Ref(tmp));
                Ok(Value::Null)
            });
        });
        let mut vm = Vm::new(rb.build());
        let b = vm.construct("Builder", &[]).unwrap();
        vm.root(b);
        vm.call(b, "build", &[]).unwrap();
        assert!(vm.heap().field(b, "out").unwrap().as_ref_id().is_some());
    }

    #[test]
    fn returned_refs_stay_rooted_in_caller_frame() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Factory", |c| {
            c.field("dummy", Value::Null);
            c.method("make", |ctx, _, _| Ok(Value::Ref(ctx.alloc("Factory"))));
            c.method("use_make", |ctx, this, _| {
                let v = ctx.call(this, "make", &[])?;
                let id = v.as_ref_id().unwrap();
                ctx.vm().heap_mut().reclaim();
                assert!(ctx.vm().heap().is_live(id), "returned ref reclaimed");
                Ok(Value::Null)
            });
        });
        let mut vm = Vm::new(rb.build());
        let f = vm.construct("Factory", &[]).unwrap();
        vm.root(f);
        vm.call(f, "use_make", &[]).unwrap();
    }

    #[test]
    fn depth_is_zero_outside_calls() {
        let mut vm = Vm::new(counter_registry());
        assert_eq!(vm.depth(), 0);
        let c = vm.construct("Counter", &[]).unwrap();
        vm.root(c);
        vm.call(c, "increment", &[]).unwrap();
        assert_eq!(vm.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown class")]
    fn construct_unknown_class_panics() {
        let mut vm = Vm::new(counter_registry());
        let _ = vm.construct("Nope", &[]);
    }

    #[test]
    #[should_panic(expected = "has no method")]
    fn unknown_method_panics() {
        let mut vm = Vm::new(counter_registry());
        let c = vm.construct("Counter", &[]).unwrap();
        vm.root(c);
        let _ = vm.call(c, "nope", &[]);
    }

    #[test]
    fn exc_id_resolves_registered_names() {
        let vm = Vm::new(counter_registry());
        let id = vm.exc_id("RuntimeException");
        assert_eq!(vm.registry().exceptions().name(id), "RuntimeException");
    }

    fn spin_registry() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Spin", |c| {
            c.field("n", Value::Int(0));
            c.method("noop", |_, _, _| Ok(Value::Null));
            c.method("spin", |ctx, this, _| loop {
                ctx.call(this, "noop", &[])?;
            });
        });
        rb.build()
    }

    #[test]
    fn budget_cuts_off_diverging_run() {
        let mut vm = Vm::new(spin_registry());
        let s = vm.construct("Spin", &[]).unwrap();
        vm.root(s);
        vm.set_budget(crate::Budget::fuel(1_000));
        let err = vm.call(s, "spin", &[]).unwrap_err();
        assert_eq!(
            vm.registry().exceptions().name(err.ty),
            crate::ExceptionTable::BUDGET_EXHAUSTED
        );
        assert!(!err.injected);
        assert!(vm.fuel_exhausted());
        // Exhaustion is a distinguished condition, not an undeclared
        // application exception.
        assert_eq!(vm.stats().declaration_violations, 0);
    }

    #[test]
    fn default_budget_is_unlimited_but_metered() {
        let mut vm = Vm::new(counter_registry());
        assert_eq!(vm.budget(), crate::Budget::unlimited());
        let c = vm.construct("Counter", &[]).unwrap();
        vm.root(c);
        vm.call(c, "increment", &[]).unwrap();
        assert!(!vm.fuel_exhausted());
        // Fuel is still metered under an unlimited budget, so campaigns can
        // report consumption: ctor alloc + dispatches + field ops all count.
        assert!(vm.fuel_spent() >= 2);
    }

    #[test]
    fn heap_ops_charge_the_same_pool_as_calls() {
        let mut vm = Vm::new(counter_registry());
        let c = vm.construct("Counter", &[]).unwrap();
        vm.root(c);
        let before = vm.fuel_spent();
        vm.call(c, "increment", &[]).unwrap(); // one call + a get + a set
        assert!(vm.fuel_spent() >= before + 3);
    }

    #[test]
    fn set_budget_resets_spent_fuel() {
        let mut vm = Vm::new(counter_registry());
        let c = vm.construct("Counter", &[]).unwrap();
        vm.root(c);
        assert!(vm.fuel_spent() > 0);
        vm.set_budget(crate::Budget::fuel(50));
        assert_eq!(vm.fuel_spent(), 0);
        vm.call(c, "increment", &[]).unwrap();
        assert!(!vm.fuel_exhausted());
    }

    #[test]
    fn take_stats_leaves_zeroed_counters() {
        let mut vm = Vm::new(counter_registry());
        let c = vm.construct("Counter", &[]).unwrap();
        vm.root(c);
        vm.call(c, "increment", &[]).unwrap();
        let taken = vm.take_stats();
        assert_eq!(taken.total_calls(), 2);
        assert_eq!(vm.stats().total_calls(), 0);
        assert_eq!(vm.stats().calls.len(), taken.calls.len());
    }

    #[test]
    fn reset_for_run_matches_a_fresh_vm() {
        let shared = Rc::new(counter_registry());
        // Dirty a VM thoroughly: objects, stats, fuel, an open journal.
        let mut recycled = Vm::from_shared_registry(shared.clone());
        let c = recycled.construct("Counter", &[Value::Int(9)]).unwrap();
        recycled.root(c);
        recycled.call(c, "increment", &[]).unwrap();
        let _ = recycled.call(c, "fail", &[]);
        recycled.heap_mut().push_journal();
        recycled.set_budget(crate::Budget::fuel(10));

        recycled.reset_for_run();
        let mut fresh = Vm::from_shared_registry(shared);

        // Both universes now replay the same program identically: same
        // object ids, same exception chain ids, same stats and fuel.
        for vm in [&mut recycled, &mut fresh] {
            let c = vm.construct("Counter", &[]).unwrap();
            vm.root(c);
            vm.call(c, "increment", &[]).unwrap();
            let _ = vm.call(c, "fail", &[]);
        }
        assert_eq!(recycled.heap().len(), fresh.heap().len());
        let rc: Vec<_> = recycled.heap().iter().map(|(id, _)| id).collect();
        let fc: Vec<_> = fresh.heap().iter().map(|(id, _)| id).collect();
        assert_eq!(rc, fc, "object ids restart identically");
        assert_eq!(recycled.stats().calls, fresh.stats().calls);
        assert_eq!(
            recycled.stats().exceptions_seen,
            fresh.stats().exceptions_seen
        );
        assert_eq!(recycled.fuel_spent(), fresh.fuel_spent());
        assert_eq!(recycled.budget(), fresh.budget());
        assert_eq!(recycled.heap().journal_depth(), 0);
    }

    #[test]
    fn shared_registry_vms_are_equivalent() {
        let shared = Rc::new(counter_registry());
        let mut a = Vm::from_shared_registry(shared.clone());
        let mut b = Vm::from_shared_registry(shared);
        let ca = a.construct("Counter", &[]).unwrap();
        let cb = b.construct("Counter", &[]).unwrap();
        a.root(ca);
        b.root(cb);
        assert_eq!(
            a.call(ca, "increment", &[]).unwrap(),
            b.call(cb, "increment", &[]).unwrap()
        );
    }
}

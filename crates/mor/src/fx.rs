//! A fast, non-cryptographic hasher for the VM's interior maps.
//!
//! The dispatch and field-access hot paths hash short strings (method and
//! field names) on every guest operation; the standard library's SipHash
//! is DoS-resistant but costs several times more than the lookups around
//! it. This is the classic `FxHash` multiply-xor scheme (as used by the
//! Rust compiler): not DoS-resistant, which is fine here — every key is
//! authored by the embedding program, never by untrusted input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the `fxhash` scheme (64-bit golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state. One `u64`, folded a machine word at a time.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_enough() {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..256 {
            map.insert(format!("field_{i}"), i);
        }
        for i in 0..256 {
            assert_eq!(map.get(&format!("field_{i}")), Some(&i));
        }
    }

    #[test]
    fn length_disambiguates_zero_padded_tails() {
        use std::hash::Hasher;
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }
}

//! The managed heap: objects, reference counts, roots, reclamation.
//!
//! Object ids are never reused, so checkpoints can restore reclaimed objects
//! at their original identity (needed by the masking phase's rollback).
//!
//! Reclamation is **deferred**: field writes adjust reference counts but
//! never free; garbage is only released by the explicit [`Heap::reclaim`]
//! (reference-count cascade, acyclic structures) and [`Heap::collect`]
//! (mark–sweep from roots, cyclic structures). This mirrors the paper's
//! §5.1: rolled-back objects are cleaned up with automatic reference
//! counting, and cyclic structures need an off-the-shelf garbage collector.

use crate::class::ClassDef;
use crate::error::MorError;
use crate::ids::{ClassId, ObjId};
use crate::registry::Registry;
use crate::trace::{TraceEvent, TraceSink};
use crate::value::Value;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// A heap object: its class and its field values in schema order.
#[derive(Debug, PartialEq)]
pub struct Object {
    class: ClassId,
    fields: Vec<Value>,
}

// Manual `Clone` so `clone_from` reuses the field vector's allocation:
// checkpoint restore clones whole object tables into recycled storage, and
// per-object reallocation would dominate the restore cost.
impl Clone for Object {
    fn clone(&self) -> Self {
        Object {
            class: self.class,
            fields: self.fields.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.class = source.class;
        self.fields.clone_from(&source.fields);
    }
}

impl Object {
    /// Creates an object from parts (used by checkpoint restore).
    pub fn from_parts(class: ClassId, fields: Vec<Value>) -> Self {
        Object { class, fields }
    }

    /// The object's class.
    pub fn class_id(&self) -> ClassId {
        self.class
    }

    /// Field values in schema order.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }
}

/// Counters describing heap activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects ever allocated.
    pub allocated: u64,
    /// Objects released by [`Heap::reclaim`] (reference counting).
    pub reclaimed: u64,
    /// Objects released by [`Heap::collect`] (mark–sweep).
    pub collected: u64,
}

/// The write journal: one flat undo log shared by every open layer.
///
/// A *layer* is a pair of watermarks into the shared `writes`/`allocs`
/// logs; the entries recorded since the innermost watermark belong to the
/// innermost layer. Committing a layer therefore merges its entries into
/// the enclosing layer for free (pop the watermark, keep the entries),
/// instead of moving `O(entries)` values per nesting level as a
/// per-layer-vector representation would.
#[derive(Debug, Default)]
struct JournalLog {
    /// `(object, field slot, previous value)` in write order, across all
    /// open layers.
    writes: Vec<(ObjId, usize, Value)>,
    /// Objects allocated while any layer was open, in allocation order.
    allocs: Vec<ObjId>,
    /// Open layers, outermost first: `(writes watermark, allocs
    /// watermark)` at the moment the layer was pushed.
    layers: Vec<(usize, usize)>,
}

/// A structural copy of the whole heap at a quiescent boundary, captured
/// by [`Heap::checkpoint`] and reinstated by [`Heap::restore_checkpoint`].
/// Field values are `Rc`-shared with the heap they were captured from, so
/// the copy is O(live objects) refcount bumps plus the object table.
#[derive(Debug, Clone)]
pub struct HeapCheckpoint {
    objects: Vec<Option<Object>>,
    refcounts: Vec<usize>,
    root_counts: Vec<usize>,
    live: usize,
    stats: HeapStats,
}

impl HeapCheckpoint {
    /// Number of live objects captured.
    pub fn live(&self) -> usize {
        self.live
    }
}

/// The managed heap.
///
/// Object storage is a dense vector indexed by raw id (ids are allocated
/// contiguously from 1 and never reused), so field reads and writes on the
/// sweep hot path are O(1) array accesses rather than tree lookups. A
/// released object leaves a `None` slot behind — its identity stays
/// reserved for checkpoint resurrection.
#[derive(Debug)]
pub struct Heap {
    registry: Rc<Registry>,
    /// Slot `i` holds the object with raw id `i + 1`, or `None` once it
    /// has been released.
    objects: Vec<Option<Object>>,
    /// Heap-reference counts (roots excluded), parallel to `objects`.
    refcounts: Vec<usize>,
    /// Root-reference counts, parallel to `objects` (the dispatch hot
    /// path roots/unroots the receiver and by-ref arguments on every
    /// call, so this is an array index, not a hash lookup).
    root_counts: Vec<usize>,
    /// Number of `Some` entries in `objects`.
    live: usize,
    stats: HeapStats,
    journal: JournalLog,
    /// Bumped by every operation that can change the object graph; see
    /// [`Heap::mutation_epoch`].
    mutations: u64,
    tracer: Option<Rc<RefCell<dyn TraceSink>>>,
}

/// Storage index of an id: ids are dense from 1, so slot = raw − 1.
/// `None` for the (unallocatable) raw id 0.
#[inline]
fn slot_index(id: ObjId) -> Option<usize> {
    (id.into_raw() as usize).checked_sub(1)
}

impl Heap {
    /// Creates an empty heap over the given registry.
    pub fn new(registry: Rc<Registry>) -> Self {
        Heap {
            registry,
            objects: Vec::new(),
            refcounts: Vec::new(),
            root_counts: Vec::new(),
            live: 0,
            stats: HeapStats::default(),
            journal: JournalLog::default(),
            mutations: 0,
            tracer: None,
        }
    }

    /// A counter bumped by every operation that can change the object
    /// graph: field writes, allocations, rollbacks, restores, probes, and
    /// releases. Consumers memoizing derived graph data (e.g. structural
    /// fingerprints) compare epochs to detect staleness; an unchanged
    /// epoch guarantees the graph is byte-identical to when the memo was
    /// built.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutations
    }

    /// Resets the heap to its freshly-constructed state — all objects,
    /// roots, reference counts, journal layers, and stats are dropped and
    /// id allocation restarts at 1 — while retaining the storage
    /// capacity of the previous run. This is the reusable-universe reset:
    /// a recycled VM calls it between injection attempts instead of
    /// rebuilding a heap, so per-attempt cost is O(previous live set)
    /// drops with no fresh allocation.
    pub fn epoch_reset(&mut self) {
        self.objects.clear();
        self.refcounts.clear();
        self.root_counts.clear();
        self.live = 0;
        self.stats = HeapStats::default();
        self.journal.writes.clear();
        self.journal.allocs.clear();
        self.journal.layers.clear();
        self.mutations += 1;
    }

    /// Captures a structural copy of the entire heap: objects, reference
    /// counts, root counts, and allocation stats. O(live objects); field
    /// values are `Rc`-shared, so each copied value costs a refcount bump.
    ///
    /// # Panics
    ///
    /// Panics if a journal layer is open — checkpoints are only meaningful
    /// at quiescent top-level boundaries, where no undo state is pending.
    pub fn checkpoint(&self) -> HeapCheckpoint {
        assert!(
            self.journal.layers.is_empty(),
            "heap checkpoint with an open journal layer"
        );
        HeapCheckpoint {
            objects: self.objects.clone(),
            refcounts: self.refcounts.clone(),
            root_counts: self.root_counts.clone(),
            live: self.live,
            stats: self.stats,
        }
    }

    /// Reinstates a [`HeapCheckpoint`] wholesale, discarding the current
    /// contents. Storage is reused via `clone_from` (allocation-light on a
    /// recycled heap), any open journal layers are dropped, and the
    /// mutation epoch is bumped so memoized graph data (fingerprints) is
    /// invalidated rather than silently reused across the restore.
    pub fn restore_checkpoint(&mut self, ckpt: &HeapCheckpoint) {
        self.objects.clone_from(&ckpt.objects);
        self.refcounts.clone_from(&ckpt.refcounts);
        self.root_counts.clone_from(&ckpt.root_counts);
        self.live = ckpt.live;
        self.stats = ckpt.stats;
        self.journal.writes.clear();
        self.journal.allocs.clear();
        self.journal.layers.clear();
        self.mutations += 1;
    }

    /// Installs (or removes) the trace sink heap events are recorded on.
    /// Normally called through [`crate::Vm::set_tracer`], which shares one
    /// sink between the VM and its heap.
    pub fn set_tracer(&mut self, tracer: Option<Rc<RefCell<dyn TraceSink>>>) {
        self.tracer = tracer;
    }

    /// Emission helper: the closure only runs when a sink is installed.
    #[inline]
    fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(make());
        }
    }

    /// The registry this heap resolves classes against.
    pub fn registry(&self) -> &Rc<Registry> {
        &self.registry
    }

    /// Allocates a fresh instance of `class` with default field values.
    ///
    /// The new object starts with reference count zero and no roots; callers
    /// (normally the VM) must root it before anything can trigger
    /// reclamation.
    pub fn alloc(&mut self, class: &ClassDef) -> ObjId {
        let id = ObjId::from_raw(self.objects.len() as u64 + 1);
        let fields = class.default_fields();
        for v in &fields {
            if let Some(target) = v.as_ref_id() {
                self.inc_ref(target);
            }
        }
        self.objects.push(Some(Object {
            class: class.id,
            fields,
        }));
        self.refcounts.push(0);
        self.root_counts.push(0);
        self.live += 1;
        self.stats.allocated += 1;
        self.mutations += 1;
        if !self.journal.layers.is_empty() {
            self.journal.allocs.push(id);
        }
        self.emit(|| TraceEvent::HeapAlloc {
            obj: id,
            class: class.id,
        });
        id
    }

    /// Returns the object stored at `id`, if live.
    pub fn get(&self, id: ObjId) -> Option<&Object> {
        self.objects.get(slot_index(id)?)?.as_ref()
    }

    /// Returns `true` iff `id` denotes a live object.
    pub fn is_live(&self, id: ObjId) -> bool {
        self.get(id).is_some()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` iff no objects are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over all live objects in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &Object)> {
        self.objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| Some((ObjId::from_raw(i as u64 + 1), o.as_ref()?)))
    }

    /// Heap activity counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Reads a field by name.
    ///
    /// Returns `None` when the object is dead or the field does not exist.
    pub fn field(&self, id: ObjId, name: &str) -> Option<Value> {
        let obj = self.get(id)?;
        let class = self.registry.class(obj.class);
        let slot = class.field_slot(name)?;
        Some(obj.fields[slot].clone())
    }

    /// Reads a field by slot index.
    pub fn field_by_slot(&self, id: ObjId, slot: usize) -> Option<Value> {
        self.get(id)?.fields.get(slot).cloned()
    }

    /// Writes a field by name, maintaining reference counts.
    ///
    /// # Errors
    ///
    /// Returns [`MorError::DeadObject`] or [`MorError::UnknownField`].
    pub fn set_field(&mut self, id: ObjId, name: &str, value: Value) -> Result<(), MorError> {
        let class_id = self.get(id).ok_or(MorError::DeadObject(id))?.class;
        let class = self.registry.class(class_id);
        let slot = class
            .field_slot(name)
            .ok_or_else(|| MorError::UnknownField {
                class: class.name.clone(),
                field: name.to_owned(),
            })?;
        if let Some(target) = value.as_ref_id() {
            self.inc_ref(target);
        }
        let obj = self.get_slot_mut(id).expect("checked live above");
        let old = std::mem::replace(&mut obj.fields[slot], value);
        self.mutations += 1;
        // The undo record takes ownership of the displaced value — cloning
        // it here would put a deep `String` copy on every journaled write.
        let old_ref = old.as_ref_id();
        if !self.journal.layers.is_empty() {
            self.journal.writes.push((id, slot, old));
        }
        if let Some(target) = old_ref {
            self.dec_ref(target);
        }
        self.emit(|| TraceEvent::HeapWrite {
            obj: id,
            class: class_id,
            slot,
        });
        Ok(())
    }

    /// Adds a root reference to `id` (idempotent counting: every `root` must
    /// be paired with an [`Heap::unroot`]).
    pub fn root(&mut self, id: ObjId) {
        if let Some(n) = slot_index(id).and_then(|i| self.root_counts.get_mut(i)) {
            *n += 1;
        }
    }

    /// Removes one root reference from `id`.
    pub fn unroot(&mut self, id: ObjId) {
        if let Some(n) = slot_index(id).and_then(|i| self.root_counts.get_mut(i)) {
            *n = n.saturating_sub(1);
        }
    }

    /// Number of root references on `id`.
    pub fn root_count(&self, id: ObjId) -> usize {
        slot_index(id)
            .and_then(|i| self.root_counts.get(i))
            .copied()
            .unwrap_or(0)
    }

    /// Current reference count of `id` (heap references only, roots not
    /// included).
    pub fn refcount(&self, id: ObjId) -> usize {
        slot_index(id)
            .and_then(|i| self.refcounts.get(i))
            .copied()
            .unwrap_or(0)
    }

    /// Releases every unrooted object whose reference count is zero,
    /// cascading through acyclic structures. Returns the number of objects
    /// released.
    ///
    /// This is the paper's reference-counting rollback cleanup (§5.1
    /// limitation 4); cyclic garbage survives and needs [`Heap::collect`].
    pub fn reclaim(&mut self) -> usize {
        let mut worklist: Vec<ObjId> = self
            .iter()
            .map(|(id, _)| id)
            .filter(|id| self.refcount(*id) == 0 && self.root_count(*id) == 0)
            .collect();
        let mut freed = 0;
        while let Some(id) = worklist.pop() {
            let idx = slot_index(id).expect("worklist ids are allocated");
            let Some(obj) = self.objects[idx].take() else {
                continue;
            };
            freed += 1;
            self.refcounts[idx] = 0;
            self.live -= 1;
            for v in obj.fields {
                if let Some(target) = v.as_ref_id() {
                    self.dec_ref(target);
                    if self.is_live(target)
                        && self.refcount(target) == 0
                        && self.root_count(target) == 0
                    {
                        worklist.push(target);
                    }
                }
            }
        }
        self.stats.reclaimed += freed as u64;
        if freed > 0 {
            self.mutations += 1;
        }
        freed as usize
    }

    /// Mark–sweep collection from the root set. Releases cyclic garbage that
    /// [`Heap::reclaim`] cannot. Returns the number of objects released.
    ///
    /// Only call at points where no unrooted object ids are held by the
    /// embedding program (the VM guarantees this between top-level calls).
    pub fn collect(&mut self) -> usize {
        let mut marked: HashSet<ObjId> = HashSet::new();
        let mut stack: Vec<ObjId> = self
            .root_counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, _)| ObjId::from_raw(i as u64 + 1))
            .collect();
        while let Some(id) = stack.pop() {
            if !marked.insert(id) {
                continue;
            }
            if let Some(obj) = self.get(id) {
                for v in &obj.fields {
                    if let Some(target) = v.as_ref_id() {
                        if !marked.contains(&target) {
                            stack.push(target);
                        }
                    }
                }
            }
        }
        let dead: Vec<ObjId> = self
            .iter()
            .map(|(id, _)| id)
            .filter(|id| !marked.contains(id))
            .collect();
        let freed = dead.len();
        for id in dead {
            let idx = slot_index(id).expect("dead ids are allocated");
            self.objects[idx] = None;
            self.refcounts[idx] = 0;
            self.live -= 1;
        }
        if freed > 0 {
            self.recompute_refcounts();
            self.mutations += 1;
        }
        self.stats.collected += freed as u64;
        freed
    }

    /// Overwrites the full field vector of a live object **without**
    /// reference-count maintenance. Restore-only API: callers must follow up
    /// with [`Heap::recompute_refcounts`].
    pub fn restore_fields(&mut self, id: ObjId, fields: Vec<Value>) -> Result<(), MorError> {
        let obj = self.get_slot_mut(id).ok_or(MorError::DeadObject(id))?;
        assert_eq!(
            obj.fields.len(),
            fields.len(),
            "restore_fields: schema size mismatch for {id}"
        );
        obj.fields = fields;
        self.mutations += 1;
        Ok(())
    }

    /// Re-inserts a previously reclaimed object at its original id.
    /// Restore-only API: callers must follow up with
    /// [`Heap::recompute_refcounts`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is still live or was never allocated.
    pub fn resurrect(&mut self, id: ObjId, object: Object) {
        assert!(!self.is_live(id), "resurrect: {id} is live");
        let idx = slot_index(id).filter(|i| *i < self.objects.len());
        let idx = idx.unwrap_or_else(|| panic!("resurrect: {id} was never allocated"));
        self.objects[idx] = Some(object);
        self.live += 1;
        self.mutations += 1;
    }

    /// Rebuilds every reference count by scanning the heap. Used after
    /// checkpoint restore, which bypasses incremental maintenance.
    pub fn recompute_refcounts(&mut self) {
        self.refcounts.iter_mut().for_each(|n| *n = 0);
        self.refcounts.resize(self.objects.len(), 0);
        let mut counts: Vec<usize> = std::mem::take(&mut self.refcounts);
        for obj in self.objects.iter().flatten() {
            for v in &obj.fields {
                if let Some(target) = v.as_ref_id() {
                    if let Some(i) = slot_index(target) {
                        counts[i] += 1;
                    }
                }
            }
        }
        self.refcounts = counts;
    }

    /// Opens a new write-journal layer: every subsequent field write and
    /// allocation is recorded until the layer is committed or aborted.
    /// Layers nest (each wrapped call gets its own); writes always go to
    /// the innermost open layer.
    ///
    /// This is the heap half of the *undo-log* masking strategy, the
    /// copy-on-write style optimization the paper's §6.2 suggests for very
    /// large objects: instead of eagerly deep-copying the receiver's
    /// graph, record the writes actually performed and replay them
    /// backwards on failure.
    pub fn push_journal(&mut self) {
        self.journal
            .layers
            .push((self.journal.writes.len(), self.journal.allocs.len()));
        self.emit(|| TraceEvent::JournalPush {
            depth: self.journal.layers.len(),
        });
    }

    /// Number of open journal layers.
    pub fn journal_depth(&self) -> usize {
        self.journal.layers.len()
    }

    /// Entries recorded in the innermost open layer (writes, allocations).
    pub fn journal_len(&self) -> (usize, usize) {
        self.journal
            .layers
            .last()
            .map(|&(w, a)| (self.journal.writes.len() - w, self.journal.allocs.len() - a))
            .unwrap_or((0, 0))
    }

    /// Closes the innermost layer, keeping its effects. If an outer layer
    /// is open, the entries become part of it so an outer abort still
    /// undoes them — an `O(1)` watermark pop on the flat log, regardless
    /// of how many writes the layer recorded.
    ///
    /// # Panics
    ///
    /// Panics if no layer is open.
    pub fn commit_journal(&mut self) {
        self.emit(|| TraceEvent::JournalCommit {
            depth: self.journal.layers.len(),
        });
        self.journal
            .layers
            .pop()
            .expect("commit_journal: no open journal");
        if self.journal.layers.is_empty() {
            // Outermost layer closed: nothing can roll these entries back
            // any more, so release the log.
            self.journal.writes.clear();
            self.journal.allocs.clear();
        }
    }

    /// Closes the innermost layer and rolls back every write it recorded,
    /// newest first. Objects allocated under the layer become garbage once
    /// the rollback drops the references to them (reclaim with
    /// [`Heap::reclaim`]). Returns the number of writes undone.
    ///
    /// # Panics
    ///
    /// Panics if no layer is open.
    pub fn abort_journal(&mut self) -> usize {
        let (writes_mark, allocs_mark) = self
            .journal
            .layers
            .pop()
            .expect("abort_journal: no open journal");
        let undone = self.journal.writes.len() - writes_mark;
        self.emit(|| TraceEvent::JournalAbort {
            depth: self.journal.layers.len() + 1,
            undone,
        });
        let rollback: Vec<(ObjId, usize, Value)> =
            self.journal.writes.drain(writes_mark..).collect();
        self.journal.allocs.truncate(allocs_mark);
        if undone > 0 {
            self.mutations += 1;
        }
        for (id, slot, old) in rollback.into_iter().rev() {
            // Bypass journaling (the net effect must not be re-recorded),
            // but maintain reference counts.
            if let Some(target) = old.as_ref_id() {
                self.inc_ref(target);
            }
            let obj = self
                .get_slot_mut(id)
                .expect("journaled object cannot die while its layer is open");
            let class = obj.class;
            let current = std::mem::replace(&mut obj.fields[slot], old);
            if let Some(target) = current.as_ref_id() {
                self.dec_ref(target);
            }
            self.emit(|| TraceEvent::UndoWrite {
                obj: id,
                class,
                slot,
            });
        }
        undone
    }

    /// Read-only view of the heap **as it was when the innermost open
    /// journal layer was pushed**, reconstructed from the undo log:
    /// journaled writes are overlaid first-write-wins (the first recorded
    /// `old` value per field is the value at layer-open time) and objects
    /// allocated under the layer are treated as absent. Returns `None`
    /// when no layer is open.
    ///
    /// This is the paper's §6.2 capture optimization turned around: the
    /// detection wrapper's "deep copy before the call" becomes an
    /// `O(writes)` overlay over the live heap instead of an `O(graph)`
    /// eager snapshot.
    pub fn asof_innermost(&self) -> Option<AsOfHeap<'_>> {
        let &(writes_mark, allocs_mark) = self.journal.layers.last()?;
        let mut overlay: HashMap<(ObjId, usize), &Value> = HashMap::new();
        for (id, slot, old) in &self.journal.writes[writes_mark..] {
            overlay.entry((*id, *slot)).or_insert(old);
        }
        let born = self.journal.allocs[allocs_mark..].iter().copied().collect();
        Some(AsOfHeap {
            heap: self,
            overlay,
            born,
        })
    }

    /// The innermost open layer's write set, collapsed to one entry per
    /// heap cell: `(object, field slot, value at layer-open time)` in
    /// first-write order. Empty when no layer is open.
    ///
    /// This is the overlay [`Heap::asof_innermost`] builds, materialized —
    /// the divergence minimizer probes subsets of exactly these cells.
    pub fn journal_innermost_writes(&self) -> Vec<(ObjId, usize, Value)> {
        let Some(&(writes_mark, _)) = self.journal.layers.last() else {
            return Vec::new();
        };
        let mut seen: HashSet<(ObjId, usize)> = HashSet::new();
        let mut out = Vec::new();
        for (id, slot, old) in &self.journal.writes[writes_mark..] {
            if seen.insert((*id, *slot)) {
                out.push((*id, *slot, old.clone()));
            }
        }
        out
    }

    /// Returns `true` iff every heap cell written under the innermost open
    /// layer currently holds **exactly** its layer-open value (bit-level
    /// float comparison, matching canonical-trace equality), i.e. the
    /// layer's net effect on pre-existing objects is nil. `O(dirty)`.
    ///
    /// When this holds, the object graph reachable from any root that
    /// existed at layer-open time is structurally identical to its
    /// layer-open state, so a before/after comparison can conclude
    /// *atomic* without walking the graph at all. Objects **allocated**
    /// under the layer cannot break this: layer-open field values can only
    /// reference objects that already existed (ids are monotonic and never
    /// reused), so if every dirty cell reads its layer-open value, no cell
    /// reachable from a pre-existing root references a layer-born object.
    /// Reclamation never runs while a layer is open, so no pre-existing
    /// object can have vanished either. Returns `true` when no layer is
    /// open (an empty overlay changes nothing).
    pub fn journal_innermost_reverted(&self) -> bool {
        let Some(&(writes_mark, _)) = self.journal.layers.last() else {
            return true;
        };
        let mut seen: HashSet<(ObjId, usize)> = HashSet::new();
        for (id, slot, open_value) in &self.journal.writes[writes_mark..] {
            // First-write-wins: only the first recorded `old` per cell is
            // the layer-open value; later entries are intra-layer noise.
            if !seen.insert((*id, *slot)) {
                continue;
            }
            let Some(obj) = self.get(*id) else {
                return false;
            };
            if !obj.fields[*slot].bit_eq(open_value) {
                return false;
            }
        }
        true
    }

    /// The set of objects the innermost open layer touched: every object
    /// with a journaled field write plus every object allocated under the
    /// layer. Objects **not** in this set are bit-identical to their
    /// layer-open state, so memoized per-object data (structural
    /// fingerprints) computed against the live heap is still valid for the
    /// layer-open view. Empty when no layer is open.
    pub fn journal_innermost_touched(&self) -> HashSet<ObjId> {
        let Some(&(writes_mark, allocs_mark)) = self.journal.layers.last() else {
            return HashSet::new();
        };
        let mut touched: HashSet<ObjId> = self.journal.writes[writes_mark..]
            .iter()
            .map(|(id, _, _)| *id)
            .collect();
        touched.extend(self.journal.allocs[allocs_mark..].iter().copied());
        touched
    }

    /// Overwrites one field slot **without** reference-count, journal, or
    /// trace maintenance. Probe-only API for the divergence minimizer:
    /// callers flip a cell to a hypothetical value, inspect the graph, and
    /// must restore the original value before any other heap activity.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead or `slot` is out of schema range (host
    /// errors — probes only touch cells the journal recorded).
    pub fn probe_set_slot(&mut self, id: ObjId, slot: usize, value: Value) {
        let obj = self
            .get_slot_mut(id)
            .unwrap_or_else(|| panic!("probe_set_slot: dead object {id}"));
        obj.fields[slot] = value;
        self.mutations += 1;
    }

    #[inline]
    fn get_slot_mut(&mut self, id: ObjId) -> Option<&mut Object> {
        self.objects.get_mut(slot_index(id)?)?.as_mut()
    }

    #[inline]
    fn inc_ref(&mut self, id: ObjId) {
        if let Some(i) = slot_index(id) {
            if let Some(n) = self.refcounts.get_mut(i) {
                *n += 1;
            }
        }
    }

    #[inline]
    fn dec_ref(&mut self, id: ObjId) {
        if let Some(i) = slot_index(id) {
            if let Some(n) = self.refcounts.get_mut(i) {
                *n = n.saturating_sub(1);
            }
        }
    }
}

/// A read-only view of a [`Heap`] as of the innermost open journal layer
/// (see [`Heap::asof_innermost`]).
#[derive(Debug)]
pub struct AsOfHeap<'h> {
    heap: &'h Heap,
    /// First-write-wins overlay: the field's value at layer-open time.
    overlay: HashMap<(ObjId, usize), &'h Value>,
    /// Objects allocated under the layer — absent from the view.
    born: std::collections::HashSet<ObjId>,
}

impl AsOfHeap<'_> {
    /// The object's class and field values as of layer-open time, or
    /// `None` if the object did not exist then (allocated under the layer,
    /// or dead in the underlying heap).
    ///
    /// Objects live at layer-open time cannot have died since — deferred
    /// reclamation only runs between top-level calls, never while a
    /// wrapper's layer is open — so reading through the live heap plus the
    /// overlay is exact.
    pub fn node(&self, id: ObjId) -> Option<(ClassId, Vec<Value>)> {
        if self.born.contains(&id) {
            return None;
        }
        let obj = self.heap.get(id)?;
        let mut fields = obj.fields().to_vec();
        for (slot, field) in fields.iter_mut().enumerate() {
            if let Some(old) = self.overlay.get(&(id, slot)) {
                *field = (*old).clone();
            }
        }
        Some((obj.class_id(), fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::registry::RegistryBuilder;

    fn node_registry() -> Rc<Registry> {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Node", |c| {
            c.field("next", Value::Null);
            c.field("value", Value::Int(0));
        });
        Rc::new(rb.build())
    }

    fn heap() -> Heap {
        Heap::new(node_registry())
    }

    fn alloc_node(h: &mut Heap) -> ObjId {
        let class = h.registry().class_by_name("Node").unwrap().clone();
        h.alloc(&class)
    }

    #[test]
    fn alloc_uses_schema_defaults() {
        let mut h = heap();
        let id = alloc_node(&mut h);
        assert_eq!(h.field(id, "next"), Some(Value::Null));
        assert_eq!(h.field(id, "value"), Some(Value::Int(0)));
        assert_eq!(h.len(), 1);
        assert_eq!(h.stats().allocated, 1);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.reclaim();
        assert!(!h.is_live(a));
        let b = alloc_node(&mut h);
        assert_ne!(a, b);
    }

    #[test]
    fn set_field_maintains_refcounts() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        let b = alloc_node(&mut h);
        h.root(a);
        h.set_field(a, "next", Value::Ref(b)).unwrap();
        assert_eq!(h.refcount(b), 1);
        h.set_field(a, "next", Value::Null).unwrap();
        assert_eq!(h.refcount(b), 0);
    }

    #[test]
    fn reclaim_cascades_through_chains() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        let b = alloc_node(&mut h);
        let c = alloc_node(&mut h);
        h.root(a);
        h.set_field(a, "next", Value::Ref(b)).unwrap();
        h.set_field(b, "next", Value::Ref(c)).unwrap();
        assert_eq!(h.reclaim(), 0, "everything reachable from root");
        h.set_field(a, "next", Value::Null).unwrap();
        assert_eq!(h.reclaim(), 2, "b and c cascade");
        assert!(h.is_live(a));
        assert_eq!(h.stats().reclaimed, 2);
    }

    #[test]
    fn reclaim_spares_rooted_objects() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        assert_eq!(h.reclaim(), 0);
        h.unroot(a);
        assert_eq!(h.reclaim(), 1);
    }

    #[test]
    fn refcounting_cannot_free_cycles_but_collect_can() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        let b = alloc_node(&mut h);
        h.root(a);
        h.set_field(a, "next", Value::Ref(b)).unwrap();
        h.set_field(b, "next", Value::Ref(a)).unwrap();
        h.unroot(a);
        // a and b refer to each other: refcounts never drop to zero.
        assert_eq!(h.reclaim(), 0);
        assert_eq!(h.len(), 2);
        // Mark-sweep from the (empty) root set frees both.
        assert_eq!(h.collect(), 2);
        assert!(h.is_empty());
        assert_eq!(h.stats().collected, 2);
    }

    #[test]
    fn collect_keeps_rooted_cycles() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        let b = alloc_node(&mut h);
        h.root(a);
        h.set_field(a, "next", Value::Ref(b)).unwrap();
        h.set_field(b, "next", Value::Ref(a)).unwrap();
        assert_eq!(h.collect(), 0);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn resurrect_restores_identity() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        let snapshot = h.get(a).unwrap().clone();
        h.reclaim();
        assert!(!h.is_live(a));
        h.resurrect(a, snapshot);
        h.recompute_refcounts();
        assert!(h.is_live(a));
        assert_eq!(h.field(a, "value"), Some(Value::Int(0)));
    }

    #[test]
    #[should_panic(expected = "is live")]
    fn resurrect_live_object_panics() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        let obj = h.get(a).unwrap().clone();
        h.resurrect(a, obj);
    }

    #[test]
    fn recompute_refcounts_matches_incremental() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        let b = alloc_node(&mut h);
        h.root(a);
        h.root(b);
        h.set_field(a, "next", Value::Ref(b)).unwrap();
        h.set_field(b, "next", Value::Ref(b)).unwrap(); // self loop
        let before: Vec<usize> = [a, b].iter().map(|id| h.refcount(*id)).collect();
        h.recompute_refcounts();
        let after: Vec<usize> = [a, b].iter().map(|id| h.refcount(*id)).collect();
        assert_eq!(before, after);
        assert_eq!(h.refcount(b), 2);
    }

    #[test]
    fn journal_abort_rolls_back_writes() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        h.set_field(a, "value", Value::Int(1)).unwrap();
        h.push_journal();
        h.set_field(a, "value", Value::Int(2)).unwrap();
        h.set_field(a, "value", Value::Int(3)).unwrap();
        assert_eq!(h.journal_len(), (2, 0));
        assert_eq!(h.abort_journal(), 2);
        assert_eq!(h.field(a, "value"), Some(Value::Int(1)));
        assert_eq!(h.journal_depth(), 0);
    }

    #[test]
    fn journal_commit_keeps_writes_and_merges() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        h.push_journal(); // outer
        h.set_field(a, "value", Value::Int(1)).unwrap();
        h.push_journal(); // inner
        h.set_field(a, "value", Value::Int(2)).unwrap();
        h.commit_journal(); // inner effects survive, but merge into outer
        assert_eq!(h.field(a, "value"), Some(Value::Int(2)));
        assert_eq!(h.journal_len(), (2, 0), "inner entries merged into outer");
        h.abort_journal(); // outer abort undoes both
        assert_eq!(h.field(a, "value"), Some(Value::Int(0)));
    }

    #[test]
    fn nested_abort_then_outer_abort() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        h.push_journal();
        h.set_field(a, "value", Value::Int(1)).unwrap();
        h.push_journal();
        h.set_field(a, "value", Value::Int(2)).unwrap();
        h.abort_journal(); // inner rollback
        assert_eq!(h.field(a, "value"), Some(Value::Int(1)));
        h.abort_journal(); // outer rollback
        assert_eq!(h.field(a, "value"), Some(Value::Int(0)));
    }

    #[test]
    fn journal_rollback_maintains_refcounts_and_garbage() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        let b = alloc_node(&mut h);
        h.set_field(a, "next", Value::Ref(b)).unwrap();
        h.push_journal();
        let c = alloc_node(&mut h);
        h.set_field(a, "next", Value::Ref(c)).unwrap();
        assert_eq!(h.refcount(b), 0);
        h.abort_journal();
        assert_eq!(h.refcount(b), 1, "b is referenced again after rollback");
        assert_eq!(h.refcount(c), 0, "c dropped by rollback");
        assert_eq!(h.reclaim(), 1, "c is garbage");
        assert!(h.is_live(b));
    }

    #[test]
    #[should_panic(expected = "no open journal")]
    fn abort_without_journal_panics() {
        let mut h = heap();
        h.abort_journal();
    }

    #[test]
    fn asof_view_reconstructs_layer_open_state() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        h.set_field(a, "value", Value::Int(1)).unwrap();
        assert!(h.asof_innermost().is_none(), "no layer open");
        h.push_journal();
        h.set_field(a, "value", Value::Int(2)).unwrap();
        h.set_field(a, "value", Value::Int(3)).unwrap();
        let b = alloc_node(&mut h);
        h.set_field(a, "next", Value::Ref(b)).unwrap();
        let asof = h.asof_innermost().unwrap();
        let (_, fields) = asof.node(a).unwrap();
        // First-write-wins: `value` reads 1 (the layer-open value, not 2),
        // `next` reads Null.
        assert_eq!(fields[1], Value::Int(1));
        assert_eq!(fields[0], Value::Null);
        // Objects allocated under the layer did not exist at layer open.
        assert!(asof.node(b).is_none());
    }

    #[test]
    fn asof_view_sees_through_inner_committed_layers() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        h.push_journal(); // outer (the observing wrapper's layer)
        h.set_field(a, "value", Value::Int(1)).unwrap();
        h.push_journal(); // inner (a nested wrapped call)
        h.set_field(a, "value", Value::Int(2)).unwrap();
        h.commit_journal(); // inner completes normally
        let asof = h.asof_innermost().unwrap();
        let (_, fields) = asof.node(a).unwrap();
        assert_eq!(
            fields[1],
            Value::Int(0),
            "committed inner writes still overlay back to the outer layer's open state"
        );
        h.commit_journal();
        assert_eq!(h.journal_len(), (0, 0));
    }

    #[test]
    fn epoch_reset_restores_pristine_state_and_id_sequence() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        h.push_journal();
        h.set_field(a, "value", Value::Int(7)).unwrap();
        h.epoch_reset();
        assert!(h.is_empty());
        assert_eq!(h.journal_depth(), 0);
        assert_eq!(h.root_count(a), 0);
        assert_eq!(h.stats(), HeapStats::default());
        // Id allocation restarts at 1, exactly like a fresh heap.
        let b = alloc_node(&mut h);
        assert_eq!(b.into_raw(), 1);
        assert_eq!(h.field(b, "value"), Some(Value::Int(0)));
    }

    #[test]
    fn mutation_epoch_tracks_graph_changes() {
        let mut h = heap();
        let e0 = h.mutation_epoch();
        let a = alloc_node(&mut h);
        h.root(a);
        let e1 = h.mutation_epoch();
        assert_ne!(e0, e1, "alloc bumps the epoch");
        h.set_field(a, "value", Value::Int(1)).unwrap();
        let e2 = h.mutation_epoch();
        assert_ne!(e1, e2, "writes bump the epoch");
        assert_eq!(
            h.field(a, "value"),
            Some(Value::Int(1)),
            "reads do not bump"
        );
        assert_eq!(h.mutation_epoch(), e2);
        h.push_journal();
        assert_eq!(h.mutation_epoch(), e2, "opening a layer is not a mutation");
        h.set_field(a, "value", Value::Int(2)).unwrap();
        let e3 = h.mutation_epoch();
        h.abort_journal();
        assert_ne!(h.mutation_epoch(), e3, "rollback bumps the epoch");
    }

    #[test]
    fn journal_innermost_reverted_detects_nil_net_effect() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        assert!(h.journal_innermost_reverted(), "no layer open");
        h.push_journal();
        assert!(h.journal_innermost_reverted(), "no writes yet");
        h.set_field(a, "value", Value::Int(5)).unwrap();
        assert!(!h.journal_innermost_reverted());
        h.set_field(a, "value", Value::Int(0)).unwrap();
        assert!(
            h.journal_innermost_reverted(),
            "back to the layer-open value"
        );
        h.commit_journal();
    }

    #[test]
    fn journal_innermost_reverted_is_float_bit_exact() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("F", |c| {
            c.field("x", Value::Float(0.0));
        });
        let mut h = Heap::new(Rc::new(rb.build()));
        let class = h.registry().class_by_name("F").unwrap().clone();
        let a = h.alloc(&class);
        h.root(a);
        h.push_journal();
        h.set_field(a, "x", Value::Float(-0.0)).unwrap();
        // -0.0 == 0.0 under PartialEq, but the canonical trace compares
        // float bits — the fast path must agree with the trace.
        assert!(!h.journal_innermost_reverted());
        h.set_field(a, "x", Value::Float(0.0)).unwrap();
        assert!(h.journal_innermost_reverted());
        h.commit_journal();
    }

    #[test]
    fn journal_innermost_touched_is_writes_plus_births() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        let b = alloc_node(&mut h);
        h.root(a);
        h.root(b);
        assert!(h.journal_innermost_touched().is_empty(), "no layer open");
        h.push_journal();
        h.set_field(a, "value", Value::Int(1)).unwrap();
        let c = alloc_node(&mut h);
        let touched = h.journal_innermost_touched();
        assert!(touched.contains(&a), "written object");
        assert!(touched.contains(&c), "layer-born object");
        assert!(!touched.contains(&b), "untouched object stays clean");
        h.commit_journal();
    }

    #[test]
    fn set_field_on_dead_object_errors() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.reclaim();
        assert_eq!(
            h.set_field(a, "next", Value::Null),
            Err(MorError::DeadObject(a))
        );
    }

    #[test]
    fn set_unknown_field_errors() {
        let mut h = heap();
        let a = alloc_node(&mut h);
        h.root(a);
        assert!(matches!(
            h.set_field(a, "nope", Value::Null),
            Err(MorError::UnknownField { .. })
        ));
    }
}

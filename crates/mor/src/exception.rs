//! Guest-level exceptions.
//!
//! Rust has no exceptions, so the runtime models them the idiomatic way: as
//! the `Err` arm of [`MethodResult`], propagated callee→caller by the call
//! dispatcher. Application code "catches" an exception by matching on the
//! `Result` returned from [`crate::Ctx::call`] and "rethrows" by returning
//! the `Err` — exactly the propagation structure the paper's wrappers
//! (Listings 1 and 2) interpose on.

use crate::ids::{ExcId, MethodId};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Result of a guest method call: a return value or a propagating exception.
pub type MethodResult = Result<Value, Exception>;

/// A guest exception in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Exception {
    /// Interned exception type.
    pub ty: ExcId,
    /// Human-readable message.
    pub message: String,
    /// `true` iff this exception was synthesized by the fault injector
    /// rather than thrown by application code.
    pub injected: bool,
    /// The method whose injection wrapper synthesized the exception, if
    /// injected. Used by the policy layer (§4.3 of the paper) to discount
    /// injections into methods annotated as exception-free.
    pub injected_into: Option<MethodId>,
    /// Propagation-chain identity: every *created* exception gets a fresh
    /// id; rethrowing (cloning/returning the same value) preserves it. The
    /// classifier uses this to find the first method marked non-atomic
    /// *per propagation chain* (Def. 3's pure/conditional rule), even when
    /// a single program run sees several independent exceptions. Ids are
    /// unique within one VM's lifetime (the counter restarts per VM, so
    /// identical runs produce identical records).
    pub chain: u64,
}

thread_local! {
    static NEXT_CHAIN: std::cell::Cell<u64> = const { std::cell::Cell::new(1) };
}

fn fresh_chain() -> u64 {
    NEXT_CHAIN.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Restarts the chain counter at 1. Called whenever a fresh [`crate::Vm`]
/// is created: chain ids only need to be unique within one VM's lifetime
/// (the classifier groups marks per run), and resetting makes every run's
/// records — and therefore campaign journals — deterministic instead of
/// dependent on how many exceptions the process created before.
pub(crate) fn reset_chains() {
    NEXT_CHAIN.with(|c| c.set(1));
}

/// The chain-counter watermark: the id the *next* created exception will
/// receive. Captured into VM checkpoints so a restored run hands out the
/// same chain ids a from-scratch run would.
pub(crate) fn chain_watermark() -> u64 {
    NEXT_CHAIN.with(|c| c.get())
}

/// Rewinds (or advances) the chain counter to a captured watermark;
/// checkpoint restore only.
pub(crate) fn set_chain_watermark(next: u64) {
    NEXT_CHAIN.with(|c| c.set(next));
}

impl Exception {
    /// Creates an application-thrown exception.
    pub fn new(ty: ExcId, message: impl Into<String>) -> Self {
        Exception {
            ty,
            message: message.into(),
            injected: false,
            injected_into: None,
            chain: fresh_chain(),
        }
    }

    /// Creates an injector-synthesized exception attributed to `target`.
    pub fn injected(ty: ExcId, target: MethodId) -> Self {
        Exception {
            ty,
            message: "injected".to_owned(),
            injected: true,
            injected_into: Some(target),
            chain: fresh_chain(),
        }
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.injected {
            write!(f, "[injected {}] {}", self.ty, self.message)
        } else {
            write!(f, "[{}] {}", self.ty, self.message)
        }
    }
}

impl std::error::Error for Exception {}

/// Interning table for exception type names.
///
/// A handful of universal types are always present (see
/// [`ExceptionTable::new`]); profiles and applications register more.
#[derive(Debug, Clone, Default)]
pub struct ExceptionTable {
    names: Vec<String>,
    by_name: HashMap<String, ExcId>,
}

impl ExceptionTable {
    /// Name of the always-present null-dereference exception.
    pub const NULL_POINTER: &'static str = "NullPointerException";

    /// Name of the always-present fuel-exhaustion exception thrown by the
    /// VM when a [`crate::Budget`] runs out (never injected, never part of
    /// a profile's runtime-exception set).
    pub const BUDGET_EXHAUSTED: &'static str = "BudgetExhausted";

    /// Creates a table pre-populated with the universal exception types.
    pub fn new() -> Self {
        let mut t = ExceptionTable::default();
        t.intern(Self::NULL_POINTER);
        t.intern(Self::BUDGET_EXHAUSTED);
        t
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> ExcId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = ExcId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<ExcId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn name(&self, id: ExcId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned exception types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` iff no types are interned (never the case for tables
    /// created with [`ExceptionTable::new`]).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ExcId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ExcId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = ExceptionTable::new();
        let a = t.intern("IOError");
        let b = t.intern("IOError");
        assert_eq!(a, b);
        assert_eq!(t.name(a), "IOError");
        assert_eq!(t.lookup("IOError"), Some(a));
        assert_eq!(t.lookup("Nope"), None);
    }

    #[test]
    fn universal_types_are_preinterned() {
        let t = ExceptionTable::new();
        assert!(t.lookup(ExceptionTable::NULL_POINTER).is_some());
        assert!(t.lookup(ExceptionTable::BUDGET_EXHAUSTED).is_some());
        assert!(!t.is_empty());
    }

    #[test]
    fn exception_constructors() {
        let mut t = ExceptionTable::new();
        let io = t.intern("IOError");
        let e = Exception::new(io, "disk on fire");
        assert!(!e.injected);
        assert_eq!(e.message, "disk on fire");
        let m = MethodId::from_raw(3);
        let inj = Exception::injected(io, m);
        assert!(inj.injected);
        assert_eq!(inj.injected_into, Some(m));
    }

    #[test]
    fn display_marks_injected() {
        let mut t = ExceptionTable::new();
        let io = t.intern("IOError");
        let e = Exception::injected(io, MethodId::from_raw(0));
        assert!(e.to_string().contains("injected"));
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = ExceptionTable::new();
        t.intern("A");
        t.intern("B");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(
            names,
            vec![
                ExceptionTable::NULL_POINTER,
                ExceptionTable::BUDGET_EXHAUSTED,
                "A",
                "B"
            ]
        );
    }
}

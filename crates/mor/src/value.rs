//! Runtime values: the leaves and edges of object graphs.

use crate::ids::ObjId;
use std::fmt;
use std::rc::Rc;

/// A runtime value — the content of an object field, a method argument, or a
/// method return value.
///
/// Mirrors Definition 1 of the paper: a node of an object graph is either an
/// object (here: a [`Value::Ref`] edge to it) or an instance of a basic data
/// type. `Null` is the null pointer (a node with no children).
///
/// Equality of `Value`s is *shallow*: two `Ref`s are equal iff they point to
/// the same object. Graph-level (deep, sharing-aware) equality is provided by
/// `atomask-objgraph`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The null pointer.
    #[default]
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit IEEE float. Compared bitwise (so `NaN == NaN` here), which
    /// keeps object-graph comparison a proper equivalence.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An immutable string (a basic data instance, not a heap object —
    /// mirroring the paper's Java limitation that core classes like
    /// `String` are not instrumented). Shared rather than owned: the
    /// sweep engine clones every field read and journals every displaced
    /// write, and a reference-count bump keeps those paths free of deep
    /// copies.
    Str(Rc<str>),
    /// A reference to a heap object.
    Ref(ObjId),
}

impl Value {
    /// Returns the referenced object id, if this value is a non-null
    /// reference.
    ///
    /// ```
    /// use atomask_mor::{ObjId, Value};
    /// assert_eq!(Value::Ref(ObjId::from_raw(3)).as_ref_id(), Some(ObjId::from_raw(3)));
    /// assert_eq!(Value::Null.as_ref_id(), None);
    /// ```
    pub fn as_ref_id(&self) -> Option<ObjId> {
        match self {
            Value::Ref(id) => Some(*id),
            _ => None,
        }
    }

    /// Returns the integer payload, if this value is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, if this value is a [`Value::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this value is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` iff this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Structural equality that compares floats bitwise, making it a true
    /// equivalence relation (usable in canonical graph traces).
    pub fn bit_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (a, b) => a == b,
        }
    }

    /// Approximate size in bytes of the basic-data payload, used for
    /// checkpoint-size accounting (Fig. 5 of the paper).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len(),
            Value::Ref(_) => 8,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(id) => write!(f, "{id}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Rc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Rc::from(v))
    }
}

impl From<Rc<str>> for Value {
    fn from(v: Rc<str>) -> Self {
        Value::Str(v)
    }
}

impl From<ObjId> for Value {
    fn from(id: ObjId) -> Self {
        Value::Ref(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(5).as_bool(), None);
    }

    #[test]
    fn bit_eq_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert!(nan.bit_eq(&Value::Float(f64::NAN)));
        assert_ne!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert!(!Value::Float(0.0).bit_eq(&Value::Float(-0.0)));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(
            Value::from(ObjId::from_raw(2)),
            Value::Ref(ObjId::from_raw(2))
        );
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Value::Null.payload_bytes(), 0);
        assert_eq!(Value::Int(1).payload_bytes(), 8);
        assert_eq!(Value::Str("abcd".into()).payload_bytes(), 4);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
    }
}

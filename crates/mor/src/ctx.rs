//! The execution context handed to guest method bodies.
//!
//! All state access in application code goes through [`Ctx`], which is what
//! makes every field read/write and every nested call visible to the
//! runtime — the property the paper obtains from instrumenting a managed
//! language.
//!
//! Host-level misuse (wrong field name, dead object, type confusion on the
//! typed getters) **panics** with a descriptive message: these are bugs in
//! the embedded application code, not guest-level error conditions. Guest
//! error conditions are [`crate::Exception`]s returned as `Err`.

use crate::exception::{Exception, ExceptionTable, MethodResult};
use crate::ids::ObjId;
use crate::value::Value;
use crate::vm::Vm;

/// Handle through which method bodies read and mutate guest state.
#[derive(Debug)]
pub struct Ctx<'vm> {
    vm: &'vm mut Vm,
}

impl<'vm> Ctx<'vm> {
    pub(crate) fn new(vm: &'vm mut Vm) -> Self {
        Ctx { vm }
    }

    /// Escape hatch to the underlying VM (drivers and tests; application
    /// bodies should not need it).
    pub fn vm(&mut self) -> &mut Vm {
        self.vm
    }

    /// Reads a field.
    ///
    /// Reference values read this way are rooted in the current frame, so
    /// they remain valid for the rest of the enclosing method body.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is dead or has no field `name`.
    pub fn get(&mut self, obj: ObjId, name: &str) -> Value {
        self.vm.charge_heap_op();
        let v = self
            .vm
            .heap()
            .field(obj, name)
            .unwrap_or_else(|| panic!("get: no field `{name}` on live object {obj}"));
        if let Some(id) = v.as_ref_id() {
            self.vm.root_in_frame(id);
        }
        v
    }

    /// Reads an integer field.
    ///
    /// # Panics
    ///
    /// Panics if the field is missing or not an [`Value::Int`].
    pub fn get_int(&mut self, obj: ObjId, name: &str) -> i64 {
        self.get(obj, name)
            .as_int()
            .unwrap_or_else(|| panic!("field `{name}` of {obj} is not an Int"))
    }

    /// Reads a boolean field.
    ///
    /// # Panics
    ///
    /// Panics if the field is missing or not a [`Value::Bool`].
    pub fn get_bool(&mut self, obj: ObjId, name: &str) -> bool {
        self.get(obj, name)
            .as_bool()
            .unwrap_or_else(|| panic!("field `{name}` of {obj} is not a Bool"))
    }

    /// Reads a string field. The returned handle shares the field's
    /// storage (strings are immutable basic data), so reading is free of
    /// deep copies.
    ///
    /// # Panics
    ///
    /// Panics if the field is missing or not a [`Value::Str`].
    pub fn get_str(&mut self, obj: ObjId, name: &str) -> std::rc::Rc<str> {
        match self.get(obj, name) {
            Value::Str(s) => s,
            _ => panic!("field `{name}` of {obj} is not a Str"),
        }
    }

    /// Reads a reference field: `Some(id)` for a reference, `None` for
    /// null.
    ///
    /// # Panics
    ///
    /// Panics if the field is missing or holds a non-reference, non-null
    /// value.
    pub fn get_ref(&mut self, obj: ObjId, name: &str) -> Option<ObjId> {
        match self.get(obj, name) {
            Value::Ref(id) => Some(id),
            Value::Null => None,
            other => panic!("field `{name}` of {obj} is not a reference (got {other})"),
        }
    }

    /// Writes a field.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is dead or has no field `name`.
    pub fn set(&mut self, obj: ObjId, name: &str, value: Value) {
        self.vm.charge_heap_op();
        self.vm
            .heap_mut()
            .set_field(obj, name, value)
            .unwrap_or_else(|e| panic!("set `{name}` on {obj}: {e}"));
    }

    /// Calls a method on a known-live receiver.
    ///
    /// # Errors
    ///
    /// Propagates the callee's guest exception.
    pub fn call(&mut self, recv: ObjId, method: &str, args: &[Value]) -> MethodResult {
        self.vm.call(recv, method, args)
    }

    /// Calls a method on a `Value` receiver, throwing the guest
    /// `NullPointerException` when the receiver is null (Java semantics).
    ///
    /// # Errors
    ///
    /// `NullPointerException` on a null receiver, or the callee's guest
    /// exception.
    ///
    /// # Panics
    ///
    /// Panics if the receiver value is a non-reference basic value.
    pub fn call_value(&mut self, recv: &Value, method: &str, args: &[Value]) -> MethodResult {
        match recv {
            Value::Ref(id) => self.vm.call(*id, method, args),
            Value::Null => Err(self.npe(method)),
            other => panic!("call_value: receiver {other} is not an object"),
        }
    }

    /// Constructs an instance of `class_name` (dispatching its constructor
    /// through the interposable boundary).
    ///
    /// # Errors
    ///
    /// Propagates guest exceptions thrown or injected in the constructor.
    pub fn new_object(&mut self, class_name: &str, args: &[Value]) -> Result<ObjId, Exception> {
        self.vm.construct(class_name, args)
    }

    /// Allocates an instance without running its constructor.
    pub fn alloc(&mut self, class_name: &str) -> ObjId {
        self.vm.alloc_raw(class_name)
    }

    /// Builds a guest exception of a registered type. Bodies throw with
    /// `return Err(ctx.exception("IOError", "disk on fire"))`.
    ///
    /// # Panics
    ///
    /// Panics if the exception type was never registered.
    pub fn exception(&mut self, ty: &str, message: impl Into<String>) -> Exception {
        let id = self.vm.exc_id(ty);
        let e = Exception::new(id, message);
        self.vm.trace(crate::TraceEvent::ExcThrow {
            exc: e.ty,
            chain: e.chain,
        });
        e
    }

    /// Builds the guest `NullPointerException`.
    pub fn npe(&mut self, what: &str) -> Exception {
        let id = self.vm.exc_id(ExceptionTable::NULL_POINTER);
        let e = Exception::new(id, format!("null receiver in `{what}`"));
        self.vm.trace(crate::TraceEvent::ExcThrow {
            exc: e.ty,
            chain: e.chain,
        });
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::registry::RegistryBuilder;

    fn vm() -> Vm {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.exception("AppError");
        rb.class("Box", |c| {
            c.field("item", Value::Null);
            c.field("label", Value::from(""));
            c.field("count", Value::Int(0));
            c.field("open", Value::Bool(false));
            c.method("poke", |_, _, _| Ok(Value::Int(7)));
            c.method("fetch", |ctx, this, _| {
                let item = ctx.get(this, "item");
                ctx.call_value(&item, "poke", &[])
            });
            c.method("throwing", |ctx, _, _| {
                Err(ctx.exception("AppError", "thrown by body"))
            });
        });
        Vm::new(rb.build())
    }

    fn with_body(test: impl Fn(&mut Ctx<'_>, ObjId) -> MethodResult + 'static) -> (Vm, ObjId) {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("T", |c| {
            c.field("item", Value::Null);
            c.method("run", move |ctx, this, _| test(ctx, this));
        });
        let mut vm = Vm::new(rb.build());
        let t = vm.construct("T", &[]).unwrap();
        vm.root(t);
        (vm, t)
    }

    #[test]
    fn defaults_follow_schema() {
        let mut v = vm();
        let b = v.construct("Box", &[]).unwrap();
        v.root(b);
        assert_eq!(v.heap().field(b, "count"), Some(Value::Int(0)));
        assert_eq!(v.heap().field(b, "open"), Some(Value::Bool(false)));
        assert_eq!(v.heap().field(b, "label"), Some(Value::from("")));
    }

    #[test]
    fn call_value_null_receiver_throws_npe() {
        let mut v = vm();
        let b = v.construct("Box", &[]).unwrap();
        v.root(b);
        let err = v.call(b, "fetch", &[]).unwrap_err();
        assert_eq!(
            v.registry().exceptions().name(err.ty),
            ExceptionTable::NULL_POINTER
        );
        assert!(!err.injected);
    }

    #[test]
    fn call_value_dispatches_on_ref() {
        let mut v = vm();
        let outer = v.construct("Box", &[]).unwrap();
        v.root(outer);
        let inner = v.construct("Box", &[]).unwrap();
        v.root(inner);
        v.heap_mut()
            .set_field(outer, "item", Value::Ref(inner))
            .unwrap();
        assert_eq!(v.call(outer, "fetch", &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn exception_builder_uses_registered_type() {
        let mut v = vm();
        let b = v.construct("Box", &[]).unwrap();
        v.root(b);
        let err = v.call(b, "throwing", &[]).unwrap_err();
        assert_eq!(v.registry().exceptions().name(err.ty), "AppError");
        assert_eq!(err.message, "thrown by body");
    }

    #[test]
    fn get_and_set_round_trip_through_body() {
        let (mut vm, t) = with_body(|ctx, this| {
            ctx.set(this, "item", Value::Str("hello".into()));
            assert_eq!(&*ctx.get_str(this, "item"), "hello");
            ctx.set(this, "item", Value::Int(3));
            assert_eq!(ctx.get_int(this, "item"), 3);
            ctx.set(this, "item", Value::Bool(true));
            assert!(ctx.get_bool(this, "item"));
            Ok(Value::Null)
        });
        vm.call(t, "run", &[]).unwrap();
    }

    #[test]
    fn get_ref_distinguishes_null() {
        let (mut vm, t) = with_body(|ctx, this| {
            assert_eq!(ctx.get_ref(this, "item"), None);
            let fresh = ctx.alloc("T");
            ctx.set(this, "item", Value::Ref(fresh));
            assert_eq!(ctx.get_ref(this, "item"), Some(fresh));
            Ok(Value::Null)
        });
        vm.call(t, "run", &[]).unwrap();
    }

    #[test]
    fn nested_new_object_runs_through_dispatcher() {
        let (mut vm, t) = with_body(|ctx, this| {
            let child = ctx.new_object("T", &[])?;
            ctx.set(this, "item", Value::Ref(child));
            Ok(Value::Null)
        });
        vm.call(t, "run", &[]).unwrap();
        assert_eq!(vm.heap().len(), 2);
    }
}

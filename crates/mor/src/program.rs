//! Guest programs: the unit the detection campaign instruments and re-runs.
//!
//! A [`Program`] bundles a registry factory with a driver. The detection
//! phase (steps 1–3 of the paper's Fig. 1) executes the driver once per
//! potential injection point on a **fresh VM each run**, so programs must be
//! deterministic given their construction parameters.

use crate::exception::MethodResult;
use crate::registry::Registry;
use crate::vm::Vm;

/// A deterministic guest program.
///
/// Programs are `Sync` because a detection campaign shards its injection
/// points across worker threads, each of which calls
/// [`Program::build_registry`] to get a private single-threaded VM
/// universe. The *registry* and *VM* stay thread-local (method bodies are
/// `Rc`-shared closures); only the program value itself is shared.
pub trait Program: Sync {
    /// Program name, used in reports (e.g. `"LinkedList"`).
    fn name(&self) -> &str;

    /// Builds the program's registry (classes, methods, exceptions,
    /// profile). Called once per run.
    fn build_registry(&self) -> Registry;

    /// Drives the workload. Guest exceptions escaping to the top level
    /// (e.g. injected ones) are returned as `Err` — that is a normal
    /// campaign outcome, not a harness failure.
    fn run(&self, vm: &mut Vm) -> MethodResult;
}

/// A [`Program`] assembled from closures — convenient for tests and small
/// workloads.
///
/// ```
/// use atomask_mor::{FnProgram, Profile, RegistryBuilder, Value, Program};
///
/// let p = FnProgram::new(
///     "trivial",
///     || {
///         let mut rb = RegistryBuilder::new(Profile::java());
///         rb.class("A", |c| {
///             c.method("m", |_, _, _| Ok(Value::Null));
///         });
///         rb.build()
///     },
///     |vm| {
///         let a = vm.construct("A", &[])?;
///         vm.root(a);
///         vm.call(a, "m", &[])
///     },
/// );
/// let mut vm = atomask_mor::Vm::new(p.build_registry());
/// assert!(p.run(&mut vm).is_ok());
/// ```
pub struct FnProgram {
    name: String,
    build: Box<dyn Fn() -> Registry + Send + Sync>,
    run: Box<dyn Fn(&mut Vm) -> MethodResult + Send + Sync>,
}

impl FnProgram {
    /// Creates a program from a name, a registry factory and a driver.
    ///
    /// Both closures must be `Send + Sync` (see [`Program`]): campaign
    /// workers call them from their own threads. Closures capturing only
    /// owned data (or nothing) satisfy this automatically.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn() -> Registry + Send + Sync + 'static,
        run: impl Fn(&mut Vm) -> MethodResult + Send + Sync + 'static,
    ) -> Self {
        FnProgram {
            name: name.into(),
            build: Box::new(build),
            run: Box::new(run),
        }
    }
}

impl Program for FnProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn build_registry(&self) -> Registry {
        (self.build)()
    }

    fn run(&self, vm: &mut Vm) -> MethodResult {
        (self.run)(vm)
    }
}

impl std::fmt::Debug for FnProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnProgram")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::registry::RegistryBuilder;
    use crate::value::Value;

    fn trivial() -> FnProgram {
        FnProgram::new(
            "trivial",
            || {
                let mut rb = RegistryBuilder::new(Profile::java());
                rb.class("A", |c| {
                    c.field("x", Value::Int(0));
                    c.method("bump", |ctx, this, _| {
                        let v = ctx.get_int(this, "x");
                        ctx.set(this, "x", Value::Int(v + 1));
                        Ok(Value::Null)
                    });
                });
                rb.build()
            },
            |vm| {
                let a = vm.construct("A", &[])?;
                vm.root(a);
                vm.call(a, "bump", &[])?;
                vm.call(a, "bump", &[])
            },
        )
    }

    #[test]
    fn fn_program_runs_deterministically() {
        let p = trivial();
        for _ in 0..3 {
            let mut vm = Vm::new(p.build_registry());
            p.run(&mut vm).unwrap();
            assert_eq!(vm.stats().total_calls(), 2);
        }
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(trivial().name(), "trivial");
        assert!(format!("{:?}", trivial()).contains("trivial"));
    }
}

//! Checkpoint-resume support: structural VM checkpoints plus a record /
//! replay log of *top-level* driver operations.
//!
//! A detection sweep runs the same program once per injection point, and
//! every run re-executes the entire prefix before its target just to arrive
//! there. The types in this module remove that quadratic prefix cost:
//!
//! 1. **Recording.** One observing run executes normally while the VM logs
//!    every *top-level* (depth-0) operation the driver issues —
//!    [`crate::Vm::construct`], [`crate::Vm::call`],
//!    [`crate::Vm::call_by_id`], [`crate::Vm::alloc_raw`] and
//!    [`crate::Vm::field`] — as an [`OpRecord`]: a validation [`OpKey`] and
//!    the operation's result. A boundary probe runs after each completed
//!    top-level op and may capture a [`VmCheckpoint`]: an O(live-objects)
//!    structural copy of the heap (cheap — `Rc`-shared values clone by
//!    refcount bump) plus call statistics, the call sequence number, fuel
//!    spent, and the exception chain-id watermark.
//! 2. **Replay.** A resumed run re-executes the driver, but each top-level
//!    op short-circuits: the VM validates the op against the log and
//!    returns the recorded result without touching the (empty) heap, so the
//!    driver retraces its recorded control flow at host speed. At the
//!    *switch* op the VM restores the checkpoint and falls back to live
//!    execution for the tail.
//!
//! Guest bodies never run during a replayed prefix, so no hook fires, no
//! fuel is charged, and no heap mutation happens — all of that state is
//! reinstated wholesale by [`crate::Vm::restore`]. Determinism is guarded
//! by the op keys: if a driver's control flow ever diverges from the
//! recording (it cannot, for the deterministic programs this runtime
//! models, but the guard is load-bearing), the VM panics with a message
//! containing [`REPLAY_MISMATCH`] and the campaign layer falls back to
//! from-scratch execution for that point.

use crate::exception::Exception;
use crate::heap::HeapCheckpoint;
use crate::ids::{MethodId, ObjId};
use crate::value::Value;
use crate::vm::{CallStats, Vm};
use std::rc::Rc;

/// Marker substring of the panic message raised when a replayed top-level
/// op does not match the recording. Callers that drive replay (the
/// campaign layer) catch the unwind, look for this sentinel, and fall back
/// to from-scratch execution.
pub const REPLAY_MISMATCH: &str = "checkpoint replay mismatch";

/// A probe invoked after every completed top-level op while recording.
///
/// Receives the VM (quiescent: depth 0, no open frames or journal layers)
/// and the number of ops recorded so far; a typical probe captures a
/// [`VmCheckpoint`] whenever the sweep's point counter crosses a stride
/// threshold.
pub type BoundaryProbe = Box<dyn FnMut(&Vm, usize)>;

/// Identity of a top-level driver operation, used to validate replay
/// against the recording. Deliberately excludes argument *values* — the
/// drivers are deterministic, so op kind + receiver + name identify the
/// call site; the key exists to catch harness bugs, not adversarial
/// drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKey {
    /// [`crate::Vm::construct`] of the named class.
    Construct {
        /// Class name as passed by the driver.
        class: String,
    },
    /// [`crate::Vm::alloc_raw`] of the named class.
    AllocRaw {
        /// Class name as passed by the driver.
        class: String,
    },
    /// [`crate::Vm::call`] by method name.
    Call {
        /// Receiver object.
        recv: ObjId,
        /// Method name as passed by the driver.
        method: String,
    },
    /// [`crate::Vm::call_by_id`].
    CallById {
        /// Receiver object.
        recv: ObjId,
        /// Global method id.
        method: MethodId,
    },
    /// [`crate::Vm::field`] — a replay-aware driver-level field read.
    Field {
        /// Receiver object.
        recv: ObjId,
        /// Field name.
        field: String,
    },
}

/// Recorded result of a top-level operation, cloned back to the driver
/// during replay. Values share storage with the recording run (`Rc`), so a
/// clone is a refcount bump.
#[derive(Debug, Clone)]
pub enum OpResult {
    /// Result of a [`crate::Vm::construct`].
    Construct(Result<ObjId, Exception>),
    /// Result of a [`crate::Vm::call`] / [`crate::Vm::call_by_id`].
    Method(Result<Value, Exception>),
    /// Result of a [`crate::Vm::alloc_raw`].
    Obj(ObjId),
    /// Result of a [`crate::Vm::field`].
    Field(Option<Value>),
}

impl OpResult {
    pub(crate) fn into_construct(self) -> Result<ObjId, Exception> {
        match self {
            OpResult::Construct(r) => r,
            other => unreachable!("construct key paired with {other:?}"),
        }
    }

    pub(crate) fn into_method(self) -> Result<Value, Exception> {
        match self {
            OpResult::Method(r) => r,
            other => unreachable!("call key paired with {other:?}"),
        }
    }

    pub(crate) fn into_obj(self) -> ObjId {
        match self {
            OpResult::Obj(id) => id,
            other => unreachable!("alloc key paired with {other:?}"),
        }
    }

    pub(crate) fn into_field(self) -> Option<Value> {
        match self {
            OpResult::Field(v) => v,
            other => unreachable!("field key paired with {other:?}"),
        }
    }
}

/// One recorded top-level operation: its identity and its result.
#[derive(Debug, Clone)]
pub struct OpRecord {
    key: OpKey,
    result: OpResult,
}

impl OpRecord {
    pub(crate) fn new(key: OpKey, result: OpResult) -> Self {
        OpRecord { key, result }
    }

    /// The operation's identity key.
    pub fn key(&self) -> &OpKey {
        &self.key
    }

    /// The operation's recorded result.
    pub fn result(&self) -> &OpResult {
        &self.result
    }
}

/// A structural copy of everything a run can observe of the VM at a
/// quiescent top-level boundary: the heap (objects, reference counts,
/// roots, allocation stats), call statistics, the call sequence number,
/// fuel spent, and the exception chain-id watermark.
///
/// Captured by [`crate::Vm::checkpoint`], reinstated by
/// [`crate::Vm::restore`]. The copy is O(live objects); field values are
/// `Rc`-shared with the recording run, so per-value cost is a refcount
/// bump, not a deep copy.
#[derive(Debug, Clone)]
pub struct VmCheckpoint {
    pub(crate) heap: HeapCheckpoint,
    pub(crate) stats: CallStats,
    pub(crate) call_seq: u64,
    pub(crate) fuel_spent: u64,
    pub(crate) chain_next: u64,
}

impl VmCheckpoint {
    /// Number of live objects captured (the dominant size/cost factor).
    pub fn live_objects(&self) -> usize {
        self.heap.live()
    }

    /// Fuel the recording run had spent when this checkpoint was captured.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel_spent
    }
}

/// In-flight replay state: the shared op log, the cursor, the op index at
/// which to switch to live execution, and the checkpoint to restore there.
#[derive(Debug)]
pub(crate) struct ReplayState {
    pub(crate) ops: Rc<Vec<OpRecord>>,
    pub(crate) cursor: usize,
    pub(crate) switch: usize,
    pub(crate) checkpoint: Rc<VmCheckpoint>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::registry::{Registry, RegistryBuilder};
    use std::cell::RefCell;

    fn registry() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Counter", |c| {
            c.field("count", Value::Int(0));
            c.ctor(|ctx, this, args| {
                if let Some(Value::Int(start)) = args.first() {
                    ctx.set(this, "count", Value::Int(*start));
                }
                Ok(Value::Null)
            });
            c.method("increment", |ctx, this, _| {
                let v = ctx.get_int(this, "count");
                ctx.set(this, "count", Value::Int(v + 1));
                Ok(Value::Int(v + 1))
            });
            c.method("fail", |ctx, this, _| {
                let v = ctx.get_int(this, "count");
                ctx.set(this, "count", Value::Int(v + 100));
                Err(ctx.exception("RuntimeException", "boom"))
            });
        });
        rb.build()
    }

    /// A driver whose control flow depends on call results, thrown
    /// exceptions, and a driver-level field read — everything a replayed
    /// prefix must reproduce.
    fn drive(vm: &mut Vm) {
        let c = vm.construct("Counter", &[Value::Int(3)]).unwrap();
        vm.root(c);
        vm.call(c, "increment", &[]).unwrap();
        let _ = vm.call(c, "fail", &[]);
        if vm.field(c, "count") == Some(Value::Int(104)) {
            vm.call(c, "increment", &[]).unwrap();
        }
        let _ = vm.call(c, "fail", &[]);
        vm.call(c, "increment", &[]).unwrap();
    }

    type Probe = (Vec<Value>, Vec<u64>, u64, u64, u64);

    fn state(vm: &Vm) -> Probe {
        let fields: Vec<Value> = vm
            .heap()
            .iter()
            .flat_map(|(_, o)| o.fields().iter().cloned())
            .collect();
        (
            fields,
            vm.stats().calls.clone(),
            vm.stats().exceptions_seen,
            vm.fuel_spent(),
            crate::exception::chain_watermark(),
        )
    }

    #[test]
    fn resume_from_every_boundary_matches_from_scratch() {
        let reg = Rc::new(registry());
        let mut vm = Vm::from_shared_registry(reg);

        // Recording run, checkpointing at every op boundary.
        type CkptLog = Rc<RefCell<Vec<(usize, Rc<VmCheckpoint>)>>>;
        let ckpts: CkptLog = Rc::default();
        vm.start_recording();
        {
            let ckpts = Rc::clone(&ckpts);
            vm.set_boundary_probe(Some(Box::new(move |vm, n| {
                ckpts.borrow_mut().push((n, Rc::new(vm.checkpoint())));
            })));
        }
        drive(&mut vm);
        let ops = Rc::new(vm.finish_recording().expect("recording was active"));
        let recorded = state(&vm);
        assert!(!ops.is_empty());
        assert_eq!(ckpts.borrow().len(), ops.len());

        // From-scratch reference on the recycled VM.
        vm.reset_for_run();
        drive(&mut vm);
        let scratch = state(&vm);
        assert_eq!(scratch, recorded, "recording must not perturb the run");

        // Resume from every boundary except the one after the final op (a
        // full-log checkpoint has no tail to go live in; schedulers never
        // select one).
        for (switch, ckpt) in ckpts.borrow().iter() {
            if *switch == ops.len() {
                continue;
            }
            vm.reset_for_run();
            vm.begin_replay(Rc::clone(&ops), *switch, Rc::clone(ckpt));
            drive(&mut vm);
            assert!(!vm.replay_active(), "switch {switch} reached live tail");
            assert_eq!(state(&vm), scratch, "resume at op {switch} diverged");
        }
    }

    #[test]
    fn driver_finishing_mid_replay_is_detectable() {
        let reg = Rc::new(registry());
        let mut vm = Vm::from_shared_registry(reg);
        vm.start_recording();
        drive(&mut vm);
        let ops = Rc::new(vm.finish_recording().unwrap());
        let full = Rc::new(vm.checkpoint());

        vm.reset_for_run();
        vm.begin_replay(Rc::clone(&ops), ops.len(), full);
        drive(&mut vm);
        assert!(
            vm.replay_active(),
            "the whole run replayed without going live"
        );
        vm.clear_replay();
        assert!(!vm.replay_active());
    }

    #[test]
    fn replay_mismatch_panics_with_the_sentinel() {
        let reg = Rc::new(registry());
        let mut vm = Vm::from_shared_registry(reg);
        vm.start_recording();
        drive(&mut vm);
        let ops = Rc::new(vm.finish_recording().unwrap());
        let ckpt = Rc::new(vm.checkpoint());

        vm.reset_for_run();
        vm.begin_replay(Rc::clone(&ops), ops.len(), ckpt);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // The recording starts with a construct; issuing a different
            // class name must trip the key validator.
            let _ = vm.construct("Nope", &[]);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(REPLAY_MISMATCH), "got: {msg}");
        assert!(!vm.replay_active(), "mismatch disarms replay");
    }

    #[test]
    fn restore_accounts_fuel_against_the_current_budget() {
        let reg = Rc::new(registry());
        let mut vm = Vm::from_shared_registry(reg);
        vm.set_budget(crate::Budget::fuel(10_000));
        drive(&mut vm);
        let ckpt = vm.checkpoint();
        let spent = vm.fuel_spent();
        assert!(spent > 0);

        vm.reset_for_run();
        vm.set_budget(crate::Budget::fuel(40_000)); // a scaled retry budget
        vm.restore(&ckpt);
        assert_eq!(vm.fuel_spent(), spent);
        assert_eq!(vm.budget(), crate::Budget::fuel(40_000));
        assert!(!vm.fuel_exhausted());
    }
}

//! Structured execution tracing — the campaign flight recorder.
//!
//! The VM, heap and the wrappers woven around calls emit [`TraceEvent`]
//! records through an optional [`TraceSink`] installed with
//! [`crate::Vm::set_tracer`]. When no sink is installed the emission sites
//! compile down to a branch on `None` — events are never even constructed —
//! so tracing costs nothing when disabled. The bundled [`RingBufferSink`]
//! keeps the last `capacity` events in a bounded ring so always-on capture
//! has a fixed memory ceiling: old events fall off the front, and the sink
//! reports how many were emitted versus dropped.
//!
//! The event vocabulary covers the whole story of one injector run: call
//! enter/exit, exception throw/propagate/deliver, heap allocation and
//! write, journal (undo-log) push/commit/abort with per-write undo
//! records, injection firing, budget charges and exhaustion, and the
//! masking wrappers' checkpoint/restore. A recorded trace is the substrate
//! deterministic single-point replay pretty-prints (see the `inject`
//! crate's replay support and `report repro`).

use crate::hook::CallKind;
use crate::ids::{ClassId, ExcId, MethodId, ObjId};
use crate::registry::Registry;
use std::collections::VecDeque;

/// One structured trace record.
///
/// Events carry ids, not names: they are cheap to construct and a
/// [`Registry`] renders them human-readable via [`TraceEvent::render`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A call was dispatched (after fuel accounting, before the hooks).
    CallEnter {
        /// The invoked method.
        method: MethodId,
        /// Method or constructor.
        kind: CallKind,
        /// Nesting depth at the time of the call (0 = driver level).
        depth: usize,
        /// Global dynamic call sequence number (1-based).
        seq: u64,
    },
    /// A dispatched call finished (hooks included).
    CallExit {
        /// The invoked method.
        method: MethodId,
        /// Sequence number matching the [`TraceEvent::CallEnter`].
        seq: u64,
        /// `true` iff the call ended with a propagating exception.
        threw: bool,
    },
    /// An injection wrapper threw at its injection point (Listing 1).
    InjectionFire {
        /// The method whose wrapper threw.
        method: MethodId,
        /// The injected exception type.
        exc: ExcId,
        /// The global `Point` counter value that fired.
        point: u64,
    },
    /// Application code created a fresh exception.
    ExcThrow {
        /// The exception type.
        exc: ExcId,
        /// Its propagation-chain id.
        chain: u64,
    },
    /// An exception propagated out of a nested call.
    ExcPropagate {
        /// The method the exception escaped from.
        method: MethodId,
        /// The exception type.
        exc: ExcId,
        /// Its propagation-chain id.
        chain: u64,
        /// Nesting depth of the call it escaped (1 = escaping to a
        /// driver-level call's body).
        depth: usize,
    },
    /// An exception escaped a driver-level call — delivered to the driver.
    ExcDeliver {
        /// The exception type.
        exc: ExcId,
        /// Its propagation-chain id.
        chain: u64,
    },
    /// A heap object was allocated.
    HeapAlloc {
        /// The fresh object.
        obj: ObjId,
        /// Its class.
        class: ClassId,
    },
    /// A heap field was written.
    HeapWrite {
        /// The written object.
        obj: ObjId,
        /// Its class (so renderers can resolve the field name).
        class: ClassId,
        /// The written field's schema slot.
        slot: usize,
    },
    /// A journaled write was rolled back during an abort.
    UndoWrite {
        /// The restored object.
        obj: ObjId,
        /// Its class.
        class: ClassId,
        /// The restored field's schema slot.
        slot: usize,
    },
    /// A write-journal layer was opened.
    JournalPush {
        /// Open-layer depth after the push.
        depth: usize,
    },
    /// The innermost journal layer was committed (effects kept).
    JournalCommit {
        /// Open-layer depth before the pop.
        depth: usize,
    },
    /// The innermost journal layer was aborted (writes rolled back).
    JournalAbort {
        /// Open-layer depth before the pop.
        depth: usize,
        /// Number of writes undone.
        undone: usize,
    },
    /// A guest heap operation was charged against the fuel budget.
    BudgetCharge {
        /// Cumulative fuel spent after the charge.
        spent: u64,
    },
    /// The fuel budget ran out; the distinguished `BudgetExhausted` guest
    /// exception is about to be delivered.
    BudgetExhausted {
        /// Fuel spent when the budget was exhausted.
        spent: u64,
    },
    /// A masking wrapper captured a checkpoint of the receiver's graph.
    MaskCheckpoint {
        /// The wrapped method.
        method: MethodId,
    },
    /// A masking wrapper rolled its receiver back after an exception.
    MaskRestore {
        /// The wrapped method.
        method: MethodId,
    },
}

impl TraceEvent {
    /// Renders the event as one human-readable line, resolving ids through
    /// `registry` (method, class, field and exception names).
    pub fn render(&self, registry: &Registry) -> String {
        let exc_name = |e: &ExcId| registry.exceptions().name(*e).to_owned();
        let cell = |class: &ClassId, slot: &usize| {
            let class = registry.class(*class);
            match class.fields.get(*slot) {
                Some(f) => format!("{}.{}", class.name, f.name),
                None => format!("{}.slot{}", class.name, slot),
            }
        };
        match self {
            TraceEvent::CallEnter {
                method,
                kind,
                depth,
                seq,
            } => {
                let what = match kind {
                    CallKind::Method => "call",
                    CallKind::Ctor => "ctor",
                };
                format!(
                    "{what}    {}{} seq={seq}",
                    "  ".repeat(*depth),
                    registry.method_display(*method)
                )
            }
            TraceEvent::CallExit { method, seq, threw } => format!(
                "ret     {} seq={seq}{}",
                registry.method_display(*method),
                if *threw { " threw" } else { "" }
            ),
            TraceEvent::InjectionFire { method, exc, point } => format!(
                "inject  {} into {} at point {point}",
                exc_name(exc),
                registry.method_display(*method)
            ),
            TraceEvent::ExcThrow { exc, chain } => {
                format!("throw   {} chain={chain}", exc_name(exc))
            }
            TraceEvent::ExcPropagate {
                method,
                exc,
                chain,
                depth,
            } => format!(
                "prop    {} chain={chain} out of {} depth={depth}",
                exc_name(exc),
                registry.method_display(*method)
            ),
            TraceEvent::ExcDeliver { exc, chain } => {
                format!("deliver {} chain={chain} to driver", exc_name(exc))
            }
            TraceEvent::HeapAlloc { obj, class } => {
                format!("alloc   {obj} {}", registry.class(*class).name)
            }
            TraceEvent::HeapWrite { obj, class, slot } => {
                format!("write   {obj} {}", cell(class, slot))
            }
            TraceEvent::UndoWrite { obj, class, slot } => {
                format!("undo    {obj} {}", cell(class, slot))
            }
            TraceEvent::JournalPush { depth } => format!("jpush   depth={depth}"),
            TraceEvent::JournalCommit { depth } => format!("jcommit depth={depth}"),
            TraceEvent::JournalAbort { depth, undone } => {
                format!("jabort  depth={depth} undone={undone}")
            }
            TraceEvent::BudgetCharge { spent } => format!("charge  spent={spent}"),
            TraceEvent::BudgetExhausted { spent } => format!("exhaust spent={spent}"),
            TraceEvent::MaskCheckpoint { method } => {
                format!("mask-cp {}", registry.method_display(*method))
            }
            TraceEvent::MaskRestore { method } => {
                format!("mask-rb {}", registry.method_display(*method))
            }
        }
    }
}

/// A consumer of [`TraceEvent`]s.
///
/// Implementations must not re-enter the VM: `record` is called from
/// inside dispatch and heap operations. `Debug` is required so traced
/// components ([`crate::Heap`]) stay debuggable.
pub trait TraceSink: std::fmt::Debug {
    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);
}

/// A bounded ring-buffer [`TraceSink`]: keeps the most recent `capacity`
/// events, dropping the oldest. Memory use is fixed, so the sink is safe
/// to leave installed for a whole campaign.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    emitted: u64,
}

impl RingBufferSink {
    /// A sink retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBufferSink {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            emitted: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events that fell off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.emitted - self.events.len() as u64
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing was recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Consumes the sink, returning the retained events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.emitted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::registry::RegistryBuilder;
    use crate::value::Value;
    use crate::vm::Vm;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn registry_builder() -> RegistryBuilder {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("T", |c| {
            c.field("x", Value::Int(0));
            c.method("bump", |ctx, this, _| {
                let x = ctx.get_int(this, "x");
                ctx.set(this, "x", Value::Int(x + 1));
                Ok(Value::Null)
            });
            c.method("fail", |ctx, _, _| {
                Err(ctx.exception("RuntimeException", "boom"))
            });
            c.method("outer", |ctx, this, _| {
                ctx.call(this, "bump", &[])?;
                ctx.call(this, "fail", &[])
            });
        });
        rb
    }

    fn traced_vm() -> (Vm, Rc<RefCell<RingBufferSink>>) {
        let mut vm = Vm::new(registry_builder().build());
        let sink = Rc::new(RefCell::new(RingBufferSink::new(4096)));
        vm.set_tracer(Some(sink.clone()));
        (vm, sink)
    }

    #[test]
    fn ring_buffer_bounds_retention_but_counts_everything() {
        let mut sink = RingBufferSink::new(3);
        for i in 0..10 {
            sink.record(TraceEvent::BudgetCharge { spent: i });
        }
        assert_eq!(sink.emitted(), 10);
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
        let spent: Vec<u64> = sink
            .events()
            .map(|e| match e {
                TraceEvent::BudgetCharge { spent } => *spent,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(spent, vec![7, 8, 9], "oldest events fall off the front");
    }

    #[test]
    fn vm_emits_call_heap_and_exception_events() {
        let (mut vm, sink) = traced_vm();
        let t = vm.construct("T", &[]).unwrap();
        vm.root(t);
        let err = vm.call(t, "outer", &[]).unwrap_err();
        assert_eq!(err.message, "boom");
        let sink = sink.borrow();
        let events: Vec<&TraceEvent> = sink.events().collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::HeapAlloc { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::HeapWrite { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ExcThrow { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ExcPropagate { depth: 1, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ExcDeliver { .. })));
        // Three dispatches, each with an enter and an exit.
        let enters = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CallEnter { .. }))
            .count();
        let exits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CallExit { .. }))
            .count();
        assert_eq!(enters, 3);
        assert_eq!(exits, 3);
    }

    #[test]
    fn untraced_vm_emits_nothing_and_behaves_identically() {
        let (mut traced, sink) = traced_vm();
        let mut plain = Vm::new(registry_builder().build());
        let a = traced.construct("T", &[]).unwrap();
        traced.root(a);
        let b = plain.construct("T", &[]).unwrap();
        plain.root(b);
        let ra = traced.call(a, "bump", &[]).unwrap();
        let rb = plain.call(b, "bump", &[]).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(traced.fuel_spent(), plain.fuel_spent(), "tracing is free");
        assert!(sink.borrow().emitted() > 0);
    }

    #[test]
    fn events_are_deterministic_across_identical_runs() {
        let run = || {
            let (mut vm, sink) = traced_vm();
            let t = vm.construct("T", &[]).unwrap();
            vm.root(t);
            let _ = vm.call(t, "outer", &[]);
            vm.set_tracer(None);
            Rc::try_unwrap(sink).unwrap().into_inner().into_events()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn render_resolves_names() {
        let (mut vm, sink) = traced_vm();
        let t = vm.construct("T", &[]).unwrap();
        vm.root(t);
        vm.call(t, "bump", &[]).unwrap();
        let registry = vm.registry().clone();
        let rendered: Vec<String> = sink
            .borrow()
            .events()
            .map(|e| e.render(&registry))
            .collect();
        assert!(rendered.iter().any(|l| l.contains("T::bump")));
        assert!(rendered.iter().any(|l| l.contains("T.x")));
    }

    #[test]
    fn budget_exhaustion_is_traced() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("S", |c| {
            c.field("n", Value::Int(0));
            c.method("noop", |_, _, _| Ok(Value::Null));
            c.method("spin", |ctx, this, _| loop {
                ctx.call(this, "noop", &[])?;
            });
        });
        let mut vm = Vm::new(rb.build());
        let sink = Rc::new(RefCell::new(RingBufferSink::new(64)));
        vm.set_tracer(Some(sink.clone()));
        let s = vm.construct("S", &[]).unwrap();
        vm.root(s);
        vm.set_budget(crate::Budget::fuel(200));
        let _ = vm.call(s, "spin", &[]).unwrap_err();
        assert!(sink
            .borrow()
            .events()
            .any(|e| matches!(e, TraceEvent::BudgetExhausted { .. })));
    }
}

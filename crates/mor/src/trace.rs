//! Structured execution tracing — the campaign flight recorder.
//!
//! The VM, heap and the wrappers woven around calls emit [`TraceEvent`]
//! records through an optional [`TraceSink`] installed with
//! [`crate::Vm::set_tracer`]. When no sink is installed the emission sites
//! compile down to a branch on `None` — events are never even constructed —
//! so tracing costs nothing when disabled. The bundled [`RingBufferSink`]
//! keeps the last `capacity` events in a bounded ring so always-on capture
//! has a fixed memory ceiling: old events fall off the front, and the sink
//! reports how many were emitted versus dropped.
//!
//! The event vocabulary covers the whole story of one injector run: call
//! enter/exit, exception throw/propagate/deliver, heap allocation and
//! write, journal (undo-log) push/commit/abort with per-write undo
//! records, injection firing, budget charges and exhaustion, and the
//! masking wrappers' checkpoint/restore. A recorded trace is the substrate
//! deterministic single-point replay pretty-prints (see the `inject`
//! crate's replay support and `report repro`).

use crate::hook::CallKind;
use crate::ids::{ClassId, ExcId, MethodId, ObjId};
use crate::registry::Registry;

/// One structured trace record.
///
/// Events carry ids, not names: they are cheap to construct and a
/// [`Registry`] renders them human-readable via [`TraceEvent::render`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A call was dispatched (after fuel accounting, before the hooks).
    CallEnter {
        /// The invoked method.
        method: MethodId,
        /// Method or constructor.
        kind: CallKind,
        /// Nesting depth at the time of the call (0 = driver level).
        depth: usize,
        /// Global dynamic call sequence number (1-based).
        seq: u64,
    },
    /// A dispatched call finished (hooks included).
    CallExit {
        /// The invoked method.
        method: MethodId,
        /// Sequence number matching the [`TraceEvent::CallEnter`].
        seq: u64,
        /// `true` iff the call ended with a propagating exception.
        threw: bool,
    },
    /// An injection wrapper threw at its injection point (Listing 1).
    InjectionFire {
        /// The method whose wrapper threw.
        method: MethodId,
        /// The injected exception type.
        exc: ExcId,
        /// The global `Point` counter value that fired.
        point: u64,
    },
    /// Application code created a fresh exception.
    ExcThrow {
        /// The exception type.
        exc: ExcId,
        /// Its propagation-chain id.
        chain: u64,
    },
    /// An exception propagated out of a nested call.
    ExcPropagate {
        /// The method the exception escaped from.
        method: MethodId,
        /// The exception type.
        exc: ExcId,
        /// Its propagation-chain id.
        chain: u64,
        /// Nesting depth of the call it escaped (1 = escaping to a
        /// driver-level call's body).
        depth: usize,
    },
    /// An exception escaped a driver-level call — delivered to the driver.
    ExcDeliver {
        /// The exception type.
        exc: ExcId,
        /// Its propagation-chain id.
        chain: u64,
    },
    /// A heap object was allocated.
    HeapAlloc {
        /// The fresh object.
        obj: ObjId,
        /// Its class.
        class: ClassId,
    },
    /// A heap field was written.
    HeapWrite {
        /// The written object.
        obj: ObjId,
        /// Its class (so renderers can resolve the field name).
        class: ClassId,
        /// The written field's schema slot.
        slot: usize,
    },
    /// A journaled write was rolled back during an abort.
    UndoWrite {
        /// The restored object.
        obj: ObjId,
        /// Its class.
        class: ClassId,
        /// The restored field's schema slot.
        slot: usize,
    },
    /// A write-journal layer was opened.
    JournalPush {
        /// Open-layer depth after the push.
        depth: usize,
    },
    /// The innermost journal layer was committed (effects kept).
    JournalCommit {
        /// Open-layer depth before the pop.
        depth: usize,
    },
    /// The innermost journal layer was aborted (writes rolled back).
    JournalAbort {
        /// Open-layer depth before the pop.
        depth: usize,
        /// Number of writes undone.
        undone: usize,
    },
    /// A guest heap operation was charged against the fuel budget.
    BudgetCharge {
        /// Cumulative fuel spent after the charge.
        spent: u64,
    },
    /// The fuel budget ran out; the distinguished `BudgetExhausted` guest
    /// exception is about to be delivered.
    BudgetExhausted {
        /// Fuel spent when the budget was exhausted.
        spent: u64,
    },
    /// A masking wrapper captured a checkpoint of the receiver's graph.
    MaskCheckpoint {
        /// The wrapped method.
        method: MethodId,
    },
    /// A masking wrapper rolled its receiver back after an exception.
    MaskRestore {
        /// The wrapped method.
        method: MethodId,
    },
}

impl TraceEvent {
    /// Renders the event as one human-readable line, resolving ids through
    /// `registry` (method, class, field and exception names).
    pub fn render(&self, registry: &Registry) -> String {
        let exc_name = |e: &ExcId| registry.exceptions().name(*e).to_owned();
        let cell = |class: &ClassId, slot: &usize| {
            let class = registry.class(*class);
            match class.fields.get(*slot) {
                Some(f) => format!("{}.{}", class.name, f.name),
                None => format!("{}.slot{}", class.name, slot),
            }
        };
        match self {
            TraceEvent::CallEnter {
                method,
                kind,
                depth,
                seq,
            } => {
                let what = match kind {
                    CallKind::Method => "call",
                    CallKind::Ctor => "ctor",
                };
                format!(
                    "{what}    {}{} seq={seq}",
                    "  ".repeat(*depth),
                    registry.method_display(*method)
                )
            }
            TraceEvent::CallExit { method, seq, threw } => format!(
                "ret     {} seq={seq}{}",
                registry.method_display(*method),
                if *threw { " threw" } else { "" }
            ),
            TraceEvent::InjectionFire { method, exc, point } => format!(
                "inject  {} into {} at point {point}",
                exc_name(exc),
                registry.method_display(*method)
            ),
            TraceEvent::ExcThrow { exc, chain } => {
                format!("throw   {} chain={chain}", exc_name(exc))
            }
            TraceEvent::ExcPropagate {
                method,
                exc,
                chain,
                depth,
            } => format!(
                "prop    {} chain={chain} out of {} depth={depth}",
                exc_name(exc),
                registry.method_display(*method)
            ),
            TraceEvent::ExcDeliver { exc, chain } => {
                format!("deliver {} chain={chain} to driver", exc_name(exc))
            }
            TraceEvent::HeapAlloc { obj, class } => {
                format!("alloc   {obj} {}", registry.class(*class).name)
            }
            TraceEvent::HeapWrite { obj, class, slot } => {
                format!("write   {obj} {}", cell(class, slot))
            }
            TraceEvent::UndoWrite { obj, class, slot } => {
                format!("undo    {obj} {}", cell(class, slot))
            }
            TraceEvent::JournalPush { depth } => format!("jpush   depth={depth}"),
            TraceEvent::JournalCommit { depth } => format!("jcommit depth={depth}"),
            TraceEvent::JournalAbort { depth, undone } => {
                format!("jabort  depth={depth} undone={undone}")
            }
            TraceEvent::BudgetCharge { spent } => format!("charge  spent={spent}"),
            TraceEvent::BudgetExhausted { spent } => format!("exhaust spent={spent}"),
            TraceEvent::MaskCheckpoint { method } => {
                format!("mask-cp {}", registry.method_display(*method))
            }
            TraceEvent::MaskRestore { method } => {
                format!("mask-rb {}", registry.method_display(*method))
            }
        }
    }
}

/// A consumer of [`TraceEvent`]s.
///
/// Implementations must not re-enter the VM: `record` is called from
/// inside dispatch and heap operations. `Debug` is required so traced
/// components ([`crate::Heap`]) stay debuggable.
pub trait TraceSink: std::fmt::Debug {
    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);
}

/// A [`TraceEvent`] packed into two machine words (16 bytes, versus ~40
/// for the enum): word 0 carries an 8-bit variant tag in its low byte, a
/// 32-bit id field in bits 8..40, and up to 24 bits of auxiliary small
/// fields (depth, slot, flags) above; word 1 carries the event's one wide
/// field — sequence number, chain id, raw object id, or fuel counter.
///
/// The rare event whose auxiliary fields overflow their packed ranges
/// (recursion deeper than 2²³, say) is spilled verbatim into the sink's
/// side table and stored as an `TAG_OVERFLOW` word pair holding the table
/// index. Packing is therefore lossless for *every* event: `unpack ∘ pack`
/// is the identity, which the round-trip test checks variant by variant.
#[derive(Debug, Clone, Copy)]
struct PackedEvent([u64; 2]);

const TAG_CALL_ENTER: u64 = 0;
const TAG_CALL_EXIT: u64 = 1;
const TAG_INJECTION_FIRE: u64 = 2;
const TAG_EXC_THROW: u64 = 3;
const TAG_EXC_PROPAGATE: u64 = 4;
const TAG_EXC_DELIVER: u64 = 5;
const TAG_HEAP_ALLOC: u64 = 6;
const TAG_HEAP_WRITE: u64 = 7;
const TAG_UNDO_WRITE: u64 = 8;
const TAG_JOURNAL_PUSH: u64 = 9;
const TAG_JOURNAL_COMMIT: u64 = 10;
const TAG_JOURNAL_ABORT: u64 = 11;
const TAG_BUDGET_CHARGE: u64 = 12;
const TAG_BUDGET_EXHAUSTED: u64 = 13;
const TAG_MASK_CHECKPOINT: u64 = 14;
const TAG_MASK_RESTORE: u64 = 15;
const TAG_OVERFLOW: u64 = 16;

impl PackedEvent {
    fn words(tag: u64, id32: u32, aux24: u64, wide: u64) -> PackedEvent {
        debug_assert!(aux24 < (1 << 24));
        PackedEvent([tag | (u64::from(id32) << 8) | (aux24 << 40), wide])
    }

    fn overflow(index: usize) -> PackedEvent {
        PackedEvent([TAG_OVERFLOW, index as u64])
    }

    fn tag(&self) -> u64 {
        self.0[0] & 0xFF
    }

    fn id32(&self) -> u32 {
        (self.0[0] >> 8) as u32
    }

    fn aux24(&self) -> u64 {
        self.0[0] >> 40
    }

    fn wide(&self) -> u64 {
        self.0[1]
    }

    /// Packs `event`, or returns `None` when an auxiliary field exceeds
    /// its bit range and the event must spill to the side table.
    fn pack(event: &TraceEvent) -> Option<PackedEvent> {
        fn aux(value: usize, bits: u32) -> Option<u64> {
            let value = value as u64;
            (value < (1 << bits)).then_some(value)
        }
        Some(match *event {
            TraceEvent::CallEnter {
                method,
                kind,
                depth,
                seq,
            } => {
                let kind_bit = match kind {
                    CallKind::Method => 0,
                    CallKind::Ctor => 1,
                };
                Self::words(
                    TAG_CALL_ENTER,
                    method.into_raw(),
                    aux(depth, 23)? | (kind_bit << 23),
                    seq,
                )
            }
            TraceEvent::CallExit { method, seq, threw } => {
                Self::words(TAG_CALL_EXIT, method.into_raw(), u64::from(threw), seq)
            }
            TraceEvent::InjectionFire { method, exc, point } => Self::words(
                TAG_INJECTION_FIRE,
                method.into_raw(),
                aux(exc.index(), 24)?,
                point,
            ),
            TraceEvent::ExcThrow { exc, chain } => {
                Self::words(TAG_EXC_THROW, exc.into_raw(), 0, chain)
            }
            TraceEvent::ExcPropagate {
                method,
                exc,
                chain,
                depth,
            } => Self::words(
                TAG_EXC_PROPAGATE,
                method.into_raw(),
                aux(exc.index(), 12)? | (aux(depth, 12)? << 12),
                chain,
            ),
            TraceEvent::ExcDeliver { exc, chain } => {
                Self::words(TAG_EXC_DELIVER, exc.into_raw(), 0, chain)
            }
            TraceEvent::HeapAlloc { obj, class } => {
                Self::words(TAG_HEAP_ALLOC, class.into_raw(), 0, obj.into_raw())
            }
            TraceEvent::HeapWrite { obj, class, slot } => Self::words(
                TAG_HEAP_WRITE,
                class.into_raw(),
                aux(slot, 24)?,
                obj.into_raw(),
            ),
            TraceEvent::UndoWrite { obj, class, slot } => Self::words(
                TAG_UNDO_WRITE,
                class.into_raw(),
                aux(slot, 24)?,
                obj.into_raw(),
            ),
            TraceEvent::JournalPush { depth } => Self::words(TAG_JOURNAL_PUSH, 0, 0, depth as u64),
            TraceEvent::JournalCommit { depth } => {
                Self::words(TAG_JOURNAL_COMMIT, 0, 0, depth as u64)
            }
            TraceEvent::JournalAbort { depth, undone } => Self::words(
                TAG_JOURNAL_ABORT,
                u32::try_from(depth).ok()?,
                0,
                undone as u64,
            ),
            TraceEvent::BudgetCharge { spent } => Self::words(TAG_BUDGET_CHARGE, 0, 0, spent),
            TraceEvent::BudgetExhausted { spent } => Self::words(TAG_BUDGET_EXHAUSTED, 0, 0, spent),
            TraceEvent::MaskCheckpoint { method } => {
                Self::words(TAG_MASK_CHECKPOINT, method.into_raw(), 0, 0)
            }
            TraceEvent::MaskRestore { method } => {
                Self::words(TAG_MASK_RESTORE, method.into_raw(), 0, 0)
            }
        })
    }

    /// Decodes the event, reading spilled events out of `side`.
    fn unpack(&self, side: &[Option<TraceEvent>]) -> TraceEvent {
        match self.tag() {
            TAG_CALL_ENTER => TraceEvent::CallEnter {
                method: MethodId::from_raw(self.id32()),
                kind: if self.aux24() >> 23 == 0 {
                    CallKind::Method
                } else {
                    CallKind::Ctor
                },
                depth: (self.aux24() & ((1 << 23) - 1)) as usize,
                seq: self.wide(),
            },
            TAG_CALL_EXIT => TraceEvent::CallExit {
                method: MethodId::from_raw(self.id32()),
                seq: self.wide(),
                threw: self.aux24() != 0,
            },
            TAG_INJECTION_FIRE => TraceEvent::InjectionFire {
                method: MethodId::from_raw(self.id32()),
                exc: ExcId::from_raw(self.aux24() as u32),
                point: self.wide(),
            },
            TAG_EXC_THROW => TraceEvent::ExcThrow {
                exc: ExcId::from_raw(self.id32()),
                chain: self.wide(),
            },
            TAG_EXC_PROPAGATE => TraceEvent::ExcPropagate {
                method: MethodId::from_raw(self.id32()),
                exc: ExcId::from_raw((self.aux24() & 0xFFF) as u32),
                chain: self.wide(),
                depth: (self.aux24() >> 12) as usize,
            },
            TAG_EXC_DELIVER => TraceEvent::ExcDeliver {
                exc: ExcId::from_raw(self.id32()),
                chain: self.wide(),
            },
            TAG_HEAP_ALLOC => TraceEvent::HeapAlloc {
                obj: ObjId::from_raw(self.wide()),
                class: ClassId::from_raw(self.id32()),
            },
            TAG_HEAP_WRITE => TraceEvent::HeapWrite {
                obj: ObjId::from_raw(self.wide()),
                class: ClassId::from_raw(self.id32()),
                slot: self.aux24() as usize,
            },
            TAG_UNDO_WRITE => TraceEvent::UndoWrite {
                obj: ObjId::from_raw(self.wide()),
                class: ClassId::from_raw(self.id32()),
                slot: self.aux24() as usize,
            },
            TAG_JOURNAL_PUSH => TraceEvent::JournalPush {
                depth: self.wide() as usize,
            },
            TAG_JOURNAL_COMMIT => TraceEvent::JournalCommit {
                depth: self.wide() as usize,
            },
            TAG_JOURNAL_ABORT => TraceEvent::JournalAbort {
                depth: self.id32() as usize,
                undone: self.wide() as usize,
            },
            TAG_BUDGET_CHARGE => TraceEvent::BudgetCharge { spent: self.wide() },
            TAG_BUDGET_EXHAUSTED => TraceEvent::BudgetExhausted { spent: self.wide() },
            TAG_MASK_CHECKPOINT => TraceEvent::MaskCheckpoint {
                method: MethodId::from_raw(self.id32()),
            },
            TAG_MASK_RESTORE => TraceEvent::MaskRestore {
                method: MethodId::from_raw(self.id32()),
            },
            TAG_OVERFLOW => side[self.wide() as usize]
                .clone()
                .expect("overflow slot is live while its ring entry is"),
            tag => unreachable!("corrupt packed-event tag {tag}"),
        }
    }
}

/// A bounded ring-buffer [`TraceSink`]: keeps the most recent `capacity`
/// events, dropping the oldest. Memory use is fixed, so the sink is safe
/// to leave installed for a whole campaign.
///
/// Storage is a flat ring of 16-byte [`PackedEvent`]s — the hot `record`
/// path does two word stores into a preallocated slot, no `VecDeque`
/// bookkeeping, no enum-sized moves, and all name/field formatting stays
/// deferred to [`TraceEvent::render`] at decode time. Events that do not
/// fit the packed layout (out-of-range depths or slots) spill to a small
/// side table whose slots are reclaimed when their ring entry is
/// overwritten, so memory stays bounded by `capacity` either way.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    /// The ring. Grows up to `capacity`, then wraps: `head` is the oldest
    /// entry (and the next to be overwritten) once full.
    ring: Vec<PackedEvent>,
    head: usize,
    /// Spilled events for `TAG_OVERFLOW` entries, slot-addressed.
    side: Vec<Option<TraceEvent>>,
    /// Reusable indices of vacated `side` slots.
    free: Vec<usize>,
    emitted: u64,
}

impl RingBufferSink {
    /// A sink retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBufferSink {
            capacity,
            ring: Vec::with_capacity(capacity.min(1024)),
            head: 0,
            side: Vec::new(),
            free: Vec::new(),
            emitted: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events that fell off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.emitted - self.ring.len() as u64
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` iff nothing was recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Iterates over the retained events, oldest first, decoding each from
    /// its packed representation.
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        let (older, newer) = self.ring.split_at(self.head.min(self.ring.len()));
        newer
            .iter()
            .chain(older.iter())
            .map(|p| p.unpack(&self.side))
    }

    /// Consumes the sink, returning the retained events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events().collect()
    }

    fn encode(&mut self, event: TraceEvent) -> PackedEvent {
        match PackedEvent::pack(&event) {
            Some(packed) => packed,
            None => {
                let index = match self.free.pop() {
                    Some(slot) => {
                        self.side[slot] = Some(event);
                        slot
                    }
                    None => {
                        self.side.push(Some(event));
                        self.side.len() - 1
                    }
                };
                PackedEvent::overflow(index)
            }
        }
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        let packed = self.encode(event);
        if self.ring.len() < self.capacity {
            self.ring.push(packed);
        } else {
            let old = std::mem::replace(&mut self.ring[self.head], packed);
            if old.tag() == TAG_OVERFLOW {
                let slot = old.wide() as usize;
                self.side[slot] = None;
                self.free.push(slot);
            }
            self.head = (self.head + 1) % self.capacity;
        }
        self.emitted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::registry::RegistryBuilder;
    use crate::value::Value;
    use crate::vm::Vm;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn registry_builder() -> RegistryBuilder {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("T", |c| {
            c.field("x", Value::Int(0));
            c.method("bump", |ctx, this, _| {
                let x = ctx.get_int(this, "x");
                ctx.set(this, "x", Value::Int(x + 1));
                Ok(Value::Null)
            });
            c.method("fail", |ctx, _, _| {
                Err(ctx.exception("RuntimeException", "boom"))
            });
            c.method("outer", |ctx, this, _| {
                ctx.call(this, "bump", &[])?;
                ctx.call(this, "fail", &[])
            });
        });
        rb
    }

    fn traced_vm() -> (Vm, Rc<RefCell<RingBufferSink>>) {
        let mut vm = Vm::new(registry_builder().build());
        let sink = Rc::new(RefCell::new(RingBufferSink::new(4096)));
        vm.set_tracer(Some(sink.clone()));
        (vm, sink)
    }

    #[test]
    fn ring_buffer_bounds_retention_but_counts_everything() {
        let mut sink = RingBufferSink::new(3);
        for i in 0..10 {
            sink.record(TraceEvent::BudgetCharge { spent: i });
        }
        assert_eq!(sink.emitted(), 10);
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
        let spent: Vec<u64> = sink
            .events()
            .map(|e| match e {
                TraceEvent::BudgetCharge { spent } => spent,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(spent, vec![7, 8, 9], "oldest events fall off the front");
    }

    /// One instance of every variant, with both in-range and out-of-range
    /// (overflowing) auxiliary fields.
    fn all_variants() -> Vec<TraceEvent> {
        let m = MethodId::from_raw(u32::MAX);
        let c = ClassId::from_raw(7);
        let e = ExcId::from_raw(3);
        vec![
            TraceEvent::CallEnter {
                method: m,
                kind: CallKind::Ctor,
                depth: 12,
                seq: u64::MAX,
            },
            // Depth past 2^23: spills to the side table.
            TraceEvent::CallEnter {
                method: m,
                kind: CallKind::Method,
                depth: 1 << 23,
                seq: 5,
            },
            TraceEvent::CallExit {
                method: m,
                seq: 9,
                threw: true,
            },
            TraceEvent::InjectionFire {
                method: m,
                exc: e,
                point: 1 << 60,
            },
            TraceEvent::ExcThrow {
                exc: ExcId::from_raw(u32::MAX),
                chain: u64::MAX,
            },
            TraceEvent::ExcPropagate {
                method: m,
                exc: e,
                chain: 3,
                depth: 4095,
            },
            // Slot past the 12-bit propagate budget: spills.
            TraceEvent::ExcPropagate {
                method: m,
                exc: e,
                chain: 3,
                depth: 4096,
            },
            TraceEvent::ExcDeliver { exc: e, chain: 1 },
            TraceEvent::HeapAlloc {
                obj: ObjId::from_raw(u64::MAX),
                class: c,
            },
            TraceEvent::HeapWrite {
                obj: ObjId::from_raw(3),
                class: c,
                slot: (1 << 24) - 1,
            },
            // Slot past 2^24: spills.
            TraceEvent::HeapWrite {
                obj: ObjId::from_raw(3),
                class: c,
                slot: 1 << 24,
            },
            TraceEvent::UndoWrite {
                obj: ObjId::from_raw(3),
                class: c,
                slot: 2,
            },
            TraceEvent::JournalPush { depth: usize::MAX },
            TraceEvent::JournalCommit { depth: 0 },
            TraceEvent::JournalAbort {
                depth: u32::MAX as usize,
                undone: usize::MAX,
            },
            // Depth past u32: spills.
            TraceEvent::JournalAbort {
                depth: u32::MAX as usize + 1,
                undone: 1,
            },
            TraceEvent::BudgetCharge { spent: 1 },
            TraceEvent::BudgetExhausted { spent: u64::MAX },
            TraceEvent::MaskCheckpoint { method: m },
            TraceEvent::MaskRestore { method: m },
        ]
    }

    #[test]
    fn packed_roundtrip_is_lossless_for_every_variant() {
        let variants = all_variants();
        let mut sink = RingBufferSink::new(variants.len());
        for event in &variants {
            sink.record(event.clone());
        }
        let decoded: Vec<TraceEvent> = sink.events().collect();
        assert_eq!(decoded, variants);
        assert_eq!(sink.clone().into_events(), variants);
    }

    #[test]
    fn overflow_slots_are_reclaimed_on_ring_wrap() {
        // A capacity-2 ring fed only overflowing events: the side table
        // must stay bounded (2 live slots plus the free list), not grow
        // with `emitted`.
        let spill = |i: usize| TraceEvent::JournalPush { depth: i };
        let mut sink = RingBufferSink::new(2);
        for i in 0..100 {
            // Alternate spilled and packed events to exercise reclamation
            // interleaving.
            sink.record(TraceEvent::CallEnter {
                method: MethodId::from_raw(i as u32),
                kind: CallKind::Method,
                depth: (1 << 23) + i, // always overflows
                seq: i as u64,
            });
            sink.record(spill(i));
        }
        assert_eq!(sink.emitted(), 200);
        assert_eq!(sink.len(), 2);
        assert!(
            sink.side.len() <= 3,
            "side table grew unbounded: {} slots",
            sink.side.len()
        );
        let last: Vec<TraceEvent> = sink.events().collect();
        assert_eq!(
            last,
            vec![
                TraceEvent::CallEnter {
                    method: MethodId::from_raw(99),
                    kind: CallKind::Method,
                    depth: (1 << 23) + 99,
                    seq: 99,
                },
                spill(99),
            ]
        );
    }

    #[test]
    fn vm_emits_call_heap_and_exception_events() {
        let (mut vm, sink) = traced_vm();
        let t = vm.construct("T", &[]).unwrap();
        vm.root(t);
        let err = vm.call(t, "outer", &[]).unwrap_err();
        assert_eq!(err.message, "boom");
        let sink = sink.borrow();
        let events: Vec<TraceEvent> = sink.events().collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::HeapAlloc { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::HeapWrite { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ExcThrow { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ExcPropagate { depth: 1, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ExcDeliver { .. })));
        // Three dispatches, each with an enter and an exit.
        let enters = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CallEnter { .. }))
            .count();
        let exits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CallExit { .. }))
            .count();
        assert_eq!(enters, 3);
        assert_eq!(exits, 3);
    }

    #[test]
    fn untraced_vm_emits_nothing_and_behaves_identically() {
        let (mut traced, sink) = traced_vm();
        let mut plain = Vm::new(registry_builder().build());
        let a = traced.construct("T", &[]).unwrap();
        traced.root(a);
        let b = plain.construct("T", &[]).unwrap();
        plain.root(b);
        let ra = traced.call(a, "bump", &[]).unwrap();
        let rb = plain.call(b, "bump", &[]).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(traced.fuel_spent(), plain.fuel_spent(), "tracing is free");
        assert!(sink.borrow().emitted() > 0);
    }

    #[test]
    fn events_are_deterministic_across_identical_runs() {
        let run = || {
            let (mut vm, sink) = traced_vm();
            let t = vm.construct("T", &[]).unwrap();
            vm.root(t);
            let _ = vm.call(t, "outer", &[]);
            vm.set_tracer(None);
            Rc::try_unwrap(sink).unwrap().into_inner().into_events()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn render_resolves_names() {
        let (mut vm, sink) = traced_vm();
        let t = vm.construct("T", &[]).unwrap();
        vm.root(t);
        vm.call(t, "bump", &[]).unwrap();
        let registry = vm.registry().clone();
        let rendered: Vec<String> = sink
            .borrow()
            .events()
            .map(|e| e.render(&registry))
            .collect();
        assert!(rendered.iter().any(|l| l.contains("T::bump")));
        assert!(rendered.iter().any(|l| l.contains("T.x")));
    }

    #[test]
    fn budget_exhaustion_is_traced() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("S", |c| {
            c.field("n", Value::Int(0));
            c.method("noop", |_, _, _| Ok(Value::Null));
            c.method("spin", |ctx, this, _| loop {
                ctx.call(this, "noop", &[])?;
            });
        });
        let mut vm = Vm::new(rb.build());
        let sink = Rc::new(RefCell::new(RingBufferSink::new(64)));
        vm.set_tracer(Some(sink.clone()));
        let s = vm.construct("S", &[]).unwrap();
        vm.root(s);
        vm.set_budget(crate::Budget::fuel(200));
        let _ = vm.call(s, "spin", &[]).unwrap_err();
        assert!(sink
            .borrow()
            .events()
            .any(|e| matches!(e, TraceEvent::BudgetExhausted { .. })));
    }
}

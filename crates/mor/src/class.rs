//! Class definitions: field schemas and method tables.

use crate::ctx::Ctx;
use crate::exception::MethodResult;
use crate::fx::FxHashMap;
use crate::ids::{ClassId, ExcId, MethodId, ObjId};
use crate::value::Value;
use std::fmt;
use std::rc::Rc;

/// The Rust function implementing a guest method body.
///
/// Bodies perform **all** state access through the [`Ctx`] handle so the
/// runtime observes every field read/write and every nested call — the
/// property the paper gets from running on an instrumentable language
/// runtime.
pub type MethodBody = Rc<dyn Fn(&mut Ctx<'_>, ObjId, &[Value]) -> MethodResult>;

/// Name under which constructors are registered in the method table.
pub const CTOR_NAME: &str = "<init>";

/// A field of a class: a name and the default value fresh instances start
/// with.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    /// Field name (unique within the class).
    pub name: String,
    /// Value a freshly allocated instance starts with.
    pub default: Value,
}

/// A method (or constructor) of a class.
#[derive(Clone)]
pub struct MethodDef {
    /// Method name (unique within the class).
    pub name: String,
    /// The implementation.
    pub body: MethodBody,
    /// Exception types declared in the signature (`throws` clause),
    /// resolved at registry build time.
    pub declared: Vec<ExcId>,
    /// Declared-exception names as written; resolved into [`Self::declared`]
    /// when the registry is built.
    pub(crate) declared_names: Vec<String>,
    /// Programmer annotation (paper §4.3): this method never throws, so no
    /// exceptions should be injected into it.
    pub never_throws: bool,
    /// `true` for constructors.
    pub is_ctor: bool,
    /// Globally unique id, assigned at registry build time.
    pub gid: MethodId,
}

impl fmt::Debug for MethodDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MethodDef")
            .field("name", &self.name)
            .field("declared", &self.declared)
            .field("never_throws", &self.never_throws)
            .field("is_ctor", &self.is_ctor)
            .field("gid", &self.gid)
            .finish_non_exhaustive()
    }
}

/// A class: field schema plus method table.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Class name (unique within the registry).
    pub name: String,
    /// Ordered field schema. Field order is part of the class identity and
    /// drives deterministic object-graph traversal.
    pub fields: Vec<FieldDef>,
    /// Methods, including at most one constructor named [`CTOR_NAME`].
    pub methods: Vec<MethodDef>,
    /// `true` for core classes that the Java profile cannot instrument.
    pub is_core: bool,
    /// Id assigned at registry build time.
    pub id: ClassId,
    pub(crate) field_index: FxHashMap<String, usize>,
    pub(crate) method_index: FxHashMap<String, usize>,
}

/// Below this member count, name lookup scans the definition vector
/// directly: for the short schemas typical of guest classes, a handful of
/// string compares beats hashing the name and probing a table.
const LINEAR_SCAN_MAX: usize = 8;

impl ClassDef {
    /// Index of a field by name.
    pub fn field_slot(&self, name: &str) -> Option<usize> {
        if self.fields.len() <= LINEAR_SCAN_MAX {
            self.fields.iter().position(|f| f.name == name)
        } else {
            self.field_index.get(name).copied()
        }
    }

    /// Index of a method by name.
    pub fn method_slot(&self, name: &str) -> Option<usize> {
        if self.methods.len() <= LINEAR_SCAN_MAX {
            self.methods.iter().position(|m| m.name == name)
        } else {
            self.method_index.get(name).copied()
        }
    }

    /// The constructor, if one was defined.
    pub fn ctor(&self) -> Option<&MethodDef> {
        self.method_slot(CTOR_NAME).map(|s| &self.methods[s])
    }

    /// Default field values for a fresh instance, in schema order.
    pub fn default_fields(&self) -> Vec<Value> {
        self.fields.iter().map(|f| f.default.clone()).collect()
    }
}

/// Chainable configuration handle for a method being defined.
///
/// Returned by [`ClassBuilder::method`] and [`ClassBuilder::ctor`]:
///
/// ```
/// use atomask_mor::{Profile, RegistryBuilder, Value};
/// let mut rb = RegistryBuilder::new(Profile::java());
/// rb.class("File", |c| {
///     c.method("write", |_ctx, _this, _args| Ok(Value::Null))
///         .throws("IOException");
///     c.method("size", |_ctx, _this, _args| Ok(Value::Int(0)))
///         .never_throws();
/// });
/// let reg = rb.build();
/// assert!(reg.exceptions().lookup("IOException").is_some());
/// ```
#[derive(Debug)]
pub struct MethodCfg<'a> {
    pub(crate) def: &'a mut MethodDef,
}

impl MethodCfg<'_> {
    /// Adds a declared exception type (the `throws` clause). Unknown names
    /// are interned when the registry is built.
    pub fn throws(&mut self, exception: &str) -> &mut Self {
        self.def.declared_names.push(exception.to_owned());
        self
    }

    /// Marks the method as never throwing (paper §4.3): the injector will
    /// not place injection points in it, and the policy layer may discount
    /// past injections attributed to it.
    pub fn never_throws(&mut self) -> &mut Self {
        self.def.never_throws = true;
        self
    }
}

/// Builder for one class, used inside [`crate::RegistryBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder {
    pub(crate) def: ClassDef,
}

impl ClassBuilder {
    pub(crate) fn new(name: &str) -> Self {
        ClassBuilder {
            def: ClassDef {
                name: name.to_owned(),
                fields: Vec::new(),
                methods: Vec::new(),
                is_core: false,
                id: ClassId(u32::MAX),
                field_index: FxHashMap::default(),
                method_index: FxHashMap::default(),
            },
        }
    }

    /// Declares a field with its default value.
    ///
    /// # Panics
    ///
    /// Panics if a field with the same name was already declared.
    pub fn field(&mut self, name: &str, default: Value) -> &mut Self {
        assert!(
            !self.def.field_index.contains_key(name),
            "class `{}`: duplicate field `{name}`",
            self.def.name
        );
        self.def
            .field_index
            .insert(name.to_owned(), self.def.fields.len());
        self.def.fields.push(FieldDef {
            name: name.to_owned(),
            default,
        });
        self
    }

    /// Declares a method.
    ///
    /// # Panics
    ///
    /// Panics if a method with the same name was already declared.
    pub fn method(
        &mut self,
        name: &str,
        body: impl Fn(&mut Ctx<'_>, ObjId, &[Value]) -> MethodResult + 'static,
    ) -> MethodCfg<'_> {
        self.push_method(name, Rc::new(body), false)
    }

    /// Declares the constructor (at most one per class). Constructor calls
    /// are dispatched through the same interposable boundary as methods, so
    /// exceptions are injected into constructors too (the paper's Table 1
    /// counts "method and constructor calls").
    ///
    /// # Panics
    ///
    /// Panics if a constructor was already declared.
    pub fn ctor(
        &mut self,
        body: impl Fn(&mut Ctx<'_>, ObjId, &[Value]) -> MethodResult + 'static,
    ) -> MethodCfg<'_> {
        self.push_method(CTOR_NAME, Rc::new(body), true)
    }

    /// Marks the class as *core* (Java profile: not instrumentable, like
    /// `java.lang.String` in the paper's §5.2 limitation).
    pub fn core(&mut self) -> &mut Self {
        self.def.is_core = true;
        self
    }

    fn push_method(&mut self, name: &str, body: MethodBody, is_ctor: bool) -> MethodCfg<'_> {
        assert!(
            !self.def.method_index.contains_key(name),
            "class `{}`: duplicate method `{name}`",
            self.def.name
        );
        self.def
            .method_index
            .insert(name.to_owned(), self.def.methods.len());
        self.def.methods.push(MethodDef {
            name: name.to_owned(),
            body,
            declared: Vec::new(),
            declared_names: Vec::new(),
            never_throws: false,
            is_ctor,
            gid: MethodId(u32::MAX),
        });
        let slot = self.def.methods.len() - 1;
        MethodCfg {
            def: &mut self.def.methods[slot],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop(_: &mut Ctx<'_>, _: ObjId, _: &[Value]) -> MethodResult {
        Ok(Value::Null)
    }

    #[test]
    fn builder_registers_fields_and_methods() {
        let mut b = ClassBuilder::new("A");
        b.field("x", Value::Int(0)).field("y", Value::Null);
        b.method("m", noop).throws("E1").throws("E2");
        b.ctor(noop);
        let def = b.def;
        assert_eq!(def.field_slot("x"), Some(0));
        assert_eq!(def.field_slot("y"), Some(1));
        assert_eq!(def.field_slot("z"), None);
        assert!(def.method_slot("m").is_some());
        assert!(def.ctor().is_some());
        let m = &def.methods[def.method_slot("m").unwrap()];
        assert_eq!(m.declared_names, vec!["E1", "E2"]);
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_field_panics() {
        let mut b = ClassBuilder::new("A");
        b.field("x", Value::Null).field("x", Value::Null);
    }

    #[test]
    #[should_panic(expected = "duplicate method")]
    fn duplicate_method_panics() {
        let mut b = ClassBuilder::new("A");
        b.method("m", noop);
        b.method("m", noop);
    }

    #[test]
    fn default_fields_follow_schema_order() {
        let mut b = ClassBuilder::new("A");
        b.field("x", Value::Int(7)).field("y", Value::Bool(true));
        assert_eq!(
            b.def.default_fields(),
            vec![Value::Int(7), Value::Bool(true)]
        );
    }

    #[test]
    fn never_throws_flag() {
        let mut b = ClassBuilder::new("A");
        b.method("m", noop).never_throws();
        assert!(b.def.methods[0].never_throws);
    }
}

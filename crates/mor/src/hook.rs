//! The call-interposition point — the runtime's equivalent of the paper's
//! *Code Weaver*.
//!
//! Every method and constructor call dispatched by the [`crate::Vm`] passes
//! through the installed [`CallHook`] (if any): `before` runs ahead of the
//! body and may replace the call with a thrown exception (Listing 1's
//! injection points), `after` observes the outcome and may act on it
//! (Listing 1's atomicity check, Listing 2's rollback) before it propagates
//! to the caller.

use crate::exception::{Exception, MethodResult};
use crate::ids::{ClassId, MethodId, ObjId};
use crate::vm::Vm;
use std::any::Any;

/// Whether a call site is a plain method call or a constructor invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// A regular method call.
    Method,
    /// A constructor invocation (`new`).
    Ctor,
}

/// Description of one dynamic call, handed to the hook.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The invoked method.
    pub method: MethodId,
    /// The receiver's class.
    pub class: ClassId,
    /// The receiver object.
    pub recv: ObjId,
    /// Objects passed by reference as arguments. Listing 1 deep-copies
    /// "all arguments that are passed in as non-constant references" along
    /// with the receiver; these are those arguments.
    pub ref_args: Vec<ObjId>,
    /// Call nesting depth at the time of the call (0 = driver-level call).
    pub depth: usize,
    /// Method or constructor.
    pub kind: CallKind,
    /// Global dynamic call sequence number (1-based).
    pub seq: u64,
}

/// Opaque state carried from [`CallHook::before`] to [`CallHook::after`]
/// for one call (e.g. the pre-call object-graph snapshot or checkpoint).
pub type HookGuard = Option<Box<dyn Any>>;

/// A wrapper woven around every dispatched call.
///
/// Implementations must not re-enter the VM dispatcher from inside `before`
/// or `after` (they may freely *read* the heap and registry, which is all
/// the paper's wrappers need).
pub trait CallHook {
    /// Runs before the method body.
    ///
    /// # Errors
    ///
    /// Returning `Err(e)` aborts the call: the body never runs and `e`
    /// propagates to the caller — this is how injection wrappers throw at
    /// their injection points.
    fn before(&mut self, vm: &mut Vm, site: &CallSite) -> Result<HookGuard, Exception>;

    /// Runs after the method body returned or threw; receives the guard
    /// produced by `before` and the body's outcome, and returns the outcome
    /// to propagate (usually unchanged).
    fn after(
        &mut self,
        vm: &mut Vm,
        site: &CallSite,
        guard: HookGuard,
        outcome: MethodResult,
    ) -> MethodResult;
}

/// Nests several hooks around each call, outermost first — the effect of
/// weaving several wrappers around the same method.
///
/// `before` runs outermost→innermost and `after` innermost→outermost, so
/// `HookChain::new(vec![inject, mask])` reproduces the paper's corrected-
/// program validation setup: the injection wrapper observes the outcome
/// *after* the atomicity wrapper rolled the object back.
///
/// If some hook's `before` throws, the hooks outside it still see the
/// exception through their `after` (their wrappers' `catch` blocks), while
/// hooks inside it never run — exactly like nested `try` blocks.
pub struct HookChain {
    hooks: Vec<std::rc::Rc<std::cell::RefCell<dyn CallHook>>>,
}

impl HookChain {
    /// Creates a chain from outermost to innermost hook.
    pub fn new(hooks: Vec<std::rc::Rc<std::cell::RefCell<dyn CallHook>>>) -> Self {
        HookChain { hooks }
    }
}

impl std::fmt::Debug for HookChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookChain")
            .field("len", &self.hooks.len())
            .finish()
    }
}

impl CallHook for HookChain {
    fn before(&mut self, vm: &mut Vm, site: &CallSite) -> Result<HookGuard, Exception> {
        let mut guards: Vec<HookGuard> = Vec::with_capacity(self.hooks.len());
        for (i, hook) in self.hooks.iter().enumerate() {
            match hook.borrow_mut().before(vm, site) {
                Ok(g) => guards.push(g),
                Err(e) => {
                    // Unwind: outer wrappers catch the exception thrown by
                    // the inner wrapper's injection point.
                    let mut outcome: MethodResult = Err(e);
                    for j in (0..i).rev() {
                        let guard = guards.pop().expect("one guard per completed before");
                        outcome = self.hooks[j].borrow_mut().after(vm, site, guard, outcome);
                        let _ = j;
                    }
                    return Err(outcome.expect_err("hooks must propagate exceptions"));
                }
            }
        }
        Ok(Some(Box::new(guards)))
    }

    fn after(
        &mut self,
        vm: &mut Vm,
        site: &CallSite,
        guard: HookGuard,
        outcome: MethodResult,
    ) -> MethodResult {
        let mut guards = *guard
            .expect("chain guard present")
            .downcast::<Vec<HookGuard>>()
            .expect("chain guard type");
        let mut outcome = outcome;
        for hook in self.hooks.iter().rev() {
            let g = guards.pop().expect("one guard per hook");
            outcome = hook.borrow_mut().after(vm, site, g, outcome);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::registry::RegistryBuilder;
    use crate::value::Value;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A hook that records the call sites it sees, in order.
    struct Recorder {
        log: Vec<(String, usize, CallKind)>,
    }

    impl CallHook for Recorder {
        fn before(&mut self, vm: &mut Vm, site: &CallSite) -> Result<HookGuard, Exception> {
            self.log.push((
                vm.registry().method_display(site.method),
                site.depth,
                site.kind,
            ));
            Ok(None)
        }

        fn after(
            &mut self,
            _vm: &mut Vm,
            _site: &CallSite,
            _guard: HookGuard,
            outcome: MethodResult,
        ) -> MethodResult {
            outcome
        }
    }

    #[test]
    fn hook_sees_nested_calls_with_depths() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("A", |c| {
            c.method("outer", |ctx, this, _| ctx.call(this, "inner", &[]));
            c.method("inner", |_, _, _| Ok(Value::Int(1)));
        });
        let mut vm = Vm::new(rb.build());
        let recorder = Rc::new(RefCell::new(Recorder { log: Vec::new() }));
        vm.set_hook(Some(recorder.clone()));
        let a = vm.construct("A", &[]).unwrap();
        vm.root(a);
        assert_eq!(vm.call(a, "outer", &[]).unwrap(), Value::Int(1));
        let log = &recorder.borrow().log;
        assert_eq!(
            log.as_slice(),
            &[
                ("A::outer".to_owned(), 0, CallKind::Method),
                ("A::inner".to_owned(), 1, CallKind::Method),
            ]
        );
    }

    /// A hook whose `before` throws on the first call.
    struct ThrowFirst {
        armed: bool,
    }

    impl CallHook for ThrowFirst {
        fn before(&mut self, vm: &mut Vm, site: &CallSite) -> Result<HookGuard, Exception> {
            if self.armed {
                self.armed = false;
                let ty = vm.registry().runtime_exceptions()[0];
                return Err(Exception::injected(ty, site.method));
            }
            Ok(None)
        }

        fn after(
            &mut self,
            _vm: &mut Vm,
            _site: &CallSite,
            _guard: HookGuard,
            outcome: MethodResult,
        ) -> MethodResult {
            outcome
        }
    }

    /// A hook that logs before/after events with a label.
    struct Logger {
        label: &'static str,
        log: Rc<RefCell<Vec<String>>>,
        throw_on_before: bool,
    }

    impl CallHook for Logger {
        fn before(&mut self, vm: &mut Vm, site: &CallSite) -> Result<HookGuard, Exception> {
            self.log.borrow_mut().push(format!("{}:before", self.label));
            if self.throw_on_before {
                let ty = vm.registry().runtime_exceptions()[0];
                return Err(Exception::injected(ty, site.method));
            }
            Ok(Some(Box::new(self.label)))
        }

        fn after(
            &mut self,
            _vm: &mut Vm,
            _site: &CallSite,
            guard: HookGuard,
            outcome: MethodResult,
        ) -> MethodResult {
            let label = guard
                .and_then(|g| g.downcast::<&'static str>().ok())
                .map(|b| *b)
                .unwrap_or("?");
            assert_eq!(label, self.label, "guards must return to their hook");
            self.log
                .borrow_mut()
                .push(format!("{}:after:{}", self.label, outcome.is_ok()));
            outcome
        }
    }

    fn chain_vm() -> (Vm, Rc<RefCell<Vec<String>>>) {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("A", |c| {
            c.method("m", |_, _, _| Ok(Value::Int(1)));
        });
        let vm = Vm::new(rb.build());
        (vm, Rc::new(RefCell::new(Vec::new())))
    }

    #[test]
    fn chain_runs_outer_before_first_and_after_last() {
        let (mut vm, log) = chain_vm();
        let chain = HookChain::new(vec![
            Rc::new(RefCell::new(Logger {
                label: "outer",
                log: log.clone(),
                throw_on_before: false,
            })),
            Rc::new(RefCell::new(Logger {
                label: "inner",
                log: log.clone(),
                throw_on_before: false,
            })),
        ]);
        vm.set_hook(Some(Rc::new(RefCell::new(chain))));
        let a = vm.construct("A", &[]).unwrap();
        vm.root(a);
        vm.call(a, "m", &[]).unwrap();
        assert_eq!(
            log.borrow().as_slice(),
            &[
                "outer:before",
                "inner:before",
                "inner:after:true",
                "outer:after:true"
            ]
        );
    }

    #[test]
    fn inner_before_throw_unwinds_through_outer_after() {
        let (mut vm, log) = chain_vm();
        let chain = HookChain::new(vec![
            Rc::new(RefCell::new(Logger {
                label: "outer",
                log: log.clone(),
                throw_on_before: false,
            })),
            Rc::new(RefCell::new(Logger {
                label: "inner",
                log: log.clone(),
                throw_on_before: true,
            })),
        ]);
        vm.set_hook(Some(Rc::new(RefCell::new(chain))));
        let a = vm.construct("A", &[]).unwrap();
        vm.root(a);
        let err = vm.call(a, "m", &[]).unwrap_err();
        assert!(err.injected);
        // The inner wrapper threw at its injection point: the body never
        // ran, the inner after never ran, the outer after saw the error.
        assert_eq!(
            log.borrow().as_slice(),
            &["outer:before", "inner:before", "outer:after:false"]
        );
    }

    #[test]
    fn before_error_skips_body_and_propagates() {
        let ran = Rc::new(RefCell::new(false));
        let ran2 = ran.clone();
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("A", |c| {
            c.method("m", move |_, _, _| {
                *ran2.borrow_mut() = true;
                Ok(Value::Null)
            });
        });
        let mut vm = Vm::new(rb.build());
        vm.set_hook(Some(Rc::new(RefCell::new(ThrowFirst { armed: true }))));
        let a = vm.construct("A", &[]).unwrap();
        vm.root(a);
        let err = vm.call(a, "m", &[]).unwrap_err();
        assert!(err.injected);
        assert!(!*ran.borrow(), "body must not run when before() throws");
        // Hook disarmed: second call succeeds.
        assert!(vm.call(a, "m", &[]).is_ok());
        assert!(*ran.borrow());
    }
}

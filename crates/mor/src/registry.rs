//! The registry: all classes, methods and exception types of a guest
//! program, plus the language profile.
//!
//! A [`Registry`] is immutable once built; the [`crate::Vm`] shares it via
//! `Rc`, and the detection/masking phases index their per-method tables by
//! the dense [`MethodId`]s it assigns.

use crate::class::{ClassBuilder, ClassDef, MethodDef};
use crate::exception::ExceptionTable;
use crate::fx::FxHashMap;
use crate::ids::{ClassId, ExcId, MethodId};
use crate::profile::Profile;

/// An immutable program description: classes, methods, exception types and
/// the language profile.
#[derive(Debug)]
pub struct Registry {
    classes: Vec<ClassDef>,
    by_name: FxHashMap<String, ClassId>,
    exceptions: ExceptionTable,
    profile: Profile,
    runtime_exc: Vec<ExcId>,
    /// gid -> (class, method slot)
    methods: Vec<(ClassId, usize)>,
    /// gid -> precomputed injectable exception set (Listing 1's
    /// `E_1 .. E_n`). Built once at `build()` time so the sweep hot path
    /// never allocates or dedupes per call.
    injectable: Vec<Vec<ExcId>>,
}

impl Registry {
    /// The language profile this registry was built for.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The interned exception types.
    pub fn exceptions(&self) -> &ExceptionTable {
        &self.exceptions
    }

    /// The profile's generic runtime exceptions, interned.
    pub fn runtime_exceptions(&self) -> &[ExcId] {
        &self.runtime_exc
    }

    /// Looks up a class by name. Small registries (every evaluation app)
    /// are scanned directly — cheaper than hashing the name.
    pub fn class_by_name(&self, name: &str) -> Option<&ClassDef> {
        if self.classes.len() <= 8 {
            return self.classes.iter().find(|c| c.name == name);
        }
        self.by_name
            .get(name)
            .map(|id| &self.classes[id.0 as usize])
    }

    /// Returns a class by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Iterates over all classes in id order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.iter()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of methods (constructors included) across all classes.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Returns a method definition by global id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn method(&self, id: MethodId) -> &MethodDef {
        let (cid, slot) = self.methods[id.index()];
        &self.classes[cid.0 as usize].methods[slot]
    }

    /// Returns the class a method belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn method_class(&self, id: MethodId) -> ClassId {
        self.methods[id.index()].0
    }

    /// Renders a method as `Class::method` for reports.
    pub fn method_display(&self, id: MethodId) -> String {
        let (cid, slot) = self.methods[id.index()];
        let class = &self.classes[cid.0 as usize];
        format!("{}::{}", class.name, class.methods[slot].name)
    }

    /// Iterates over all method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> {
        (0..self.methods.len() as u32).map(MethodId)
    }

    /// The exception types an injection wrapper for `id` must consider —
    /// the `E_1 .. E_n` of Listing 1: declared exceptions followed by the
    /// profile's generic runtime exceptions.
    ///
    /// Returns an empty set (no injection points) when
    ///
    /// * the method is annotated [`MethodDef::never_throws`] (paper §4.3), or
    /// * the class is core and the profile cannot instrument core classes
    ///   (paper §5.2 limitation).
    ///
    /// The set is precomputed per method at build time and borrowed here,
    /// so the injection wrapper's hot path neither allocates nor dedupes —
    /// counting a disarmed call's points is `injectable_exceptions(id).len()`.
    pub fn injectable_exceptions(&self, id: MethodId) -> &[ExcId] {
        &self.injectable[id.index()]
    }

    /// Whether calls to `id` are instrumentable at all (wrappers can be
    /// woven around them).
    pub fn instrumentable(&self, id: MethodId) -> bool {
        let (cid, _) = self.methods[id.index()];
        self.profile.instrument_core || !self.classes[cid.0 as usize].is_core
    }
}

/// Builder for a [`Registry`].
///
/// ```
/// use atomask_mor::{Profile, RegistryBuilder, Value};
/// let mut rb = RegistryBuilder::new(Profile::cpp());
/// rb.class("Pair", |c| {
///     c.field("first", Value::Null);
///     c.field("second", Value::Null);
/// });
/// let reg = rb.build();
/// assert_eq!(reg.class_count(), 1);
/// ```
#[derive(Debug)]
pub struct RegistryBuilder {
    classes: Vec<ClassDef>,
    by_name: FxHashMap<String, ClassId>,
    exceptions: ExceptionTable,
    profile: Profile,
}

impl RegistryBuilder {
    /// Creates a builder for the given language profile. The profile's
    /// runtime exceptions are interned immediately.
    pub fn new(profile: Profile) -> Self {
        let mut exceptions = ExceptionTable::new();
        for name in &profile.runtime_exceptions {
            exceptions.intern(name);
        }
        RegistryBuilder {
            classes: Vec::new(),
            by_name: FxHashMap::default(),
            exceptions,
            profile,
        }
    }

    /// Interns an exception type ahead of time (declared exceptions named in
    /// `throws(..)` clauses are interned automatically at build).
    pub fn exception(&mut self, name: &str) -> ExcId {
        self.exceptions.intern(name)
    }

    /// Defines a class. The closure receives a [`ClassBuilder`] to declare
    /// fields, methods and the constructor.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name was already defined.
    pub fn class(&mut self, name: &str, define: impl FnOnce(&mut ClassBuilder)) -> ClassId {
        assert!(!self.by_name.contains_key(name), "duplicate class `{name}`");
        let mut builder = ClassBuilder::new(name);
        define(&mut builder);
        let id = ClassId(self.classes.len() as u32);
        let mut def = builder.def;
        def.id = id;
        self.by_name.insert(name.to_owned(), id);
        self.classes.push(def);
        id
    }

    /// Finalizes the registry: assigns dense method ids and resolves
    /// declared exception names.
    pub fn build(mut self) -> Registry {
        let mut methods = Vec::new();
        for class in &mut self.classes {
            for (slot, method) in class.methods.iter_mut().enumerate() {
                method.gid = MethodId(methods.len() as u32);
                methods.push((class.id, slot));
                let names = std::mem::take(&mut method.declared_names);
                for name in names {
                    let id = self.exceptions.intern(&name);
                    if !method.declared.contains(&id) {
                        method.declared.push(id);
                    }
                }
            }
        }
        let runtime_exc: Vec<ExcId> = self
            .profile
            .runtime_exceptions
            .iter()
            .map(|n| self.exceptions.intern(n))
            .collect();
        // Precompute each method's injectable exception set (declared
        // first, then the profile's runtime exceptions, deduped), so the
        // per-call lookup is a slice borrow.
        let injectable: Vec<Vec<ExcId>> = methods
            .iter()
            .map(|&(cid, slot)| {
                let class = &self.classes[cid.0 as usize];
                let method = &class.methods[slot];
                if method.never_throws || (class.is_core && !self.profile.instrument_core) {
                    return Vec::new();
                }
                let mut out = method.declared.clone();
                for &e in &runtime_exc {
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
                out
            })
            .collect();
        Registry {
            classes: self.classes,
            by_name: self.by_name,
            exceptions: self.exceptions,
            profile: self.profile,
            runtime_exc,
            methods,
            injectable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("A", |c| {
            c.field("x", Value::Int(0));
            c.ctor(|_, _, _| Ok(Value::Null));
            c.method("m", |_, _, _| Ok(Value::Null)).throws("IOError");
            c.method("quiet", |_, _, _| Ok(Value::Null)).never_throws();
        });
        rb.class("Str", |c| {
            c.core();
            c.method("len", |_, _, _| Ok(Value::Int(0)));
        });
        rb.build()
    }

    #[test]
    fn build_assigns_dense_method_ids() {
        let reg = sample();
        assert_eq!(reg.method_count(), 4);
        let ids: Vec<u32> = reg.method_ids().map(MethodId::into_raw).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        for id in reg.method_ids() {
            assert_eq!(reg.method(id).gid, id);
        }
    }

    #[test]
    fn declared_exceptions_resolved() {
        let reg = sample();
        let a = reg.class_by_name("A").unwrap();
        let m = &a.methods[a.method_slot("m").unwrap()];
        let io = reg.exceptions().lookup("IOError").unwrap();
        assert_eq!(m.declared, vec![io]);
    }

    #[test]
    fn injectable_set_is_declared_plus_runtime() {
        let reg = sample();
        let a = reg.class_by_name("A").unwrap();
        let m = a.methods[a.method_slot("m").unwrap()].gid;
        let set = reg.injectable_exceptions(m);
        // IOError + RuntimeException + OutOfMemoryError
        assert_eq!(set.len(), 3);
        let io = reg.exceptions().lookup("IOError").unwrap();
        assert_eq!(set[0], io, "declared exceptions come first (Listing 1)");
    }

    #[test]
    fn never_throws_suppresses_injection_points() {
        let reg = sample();
        let a = reg.class_by_name("A").unwrap();
        let quiet = a.methods[a.method_slot("quiet").unwrap()].gid;
        assert!(reg.injectable_exceptions(quiet).is_empty());
    }

    #[test]
    fn java_core_classes_not_instrumentable() {
        let reg = sample();
        let s = reg.class_by_name("Str").unwrap();
        let len = s.methods[s.method_slot("len").unwrap()].gid;
        assert!(!reg.instrumentable(len));
        assert!(reg.injectable_exceptions(len).is_empty());
    }

    #[test]
    fn cpp_core_classes_are_instrumentable() {
        let mut rb = RegistryBuilder::new(Profile::cpp());
        rb.class("Str", |c| {
            c.core();
            c.method("len", |_, _, _| Ok(Value::Int(0)));
        });
        let reg = rb.build();
        let s = reg.class_by_name("Str").unwrap();
        let len = s.methods[0].gid;
        assert!(reg.instrumentable(len));
        assert_eq!(reg.injectable_exceptions(len).len(), 3);
        let _ = s;
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_class_panics() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("A", |_| {});
        rb.class("A", |_| {});
    }

    #[test]
    fn method_display_renders_qualified_name() {
        let reg = sample();
        let a = reg.class_by_name("A").unwrap();
        let m = a.methods[a.method_slot("m").unwrap()].gid;
        assert_eq!(reg.method_display(m), "A::m");
    }
}

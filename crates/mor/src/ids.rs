//! Opaque identifiers used throughout the runtime.
//!
//! All identifiers are small `Copy` newtypes ([C-NEWTYPE]); they are only
//! meaningful relative to the [`crate::Registry`] or [`crate::Heap`] that
//! issued them.

use std::fmt;

/// Identifier of an object on the [`crate::Heap`].
///
/// Object ids are **never reused**: once an object is reclaimed its id stays
/// dead forever. This makes checkpoints (`atomask-objgraph`) able to
/// resurrect reclaimed objects at their original identity during rollback.
///
/// ```
/// use atomask_mor::ObjId;
/// let a = ObjId::from_raw(7);
/// assert_eq!(a.into_raw(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(u64);

impl ObjId {
    /// Creates an id from its raw representation.
    pub fn from_raw(raw: u64) -> Self {
        ObjId(raw)
    }

    /// Returns the raw representation of the id.
    pub fn into_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier of a class in a [`crate::Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Creates an id from its raw representation.
    pub fn from_raw(raw: u32) -> Self {
        ClassId(raw)
    }

    /// Returns the raw representation of the id.
    pub fn into_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class:{}", self.0)
    }
}

/// Globally unique identifier of a method (or constructor) in a
/// [`crate::Registry`].
///
/// Method ids are dense (`0..registry.method_count()`), which lets the
/// detection and masking phases use plain vectors as per-method tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodId(pub(crate) u32);

impl MethodId {
    /// Creates an id from its raw representation.
    pub fn from_raw(raw: u32) -> Self {
        MethodId(raw)
    }

    /// Returns the raw representation of the id.
    pub fn into_raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method:{}", self.0)
    }
}

/// Identifier of an interned exception type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExcId(pub(crate) u32);

impl ExcId {
    /// Creates an id from its raw representation.
    pub fn from_raw(raw: u32) -> Self {
        ExcId(raw)
    }

    /// Returns the raw representation of the id.
    pub fn into_raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exc:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_id_round_trips() {
        let id = ObjId::from_raw(42);
        assert_eq!(id.into_raw(), 42);
        assert_eq!(id.to_string(), "#42");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<ObjId> = [3, 1, 2].into_iter().map(ObjId::from_raw).collect();
        let sorted: Vec<u64> = set.into_iter().map(ObjId::into_raw).collect();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn method_id_indexing() {
        assert_eq!(MethodId::from_raw(9).index(), 9);
        assert_eq!(ExcId::from_raw(4).index(), 4);
        assert_eq!(ClassId::from_raw(2).into_raw(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ClassId::from_raw(1).to_string(), "class:1");
        assert_eq!(MethodId::from_raw(1).to_string(), "method:1");
        assert_eq!(ExcId::from_raw(1).to_string(), "exc:1");
    }
}

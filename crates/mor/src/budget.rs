//! Execution fuel budgets: bounded-cost runs for the detection campaigns.
//!
//! The paper's detection phase (§5) notes that an injected exception can
//! make a program diverge — a retry loop that keeps retrying a call whose
//! failure was synthetic, for example — and leaves cutting such runs off as
//! a limitation. The runtime closes that gap mechanically: a [`Budget`]
//! charges **fuel** for every dispatched call and every guest heap
//! operation, and when the fuel is gone the next dispatched call aborts
//! with the distinguished `BudgetExhausted` guest exception instead of
//! hanging the harness.
//!
//! The exception is deliberately a *guest* exception: it propagates through
//! the woven wrappers like any other (so atomicity wrappers still roll
//! back), reaches the driver as an `Err`, and the campaign layer classifies
//! the run as diverged rather than crediting its partial marks.

/// A fuel budget for one VM run.
///
/// Fuel is charged per dispatched call (`call_cost`, default 1) and per
/// guest heap operation — field reads/writes and allocations performed
/// through [`crate::Ctx`] or the VM's driver API (`heap_op_cost`, default
/// 1). [`Budget::unlimited`] (the default) never exhausts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    fuel: Option<u64>,
    call_cost: u64,
    heap_op_cost: u64,
}

impl Budget {
    /// No limit: the VM never aborts a run (the pre-resilience behaviour).
    pub const fn unlimited() -> Self {
        Budget {
            fuel: None,
            call_cost: 1,
            heap_op_cost: 1,
        }
    }

    /// A budget of `fuel` steps at the default costs.
    pub const fn fuel(fuel: u64) -> Self {
        Budget {
            fuel: Some(fuel),
            call_cost: 1,
            heap_op_cost: 1,
        }
    }

    /// Overrides the fuel charged per dispatched call.
    pub const fn call_cost(mut self, cost: u64) -> Self {
        self.call_cost = cost;
        self
    }

    /// Overrides the fuel charged per guest heap operation.
    pub const fn heap_op_cost(mut self, cost: u64) -> Self {
        self.heap_op_cost = cost;
        self
    }

    /// The fuel limit, if any.
    pub const fn limit(&self) -> Option<u64> {
        self.fuel
    }

    /// Fuel charged per dispatched call.
    pub const fn per_call(&self) -> u64 {
        self.call_cost
    }

    /// Fuel charged per guest heap operation.
    pub const fn per_heap_op(&self) -> u64 {
        self.heap_op_cost
    }

    /// `true` iff this budget can exhaust at all.
    pub const fn is_limited(&self) -> bool {
        self.fuel.is_some()
    }

    /// A budget with the same costs and `factor`× the fuel (saturating);
    /// the retry policy's "try again with a larger budget".
    pub const fn scaled(self, factor: u64) -> Self {
        Budget {
            fuel: match self.fuel {
                None => None,
                Some(f) => Some(f.saturating_mul(factor)),
            },
            ..self
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Running fuel account of one VM.
#[derive(Debug, Clone, Default)]
pub(crate) struct FuelMeter {
    budget: Budget,
    spent: u64,
    exhausted: bool,
    reported: bool,
}

impl FuelMeter {
    pub(crate) fn new(budget: Budget) -> Self {
        FuelMeter {
            budget,
            spent: 0,
            exhausted: false,
            reported: false,
        }
    }

    pub(crate) fn budget(&self) -> Budget {
        self.budget
    }

    pub(crate) fn spent(&self) -> u64 {
        self.spent
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// `true` once the exhaustion has been delivered to the guest as a
    /// `BudgetExhausted` exception. Any guest activity after that point is
    /// a program ignoring its abort — the dispatcher escalates to a panic.
    pub(crate) fn reported(&self) -> bool {
        self.reported
    }

    /// Records that the guest was handed the `BudgetExhausted` exception.
    pub(crate) fn mark_reported(&mut self) {
        self.reported = true;
    }

    /// Re-seeds the meter with fuel already spent, keeping the budget
    /// currently in force. Checkpoint restore uses this: the prefix's fuel
    /// is accounted against whatever budget the *resumed* attempt runs
    /// under (which may be a scaled retry budget larger than the one the
    /// recording ran with), so exhaustion triggers at exactly the same
    /// total spend as a from-scratch run.
    pub(crate) fn preload_spent(&mut self, spent: u64) {
        self.spent = spent;
        self.exhausted = matches!(self.budget.limit(), Some(limit) if spent > limit);
        self.reported = false;
    }

    /// Charges one dispatched call; returns `false` once the budget is
    /// exhausted (the dispatcher turns that into `BudgetExhausted`).
    pub(crate) fn charge_call(&mut self) -> bool {
        self.charge(self.budget.per_call())
    }

    /// Charges one guest heap operation. Heap ops never abort mid-body
    /// (bodies cannot observe exhaustion between two field writes); the
    /// overdraft is detected at the next dispatched call.
    pub(crate) fn charge_heap_op(&mut self) {
        self.charge(self.budget.per_heap_op());
    }

    fn charge(&mut self, cost: u64) -> bool {
        self.spent = self.spent.saturating_add(cost);
        if let Some(limit) = self.budget.limit() {
            if self.spent > limit {
                self.exhausted = true;
            }
        }
        !self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut meter = FuelMeter::new(Budget::unlimited());
        for _ in 0..10_000 {
            assert!(meter.charge_call());
            meter.charge_heap_op();
        }
        assert!(!meter.exhausted());
        assert_eq!(meter.spent(), 20_000);
    }

    #[test]
    fn limited_budget_trips_exactly_once_overdrawn() {
        let mut meter = FuelMeter::new(Budget::fuel(3));
        assert!(meter.charge_call());
        assert!(meter.charge_call());
        assert!(meter.charge_call());
        assert!(
            !meter.charge_call(),
            "fourth step overdraws a 3-step budget"
        );
        assert!(meter.exhausted());
    }

    #[test]
    fn heap_ops_count_toward_the_same_pool() {
        let mut meter = FuelMeter::new(Budget::fuel(2));
        meter.charge_heap_op();
        meter.charge_heap_op();
        meter.charge_heap_op();
        assert!(meter.exhausted(), "heap ops alone can exhaust");
    }

    #[test]
    fn reporting_is_explicit_and_sticky() {
        let mut meter = FuelMeter::new(Budget::fuel(1));
        meter.charge_heap_op();
        meter.charge_heap_op();
        assert!(meter.exhausted());
        assert!(!meter.reported(), "exhaustion alone is not yet reported");
        meter.mark_reported();
        assert!(meter.reported());
    }

    #[test]
    fn costs_are_configurable() {
        let budget = Budget::fuel(10).call_cost(5).heap_op_cost(0);
        let mut meter = FuelMeter::new(budget);
        meter.charge_heap_op();
        assert_eq!(meter.spent(), 0);
        assert!(meter.charge_call());
        assert!(meter.charge_call());
        assert!(!meter.charge_call());
    }

    #[test]
    fn scaling_multiplies_fuel_only() {
        let budget = Budget::fuel(100).call_cost(2);
        let grown = budget.scaled(4);
        assert_eq!(grown.limit(), Some(400));
        assert_eq!(grown.per_call(), 2);
        assert_eq!(Budget::unlimited().scaled(7), Budget::unlimited());
    }
}

//! Host-level errors: misuse of the runtime API by the embedding program.
//!
//! These are distinct from guest-level [`crate::Exception`]s, which model the
//! application's own exceptions and propagate through the interposable call
//! dispatcher. A `MorError` means the *Rust* code driving the VM did
//! something wrong (unknown class name, dangling object id, bad field name).

use crate::ids::ObjId;
use std::error::Error;
use std::fmt;

/// An error caused by misuse of the runtime API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MorError {
    /// No class with this name is registered.
    UnknownClass(String),
    /// The class exists but has no such method.
    UnknownMethod {
        /// Class name.
        class: String,
        /// Requested method name.
        method: String,
    },
    /// The class exists but has no such field.
    UnknownField {
        /// Class name.
        class: String,
        /// Requested field name.
        field: String,
    },
    /// The object id does not denote a live object.
    DeadObject(ObjId),
    /// No exception type with this name is registered.
    UnknownException(String),
}

impl fmt::Display for MorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorError::UnknownClass(name) => write!(f, "unknown class `{name}`"),
            MorError::UnknownMethod { class, method } => {
                write!(f, "class `{class}` has no method `{method}`")
            }
            MorError::UnknownField { class, field } => {
                write!(f, "class `{class}` has no field `{field}`")
            }
            MorError::DeadObject(id) => write!(f, "object {id} is not live"),
            MorError::UnknownException(name) => {
                write!(f, "unknown exception type `{name}`")
            }
        }
    }
}

impl Error for MorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(
            MorError::UnknownClass("Foo".into()).to_string(),
            "unknown class `Foo`"
        );
        assert_eq!(
            MorError::UnknownMethod {
                class: "A".into(),
                method: "m".into()
            }
            .to_string(),
            "class `A` has no method `m`"
        );
        assert_eq!(
            MorError::DeadObject(ObjId::from_raw(3)).to_string(),
            "object #3 is not live"
        );
    }

    #[test]
    fn implements_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MorError>();
    }
}

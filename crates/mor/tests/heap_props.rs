//! Property tests of the heap: reference counts always equal in-degrees,
//! reclamation frees exactly the unreachable acyclic garbage, mark–sweep
//! agrees with reachability, and journal abort is an exact inverse.

use atomask_mor::{Heap, ObjId, Profile, RegistryBuilder, Value, Vm};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum HeapOp {
    Alloc,
    Link(usize, usize, bool), // (from, to, left-or-right field)
    Unlink(usize, bool),
    Root(usize),
    Unroot(usize),
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        2 => Just(HeapOp::Alloc),
        4 => (any::<usize>(), any::<usize>(), any::<bool>())
            .prop_map(|(a, b, f)| HeapOp::Link(a, b, f)),
        2 => (any::<usize>(), any::<bool>()).prop_map(|(a, f)| HeapOp::Unlink(a, f)),
        1 => any::<usize>().prop_map(HeapOp::Root),
        1 => any::<usize>().prop_map(HeapOp::Unroot),
    ]
}

fn fresh_vm() -> Vm {
    let mut rb = RegistryBuilder::new(Profile::cpp());
    rb.class("N", |c| {
        c.field("l", Value::Null);
        c.field("r", Value::Null);
    });
    Vm::new(rb.build())
}

/// Applies ops; every allocated object is rooted once on allocation so the
/// scripts control liveness purely via Root/Unroot and links.
fn apply(vm: &mut Vm, ops: &[HeapOp]) -> Vec<ObjId> {
    let mut nodes = Vec::new();
    let mut extra_roots: Vec<ObjId> = Vec::new();
    for op in ops {
        match op {
            HeapOp::Alloc => {
                let id = vm.alloc_raw("N");
                vm.root(id);
                nodes.push(id);
            }
            HeapOp::Link(a, b, f) if !nodes.is_empty() => {
                let (x, y) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                if vm.heap().is_live(x) && vm.heap().is_live(y) {
                    let field = if *f { "l" } else { "r" };
                    vm.heap_mut().set_field(x, field, Value::Ref(y)).unwrap();
                }
            }
            HeapOp::Unlink(a, f) if !nodes.is_empty() => {
                let x = nodes[a % nodes.len()];
                if vm.heap().is_live(x) {
                    let field = if *f { "l" } else { "r" };
                    vm.heap_mut().set_field(x, field, Value::Null).unwrap();
                }
            }
            HeapOp::Root(a) if !nodes.is_empty() => {
                let x = nodes[a % nodes.len()];
                vm.root(x);
                extra_roots.push(x);
            }
            HeapOp::Unroot(a) if !nodes.is_empty() => {
                let x = nodes[a % nodes.len()];
                // Only release roots we added beyond the allocation root.
                if let Some(pos) = extra_roots.iter().position(|&r| r == x) {
                    extra_roots.swap_remove(pos);
                    vm.unroot(x);
                }
            }
            _ => {}
        }
    }
    nodes
}

fn in_degrees(heap: &Heap) -> HashMap<ObjId, usize> {
    let mut deg = HashMap::new();
    for (_, obj) in heap.iter() {
        for v in obj.fields() {
            if let Value::Ref(t) = v {
                *deg.entry(*t).or_insert(0) += 1;
            }
        }
    }
    deg
}

fn reachable_from_roots(heap: &Heap) -> HashSet<ObjId> {
    let mut seen = HashSet::new();
    let mut stack: Vec<ObjId> = heap
        .iter()
        .map(|(id, _)| id)
        .filter(|id| heap.root_count(*id) > 0)
        .collect();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if let Some(obj) = heap.get(id) {
            for v in obj.fields() {
                if let Value::Ref(t) = v {
                    stack.push(*t);
                }
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reference counts always equal in-degrees, whatever the script does.
    #[test]
    fn refcounts_equal_in_degrees(ops in prop::collection::vec(heap_op(), 1..60)) {
        let mut vm = fresh_vm();
        apply(&mut vm, &ops);
        let deg = in_degrees(vm.heap());
        for (id, _) in vm.heap().iter() {
            prop_assert_eq!(
                vm.heap().refcount(id),
                deg.get(&id).copied().unwrap_or(0),
                "refcount mismatch on {}", id
            );
        }
    }

    /// Mark-sweep frees exactly the root-unreachable objects, and the
    /// refcounts it leaves behind are consistent again.
    #[test]
    fn collect_agrees_with_reachability(ops in prop::collection::vec(heap_op(), 1..60)) {
        let mut vm = fresh_vm();
        let nodes = apply(&mut vm, &ops);
        // Drop the allocation roots of a prefix of nodes to create garbage.
        for &n in nodes.iter().take(nodes.len() / 2) {
            vm.unroot(n);
        }
        let reachable = reachable_from_roots(vm.heap());
        let live_before = vm.heap().len();
        let freed = vm.heap_mut().collect();
        prop_assert_eq!(vm.heap().len(), reachable.len());
        prop_assert_eq!(freed, live_before - reachable.len());
        let deg = in_degrees(vm.heap());
        for (id, _) in vm.heap().iter() {
            prop_assert_eq!(vm.heap().refcount(id), deg.get(&id).copied().unwrap_or(0));
        }
    }

    /// reclaim() never frees a reachable object and never leaves acyclic
    /// garbage behind (anything it keeps is reachable or part of a cycle).
    #[test]
    fn reclaim_is_safe_and_complete(ops in prop::collection::vec(heap_op(), 1..60)) {
        let mut vm = fresh_vm();
        let nodes = apply(&mut vm, &ops);
        for &n in nodes.iter().take(nodes.len() / 2) {
            vm.unroot(n);
        }
        let reachable = reachable_from_roots(vm.heap());
        vm.heap_mut().reclaim();
        // Safety: everything reachable survived.
        for id in &reachable {
            prop_assert!(vm.heap().is_live(*id), "{} was reachable but reclaimed", id);
        }
        // Completeness up to cycles: survivors that are unreachable must
        // sit on (or hang off) a reference cycle, which mark-sweep removes.
        let survivors = vm.heap().len();
        let freed_by_gc = vm.heap_mut().collect();
        prop_assert_eq!(vm.heap().len(), reachable.len());
        prop_assert_eq!(survivors - freed_by_gc, reachable.len());
    }

    /// Journal abort after arbitrary journaled mutation restores every
    /// field exactly (spot-checked via full snapshot of all roots).
    #[test]
    fn journal_abort_is_exact(
        setup in prop::collection::vec(heap_op(), 1..30),
        inside in prop::collection::vec(heap_op(), 1..30),
    ) {
        use atomask_objgraph::Snapshot;
        let mut vm = fresh_vm();
        let nodes = apply(&mut vm, &setup);
        prop_assume!(!nodes.is_empty());
        let live: Vec<ObjId> = nodes.iter().copied()
            .filter(|n| vm.heap().is_live(*n)).collect();
        prop_assume!(!live.is_empty());
        let before = Snapshot::of_roots(vm.heap(), &live);
        vm.heap_mut().push_journal();
        // Journaled mutations: links/unlinks only (no new roots, so the
        // liveness set is stable).
        let mutations: Vec<HeapOp> = inside.into_iter()
            .filter(|op| matches!(op, HeapOp::Link(..) | HeapOp::Unlink(..) | HeapOp::Alloc))
            .collect();
        apply_on_existing(&mut vm, &live, &mutations);
        vm.heap_mut().abort_journal();
        prop_assert_eq!(Snapshot::of_roots(vm.heap(), &live), before);
    }
}

/// Applies link/unlink/alloc mutations against a fixed set of nodes.
fn apply_on_existing(vm: &mut Vm, nodes: &[ObjId], ops: &[HeapOp]) {
    for op in ops {
        match op {
            HeapOp::Alloc => {
                let id = vm.alloc_raw("N");
                vm.root(id);
            }
            HeapOp::Link(a, b, f) => {
                let (x, y) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                let field = if *f { "l" } else { "r" };
                vm.heap_mut().set_field(x, field, Value::Ref(y)).unwrap();
            }
            HeapOp::Unlink(a, f) => {
                let x = nodes[a % nodes.len()];
                let field = if *f { "l" } else { "r" };
                vm.heap_mut().set_field(x, field, Value::Null).unwrap();
            }
            _ => {}
        }
    }
}

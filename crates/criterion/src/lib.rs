//! A minimal, dependency-free stand-in for the `criterion` crate, covering
//! exactly the surface this workspace's benches use.
//!
//! The build environment is fully offline (no crates.io access), so the
//! workspace vendors this shim instead of the real crate. Bench sources are
//! unchanged: `criterion_group!`/`criterion_main!`, `Criterion::
//! benchmark_group`, `bench_function`/`bench_with_input`, `BenchmarkId` and
//! `Bencher::iter` all work. Measurements are a single timed batch per
//! benchmark (median-free, no statistics, no plots) printed as
//! `group/name/param ... <ns>/iter` — enough to compare runs by eye, which
//! is all the paper-reproduction experiments need.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim's single-batch
    /// measurement has no sample count to configure.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b))
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input))
    }

    /// Closes the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        };
        println!(
            "{}/{id} ... {per_iter:.0} ns/iter ({} iters)",
            self.name, bencher.iters
        );
        self
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`: a short calibration pass sizes a batch aiming at
    /// ~50 ms of work (at least one iteration), then the batch is timed.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let calibration = Instant::now();
        black_box(routine());
        let once = calibration.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.bench_function("counting", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("capture", 64).id, "capture/64");
        assert_eq!(BenchmarkId::from_parameter("stdQ").id, "stdQ");
    }
}

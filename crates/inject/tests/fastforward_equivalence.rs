//! Property tests of the phase-gated fast-forward: a sweep that advances
//! the point counter arithmetically while disarmed must be bit-for-bit
//! identical — run records *and* serialized journals — to a sweep walking
//! Listing 1's literal per-exception-type loop, for every worker count,
//! both capture modes, and with the flight recorder on or off.
//!
//! This is the campaign-level proof obligation behind turning the gate on
//! by default (and behind `Campaign::replay` keeping it off: since the two
//! modes agree everywhere, a replay/sweep mismatch indicts the gate).

use atomask_inject::{classify, Campaign, CampaignConfig, CaptureMode, MarkFilter, TraceMode};
use atomask_mor::{Budget, FnProgram, Profile, RegistryBuilder, Value};
use proptest::prelude::*;

/// A mutating call tree whose methods carry *different* declared-exception
/// counts, so the fast-forward arithmetic advances the counter by a
/// different stride per call site — the case a per-type loop and a single
/// addition could plausibly disagree on.
fn striped_tree(depth: u8, fanout: u8) -> FnProgram {
    FnProgram::new(
        "stripedTree",
        || {
            let mut rb = RegistryBuilder::new(Profile::java());
            rb.class("T", |c| {
                c.field("work", Value::Int(0));
                c.field("audit", Value::Int(0));
                c.method("spin", |ctx, this, args| {
                    let level = args[0].as_int().unwrap_or(0);
                    if level > 0 {
                        let fanout = ctx.get_int(this, "fanout");
                        for _ in 0..fanout {
                            ctx.call(this, "bump", &[])?;
                            ctx.call(this, "spin", &[Value::Int(level - 1)])?;
                        }
                    }
                    let w = ctx.get_int(this, "work");
                    ctx.set(this, "work", Value::Int(w + 1));
                    Ok(Value::Null)
                })
                .throws("IOError")
                .throws("ParseError");
                // Partial-state window: `audit` is updated after a nested
                // call, so mid-call injections mark `bump` non-atomic.
                c.method("bump", |ctx, this, _| {
                    let a = ctx.get_int(this, "audit");
                    ctx.call(this, "leaf", &[])?;
                    ctx.set(this, "audit", Value::Int(a + 1));
                    Ok(Value::Null)
                })
                .throws("IOError");
                c.method("leaf", |ctx, this, _| {
                    let w = ctx.get_int(this, "work");
                    ctx.set(this, "work", Value::Int(w ^ 5));
                    Ok(Value::Null)
                });
                c.field("fanout", Value::Int(0));
            });
            rb.build()
        },
        move |vm| {
            let t = vm.construct("T", &[])?;
            vm.root(t);
            vm.heap_mut()
                .set_field(t, "fanout", Value::Int(fanout as i64))
                .expect("fanout field exists");
            vm.call(t, "spin", &[Value::Int(depth as i64)])
        },
    )
}

fn base_config(workers: usize, capture: CaptureMode, trace: TraceMode) -> CampaignConfig {
    CampaignConfig {
        budget: Budget::fuel(20_000),
        workers,
        capture,
        trace,
        ..CampaignConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The gate equivalence itself: identical runs, identical serialized
    /// journals, identical classification — across worker counts and both
    /// capture modes, with the recorder pinned off so `ATOMASK_TRACE`
    /// cannot skew either side.
    #[test]
    fn fast_forward_sweep_is_bit_identical(
        depth in 0u8..3,
        fanout in 1u8..3,
        workers in 1usize..4,
        eager in any::<bool>(),
    ) {
        let capture = if eager { CaptureMode::Eager } else { CaptureMode::Lazy };
        let p = striped_tree(depth, fanout);
        let gated = Campaign::new(&p)
            .config(base_config(workers, capture, TraceMode::Off))
            .run();
        let reference = Campaign::new(&p)
            .fast_forward(false)
            .config(base_config(workers, capture, TraceMode::Off))
            .run();
        prop_assert_eq!(&gated.runs, &reference.runs);
        prop_assert_eq!(gated.total_points, reference.total_points);
        prop_assert_eq!(&gated.baseline_calls, &reference.baseline_calls);
        prop_assert_eq!(
            gated.journal().serialize(),
            reference.journal().serialize()
        );
        let cg = classify(&gated, &MarkFilter::default());
        let cr = classify(&reference, &MarkFilter::default());
        prop_assert_eq!(cg.method_counts, cr.method_counts);
    }

    /// With a live ring sink the equivalence extends to the flight
    /// recorder: the disarmed prefix emits no per-call events in either
    /// mode, so per-run event counts match exactly.
    #[test]
    fn fast_forward_preserves_trace_event_counts(
        depth in 1u8..3,
        fanout in 1u8..3,
    ) {
        let p = striped_tree(depth, fanout);
        let trace = TraceMode::Ring(4096);
        let gated = Campaign::new(&p)
            .config(base_config(1, CaptureMode::Lazy, trace))
            .run();
        let reference = Campaign::new(&p)
            .fast_forward(false)
            .config(base_config(1, CaptureMode::Lazy, trace))
            .run();
        prop_assert_eq!(&gated.runs, &reference.runs);
        let gated_events: Vec<u64> = gated.runs.iter().map(|r| r.trace_events).collect();
        let ref_events: Vec<u64> = reference.runs.iter().map(|r| r.trace_events).collect();
        prop_assert_eq!(gated_events, ref_events);
    }
}

/// The striped tree actually exercises what this suite claims to test:
/// non-atomic verdicts exist, and at least two distinct per-method strides
/// are in play (2 vs. 3 vs. 4 injectable exceptions).
#[test]
fn striped_tree_is_a_meaningful_witness() {
    let p = striped_tree(2, 2);
    let result = Campaign::new(&p)
        .config(base_config(1, CaptureMode::Lazy, TraceMode::Off))
        .run();
    assert!(result.total_points > 0);
    assert!(
        result
            .runs
            .iter()
            .any(|r| r.marks.iter().any(|m| !m.atomic)),
        "the audit-after-call window must yield non-atomic marks"
    );
    let strides: std::collections::HashSet<usize> = result
        .registry
        .method_ids()
        .map(|m| result.registry.injectable_exceptions(m).len())
        .collect();
    assert!(
        strides.len() >= 3,
        "methods must differ in injectable-exception count, got {strides:?}"
    );
}

//! Property tests of the sharded campaign executor: for every worker
//! count the parallel sweep must be *observationally identical* to the
//! sequential one — same `CampaignResult`, bit-identical serialized
//! journal — including for programs whose runs diverge or panic, and
//! under a `max_failures` cap (whose Skipped semantics stay defined in
//! injection-point order, not worker-completion order).

use atomask_inject::{classify, Campaign, CampaignConfig, CaptureMode, MarkFilter, RunOutcome};
use atomask_mor::{Budget, FnProgram, Profile, RegistryBuilder, Value};
use proptest::prelude::*;

/// A mutating call tree: `fanout` children per `spin` call, a counter
/// update after the recursion so mid-tree injections leave partial state
/// (and therefore non-atomic marks).
fn tree_program(depth: u8, fanout: u8) -> FnProgram {
    FnProgram::new(
        "tree",
        move || {
            let mut rb = RegistryBuilder::new(Profile::java());
            rb.class("T", |c| {
                c.field("work", Value::Int(0));
                c.method("spin", move |ctx, this, args| {
                    let level = args[0].as_int().unwrap_or(0);
                    if level > 0 {
                        for _ in 0..fanout {
                            ctx.call(this, "spin", &[Value::Int(level - 1)])?;
                        }
                    }
                    let w = ctx.get_int(this, "work");
                    ctx.set(this, "work", Value::Int(w + 1));
                    Ok(Value::Null)
                });
            });
            rb.build()
        },
        move |vm| {
            let t = vm.construct("T", &[])?;
            vm.root(t);
            vm.call(t, "spin", &[Value::Int(depth as i64)])
        },
    )
}

/// A program whose reaction to injections is pathological: one point
/// corrupts state an application-level retry loop spins on until the fuel
/// budget cuts it off (Diverged), another trips a host panic (Panicked).
fn pathological_program() -> FnProgram {
    FnProgram::new(
        "pathological",
        || {
            let mut profile = Profile::cpp();
            profile.runtime_exceptions = vec!["Fault".to_owned()];
            let mut rb = RegistryBuilder::new(profile);
            rb.exception("StateError");
            rb.class("P", |c| {
                c.field("locked", Value::Bool(false));
                c.field("done", Value::Int(0));
                c.method("transact", |ctx, this, _| {
                    if ctx.get_bool(this, "locked") {
                        return Err(ctx.exception("StateError", "still locked"));
                    }
                    ctx.set(this, "locked", Value::Bool(true));
                    ctx.call(this, "commit", &[])?;
                    ctx.set(this, "locked", Value::Bool(false));
                    Ok(Value::Null)
                });
                c.method("commit", |_, _, _| Ok(Value::Null));
                c.method("strict", |ctx, this, _| {
                    if ctx.call(this, "probe", &[]).is_err() {
                        panic!("invariant violated: probe can never fail");
                    }
                    Ok(Value::Null)
                });
                c.method("probe", |_, _, _| Ok(Value::Null));
                c.method("calm", |ctx, this, _| {
                    let d = ctx.get_int(this, "done");
                    ctx.set(this, "done", Value::Int(d + 1));
                    Ok(Value::Null)
                });
            });
            rb.build()
        },
        |vm| {
            let p = vm.construct("P", &[])?;
            vm.root(p);
            loop {
                match vm.call(p, "transact", &[]) {
                    Ok(_) => break,
                    Err(_) => continue,
                }
            }
            let _ = vm.call(p, "strict", &[]);
            vm.call(p, "calm", &[])
        },
    )
}

fn config_with_workers(workers: usize) -> CampaignConfig {
    CampaignConfig {
        budget: Budget::fuel(20_000),
        workers,
        ..CampaignConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole equivalence: for any worker count, the sharded sweep
    /// produces the same `CampaignResult` and a bit-identical serialized
    /// journal as the sequential sweep.
    #[test]
    fn parallel_sweep_is_observationally_sequential(
        depth in 0u8..3,
        fanout in 1u8..3,
        workers in 1usize..5,
    ) {
        let p = tree_program(depth, fanout);
        let seq = Campaign::new(&p).config(config_with_workers(1)).run();
        let par = Campaign::new(&p).config(config_with_workers(workers)).run();
        prop_assert_eq!(&par.runs, &seq.runs);
        prop_assert_eq!(par.total_points, seq.total_points);
        prop_assert_eq!(&par.baseline_calls, &seq.baseline_calls);
        prop_assert_eq!(par.journal().serialize(), seq.journal().serialize());
        let cs = classify(&seq, &MarkFilter::default());
        let cp = classify(&par, &MarkFilter::default());
        prop_assert_eq!(cs.method_counts, cp.method_counts);
    }

    /// Equivalence holds for pathological programs too: diverged and
    /// panicked runs land on the same points with the same outcomes no
    /// matter how the sweep is sharded.
    #[test]
    fn pathological_runs_shard_deterministically(workers in 2usize..5) {
        let p = pathological_program();
        let seq = Campaign::new(&p).config(config_with_workers(1)).run();
        let par = Campaign::new(&p).config(config_with_workers(workers)).run();
        prop_assert_eq!(&par.runs, &seq.runs);
        prop_assert_eq!(par.journal().serialize(), seq.journal().serialize());
        let health = par.health();
        prop_assert!(health.diverged > 0, "the retry loop diverges somewhere");
        prop_assert!(health.panicked > 0, "the strict invariant panics somewhere");
    }

    /// `max_failures` keeps its sequential meaning under sharding: results
    /// are accounted in injection-point order, so the set of Skipped
    /// points is identical even though a worker may have speculatively
    /// executed a point past the cap before the writer reached it.
    #[test]
    fn skipped_cap_is_point_ordered_under_sharding(
        workers in 2usize..5,
        cap in 1u64..3,
    ) {
        let p = pathological_program();
        let config = CampaignConfig {
            max_failures: Some(cap),
            ..config_with_workers(1)
        };
        let seq = Campaign::new(&p).config(config).run();
        let par = Campaign::new(&p)
            .config(CampaignConfig { workers, ..config })
            .run();
        prop_assert_eq!(&par.runs, &seq.runs);
        prop_assert_eq!(par.journal().serialize(), seq.journal().serialize());
        prop_assert!(
            par.runs.iter().any(|r| r.outcome == RunOutcome::Skipped),
            "a cap of {cap} on this program must skip a tail"
        );
        // Skipped runs form a suffix in point order.
        let first_skipped = par
            .runs
            .iter()
            .position(|r| r.outcome == RunOutcome::Skipped)
            .unwrap();
        prop_assert!(par.runs[first_skipped..]
            .iter()
            .all(|r| r.outcome == RunOutcome::Skipped));
    }

    /// Lazy capture is a pure optimization: marks, outcomes and verdicts
    /// match the eager sweep while the snapshot count never grows (and
    /// shrinks whenever some runs complete without an escaping exception).
    #[test]
    fn lazy_capture_is_mark_equivalent_and_cheaper(
        depth in 1u8..3,
        fanout in 1u8..3,
    ) {
        let p = tree_program(depth, fanout);
        let eager = Campaign::new(&p)
            .config(CampaignConfig {
                capture: CaptureMode::Eager,
                ..config_with_workers(1)
            })
            .run();
        let lazy = Campaign::new(&p)
            .config(CampaignConfig {
                capture: CaptureMode::Lazy,
                ..config_with_workers(1)
            })
            .run();
        prop_assert_eq!(lazy.runs.len(), eager.runs.len());
        for (l, e) in lazy.runs.iter().zip(&eager.runs) {
            prop_assert_eq!(l.outcome, e.outcome);
            prop_assert_eq!(l.injected, e.injected);
            prop_assert_eq!(&l.marks, &e.marks);
        }
        let ce = classify(&eager, &MarkFilter::default());
        let cl = classify(&lazy, &MarkFilter::default());
        prop_assert_eq!(ce.method_counts, cl.method_counts);
        prop_assert!(
            lazy.health().snapshots <= eager.health().snapshots,
            "lazy {} > eager {}",
            lazy.health().snapshots,
            eager.health().snapshots
        );
    }
}

/// The ATOMASK_WORKERS override and the explicit `workers` knob meet the
/// same ordered-writer path: a quick smoke over every small worker count
/// on the pathological program, checking bit-identical journals pairwise.
#[test]
fn journals_are_bit_identical_across_worker_counts() {
    let p = pathological_program();
    let baseline = Campaign::new(&p)
        .config(config_with_workers(1))
        .run()
        .journal()
        .serialize();
    for workers in 2..=4 {
        let journal = Campaign::new(&p)
            .config(config_with_workers(workers))
            .run()
            .journal()
            .serialize();
        assert_eq!(journal, baseline, "worker count {workers}");
    }
}

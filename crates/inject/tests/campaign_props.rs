//! Property tests of the campaign machinery: injection-point arithmetic,
//! determinism, exactly-once injection, and resilience invariants
//! (budgeted sweeps, journal round-trips, bit-for-bit resume).

use atomask_inject::{classify, Campaign, CampaignConfig, CampaignJournal, MarkFilter, RunOutcome};
use atomask_mor::{Budget, FnProgram, Profile, RegistryBuilder, Value};
use proptest::prelude::*;

/// Registry for the configurable call tree: `fanout` children per `spin`
/// call, each method declaring `extra_exc` exceptions.
fn tree_registry(fanout: u8, extra_exc: u8) -> atomask_mor::Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    rb.class("T", |c| {
        c.field("work", Value::Int(0));
        let mut cfg = c.method("spin", move |ctx, this, args| {
            let level = args[0].as_int().unwrap_or(0);
            if level > 0 {
                for _ in 0..fanout {
                    ctx.call(this, "spin", &[Value::Int(level - 1)])?;
                }
            }
            let w = ctx.get_int(this, "work");
            ctx.set(this, "work", Value::Int(w + 1));
            Ok(Value::Null)
        });
        for e in 0..extra_exc {
            cfg.throws(&format!("E{e}"));
        }
    });
    rb.build()
}

/// A program with a configurable call tree: `fanout` children per call,
/// `depth` levels, each method declaring `extra_exc` exceptions.
fn tree_program(depth: u8, fanout: u8, extra_exc: u8) -> FnProgram {
    FnProgram::new(
        "tree",
        move || tree_registry(fanout, extra_exc),
        move |vm| {
            let t = vm.construct("T", &[])?;
            vm.root(t);
            vm.call(t, "spin", &[Value::Int(depth as i64)])
        },
    )
}

/// The same tree under an application-level retry driver that swallows
/// failures and tries again: a run either completes or is cut off by the
/// fuel budget — nothing else can end it.
fn retrying_tree_program(depth: u8, fanout: u8) -> FnProgram {
    FnProgram::new(
        "retry-tree",
        move || tree_registry(fanout, 0),
        move |vm| {
            let t = vm.construct("T", &[])?;
            vm.root(t);
            loop {
                if vm.call(t, "spin", &[Value::Int(depth as i64)]).is_ok() {
                    return Ok(Value::Null);
                }
            }
        },
    )
}

/// Dynamic call count of the full tree.
fn calls(depth: u8, fanout: u8) -> u64 {
    // 1 + f + f^2 + ... + f^depth
    let f = fanout as u64;
    if f <= 1 {
        depth as u64 + 1
    } else {
        (f.pow(depth as u32 + 1) - 1) / (f - 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Total potential injection points = dynamic calls × exception types
    /// per method (Listing 1's counter arithmetic).
    #[test]
    fn point_arithmetic(depth in 0u8..4, fanout in 1u8..3, extra in 0u8..3) {
        let p = tree_program(depth, fanout, extra);
        let result = Campaign::new(&p).max_points(1).run();
        // spin: `extra` declared + 2 runtime exceptions.
        let per_call = extra as u64 + 2;
        prop_assert_eq!(result.total_points, calls(depth, fanout) * per_call);
        prop_assert_eq!(
            result.baseline_calls.iter().sum::<u64>(),
            calls(depth, fanout)
        );
    }

    /// Campaigns are deterministic: two full runs produce identical marks
    /// and classifications.
    #[test]
    fn campaigns_are_deterministic(depth in 0u8..3, fanout in 1u8..3) {
        let p = tree_program(depth, fanout, 1);
        let a = Campaign::new(&p).run();
        let b = Campaign::new(&p).run();
        prop_assert_eq!(a.total_points, b.total_points);
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            prop_assert_eq!(ra.injected, rb.injected);
            prop_assert_eq!(ra.marks.len(), rb.marks.len());
            for (ma, mb) in ra.marks.iter().zip(&rb.marks) {
                prop_assert_eq!(ma.method, mb.method);
                prop_assert_eq!(ma.atomic, mb.atomic);
            }
        }
        let ca = classify(&a, &MarkFilter::default());
        let cb = classify(&b, &MarkFilter::default());
        prop_assert_eq!(ca.method_counts, cb.method_counts);
    }

    /// Every run with `InjectionPoint <= N` injects exactly once, and the
    /// injected exception escapes to the top unless the program catches it
    /// (this program never catches).
    #[test]
    fn every_run_injects_exactly_once(depth in 0u8..3, fanout in 1u8..3) {
        let p = tree_program(depth, fanout, 0);
        let result = Campaign::new(&p).run();
        prop_assert_eq!(result.runs.len() as u64, result.total_points);
        for run in &result.runs {
            prop_assert!(run.injected.is_some(), "run {} did not inject", run.injection_point);
            prop_assert!(
                run.top_error.as_deref().unwrap_or("").contains("injected"),
                "run {}: {:?}",
                run.injection_point,
                run.top_error
            );
        }
    }

    /// Methods are never classified both ways: the verdict partition is a
    /// function of the marks.
    #[test]
    fn verdicts_partition_used_methods(depth in 1u8..3, fanout in 1u8..3) {
        let p = tree_program(depth, fanout, 1);
        let result = Campaign::new(&p).run();
        let c = classify(&result, &MarkFilter::default());
        let used = result.used_methods().count() as u64;
        prop_assert_eq!(c.method_counts.total(), used);
    }

    /// A generous fuel budget never changes the outcome of a terminating
    /// program: every run completes, no retries are spent, and fuel is
    /// metered on every run.
    #[test]
    fn generous_budgets_are_invisible(depth in 0u8..3, fanout in 1u8..3) {
        let p = tree_program(depth, fanout, 1);
        let unlimited = Campaign::new(&p).run();
        let budgeted = Campaign::new(&p)
            .budget(Budget::fuel(1_000_000))
            .run();
        prop_assert_eq!(&budgeted.runs, &unlimited.runs);
        let health = budgeted.health();
        prop_assert_eq!(health.completed, budgeted.total_points);
        prop_assert_eq!(health.unhealthy(), 0);
        prop_assert_eq!(health.retries, 0);
        prop_assert!(health.fuel_spent > 0);
    }

    /// Resuming from a journal truncated at *any* prefix length reproduces
    /// the uninterrupted sweep bit-for-bit.
    #[test]
    fn resume_from_any_prefix_is_bit_for_bit(
        depth in 0u8..3,
        fanout in 1u8..3,
        cut_pct in 0u8..101,
    ) {
        let p = tree_program(depth, fanout, 1);
        let config = CampaignConfig {
            budget: Budget::fuel(1_000_000),
            ..CampaignConfig::default()
        };
        let full = Campaign::new(&p).config(config).run();
        let keep = full.runs.len() * cut_pct as usize / 100;
        let mut journal = full.journal();
        journal.truncate_runs(keep);
        let resumed = Campaign::new(&p).config(config).resume(&mut journal);
        prop_assert_eq!(&resumed.runs, &full.runs);
        prop_assert_eq!(journal.len(), full.runs.len(), "journal backfilled");
    }

    /// The journal text format round-trips every campaign it records.
    #[test]
    fn journal_text_format_round_trips(depth in 0u8..3, fanout in 1u8..3, extra in 0u8..2) {
        let p = tree_program(depth, fanout, extra);
        let result = Campaign::new(&p).run();
        let journal = result.journal();
        let reparsed = CampaignJournal::parse(&journal.serialize());
        prop_assert!(reparsed.is_ok(), "{:?}", reparsed.err());
        prop_assert_eq!(reparsed.unwrap(), journal);
    }

    /// A retrying driver turns every injected failure into another full
    /// tree walk, so a starved budget must cut runs off: the sweep still
    /// covers every counted point, marks those runs diverged (never
    /// panicked — the escalation stays inside the campaign), and completes
    /// rather than hanging.
    #[test]
    fn starved_budgets_degrade_to_diverged(depth in 1u8..3, fanout in 2u8..3) {
        let p = retrying_tree_program(depth, fanout);
        let config = CampaignConfig {
            budget: Budget::fuel(3),
            retry: atomask_inject::RetryPolicy::none(),
            max_failures: None,
            ..CampaignConfig::default()
        };
        let result = Campaign::new(&p).config(config).run();
        prop_assert_eq!(result.runs.len() as u64, result.total_points);
        for run in &result.runs {
            prop_assert!(
                matches!(run.outcome, RunOutcome::Completed | RunOutcome::Diverged),
                "run {}: {:?}",
                run.injection_point,
                run.outcome
            );
        }
        prop_assert!(result.health().diverged > 0, "retrying past exhaustion diverges");
    }
}

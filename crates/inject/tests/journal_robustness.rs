//! Robustness of the campaign-journal text format.
//!
//! Two guarantees under test: (1) legacy v1/v2 journals still parse, with
//! the fields their format lacked reading as zero, and (2) malformed input
//! is rejected whole — `CampaignJournal::parse` is all-or-nothing, so
//! [`atomask_inject::Campaign::resume`] can never silently treat a
//! corrupted prefix as a valid partial sweep.

use atomask_inject::{CampaignJournal, Mark, RunOutcome, RunResult};
use atomask_mor::{ExcId, MethodId};
use proptest::prelude::*;

/// Mirror of the journal's escaping (the format is stable and documented;
/// the mirror lets these tests build legacy journals by hand).
fn escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn opt_str(value: &Option<String>) -> String {
    match value {
        None => "-".to_owned(),
        Some(s) => format!("={}", escape(s)),
    }
}

/// Strings that stress the escaping: empty, the `-`/`=` sigils, tabs,
/// newlines, backslashes.
const TRICKY: &[&str] = &[
    "",
    "-",
    "=",
    "plain text",
    "tab\there",
    "line\nbreak",
    "back\\slash",
    "[injected exc:1] injected",
    "trailing\\",
];

const OUTCOMES: &[RunOutcome] = &[
    RunOutcome::Completed,
    RunOutcome::Diverged,
    RunOutcome::Panicked,
    RunOutcome::Skipped,
];

/// A run exercising every field the formats disagree on.
#[allow(clippy::too_many_arguments)]
fn build_run(
    point: u64,
    outcome_idx: usize,
    retries: u32,
    fuel: u64,
    snapshots: u64,
    capture_bytes: u64,
    trace_events: u64,
    err_idx: usize,
    marks: usize,
) -> RunResult {
    RunResult {
        injection_point: point,
        injected: if point.is_multiple_of(2) {
            Some((MethodId::from_raw(point as u32 + 1), ExcId::from_raw(1)))
        } else {
            None
        },
        marks: (0..marks)
            .map(|i| {
                if i % 2 == 0 {
                    Mark::atomic(MethodId::from_raw(i as u32 + 1), point)
                } else {
                    Mark::nonatomic(
                        MethodId::from_raw(i as u32 + 1),
                        point,
                        TRICKY[(err_idx + i) % TRICKY.len()].to_owned(),
                    )
                }
            })
            .collect(),
        top_error: if err_idx.is_multiple_of(2) {
            Some(TRICKY[err_idx % TRICKY.len()].to_owned())
        } else {
            None
        },
        outcome: OUTCOMES[outcome_idx % OUTCOMES.len()],
        retries,
        fuel_spent: fuel,
        snapshots,
        capture_bytes,
        trace_events,
    }
}

/// Renders `runs` in the v1 or v2 text format, exactly as those releases
/// serialized them.
fn legacy_text(version: u8, runs: &[RunResult]) -> String {
    let mut out = format!("atomask-campaign-journal v{version}\n");
    out.push_str(&format!("program\t{}\n", escape("legacy")));
    out.push_str("baseline\t9\t1,2,3\n");
    for run in runs {
        let injected = match run.injected {
            None => "-".to_owned(),
            Some((m, e)) => format!("{},{}", m.into_raw(), e.into_raw()),
        };
        match version {
            1 => out.push_str(&format!(
                "run\t{}\t{}\t{}\t{}\t{}\t{}\n",
                run.injection_point,
                run.outcome.as_str(),
                run.retries,
                run.fuel_spent,
                injected,
                opt_str(&run.top_error),
            )),
            2 => out.push_str(&format!(
                "run\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                run.injection_point,
                run.outcome.as_str(),
                run.retries,
                run.fuel_spent,
                run.snapshots,
                run.capture_bytes,
                injected,
                opt_str(&run.top_error),
            )),
            other => panic!("no legacy serializer for v{other}"),
        }
        for mark in &run.marks {
            out.push_str(&format!(
                "mark\t{}\t{}\t{}\t{}\n",
                mark.method.into_raw(),
                mark.chain,
                if mark.atomic { "a" } else { "n" },
                opt_str(&mark.diff),
            ));
        }
    }
    out
}

/// What a legacy journal should parse to: the original runs with the
/// fields that postdate `version` zeroed.
fn expect_parsed(version: u8, runs: &[RunResult]) -> CampaignJournal {
    let mut journal = CampaignJournal::new();
    journal.bind("legacy");
    journal.record_baseline(9, &[1, 2, 3]);
    for run in runs {
        let mut run = run.clone();
        if version < 2 {
            run.snapshots = 0;
            run.capture_bytes = 0;
        }
        if version < 3 {
            run.trace_events = 0;
        }
        journal.record_run(&run);
    }
    journal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// v1 journals (no capture stats, no trace counts) parse, and the
    /// missing fields read as zero.
    #[test]
    fn v1_journals_still_parse(
        point in 1u64..40,
        outcome_idx in 0usize..4,
        retries in 0u32..3,
        fuel in 0u64..10_000,
        err_idx in 0usize..9,
        marks in 0usize..4,
    ) {
        let runs = vec![
            build_run(point, outcome_idx, retries, fuel, 7, 512, 99, err_idx, marks),
            build_run(point + 1, outcome_idx + 1, retries, fuel, 7, 512, 99, err_idx + 1, marks),
        ];
        let parsed = CampaignJournal::parse(&legacy_text(1, &runs));
        prop_assert!(parsed.is_ok(), "{:?}", parsed.err());
        prop_assert_eq!(parsed.unwrap(), expect_parsed(1, &runs));
    }

    /// v2 journals (capture stats but no trace counts) parse the same way.
    #[test]
    fn v2_journals_still_parse(
        point in 1u64..40,
        outcome_idx in 0usize..4,
        retries in 0u32..3,
        fuel in 0u64..10_000,
        snapshots in 0u64..50,
        capture_bytes in 0u64..100_000,
        err_idx in 0usize..9,
        marks in 0usize..4,
    ) {
        let runs = vec![build_run(
            point, outcome_idx, retries, fuel, snapshots, capture_bytes, 99, err_idx, marks,
        )];
        let parsed = CampaignJournal::parse(&legacy_text(2, &runs));
        prop_assert!(parsed.is_ok(), "{:?}", parsed.err());
        prop_assert_eq!(parsed.unwrap(), expect_parsed(2, &runs));
    }

    /// The current format round-trips, and serialization is idempotent.
    #[test]
    fn v3_round_trips(
        point in 1u64..40,
        outcome_idx in 0usize..4,
        trace_events in 0u64..100_000,
        err_idx in 0usize..9,
        marks in 0usize..4,
    ) {
        let mut journal = CampaignJournal::new();
        journal.bind("current");
        journal.record_baseline(4, &[4]);
        journal.record_run(&build_run(point, outcome_idx, 1, 33, 2, 64, trace_events, err_idx, marks));
        let text = journal.serialize();
        let parsed = CampaignJournal::parse(&text).expect("own output parses");
        prop_assert_eq!(&parsed, &journal);
        prop_assert_eq!(parsed.serialize(), text);
    }
}

/// A small real-shaped v3 journal to corrupt.
fn sample_text() -> String {
    let mut journal = CampaignJournal::new();
    journal.bind("sample");
    journal.record_baseline(3, &[1, 2]);
    journal.record_run(&build_run(1, 0, 0, 10, 1, 32, 5, 0, 2));
    journal.record_run(&build_run(2, 1, 1, 20, 0, 0, 0, 1, 1));
    journal.serialize()
}

#[test]
fn truncated_run_line_is_rejected_with_its_line_number() {
    let text = sample_text();
    // Cut the first run line short mid-field.
    let run_line_idx = text
        .lines()
        .position(|l| l.starts_with("run\t"))
        .expect("sample has a run line");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let cut = lines[run_line_idx].len() / 2;
    lines[run_line_idx].truncate(cut);
    let corrupted = lines.join("\n");
    let err = CampaignJournal::parse(&corrupted).expect_err("truncated line must not parse");
    assert_eq!(err.line, run_line_idx + 1, "error names the corrupted line");
}

#[test]
fn corrupted_middle_line_rejects_the_whole_journal() {
    // The valid prefix before the corruption must NOT come back as a
    // partial journal: parse is all-or-nothing, so resume can never
    // mistake a corrupted journal for a short sweep.
    let text = sample_text();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let last_run = lines
        .iter()
        .rposition(|l| l.starts_with("run\t"))
        .expect("sample has run lines");
    lines[last_run] = lines[last_run].replacen("run\t", "rnu\t", 1);
    let corrupted = lines.join("\n");
    let err = CampaignJournal::parse(&corrupted).expect_err("corrupt tag must not parse");
    assert_eq!(err.line, last_run + 1);
    assert!(err.to_string().contains("unrecognized"), "{err}");
}

#[test]
fn bad_field_values_are_rejected() {
    let text = sample_text();
    for (needle, replacement) in [
        ("completed", "finished"),                // unknown outcome token
        ("mark\t", "mark\t\t"),                   // extra field in a mark line
        ("baseline\t3\t1,2", "baseline\t3\t1,x"), // non-numeric call count
    ] {
        let corrupted = text.replacen(needle, replacement, 1);
        assert_ne!(corrupted, text, "replacement `{needle}` must apply");
        assert!(
            CampaignJournal::parse(&corrupted).is_err(),
            "`{needle}` -> `{replacement}` must be rejected"
        );
    }
}

#[test]
fn version_and_shape_must_agree() {
    // A v2 header with a 10-field (v3-shaped) run line is malformed, and
    // vice versa: field counts are validated per version.
    let v3_text = sample_text();
    let as_v2 = v3_text.replacen("journal v3", "journal v2", 1);
    assert!(CampaignJournal::parse(&as_v2).is_err());
    let v2_runs = vec![build_run(1, 0, 0, 10, 1, 32, 0, 0, 0)];
    let as_v3 = legacy_text(2, &v2_runs).replacen("journal v2", "journal v3", 1);
    assert!(CampaignJournal::parse(&as_v3).is_err());
}

#[test]
fn unknown_versions_and_missing_headers_are_rejected() {
    assert!(CampaignJournal::parse("").is_err());
    assert!(CampaignJournal::parse("atomask-campaign-journal v4\n").is_err());
    assert!(CampaignJournal::parse("not a journal\nrun\t1\n").is_err());
    let err = CampaignJournal::parse("garbage").expect_err("no header");
    assert_eq!(err.line, 1);
}

#[test]
fn truncating_between_lines_still_parses_as_a_shorter_journal() {
    // Clean truncation at a line boundary is an *interruption*, not a
    // corruption: the prefix is a valid journal with fewer runs, which is
    // exactly what resume completes.
    let text = sample_text();
    let lines: Vec<&str> = text.lines().collect();
    let last_run = lines
        .iter()
        .rposition(|l| l.starts_with("run\t"))
        .expect("sample has run lines");
    let prefix = lines[..last_run].join("\n");
    let parsed = CampaignJournal::parse(&prefix).expect("line-aligned prefix parses");
    assert_eq!(parsed.len(), 1, "one complete run survives");
}

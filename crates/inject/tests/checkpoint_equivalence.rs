//! Property suite for checkpoint-resume sweeps: a campaign that restores
//! strided [`atomask_mor::Vm::checkpoint`]s and replays the recorded
//! driver prefix must be **bit-for-bit identical** — run records,
//! baseline statistics, *and* serialized journals — to a campaign that
//! re-executes every prefix from program entry. Across real evaluation
//! applications, stride choices (1, 7, auto), worker counts (1, 4), and
//! the resilience edge cases: panicking bodies, fuel-exhausted runs, and
//! recordings too starved to produce a usable plan.
//!
//! This is the proof obligation that lets `CheckpointStride::Auto` ship
//! on by default: since resume and from-scratch agree everywhere we can
//! observe, any future divergence indicts the replay engine, not the
//! sweep semantics.

use atomask_inject::{
    classify, Campaign, CampaignConfig, CampaignResult, CheckpointStride, MarkFilter, RunOutcome,
};
use atomask_mor::{Budget, FnProgram, Profile, Program, RegistryBuilder, Value};

/// Strides under test. `Auto` is only meaningful when the environment
/// does not override it; [`strides`] filters accordingly.
const FIXED_STRIDES: [CheckpointStride; 2] =
    [CheckpointStride::Every(1), CheckpointStride::Every(7)];

fn strides() -> Vec<CheckpointStride> {
    let mut s = FIXED_STRIDES.to_vec();
    // With `ATOMASK_CKPT_STRIDE` set, `Auto` resolves to the env value —
    // still valid, but then it duplicates a fixed stride rather than
    // exercising the √N default. Only test `Auto` in a clean environment.
    if std::env::var_os("ATOMASK_CKPT_STRIDE").is_none() {
        s.push(CheckpointStride::Auto);
    }
    s
}

fn config(workers: usize, budget: Budget) -> CampaignConfig {
    CampaignConfig {
        budget,
        workers,
        ..CampaignConfig::default()
    }
}

fn sweep(
    p: &FnProgram,
    workers: usize,
    budget: Budget,
    stride: CheckpointStride,
) -> CampaignResult {
    Campaign::new(p)
        .config(config(workers, budget))
        .checkpoint_stride(stride)
        .run()
}

/// Asserts the full bit-identity contract between a resumed sweep and the
/// from-scratch reference: runs, totals, baseline stats, serialized
/// journal, and the classification derived from all of it.
fn assert_bit_identical(label: &str, reference: &CampaignResult, resumed: &CampaignResult) {
    assert_eq!(resumed.runs, reference.runs, "{label}: run records differ");
    assert_eq!(
        resumed.total_points, reference.total_points,
        "{label}: total points differ"
    );
    assert_eq!(
        resumed.baseline_calls, reference.baseline_calls,
        "{label}: baseline call counts differ"
    );
    assert_eq!(
        resumed.journal().serialize(),
        reference.journal().serialize(),
        "{label}: serialized journals differ"
    );
    let cref = classify(reference, &MarkFilter::default());
    let cres = classify(resumed, &MarkFilter::default());
    assert_eq!(
        cres.method_counts, cref.method_counts,
        "{label}: classification differs"
    );
}

/// Runs the whole stride × worker matrix for one program and budget,
/// returning the sequential reference for witness assertions.
fn check_matrix(p: &FnProgram, budget: Budget) -> CampaignResult {
    let mut sequential_reference = None;
    for workers in [1usize, 4] {
        let reference = sweep(p, workers, budget, CheckpointStride::Off);
        for stride in strides() {
            let resumed = sweep(p, workers, budget, stride);
            let label = format!("{} workers={workers} stride={stride:?}", p.name());
            assert_bit_identical(&label, &reference, &resumed);
        }
        if workers == 1 {
            sequential_reference = Some(reference);
        }
    }
    sequential_reference.expect("workers=1 leg always runs")
}

/// Fast evaluation applications: full stride × worker matrix each. The
/// set spans both language profiles and includes drivers with nontrivial
/// control flow (loops over calls, error-path probing).
#[test]
fn evaluation_apps_resume_bit_identically() {
    for name in [
        "xml2xml1",
        "stdQ",
        "xml2Ctcp",
        "LinkedBuffer",
        "CircularList",
    ] {
        let p = atomask_apps::program_by_name(name).expect("suite app exists");
        let reference = check_matrix(&p, Budget::unlimited());
        assert!(
            reference.total_points > 100,
            "{name}: matrix must cover a real sweep, got {} points",
            reference.total_points
        );
    }
}

/// `xml2Cviasc1`'s driver branches on heap reads (`Vm::field` on the
/// builder's `sink`), so its recorded op log contains `Field` entries —
/// the replay path that plain call-only drivers never exercise.
#[test]
fn field_reading_driver_resumes_bit_identically() {
    let p = atomask_apps::program_by_name("xml2Cviasc1").expect("suite app exists");
    check_matrix(&p, Budget::unlimited());
}

/// A body that panics when an injected failure reaches a "can never
/// fail" probe, plus an application-level retry loop that spins until
/// the fuel budget ends the run — the two unhealthy outcomes the
/// resilience layer isolates. Checkpoint-resume must reproduce both
/// verbatim, including retry counts and fuel accounting.
fn pathological_program() -> FnProgram {
    FnProgram::new(
        "pathological",
        || {
            let mut profile = Profile::cpp();
            profile.runtime_exceptions = vec!["Fault".to_owned()];
            let mut rb = RegistryBuilder::new(profile);
            rb.exception("StateError");
            rb.class("P", |c| {
                c.field("locked", Value::Bool(false));
                c.field("done", Value::Int(0));
                c.method("transact", |ctx, this, _| {
                    if ctx.get_bool(this, "locked") {
                        return Err(ctx.exception("StateError", "still locked"));
                    }
                    ctx.set(this, "locked", Value::Bool(true));
                    // Non-atomic: an exception here leaks the lock.
                    ctx.call(this, "commit", &[])?;
                    ctx.set(this, "locked", Value::Bool(false));
                    Ok(Value::Null)
                });
                c.method("commit", |_, _, _| Ok(Value::Null));
                c.method("strict", |ctx, this, _| {
                    if ctx.call(this, "probe", &[]).is_err() {
                        panic!("invariant violated: probe can never fail");
                    }
                    Ok(Value::Null)
                });
                c.method("probe", |_, _, _| Ok(Value::Null));
                c.method("calm", |ctx, this, _| {
                    let d = ctx.get_int(this, "done");
                    ctx.set(this, "done", Value::Int(d + 1));
                    Ok(Value::Null)
                });
            });
            rb.build()
        },
        |vm| {
            let p = vm.construct("P", &[])?;
            vm.root(p);
            // Swallow-and-retry: once the injected failure leaks the lock,
            // only the fuel budget ends the run.
            loop {
                match vm.call(p, "transact", &[]) {
                    Ok(_) => break,
                    Err(_) => continue,
                }
            }
            let _ = vm.call(p, "strict", &[]);
            vm.call(p, "calm", &[])
        },
    )
}

#[test]
fn panicking_and_diverging_runs_resume_bit_identically() {
    let p = pathological_program();
    let reference = check_matrix(&p, Budget::fuel(20_000));
    // Witness: the matrix actually covered the unhealthy outcomes this
    // test exists for, with real retries behind them.
    let health = reference.health();
    assert!(health.diverged > 0, "no fuel-exhausted runs: {health}");
    assert!(health.panicked > 0, "no panicking runs: {health}");
    assert!(health.retries > 0, "no retried runs: {health}");
    assert!(
        reference
            .runs
            .iter()
            .any(|r| r.outcome != RunOutcome::Completed && r.retries > 0),
        "an unhealthy outcome must have been accepted only after retries"
    );
}

/// With a budget so tight the recording pass itself exhausts fuel, no
/// plan is produced and every point falls back to from-scratch — the
/// sweep must still be bit-identical, not merely slower.
#[test]
fn starved_recording_falls_back_bit_identically() {
    let p = pathological_program();
    let reference = check_matrix(&p, Budget::fuel(300));
    assert!(
        reference.health().diverged > 0,
        "the starved budget must actually cut runs short"
    );
}

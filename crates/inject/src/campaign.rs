//! The experiment runner (step 3 of Fig. 1): execute the exception injector
//! program once per potential injection point.

use crate::hook::InjectionHook;
use crate::marks::Mark;
use atomask_mor::{CallHook, ExcId, HookChain, MethodId, Program, Registry, Vm};
use std::cell::RefCell;
use std::rc::Rc;

/// Factory producing the hook woven *inside* the injection wrappers.
type InnerHookFactory = Box<dyn Fn(&Registry) -> Rc<RefCell<dyn CallHook>>>;

/// The outcome of one injector run (one `InjectionPoint` value).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The `InjectionPoint` threshold of this run (1-based).
    pub injection_point: u64,
    /// The method whose wrapper threw, and the exception type, if the
    /// threshold was reached during the run.
    pub injected: Option<(MethodId, ExcId)>,
    /// Atomicity marks in wrapper-execution order (callee→caller).
    pub marks: Vec<Mark>,
    /// Rendered top-level exception, if one escaped the driver.
    pub top_error: Option<String>,
}

/// The aggregated outcome of a full detection campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Program name.
    pub program: String,
    /// A representative registry (the program builds an identical one per
    /// run) for resolving names in reports.
    pub registry: Rc<Registry>,
    /// Total potential injection points `N` (Table 1's `#Injections`).
    pub total_points: u64,
    /// Per-method dynamic call counts from the uninstrumented baseline run
    /// (the weights of Figs. 2b/3b).
    pub baseline_calls: Vec<u64>,
    /// One result per executed injector run.
    pub runs: Vec<RunResult>,
}

impl CampaignResult {
    /// Number of injector runs executed (= injections performed, barring a
    /// `max_points` cap).
    pub fn injections(&self) -> usize {
        self.runs.len()
    }

    /// Method ids that were called at least once in the baseline run.
    pub fn used_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.baseline_calls
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| MethodId::from_raw(i as u32))
    }
}

/// Builds and executes detection campaigns over a [`Program`].
///
/// The campaign first performs a counting run (no injection) to size the
/// sweep and collect baseline call statistics, then executes the program
/// once per potential injection point with `InjectionPoint = 1..=N`, on a
/// fresh VM each time.
pub struct Campaign<'p> {
    program: &'p dyn Program,
    inner_hook: Option<InnerHookFactory>,
    max_points: Option<u64>,
}

impl std::fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("program", &self.program.name())
            .field("capped", &self.max_points)
            .finish()
    }
}

impl<'p> Campaign<'p> {
    /// Creates a campaign over `program`.
    pub fn new(program: &'p dyn Program) -> Self {
        Campaign {
            program,
            inner_hook: None,
            max_points: None,
        }
    }

    /// Weaves an additional hook *inside* the injection wrappers in every
    /// run (and in the baseline run). Used to validate corrected programs:
    /// pass a factory producing the masking hook, and the campaign measures
    /// the program as its users would see it — with atomicity wrappers
    /// rolling back before the injection wrappers compare.
    pub fn with_inner_hook(
        mut self,
        factory: impl Fn(&Registry) -> Rc<RefCell<dyn CallHook>> + 'static,
    ) -> Self {
        self.inner_hook = Some(Box::new(factory));
        self
    }

    /// Caps the number of injector runs (useful for very large programs;
    /// the paper's campaigns run every point, which is also the default
    /// here).
    pub fn max_points(mut self, cap: u64) -> Self {
        self.max_points = Some(cap);
        self
    }

    /// Executes the campaign.
    pub fn run(&self) -> CampaignResult {
        let registry = Rc::new(self.program.build_registry());

        // Counting / baseline run.
        let mut vm = Vm::new(self.program.build_registry());
        let counter = Rc::new(RefCell::new(InjectionHook::counting()));
        self.install(&mut vm, counter.clone());
        let _ = self.program.run(&mut vm);
        let total_points = counter.borrow().points();
        let baseline_calls = vm.stats().calls.clone();

        let limit = self.max_points.unwrap_or(total_points).min(total_points);
        let mut runs = Vec::with_capacity(limit as usize);
        for injection_point in 1..=limit {
            let mut vm = Vm::new(self.program.build_registry());
            let hook = Rc::new(RefCell::new(InjectionHook::with_injection_point(
                injection_point,
            )));
            self.install(&mut vm, hook.clone());
            let outcome = self.program.run(&mut vm);
            // Release the VM's clone(s) of the hook (direct or via a
            // HookChain) so the results can be moved out.
            vm.set_hook(None);
            drop(vm);
            let hook = Rc::try_unwrap(hook)
                .map(RefCell::into_inner)
                .unwrap_or_else(|_| panic!("injection hook still shared after run"));
            runs.push(RunResult {
                injection_point,
                injected: hook.injected(),
                marks: hook.into_marks(),
                top_error: outcome.err().map(|e| e.to_string()),
            });
        }

        CampaignResult {
            program: self.program.name().to_owned(),
            registry,
            total_points,
            baseline_calls,
            runs,
        }
    }

    fn install(&self, vm: &mut Vm, injector: Rc<RefCell<InjectionHook>>) {
        match &self.inner_hook {
            None => vm.set_hook(Some(injector)),
            Some(factory) => {
                let inner = factory(vm.registry());
                let chain = HookChain::new(vec![injector, inner]);
                vm.set_hook(Some(Rc::new(RefCell::new(chain))));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{FnProgram, Profile, RegistryBuilder, Value};

    fn two_level_program() -> FnProgram {
        FnProgram::new(
            "two-level",
            || {
                let mut rb = RegistryBuilder::new(Profile::java());
                rb.class("T", |c| {
                    c.field("a", Value::Int(0));
                    c.method("outer", |ctx, this, _| {
                        let a = ctx.get_int(this, "a");
                        ctx.set(this, "a", Value::Int(a + 1));
                        ctx.call(this, "inner", &[])?;
                        ctx.set(this, "a", Value::Int(a));
                        Ok(Value::Null)
                    });
                    c.method("inner", |_, _, _| Ok(Value::Null));
                });
                rb.build()
            },
            |vm| {
                let t = vm.construct("T", &[])?;
                vm.root(t);
                vm.call(t, "outer", &[])
            },
        )
    }

    #[test]
    fn campaign_runs_once_per_point() {
        let p = two_level_program();
        let result = Campaign::new(&p).run();
        // outer: 2 runtime exceptions, inner: 2 => 4 points.
        assert_eq!(result.total_points, 4);
        assert_eq!(result.injections(), 4);
        for (i, run) in result.runs.iter().enumerate() {
            assert_eq!(run.injection_point, i as u64 + 1);
            assert!(run.injected.is_some());
            assert!(run.top_error.is_some(), "injected exception escapes");
        }
    }

    #[test]
    fn baseline_calls_are_recorded() {
        let p = two_level_program();
        let result = Campaign::new(&p).run();
        let used: Vec<String> = result
            .used_methods()
            .map(|m| result.registry.method_display(m))
            .collect();
        assert_eq!(used, vec!["T::outer", "T::inner"]);
        assert_eq!(result.baseline_calls.iter().sum::<u64>(), 2);
    }

    #[test]
    fn marks_identify_nonatomic_propagation() {
        let p = two_level_program();
        let result = Campaign::new(&p).run();
        // Injections into inner (points 3 and 4) mark outer non-atomic
        // (a was incremented, restore line never reached).
        let nonatomic_runs: Vec<&RunResult> = result
            .runs
            .iter()
            .filter(|r| r.marks.iter().any(|m| !m.atomic))
            .collect();
        assert_eq!(nonatomic_runs.len(), 2);
        for run in nonatomic_runs {
            let m = run.marks.iter().find(|m| !m.atomic).unwrap();
            assert_eq!(result.registry.method_display(m.method), "T::outer");
        }
    }

    #[test]
    fn max_points_caps_the_sweep() {
        let p = two_level_program();
        let result = Campaign::new(&p).max_points(2).run();
        assert_eq!(result.total_points, 4);
        assert_eq!(result.injections(), 2);
    }
}

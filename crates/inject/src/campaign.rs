//! The experiment runner (step 3 of Fig. 1): execute the exception injector
//! program once per potential injection point.
//!
//! ## Resilience
//!
//! A detection campaign over a real program meets programs that misbehave
//! *under* injection: a retry loop that spins forever once its callee's
//! failure is synthetic, or a body that panics on a state it was never
//! meant to reach. The campaign isolates both so one pathological point
//! cannot take down the whole sweep:
//!
//! * every run executes under a fuel [`Budget`]; a run the budget cuts off
//!   is recorded as [`RunOutcome::Diverged`];
//! * every run executes under `catch_unwind`; a host-level panic in an
//!   application body is recorded as [`RunOutcome::Panicked`] for exactly
//!   that run;
//! * diverged and panicked runs are retried per [`RetryPolicy`] with a
//!   scaled-up budget before their outcome is final;
//! * after [`CampaignConfig::max_failures`] unhealthy runs, remaining
//!   points are recorded as [`RunOutcome::Skipped`] instead of executed;
//! * finished runs are appended to a [`CampaignJournal`], and
//!   [`Campaign::resume`] restarts an interrupted sweep at the first
//!   injection point the journal is missing.
//!
//! ## Parallel sharding
//!
//! Injector runs are fully independent (Fig. 1 step 3 runs the injector
//! program once per point on a fresh VM), so the campaign shards the
//! missing points across a [`std::thread::scope`] worker pool when
//! [`CampaignConfig::workers`] (or `ATOMASK_WORKERS`, or the machine's
//! available parallelism) asks for more than one worker. Each worker
//! builds its **own** registry via [`Program::build_registry`] — method
//! bodies stay `Rc`-shared, single-threaded closures — and ships finished
//! [`RunResult`]s to an ordered writer on the campaign thread, which
//! appends them to the journal in injection-point order. Journals and
//! results are therefore bit-for-bit identical to the sequential sweep,
//! whatever the worker count (see DESIGN.md, "Campaign execution").

use crate::hook::{CaptureMode, CaptureStats, InjectionHook};
use crate::journal::CampaignJournal;
use crate::marks::Mark;
use crate::replay::{Divergence, ReplayReport};
use atomask_mor::{
    Budget, CallHook, ExcId, HookChain, MethodId, OpRecord, Program, Registry, RingBufferSink, Vm,
    VmCheckpoint, REPLAY_MISMATCH,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Factory producing the hook woven *inside* the injection wrappers.
/// `Send + Sync` because campaign workers invoke it from their own
/// threads (the produced hook itself stays thread-local).
type InnerHookFactory = Box<dyn Fn(&Registry) -> Rc<RefCell<dyn CallHook>> + Send + Sync>;

/// Sink for campaign diagnostics (warnings that used to go straight to
/// stderr). A plain function pointer so [`CampaignConfig`] stays `Copy`
/// and `Eq`.
pub type DiagnosticsFn = fn(&str);

/// The default [`DiagnosticsFn`]: one line to stderr.
pub fn stderr_diagnostics(message: &str) {
    eprintln!("{message}");
}

/// A [`DiagnosticsFn`] that swallows everything (useful in tests and when
/// a harness renders health from the journal instead).
pub fn silent_diagnostics(_message: &str) {}

/// Default event retention of ring-buffer sinks created by [`TraceMode`].
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Whether campaign runs record a flight-recorder trace
/// ([`atomask_mor::TraceSink`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraceMode {
    /// Resolve from the `ATOMASK_TRACE` environment variable: `ring`
    /// installs a [`RingBufferSink`] with [`DEFAULT_RING_CAPACITY`],
    /// `ring:<n>` one retaining `n` events; anything else (or unset)
    /// records nothing.
    #[default]
    Auto,
    /// No sink installed: every emission site compiles to a branch on
    /// `None`, the zero-overhead baseline.
    Off,
    /// A [`RingBufferSink`] retaining the given number of events per run.
    Ring(usize),
}

impl TraceMode {
    /// The ring capacity to install for one run, or `None` for no sink.
    fn resolve(self) -> Option<usize> {
        match self {
            TraceMode::Off => None,
            TraceMode::Ring(capacity) => Some(capacity),
            TraceMode::Auto => {
                let v = std::env::var("ATOMASK_TRACE").ok()?;
                let v = v.trim();
                if v == "ring" {
                    Some(DEFAULT_RING_CAPACITY)
                } else {
                    v.strip_prefix("ring:")?
                        .parse::<usize>()
                        .ok()
                        .filter(|n| *n > 0)
                }
            }
        }
    }
}

/// Stride (in injection points) between the VM checkpoints a sweep records
/// for checkpoint-resume execution (see `DESIGN.md` §10).
///
/// With checkpoint-resume on, the campaign performs one *recording* run —
/// the program executes normally under an observing hook while the VM logs
/// every top-level driver operation and captures an
/// [`atomask_mor::VmCheckpoint`] each time the point counter crosses a
/// stride boundary. Every injection run then *replays* the recorded prefix
/// up to the nearest checkpoint strictly before its target point, restores
/// the checkpoint, and executes only the tail live — turning the sweep's
/// quadratic prefix re-execution into `O(N·stride)` work. Results and
/// journals are bit-for-bit identical to from-scratch execution
/// (`crates/inject/tests/checkpoint_equivalence.rs` proves it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckpointStride {
    /// Resolve from the `ATOMASK_CKPT_STRIDE` environment variable: `off`
    /// or `0` disables checkpoint-resume, a positive integer is used as
    /// the stride; unset (or unparsable) picks `⌊√N⌋` for an `N`-point
    /// sweep — the stride minimizing `checkpoint_cost·N/stride +
    /// replay_cost·N·stride` when both costs are comparable.
    #[default]
    Auto,
    /// Never checkpoint: every injection run executes from program entry
    /// (the pre-PR-5 behaviour, and the reference side of the equivalence
    /// suite).
    Off,
    /// Capture a checkpoint every `n` injection points (`0` disables,
    /// like [`CheckpointStride::Off`]).
    Every(u64),
}

impl CheckpointStride {
    /// The effective stride for an `N`-point sweep, or `None` for
    /// checkpoint-resume off. Public so the bench harness can report the
    /// stride a sweep actually ran with.
    pub fn resolve(self, total_points: u64) -> Option<u64> {
        let auto = || Some(total_points.isqrt().max(1));
        match self {
            CheckpointStride::Off => None,
            CheckpointStride::Every(n) => (n > 0).then_some(n),
            CheckpointStride::Auto => match std::env::var("ATOMASK_CKPT_STRIDE") {
                Err(_) => auto(),
                Ok(v) => {
                    let v = v.trim();
                    if v.eq_ignore_ascii_case("off") || v == "0" {
                        None
                    } else {
                        v.parse::<u64>()
                            .ok()
                            .filter(|n| *n > 0)
                            .map_or_else(auto, Some)
                    }
                }
            },
        }
    }
}

/// How one injector run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// The driver ran to completion — normally or with a propagating guest
    /// exception (the expected ending of an injection run).
    Completed,
    /// The fuel budget was exhausted: the program did not terminate on its
    /// own within the budget (even after any retries).
    Diverged,
    /// An application body panicked at the host level; the panic was
    /// confined to this run.
    Panicked,
    /// Never executed: the campaign hit its `max_failures` cap before
    /// reaching this point.
    Skipped,
}

impl RunOutcome {
    /// Stable lower-case name (used by the journal text format).
    pub fn as_str(self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Diverged => "diverged",
            RunOutcome::Panicked => "panicked",
            RunOutcome::Skipped => "skipped",
        }
    }

    /// Inverse of [`RunOutcome::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "completed" => Some(RunOutcome::Completed),
            "diverged" => Some(RunOutcome::Diverged),
            "panicked" => Some(RunOutcome::Panicked),
            "skipped" => Some(RunOutcome::Skipped),
            _ => None,
        }
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Retry discipline for unhealthy (diverged or panicked) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times an unhealthy run is re-executed before its outcome
    /// is accepted.
    pub max_retries: u32,
    /// Fuel multiplier applied to the budget on every retry, so a run that
    /// merely needed more fuel (rather than truly diverging) completes.
    pub budget_multiplier: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            budget_multiplier: 4,
        }
    }
}

impl RetryPolicy {
    /// Never retry: first outcome is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            budget_multiplier: 1,
        }
    }
}

/// Knobs governing a campaign's resilience and execution behaviour.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Fuel budget of each injector run (and each retry's base, before
    /// scaling). Defaults to [`Budget::unlimited`] — the paper's campaigns
    /// assume terminating programs.
    pub budget: Budget,
    /// Retry discipline for diverged and panicked runs.
    pub retry: RetryPolicy,
    /// After this many unhealthy runs, remaining points are recorded as
    /// [`RunOutcome::Skipped`] instead of executed. `None` (default) never
    /// gives up. Under parallel sharding the cap keeps its sequential
    /// meaning: results are accounted in injection-point order, and every
    /// point past the cap is recorded as skipped even if a worker had
    /// already executed it speculatively.
    pub max_failures: Option<u64>,
    /// Worker threads for the injection sweep. `0` (default) resolves to
    /// the `ATOMASK_WORKERS` environment variable if set, else to
    /// [`std::thread::available_parallelism`]; auto-resolved campaigns
    /// fall back to sequential execution for small sweeps where thread
    /// setup would dominate. Any explicit value (config or environment)
    /// is honored as-is. `1` forces the sequential path.
    pub workers: usize,
    /// How injection wrappers capture pre-call state. Defaults to
    /// [`CaptureMode::Lazy`] (undo-log reconstruction); campaigns with an
    /// inner hook (masking verification) always use eager capture because
    /// rollback hooks may reclaim objects mid-extent.
    pub capture: CaptureMode,
    /// Whether runs record a flight-recorder trace. Defaults to
    /// [`TraceMode::Auto`] (the `ATOMASK_TRACE` environment variable;
    /// nothing when unset). Tracing costs no fuel, so marks, outcomes and
    /// fuel counts are identical whatever the mode — only the
    /// `trace_events` run statistic changes.
    pub trace: TraceMode,
    /// Checkpoint stride for checkpoint-resume sweeps. Defaults to
    /// [`CheckpointStride::Auto`] (`ATOMASK_CKPT_STRIDE`, else `⌊√N⌋`).
    /// Checkpoint-resume only engages when the campaign's other knobs
    /// permit it — fast-forward on, no inner hook, no flight recorder —
    /// and silently falls back to from-scratch execution otherwise; either
    /// way results and journals are bit-identical.
    pub checkpoint_stride: CheckpointStride,
    /// Where campaign warnings go. Defaults to [`stderr_diagnostics`].
    pub diagnostics: DiagnosticsFn,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            budget: Budget::default(),
            retry: RetryPolicy::default(),
            max_failures: None,
            workers: 0,
            capture: CaptureMode::default(),
            trace: TraceMode::default(),
            checkpoint_stride: CheckpointStride::default(),
            diagnostics: stderr_diagnostics,
        }
    }
}

impl PartialEq for CampaignConfig {
    fn eq(&self, other: &Self) -> bool {
        self.budget == other.budget
            && self.retry == other.retry
            && self.max_failures == other.max_failures
            && self.workers == other.workers
            && self.capture == other.capture
            && self.trace == other.trace
            && self.checkpoint_stride == other.checkpoint_stride
            && std::ptr::fn_addr_eq(self.diagnostics, other.diagnostics)
    }
}

impl Eq for CampaignConfig {}

/// One resumable boundary of a recorded sweep: the op-log cursor and point
/// counter at a quiescent top-level boundary, the injector-prefix state a
/// resumed hook is seeded with, and the VM checkpoint to restore there.
#[derive(Debug)]
struct SweepCheckpoint {
    /// Index into the plan's op log at which live execution resumes.
    op_cursor: usize,
    /// The injector's point counter at this boundary; only targets
    /// strictly beyond it can resume here.
    point: u64,
    /// Marks the prefix recorded (application-thrown exceptions mark even
    /// before any injection).
    marks: Vec<Mark>,
    /// The prefix's capture-cost counters.
    stats: CaptureStats,
    /// The structural VM state at the boundary, shared by every run that
    /// resumes here.
    vm: Rc<VmCheckpoint>,
}

/// The product of one recording run: the top-level op log plus the strided
/// checkpoints, shared (within one thread) by every resumed run of the
/// sweep.
#[derive(Debug)]
struct SweepPlan {
    ops: Rc<Vec<OpRecord>>,
    /// Ascending by `point` (and by `op_cursor`): captured in execution
    /// order, at most one per point value.
    checkpoints: Vec<SweepCheckpoint>,
}

impl SweepPlan {
    /// The latest checkpoint whose point counter is strictly before
    /// `target` — strict, because a checkpoint *at* the target has already
    /// consumed the armed window the resumed run must still hit.
    fn best_for(&self, target: u64) -> Option<&SweepCheckpoint> {
        let idx = self.checkpoints.partition_point(|c| c.point < target);
        idx.checked_sub(1).map(|i| &self.checkpoints[i])
    }
}

/// The outcome of one injector run (one `InjectionPoint` value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The `InjectionPoint` threshold of this run (1-based).
    pub injection_point: u64,
    /// The method whose wrapper threw, and the exception type, if the
    /// threshold was reached during the run.
    pub injected: Option<(MethodId, ExcId)>,
    /// Atomicity marks in wrapper-execution order (callee→caller).
    pub marks: Vec<Mark>,
    /// Rendered top-level exception, if one escaped the driver (or the
    /// panic message, for panicked runs).
    pub top_error: Option<String>,
    /// How the run ended. Only [`RunOutcome::Completed`] runs contribute
    /// marks to classification.
    pub outcome: RunOutcome,
    /// Number of retries performed before this outcome was accepted.
    pub retries: u32,
    /// Fuel consumed by the final attempt.
    pub fuel_spent: u64,
    /// Object-graph snapshots captured by the final attempt's injection
    /// wrappers (the capture-cost stat the [`CaptureMode`] optimization
    /// reduces).
    pub snapshots: u64,
    /// Approximate bytes of those snapshots.
    pub capture_bytes: u64,
    /// Trace events emitted by the final attempt (0 unless a
    /// [`TraceMode`] sink was installed).
    pub trace_events: u64,
}

impl RunResult {
    /// A run that was never executed (failure cap reached). Every
    /// execution statistic — fuel, snapshots, capture bytes, trace events
    /// — is zero by construction: nothing ran. [`Campaign::replay`] on
    /// such a point executes it for real, under a fresh budget.
    pub fn skipped(injection_point: u64) -> Self {
        RunResult {
            injection_point,
            injected: None,
            marks: Vec::new(),
            top_error: None,
            outcome: RunOutcome::Skipped,
            retries: 0,
            fuel_spent: 0,
            snapshots: 0,
            capture_bytes: 0,
            trace_events: 0,
        }
    }

    /// `true` iff the run completed and its marks are trustworthy.
    pub fn is_healthy(&self) -> bool {
        self.outcome == RunOutcome::Completed
    }
}

/// Aggregate run-health of a campaign: outcome tallies, retries, fuel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunHealth {
    /// Runs that completed normally.
    pub completed: u64,
    /// Runs cut off by the fuel budget.
    pub diverged: u64,
    /// Runs ended by a host-level panic.
    pub panicked: u64,
    /// Points never executed (failure cap).
    pub skipped: u64,
    /// Total retry attempts across all runs.
    pub retries: u64,
    /// Total fuel consumed across final attempts.
    pub fuel_spent: u64,
    /// Total object-graph snapshots captured across final attempts.
    pub snapshots: u64,
    /// Total approximate snapshot bytes across final attempts.
    pub capture_bytes: u64,
    /// Total trace events emitted across final attempts.
    pub trace_events: u64,
}

impl RunHealth {
    /// Folds one run into the tally.
    pub fn record(&mut self, run: &RunResult) {
        match run.outcome {
            RunOutcome::Completed => self.completed += 1,
            RunOutcome::Diverged => self.diverged += 1,
            RunOutcome::Panicked => self.panicked += 1,
            RunOutcome::Skipped => self.skipped += 1,
        }
        self.retries += u64::from(run.retries);
        self.fuel_spent += run.fuel_spent;
        self.snapshots += run.snapshots;
        self.capture_bytes += run.capture_bytes;
        self.trace_events += run.trace_events;
    }

    /// Runs that contributed no marks (diverged + panicked + skipped).
    pub fn unhealthy(&self) -> u64 {
        self.diverged + self.panicked + self.skipped
    }

    /// Total runs tallied.
    pub fn total(&self) -> u64 {
        self.completed + self.unhealthy()
    }
}

impl std::fmt::Display for RunHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} completed, {} diverged, {} panicked, {} skipped ({} retries, {} fuel, {} snapshots)",
            self.completed,
            self.diverged,
            self.panicked,
            self.skipped,
            self.retries,
            self.fuel_spent,
            self.snapshots
        )
    }
}

/// The aggregated outcome of a full detection campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Program name.
    pub program: String,
    /// The registry shared by every run of the campaign (the program builds
    /// identical registries, so one build serves the whole sweep).
    pub registry: Rc<Registry>,
    /// Total potential injection points `N` (Table 1's `#Injections`).
    pub total_points: u64,
    /// Per-method dynamic call counts from the uninstrumented baseline run
    /// (the weights of Figs. 2b/3b).
    pub baseline_calls: Vec<u64>,
    /// One result per executed injector run.
    pub runs: Vec<RunResult>,
}

impl CampaignResult {
    /// Number of injector runs executed (= injections performed, barring a
    /// `max_points` cap).
    pub fn injections(&self) -> usize {
        self.runs.len()
    }

    /// Method ids that were called at least once in the baseline run.
    pub fn used_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.baseline_calls
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| MethodId::from_raw(i as u32))
    }

    /// Run-health summary over all executed runs.
    pub fn health(&self) -> RunHealth {
        let mut h = RunHealth::default();
        for run in &self.runs {
            h.record(run);
        }
        h
    }

    /// Journal equivalent of this result, suitable for serialization and
    /// for seeding [`Campaign::resume`].
    pub fn journal(&self) -> CampaignJournal {
        let mut j = CampaignJournal::new();
        j.bind(&self.program);
        j.record_baseline(self.total_points, &self.baseline_calls);
        for run in &self.runs {
            j.record_run(run);
        }
        j
    }
}

/// Builds and executes detection campaigns over a [`Program`].
///
/// The campaign first performs a counting run (no injection) to size the
/// sweep and collect baseline call statistics, then executes the program
/// once per potential injection point with `InjectionPoint = 1..=N`, on a
/// fresh VM each time (all VMs share one registry).
pub struct Campaign<'p> {
    program: &'p dyn Program,
    inner_hook: Option<InnerHookFactory>,
    max_points: Option<u64>,
    config: CampaignConfig,
    fast_forward: bool,
}

impl std::fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("program", &self.program.name())
            .field("capped", &self.max_points)
            .field("config", &self.config)
            .finish()
    }
}

impl<'p> Campaign<'p> {
    /// Creates a campaign over `program`.
    pub fn new(program: &'p dyn Program) -> Self {
        Campaign {
            program,
            inner_hook: None,
            max_points: None,
            config: CampaignConfig::default(),
            fast_forward: true,
        }
    }

    /// Enables or disables the injection wrappers' phase-gated fast-forward
    /// (on by default). With it off, every sweep run counts points through
    /// Listing 1's literal per-exception-type loop. The two modes are
    /// equivalent by construction — this switch exists so the equivalence
    /// can be *tested* at campaign level, and as an escape hatch while
    /// debugging the gate itself.
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Weaves an additional hook *inside* the injection wrappers in every
    /// run (and in the baseline run). Used to validate corrected programs:
    /// pass a factory producing the masking hook, and the campaign measures
    /// the program as its users would see it — with atomicity wrappers
    /// rolling back before the injection wrappers compare.
    pub fn with_inner_hook(
        mut self,
        factory: impl Fn(&Registry) -> Rc<RefCell<dyn CallHook>> + Send + Sync + 'static,
    ) -> Self {
        self.inner_hook = Some(Box::new(factory));
        self
    }

    /// Caps the number of injector runs (useful for very large programs;
    /// the paper's campaigns run every point, which is also the default
    /// here).
    pub fn max_points(mut self, cap: u64) -> Self {
        self.max_points = Some(cap);
        self
    }

    /// Replaces the whole resilience configuration.
    pub fn config(mut self, config: CampaignConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the per-run fuel budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Sets the retry discipline for unhealthy runs.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Gives up (recording [`RunOutcome::Skipped`]) after `cap` unhealthy
    /// runs.
    pub fn max_failures(mut self, cap: u64) -> Self {
        self.config.max_failures = Some(cap);
        self
    }

    /// Sets the worker-thread count for the injection sweep (see
    /// [`CampaignConfig::workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the pre-call capture mode (see [`CampaignConfig::capture`]).
    pub fn capture(mut self, mode: CaptureMode) -> Self {
        self.config.capture = mode;
        self
    }

    /// Redirects campaign warnings (see [`CampaignConfig::diagnostics`]).
    pub fn diagnostics(mut self, sink: DiagnosticsFn) -> Self {
        self.config.diagnostics = sink;
        self
    }

    /// Sets the flight-recorder mode (see [`CampaignConfig::trace`]).
    pub fn trace(mut self, mode: TraceMode) -> Self {
        self.config.trace = mode;
        self
    }

    /// Sets the checkpoint-resume stride (see
    /// [`CampaignConfig::checkpoint_stride`]).
    pub fn checkpoint_stride(mut self, stride: CheckpointStride) -> Self {
        self.config.checkpoint_stride = stride;
        self
    }

    /// Executes the campaign.
    pub fn run(&self) -> CampaignResult {
        let mut scratch = CampaignJournal::new();
        self.resume(&mut scratch)
    }

    /// Executes the campaign, reusing every run already present in
    /// `journal` and appending each newly finished run to it. An empty
    /// journal makes this identical to [`Campaign::run`]; a journal from an
    /// interrupted sweep is completed from its first missing injection
    /// point, reproducing the uninterrupted result.
    ///
    /// # Panics
    ///
    /// Panics if `journal` was recorded by a different program (host
    /// error).
    pub fn resume(&self, journal: &mut CampaignJournal) -> CampaignResult {
        journal.bind(self.program.name());
        let registry = Rc::new(self.program.build_registry());

        // Counting / baseline run, unless the journal already has it.
        let (total_points, baseline_calls) = match journal.baseline() {
            Some((points, calls)) => (points, calls.to_vec()),
            None => {
                let mut vm = Vm::from_shared_registry(registry.clone());
                vm.set_budget(self.config.budget);
                let counter = Rc::new(RefCell::new(InjectionHook::counting()));
                self.install(&mut vm, counter.clone());
                // The baseline gets the same isolation as injector runs: a
                // program that panics or diverges even without injection
                // still yields a (partially) sized campaign.
                if catch_unwind(AssertUnwindSafe(|| self.program.run(&mut vm))).is_err() {
                    (self.config.diagnostics)(&format!(
                        "warning: baseline run of `{}` panicked; campaign sized from the points counted before the panic",
                        self.program.name()
                    ));
                }
                vm.set_hook(None);
                let total_points = counter.borrow().points();
                let baseline_calls = vm.take_stats().calls;
                journal.record_baseline(total_points, &baseline_calls);
                (total_points, baseline_calls)
            }
        };

        let limit = self.max_points.unwrap_or(total_points).min(total_points);
        let missing: Vec<u64> = (1..=limit)
            .filter(|p| journal.run_for(*p).is_none())
            .collect();
        // Checkpoint-resume stride, resolved once for the whole sweep (the
        // environment is read here, not per worker). `None` — configured
        // off, or a campaign mode the replay engine does not cover — means
        // every missing point runs from scratch, as before.
        let stride = if missing.is_empty() || !self.checkpointing_possible() {
            None
        } else {
            self.config.checkpoint_stride.resolve(limit)
        };
        let workers = plan_worker_count(
            self.config.workers,
            env_workers(),
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            missing.len(),
        );
        let runs = if workers <= 1 {
            self.sweep_sequential(journal, &registry, limit, stride)
        } else {
            self.sweep_parallel(journal, limit, &missing, workers, stride)
        };

        CampaignResult {
            program: self.program.name().to_owned(),
            registry,
            total_points,
            baseline_calls,
            runs,
        }
    }

    /// `true` iff this campaign's configuration is one the checkpoint-
    /// resume engine covers: phase-gated fast-forward on (the resumed
    /// hook's prefix seeding assumes the arithmetic counter), no inner
    /// hook (a masking hook accumulates its own per-run state the replay
    /// cannot reconstruct), and no flight recorder (a resumed run cannot
    /// re-emit the prefix's trace events). Outside that envelope every
    /// run executes from scratch — same results, just without the
    /// speedup.
    fn checkpointing_possible(&self) -> bool {
        self.fast_forward && self.inner_hook.is_none() && self.config.trace.resolve().is_none()
    }

    /// The classic in-order sweep on the campaign thread.
    fn sweep_sequential(
        &self,
        journal: &mut CampaignJournal,
        registry: &Rc<Registry>,
        limit: u64,
        stride: Option<u64>,
    ) -> Vec<RunResult> {
        // One reusable VM universe for the whole sweep: every attempt
        // resets it to the pristine epoch instead of rebuilding the heap
        // and chain tables per injection point.
        let mut vm = Vm::from_shared_registry(registry.clone());
        let plan = stride.and_then(|s| self.record_plan(&mut vm, s));
        let mut runs = Vec::with_capacity(limit as usize);
        let mut unhealthy = 0u64;
        for injection_point in 1..=limit {
            if let Some(done) = journal.run_for(injection_point) {
                let done = done.clone();
                if !done.is_healthy() {
                    unhealthy += 1;
                }
                runs.push(done);
                continue;
            }
            let run = if self.config.max_failures.is_some_and(|cap| unhealthy >= cap) {
                RunResult::skipped(injection_point)
            } else {
                self.run_point(&mut vm, injection_point, plan.as_ref())
            };
            if !run.is_healthy() {
                unhealthy += 1;
            }
            journal.record_run(&run);
            runs.push(run);
        }
        runs
    }

    /// Shards the missing points across `workers` threads; an ordered
    /// writer on this thread folds results back in injection-point order,
    /// so the journal and the returned runs are bit-for-bit what the
    /// sequential sweep produces.
    ///
    /// `max_failures` semantics under sharding: the writer counts
    /// unhealthy runs in point order (exactly like the sequential loop)
    /// and, once the cap is reached, records every later point as
    /// [`RunOutcome::Skipped`] — discarding any result a worker had
    /// already produced speculatively for those points — and tells the
    /// workers to stop claiming.
    fn sweep_parallel(
        &self,
        journal: &mut CampaignJournal,
        limit: u64,
        missing: &[u64],
        workers: usize,
        stride: Option<u64>,
    ) -> Vec<RunResult> {
        let next = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<RunResult>();
        let mut runs = Vec::with_capacity(limit as usize);
        // Checkpoint-aligned chunked claiming: per-point `fetch_add(1)`
        // interleaves neighbouring points across workers, which defeats
        // checkpoint locality (consecutive points share a checkpoint) and
        // pays one atomic RMW per point. Claiming a stride-sized chunk
        // keeps a checkpoint's whole clientele on one worker and
        // amortizes the contention; without checkpointing a modest fixed
        // chunk still cuts the RMW traffic. Tail imbalance stays bounded
        // by one chunk per worker.
        let chunk = stride.map_or(8, |s| (s as usize).clamp(1, 64));
        std::thread::scope(|scope| {
            let next = &next;
            let cancelled = &cancelled;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    // Each worker owns a private registry + VM universe;
                    // the program promises identical builds, so ids (and
                    // thus results) are identical across workers. The VM is
                    // recycled across every point the worker claims. Plans
                    // hold `Rc`s, so each worker records its own from its
                    // private universe.
                    let registry = Rc::new(self.program.build_registry());
                    let mut vm = Vm::from_shared_registry(registry.clone());
                    let plan = stride.and_then(|s| self.record_plan(&mut vm, s));
                    'claim: while !cancelled.load(Ordering::Relaxed) {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= missing.len() {
                            break;
                        }
                        let end = (start + chunk).min(missing.len());
                        for &point in &missing[start..end] {
                            if cancelled.load(Ordering::Relaxed) {
                                break 'claim;
                            }
                            // `run_point` already isolates guest panics; a
                            // panic *outside* it is a harness bug, but a
                            // poisoned result keeps the writer from waiting
                            // forever on the claimed point. The recycled VM
                            // is safe to keep either way: the next attempt's
                            // `reset_for_run` discards whatever the unwind
                            // left.
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                self.run_point(&mut vm, point, plan.as_ref())
                            }))
                            .unwrap_or_else(|payload| RunResult {
                                injection_point: point,
                                injected: None,
                                marks: Vec::new(),
                                top_error: Some(format!(
                                    "panic: harness: {}",
                                    panic_message(payload.as_ref())
                                )),
                                outcome: RunOutcome::Panicked,
                                retries: 0,
                                fuel_spent: 0,
                                snapshots: 0,
                                capture_bytes: 0,
                                trace_events: 0,
                            });
                            if tx.send(run).is_err() {
                                break 'claim;
                            }
                        }
                    }
                });
            }
            drop(tx);

            // The ordered writer: reproduce the sequential loop's journal
            // appends and cap accounting exactly, buffering out-of-order
            // arrivals.
            let mut pending: HashMap<u64, RunResult> = HashMap::new();
            let mut unhealthy = 0u64;
            for injection_point in 1..=limit {
                let run = if let Some(done) = journal.run_for(injection_point) {
                    done.clone()
                } else if self.config.max_failures.is_some_and(|cap| unhealthy >= cap) {
                    cancelled.store(true, Ordering::Relaxed);
                    let run = RunResult::skipped(injection_point);
                    journal.record_run(&run);
                    run
                } else {
                    let run = loop {
                        if let Some(run) = pending.remove(&injection_point) {
                            break run;
                        }
                        match rx.recv() {
                            Ok(run) if run.injection_point == injection_point => break run,
                            Ok(run) => {
                                pending.insert(run.injection_point, run);
                            }
                            Err(_) => unreachable!(
                                "worker pool exited before delivering point {injection_point}"
                            ),
                        }
                    };
                    journal.record_run(&run);
                    run
                };
                if !run.is_healthy() {
                    unhealthy += 1;
                }
                runs.push(run);
            }
            // Stop workers that are still claiming; results in flight are
            // simply dropped (they were past the cap or past the limit).
            cancelled.store(true, Ordering::Relaxed);
            while rx.try_recv().is_ok() {}
        });
        runs
    }

    /// Runs one injection point to a final outcome, retrying unhealthy runs
    /// per the [`RetryPolicy`] with a scaled-up budget. With a sweep plan,
    /// every attempt resumes from the nearest checkpoint strictly before
    /// the target; a replay mismatch (the determinism guard tripping)
    /// demotes the point to from-scratch execution permanently.
    fn run_point(&self, vm: &mut Vm, injection_point: u64, plan: Option<&SweepPlan>) -> RunResult {
        let mut budget = self.config.budget;
        let mut attempt = 0u32;
        let mut resume = plan.and_then(|p| p.best_for(injection_point).map(|c| (p, c)));
        loop {
            let mut run = match resume {
                Some((plan, ckpt)) => {
                    match self.attempt_point_resumed(vm, injection_point, budget, plan, ckpt) {
                        Some(run) => run,
                        None => {
                            resume = None;
                            self.attempt_point(vm, injection_point, budget)
                        }
                    }
                }
                None => self.attempt_point(vm, injection_point, budget),
            };
            run.retries = attempt;
            let retryable = matches!(run.outcome, RunOutcome::Diverged | RunOutcome::Panicked);
            if !retryable || attempt >= self.config.retry.max_retries {
                return run;
            }
            attempt += 1;
            budget = budget.scaled(self.config.retry.budget_multiplier);
        }
    }

    /// One isolated attempt at one injection point, with the configured
    /// flight recorder (if any).
    fn attempt_point(&self, vm: &mut Vm, injection_point: u64, budget: Budget) -> RunResult {
        let tracer = self
            .config
            .trace
            .resolve()
            .map(|cap| Rc::new(RefCell::new(RingBufferSink::new(cap))));
        self.attempt_point_traced(
            vm,
            injection_point,
            budget,
            tracer,
            self.effective_capture(),
            false,
            self.fast_forward,
        )
        .0
    }

    /// One recording run: executes the program normally under an observing
    /// hook while the VM logs top-level driver ops, capturing a
    /// [`SweepCheckpoint`] whenever the point counter crosses a stride
    /// threshold. Returns `None` — checkpoint-resume off for this sweep —
    /// unless the recording is *healthy*: no panic, no fuel exhaustion, no
    /// replay residue. Health is load-bearing for equivalence: a healthy
    /// recording under the base budget proves that every injection run's
    /// disarmed prefix (an identical execution up to the checkpoint)
    /// completes without panicking or exhausting any attempt's budget,
    /// since retries only ever scale budgets up.
    fn record_plan(&self, vm: &mut Vm, stride: u64) -> Option<SweepPlan> {
        vm.reset_for_run();
        vm.set_budget(self.config.budget);
        let hook = Rc::new(RefCell::new(
            InjectionHook::observing().capture(self.effective_capture()),
        ));
        self.install(vm, hook.clone());
        let checkpoints: Rc<RefCell<Vec<SweepCheckpoint>>> = Rc::default();
        vm.start_recording();
        {
            let hook = Rc::clone(&hook);
            let checkpoints = Rc::clone(&checkpoints);
            // First capture as soon as any point exists (a point-0 boundary
            // checkpoint could serve no target the prefix-less run cannot),
            // then one every `stride` points.
            let mut threshold = 1u64;
            vm.set_boundary_probe(Some(Box::new(move |vm, op_cursor| {
                let h = hook.borrow();
                let point = h.points();
                if point >= threshold {
                    checkpoints.borrow_mut().push(SweepCheckpoint {
                        op_cursor,
                        point,
                        marks: h.marks().to_vec(),
                        stats: h.capture_stats(),
                        vm: Rc::new(vm.checkpoint()),
                    });
                    threshold = point + stride;
                }
            })));
        }
        let panicked = catch_unwind(AssertUnwindSafe(|| self.program.run(&mut *vm))).is_err();
        let ops = vm.finish_recording().expect("recording was active");
        vm.set_hook(None);
        let healthy = !panicked && !vm.fuel_exhausted() && !vm.replay_active();
        if !healthy {
            return None;
        }
        drop(hook);
        let mut checkpoints = Rc::try_unwrap(checkpoints)
            .expect("probe released its clone")
            .into_inner();
        // A checkpoint at the very end of the op log has no live tail to
        // switch into — a resumed run would replay the whole driver and
        // trip the leftover-replay guard. Never schedule one.
        checkpoints.retain(|c| c.op_cursor < ops.len());
        Some(SweepPlan {
            ops: Rc::new(ops),
            checkpoints,
        })
    }

    /// One isolated attempt at one injection point, resumed from a sweep
    /// checkpoint: the recorded prefix replays at host speed (guest bodies
    /// never run), the checkpoint restores heap / stats / fuel / chain
    /// watermark at the switch op, and the tail executes live with the
    /// injector seeded with the prefix's counter, marks, and capture
    /// stats. Returns `None` when the determinism guard trips (replay
    /// mismatch, or the driver finished while still replaying) — the
    /// caller then falls back to from-scratch execution for this point.
    fn attempt_point_resumed(
        &self,
        vm: &mut Vm,
        injection_point: u64,
        budget: Budget,
        plan: &SweepPlan,
        ckpt: &SweepCheckpoint,
    ) -> Option<RunResult> {
        vm.reset_for_run();
        vm.set_budget(budget);
        let hook = Rc::new(RefCell::new(
            InjectionHook::with_injection_point(injection_point)
                .capture(self.effective_capture())
                .fast_forward(true)
                .resume_prefix(ckpt.point, ckpt.marks.clone(), ckpt.stats),
        ));
        self.install(vm, hook.clone());
        vm.begin_replay(Rc::clone(&plan.ops), ckpt.op_cursor, Rc::clone(&ckpt.vm));
        let outcome = catch_unwind(AssertUnwindSafe(|| self.program.run(&mut *vm)));
        let replay_leftover = vm.replay_active();
        vm.clear_replay();
        vm.set_hook(None);
        let diverged = vm.fuel_exhausted();
        let fuel_spent = vm.fuel_spent();
        if let Err(payload) = &outcome {
            if panic_message(payload.as_ref()).contains(REPLAY_MISMATCH) {
                return None;
            }
        }
        if replay_leftover {
            return None;
        }
        let hook = extract_hook_state(hook, self.config.diagnostics);
        let capture = hook.capture_stats();
        // Outcome resolution is a verbatim copy of the from-scratch path
        // (`attempt_point_traced`): an exhausted budget wins over how the
        // run happened to end.
        let (outcome, top_error) = match outcome {
            _ if diverged => (
                RunOutcome::Diverged,
                match outcome {
                    Ok(result) => result.err().map(|e| e.to_string()),
                    Err(payload) => Some(format!("panic: {}", panic_message(payload.as_ref()))),
                },
            ),
            Ok(result) => (RunOutcome::Completed, result.err().map(|e| e.to_string())),
            Err(payload) => (
                RunOutcome::Panicked,
                Some(format!("panic: {}", panic_message(payload.as_ref()))),
            ),
        };
        Some(RunResult {
            injection_point,
            injected: hook.injected(),
            marks: hook.into_marks(),
            top_error,
            outcome,
            retries: 0,
            fuel_spent,
            snapshots: capture.snapshots,
            capture_bytes: capture.capture_bytes,
            // Checkpointing only engages with the flight recorder off
            // (`checkpointing_possible`), where from-scratch runs record 0
            // trace events too.
            trace_events: 0,
        })
    }

    /// One isolated attempt at one injection point with explicit tracing,
    /// capture, and minimization controls. The workhorse behind both the
    /// sweep ([`Campaign::attempt_point`]) and [`Campaign::replay`].
    #[allow(clippy::too_many_arguments)]
    fn attempt_point_traced(
        &self,
        vm: &mut Vm,
        injection_point: u64,
        budget: Budget,
        tracer: Option<Rc<RefCell<RingBufferSink>>>,
        capture: CaptureMode,
        minimize: bool,
        fast_forward: bool,
    ) -> (RunResult, Option<Divergence>) {
        // Recycled VM universe: reset to the pristine epoch (heap, frames,
        // stats, chains, budget) instead of rebuilding the whole VM. The
        // reset also makes a previous attempt's panic harmless — whatever
        // guest state the unwind left behind is discarded here.
        vm.reset_for_run();
        vm.set_budget(budget);
        if let Some(t) = &tracer {
            vm.set_tracer(Some(t.clone()));
        }
        let hook = Rc::new(RefCell::new(
            InjectionHook::with_injection_point(injection_point)
                .capture(capture)
                .minimize_divergence(minimize)
                .fast_forward(fast_forward),
        ));
        self.install(vm, hook.clone());
        // Panic isolation: a panicking application body unwinds out of
        // `Program::run`; the VM is only inspected for fuel afterwards and
        // then reset before its next run, so AssertUnwindSafe is sound here.
        let outcome = catch_unwind(AssertUnwindSafe(|| self.program.run(&mut *vm)));
        // Release the VM's clone(s) of the hook (direct or via a HookChain)
        // so the results can be moved out, and its tracer clone so callers
        // can unwrap the ring buffer.
        vm.set_hook(None);
        let diverged = vm.fuel_exhausted();
        let fuel_spent = vm.fuel_spent();
        vm.set_tracer(None);
        let mut hook = extract_hook_state(hook, self.config.diagnostics);
        let divergence = hook.take_divergence();
        let capture = hook.capture_stats();
        let trace_events = tracer.as_ref().map(|t| t.borrow().emitted()).unwrap_or(0);
        // An exhausted budget wins over how the run happened to end: both
        // the guest `BudgetExhausted` exception reaching the driver and the
        // escalation panic (when the program swallowed that exception and
        // kept going) mean the run did not terminate on its own.
        let (outcome, top_error) = match outcome {
            _ if diverged => (
                RunOutcome::Diverged,
                match outcome {
                    Ok(result) => result.err().map(|e| e.to_string()),
                    Err(payload) => Some(format!("panic: {}", panic_message(payload.as_ref()))),
                },
            ),
            Ok(result) => (RunOutcome::Completed, result.err().map(|e| e.to_string())),
            Err(payload) => (
                RunOutcome::Panicked,
                Some(format!("panic: {}", panic_message(payload.as_ref()))),
            ),
        };
        let run = RunResult {
            injection_point,
            injected: hook.injected(),
            marks: hook.into_marks(),
            top_error,
            outcome,
            retries: 0,
            fuel_spent,
            snapshots: capture.snapshots,
            capture_bytes: capture.capture_bytes,
            trace_events,
        };
        (run, divergence)
    }

    /// Re-executes exactly one injection point with the flight recorder
    /// always on and returns the full artifact: run record, event trace,
    /// and (for non-atomic points) the minimized divergence.
    ///
    /// Replay is deterministic: it rebuilds the registry and runs the point
    /// exactly as the sweep does, so the marks and outcome match the
    /// campaign's journal bit for bit — independent of worker count, and
    /// independent of whether the campaign traced. Replay knows nothing of
    /// journals, retry history, or `max_failures`: a point the campaign
    /// recorded as [`RunOutcome::Skipped`] is executed for real here, under
    /// a fresh `config.budget`.
    ///
    /// Unlike the sweep, replay always runs with fast-forward **off**:
    /// it is the debugging/reference execution, so it counts points through
    /// Listing 1's literal per-exception-type loop and performs the full
    /// structural comparison, never the fingerprint fast path. The two
    /// modes are equivalent by construction (and property-tested), so a
    /// replay that disagrees with the sweep's journal directly indicts the
    /// fast-forward gate.
    ///
    /// The replay ring is large (`2^20` events); if a run emits more,
    /// [`ReplayReport::trace_dropped`] says how many early events fell off.
    pub fn replay(&self, injection_point: u64) -> ReplayReport {
        const REPLAY_RING_CAPACITY: usize = 1 << 20;
        let registry = Rc::new(self.program.build_registry());
        let mut vm = Vm::from_shared_registry(registry.clone());
        let tracer = Rc::new(RefCell::new(RingBufferSink::new(REPLAY_RING_CAPACITY)));
        let capture = self.effective_capture();
        // First pass: the recorded run, bit-for-bit what the sweep journals
        // for this point. No minimizer here — it needs the lazy undo log
        // open at propagation time and the full comparison, so the second
        // pass below derives the divergence instead.
        let (run, mut divergence) = self.attempt_point_traced(
            &mut vm,
            injection_point,
            self.config.budget,
            Some(tracer.clone()),
            capture,
            false,
            false,
        );
        if divergence.is_none() && self.inner_hook.is_none() && run.marks.iter().any(|m| !m.atomic)
        {
            divergence = self
                .attempt_point_traced(
                    &mut vm,
                    injection_point,
                    self.config.budget,
                    None,
                    CaptureMode::Lazy,
                    true,
                    false,
                )
                .1;
        }
        let sink = match Rc::try_unwrap(tracer) {
            Ok(cell) => cell.into_inner(),
            Err(shared) => shared.borrow().clone(),
        };
        let trace_emitted = sink.emitted();
        let trace_dropped = sink.dropped();
        ReplayReport {
            run,
            trace: sink.into_events(),
            trace_emitted,
            trace_dropped,
            registry,
            divergence,
        }
    }

    /// The capture mode injector runs actually use: the configured mode,
    /// except that campaigns weaving an inner hook (masking verification)
    /// always capture eagerly — rollback hooks may reclaim objects in the
    /// middle of a wrapped call's extent, which would punch holes in an
    /// undo-log reconstruction of the before-graph.
    fn effective_capture(&self) -> CaptureMode {
        if self.inner_hook.is_some() {
            CaptureMode::Eager
        } else {
            self.config.capture
        }
    }

    fn install(&self, vm: &mut Vm, injector: Rc<RefCell<InjectionHook>>) {
        match &self.inner_hook {
            None => vm.set_hook(Some(injector)),
            Some(factory) => {
                let inner = factory(vm.registry());
                let chain = HookChain::new(vec![injector, inner]);
                vm.set_hook(Some(Rc::new(RefCell::new(chain))));
            }
        }
    }
}

/// Recovers the injection hook's state after a run. The fast path takes
/// sole ownership; if something still shares the `Rc` (a hook chain kept
/// alive across a panic, say), the state is cloned out instead of aborting
/// the whole campaign.
fn extract_hook_state(
    hook: Rc<RefCell<InjectionHook>>,
    diagnostics: DiagnosticsFn,
) -> InjectionHook {
    match Rc::try_unwrap(hook) {
        Ok(cell) => cell.into_inner(),
        Err(shared) => match shared.try_borrow() {
            Ok(state) => {
                diagnostics("warning: injection hook still shared after run; cloning its state");
                state.clone()
            }
            Err(_) => {
                diagnostics("warning: injection hook still borrowed after run; its marks are lost");
                InjectionHook::counting()
            }
        },
    }
}

/// Resolves the effective worker count for a sweep with `missing` points
/// left to execute. An explicit count (`explicit` from the config, or
/// `env` from `ATOMASK_WORKERS`) is honored as-is; auto mode stays
/// sequential on machines without parallelism (`available <= 1`) — a
/// single worker thread only adds scheduling and channel overhead on top
/// of the same serial execution — and for small sweeps, where thread
/// setup would cost more than it buys. Any resolved count is clamped to
/// the work available.
fn plan_worker_count(
    explicit: usize,
    env: Option<usize>,
    available: usize,
    missing: usize,
) -> usize {
    const AUTO_PARALLEL_MIN_POINTS: usize = 32;
    let requested = if explicit > 0 {
        explicit
    } else if let Some(n) = env {
        n
    } else {
        if available <= 1 || missing < AUTO_PARALLEL_MIN_POINTS {
            return 1;
        }
        available
    };
    requested.min(missing.max(1))
}

/// `ATOMASK_WORKERS`, if set to a positive integer.
fn env_workers() -> Option<usize> {
    std::env::var("ATOMASK_WORKERS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
}

/// Best-effort rendering of a panic payload (the two shapes `panic!`
/// produces, then a generic fallback).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{FnProgram, Profile, RegistryBuilder, Value};

    fn two_level_program() -> FnProgram {
        FnProgram::new(
            "two-level",
            || {
                let mut rb = RegistryBuilder::new(Profile::java());
                rb.class("T", |c| {
                    c.field("a", Value::Int(0));
                    c.method("outer", |ctx, this, _| {
                        let a = ctx.get_int(this, "a");
                        ctx.set(this, "a", Value::Int(a + 1));
                        ctx.call(this, "inner", &[])?;
                        ctx.set(this, "a", Value::Int(a));
                        Ok(Value::Null)
                    });
                    c.method("inner", |_, _, _| Ok(Value::Null));
                });
                rb.build()
            },
            |vm| {
                let t = vm.construct("T", &[])?;
                vm.root(t);
                vm.call(t, "outer", &[])
            },
        )
    }

    /// A program that is healthy on its own but has one diverging and one
    /// panicking injection point. The custom profile has a single runtime
    /// exception, so each dynamic call is exactly one potential point
    /// (5 total): injecting into `commit` (point 2) leaks the lock and the
    /// driver's retry loop spins forever; injecting into `probe` (point 4)
    /// makes `strict` panic. Points 1, 3 and 5 complete normally.
    fn pathological_program() -> FnProgram {
        FnProgram::new(
            "pathological",
            || {
                let mut profile = Profile::cpp();
                profile.runtime_exceptions = vec!["Fault".to_owned()];
                let mut rb = RegistryBuilder::new(profile);
                rb.exception("StateError");
                rb.class("P", |c| {
                    c.field("locked", Value::Bool(false));
                    c.field("done", Value::Int(0));
                    c.method("transact", |ctx, this, _| {
                        if ctx.get_bool(this, "locked") {
                            return Err(ctx.exception("StateError", "still locked"));
                        }
                        ctx.set(this, "locked", Value::Bool(true));
                        // Non-atomic: an exception here leaks the lock.
                        ctx.call(this, "commit", &[])?;
                        ctx.set(this, "locked", Value::Bool(false));
                        Ok(Value::Null)
                    });
                    c.method("commit", |_, _, _| Ok(Value::Null));
                    c.method("strict", |ctx, this, _| {
                        if ctx.call(this, "probe", &[]).is_err() {
                            panic!("invariant violated: probe can never fail");
                        }
                        Ok(Value::Null)
                    });
                    c.method("probe", |_, _, _| Ok(Value::Null));
                    c.method("calm", |ctx, this, _| {
                        let d = ctx.get_int(this, "done");
                        ctx.set(this, "done", Value::Int(d + 1));
                        Ok(Value::Null)
                    });
                });
                rb.build()
            },
            |vm| {
                let p = vm.construct("P", &[])?;
                vm.root(p);
                // Application-level retry loop: swallows failures and tries
                // again. Once the injected failure leaks the lock, every
                // retry throws `StateError` and only the fuel budget ends
                // the run.
                loop {
                    match vm.call(p, "transact", &[]) {
                        Ok(_) => break,
                        Err(_) => continue,
                    }
                }
                let _ = vm.call(p, "strict", &[]);
                vm.call(p, "calm", &[])
            },
        )
    }

    #[test]
    fn campaign_runs_once_per_point() {
        let p = two_level_program();
        let result = Campaign::new(&p).run();
        // outer: 2 runtime exceptions, inner: 2 => 4 points.
        assert_eq!(result.total_points, 4);
        assert_eq!(result.injections(), 4);
        for (i, run) in result.runs.iter().enumerate() {
            assert_eq!(run.injection_point, i as u64 + 1);
            assert!(run.injected.is_some());
            assert!(run.top_error.is_some(), "injected exception escapes");
            assert_eq!(run.outcome, RunOutcome::Completed);
            assert_eq!(run.retries, 0);
            assert!(run.fuel_spent > 0);
        }
    }

    #[test]
    fn baseline_calls_are_recorded() {
        let p = two_level_program();
        let result = Campaign::new(&p).run();
        let used: Vec<String> = result
            .used_methods()
            .map(|m| result.registry.method_display(m))
            .collect();
        assert_eq!(used, vec!["T::outer", "T::inner"]);
        assert_eq!(result.baseline_calls.iter().sum::<u64>(), 2);
    }

    #[test]
    fn marks_identify_nonatomic_propagation() {
        let p = two_level_program();
        let result = Campaign::new(&p).run();
        // Injections into inner (points 3 and 4) mark outer non-atomic
        // (a was incremented, restore line never reached).
        let nonatomic_runs: Vec<&RunResult> = result
            .runs
            .iter()
            .filter(|r| r.marks.iter().any(|m| !m.atomic))
            .collect();
        assert_eq!(nonatomic_runs.len(), 2);
        for run in nonatomic_runs {
            let m = run.marks.iter().find(|m| !m.atomic).unwrap();
            assert_eq!(result.registry.method_display(m.method), "T::outer");
        }
    }

    #[test]
    fn max_points_caps_the_sweep() {
        let p = two_level_program();
        let result = Campaign::new(&p).max_points(2).run();
        assert_eq!(result.total_points, 4);
        assert_eq!(result.injections(), 2);
    }

    #[test]
    fn pathological_sweep_completes_with_isolated_failures() {
        let p = pathological_program();
        let result = Campaign::new(&p)
            .budget(Budget::fuel(20_000))
            .retry(RetryPolicy {
                max_retries: 1,
                budget_multiplier: 2,
            })
            .run();
        // The full sweep ran despite the diverging and panicking points.
        assert_eq!(result.injections() as u64, result.total_points);
        let health = result.health();
        assert_eq!(health.diverged, 1, "{health}");
        assert_eq!(health.panicked, 1, "{health}");
        assert_eq!(health.skipped, 0, "{health}");
        assert_eq!(health.completed + 2, result.total_points, "{health}");
        // Both unhealthy points were retried to the policy's limit.
        assert_eq!(health.retries, 2, "{health}");
        let diverged = result
            .runs
            .iter()
            .find(|r| r.outcome == RunOutcome::Diverged)
            .unwrap();
        assert_eq!(
            result.registry.method_display(diverged.injected.unwrap().0),
            "P::commit",
            "injecting into commit leaks the lock and spins the driver"
        );
        let panicked = result
            .runs
            .iter()
            .find(|r| r.outcome == RunOutcome::Panicked)
            .unwrap();
        assert!(panicked.top_error.as_deref().unwrap().contains("invariant"));
    }

    #[test]
    fn retries_scale_the_budget() {
        // A 60-fuel budget covers the (healthy) baseline but not the
        // spinning retry loop; retries at 8x each reach 3840 fuel — still
        // not enough for an infinite loop, so the point stays Diverged,
        // with every retry recorded.
        let p = pathological_program();
        let result = Campaign::new(&p)
            .budget(Budget::fuel(60))
            .retry(RetryPolicy {
                max_retries: 2,
                budget_multiplier: 8,
            })
            .run();
        let worst = result
            .runs
            .iter()
            .filter(|r| r.outcome == RunOutcome::Diverged)
            .map(|r| r.retries)
            .max()
            .unwrap();
        assert_eq!(worst, 2);
    }

    #[test]
    fn max_failures_skips_the_tail() {
        let p = pathological_program();
        let result = Campaign::new(&p)
            .budget(Budget::fuel(500))
            .retry(RetryPolicy::none())
            .max_failures(1)
            .run();
        let health = result.health();
        assert!(health.skipped > 0, "{health}");
        // Everything after the first unhealthy run is Skipped.
        let first_bad = result
            .runs
            .iter()
            .position(|r| !r.is_healthy())
            .expect("the pathological program has unhealthy runs");
        for run in &result.runs[first_bad + 1..] {
            assert_eq!(run.outcome, RunOutcome::Skipped);
        }
    }

    #[test]
    fn resume_reproduces_an_uninterrupted_sweep() {
        let p = pathological_program();
        let campaign = || {
            Campaign::new(&p)
                .budget(Budget::fuel(20_000))
                .retry(RetryPolicy::none())
        };
        let full = campaign().run();

        // Interrupt after roughly half the runs.
        let mut journal = full.journal();
        journal.truncate_runs(full.runs.len() / 2);
        let resumed = campaign().resume(&mut journal);

        assert_eq!(resumed.total_points, full.total_points);
        assert_eq!(resumed.baseline_calls, full.baseline_calls);
        assert_eq!(resumed.runs, full.runs, "resume is bit-for-bit");
        // The journal is now complete: resuming again re-runs nothing and
        // still agrees.
        let again = campaign().resume(&mut journal);
        assert_eq!(again.runs, full.runs);
    }

    #[test]
    #[should_panic(expected = "journal")]
    fn resume_rejects_a_foreign_journal() {
        let two = two_level_program();
        let mut journal = Campaign::new(&two).run().journal();
        let p = pathological_program();
        let _ = Campaign::new(&p).resume(&mut journal);
    }

    #[test]
    fn journal_round_trips_through_text() {
        let p = pathological_program();
        let result = Campaign::new(&p)
            .budget(Budget::fuel(20_000))
            .retry(RetryPolicy::none())
            .run();
        let journal = result.journal();
        let text = journal.serialize();
        let parsed = CampaignJournal::parse(&text).expect("serialized journal parses");
        assert_eq!(parsed, journal);
    }

    #[test]
    fn ring_trace_mode_counts_events_without_changing_results() {
        let p = two_level_program();
        let off = Campaign::new(&p).trace(TraceMode::Off).run();
        let ring = Campaign::new(&p).trace(TraceMode::Ring(64)).run();
        assert!(off.runs.iter().all(|r| r.trace_events == 0));
        assert!(ring.runs.iter().all(|r| r.trace_events > 0));
        assert!(ring.health().trace_events > 0);
        // Tracing is observation only: everything except the event counts
        // is identical.
        for (a, b) in off.runs.iter().zip(&ring.runs) {
            let mut b = b.clone();
            b.trace_events = 0;
            assert_eq!(*a, b);
        }
    }

    #[test]
    fn replay_matches_the_sweep_at_every_point_and_worker_count() {
        let p = two_level_program();
        let sequential = Campaign::new(&p).workers(1).run();
        let sharded = Campaign::new(&p).workers(3).run();
        assert_eq!(sequential.runs, sharded.runs);
        for run in &sequential.runs {
            let replay = Campaign::new(&p).replay(run.injection_point);
            assert_eq!(replay.run.marks, run.marks, "point {}", run.injection_point);
            assert_eq!(replay.run.outcome, run.outcome);
            assert_eq!(replay.run.injected, run.injected);
            assert!(replay.trace_emitted > 0, "the replay recorder is always on");
            assert_eq!(replay.trace_dropped, 0);
            assert_eq!(replay.trace.len() as u64, replay.trace_emitted);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let p = two_level_program();
        let a = Campaign::new(&p).replay(3);
        let b = Campaign::new(&p).replay(3);
        assert_eq!(a.run, b.run);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.divergence, b.divergence);
    }

    #[test]
    fn replay_minimizes_the_nonatomic_divergence() {
        let p = two_level_program();
        // Point 3 injects into `inner`, leaving `a` incremented: outer is
        // non-atomic and the minimal explanation is that single cell.
        let replay = Campaign::new(&p).replay(3);
        assert!(replay.run.marks.iter().any(|m| !m.atomic));
        let d = replay
            .divergence
            .expect("non-atomic point has a divergence");
        assert_eq!(replay.registry.method_display(d.method), "T::outer");
        assert_eq!(d.minimal.len(), 1);
        assert_eq!(d.minimal[0].field, "a");
        assert_eq!(d.minimal[0].before, Value::Int(0));
        assert_eq!(d.minimal[0].after, Value::Int(1));
        assert!(d.total_surviving >= d.minimal.len());
        // Atomic points (injections into `outer` itself) have none.
        let atomic = Campaign::new(&p).replay(1);
        assert!(atomic.divergence.is_none());
    }

    #[test]
    fn replay_of_a_skipped_point_executes_for_real() {
        let p = pathological_program();
        let campaign = Campaign::new(&p)
            .budget(Budget::fuel(500))
            .retry(RetryPolicy::none())
            .max_failures(1);
        let result = campaign.run();
        let skipped = result
            .runs
            .iter()
            .find(|r| r.outcome == RunOutcome::Skipped)
            .expect("the failure cap skips the tail");
        // A skipped record carries zeroed execution statistics...
        assert_eq!(skipped.fuel_spent, 0);
        assert_eq!(skipped.snapshots, 0);
        assert_eq!(skipped.capture_bytes, 0);
        assert_eq!(skipped.trace_events, 0);
        assert!(skipped.marks.is_empty());
        // ...and replay re-executes it under a fresh budget.
        let replay = campaign.replay(skipped.injection_point);
        assert_ne!(replay.run.outcome, RunOutcome::Skipped);
        assert!(replay.run.fuel_spent > 0);
    }

    #[test]
    fn auto_workers_stay_sequential_without_parallelism() {
        // The auto-workers bug this guards against: a machine reporting
        // `available_parallelism() == 1` used to get a full worker-pool
        // setup for large sweeps — one thread, plus channel and scope
        // overhead, for strictly serial execution.
        assert_eq!(plan_worker_count(0, None, 1, 10_000), 1);
        // Small sweeps stay sequential whatever the machine offers.
        assert_eq!(plan_worker_count(0, None, 16, 31), 1);
        // Auto mode on a parallel machine shards large sweeps.
        assert_eq!(plan_worker_count(0, None, 8, 10_000), 8);
        // Explicit counts (config, then environment) are honored as-is,
        // even on a single-core machine, clamped only to the work.
        assert_eq!(plan_worker_count(4, None, 1, 10_000), 4);
        assert_eq!(plan_worker_count(0, Some(6), 1, 10_000), 6);
        assert_eq!(plan_worker_count(4, Some(6), 1, 10_000), 4, "config wins");
        assert_eq!(plan_worker_count(64, None, 8, 3), 3, "clamped to work");
        assert_eq!(plan_worker_count(2, None, 8, 0), 1, "no work, no pool");
    }

    #[test]
    fn checkpoint_stride_resolution() {
        assert_eq!(CheckpointStride::Off.resolve(100), None);
        assert_eq!(CheckpointStride::Every(7).resolve(100), Some(7));
        assert_eq!(CheckpointStride::Every(0).resolve(100), None);
        if std::env::var("ATOMASK_CKPT_STRIDE").is_err() {
            assert_eq!(CheckpointStride::Auto.resolve(100), Some(10));
            assert_eq!(CheckpointStride::Auto.resolve(0), Some(1), "floor of 1");
            assert_eq!(CheckpointStride::Auto.resolve(10_000), Some(100));
        }
    }

    #[test]
    fn checkpoint_resume_matches_from_scratch_smoke() {
        // The exhaustive property suite lives in
        // `tests/checkpoint_equivalence.rs`; this smoke test keeps the
        // core bit-for-bit claim close to the implementation, on the
        // nastiest in-crate program (diverging and panicking points).
        let p = pathological_program();
        let base = |stride| {
            Campaign::new(&p)
                .budget(Budget::fuel(20_000))
                .workers(1)
                .checkpoint_stride(stride)
                .run()
        };
        let scratch = base(CheckpointStride::Off);
        for stride in [1, 2, 7] {
            let resumed = base(CheckpointStride::Every(stride));
            assert_eq!(resumed.runs, scratch.runs, "stride {stride}");
            assert_eq!(resumed.baseline_calls, scratch.baseline_calls);
            assert_eq!(resumed.total_points, scratch.total_points);
        }
    }

    #[test]
    fn checkpoint_resume_skips_prefix_work() {
        // Fuel and every other VM-visible statistic are identical by
        // construction (restored, not recharged), so the saved work can
        // only be observed through a side channel the engine cannot fake:
        // a host-side counter bumped by a guest body. From scratch, every
        // injection run re-executes the whole prefix, so body executions
        // are quadratic in the sweep size; with checkpoint-resume the
        // replayed prefixes never run guest bodies at all.
        use std::cell::Cell;
        thread_local! {
            static BODY_RUNS: Cell<u64> = const { Cell::new(0) };
        }
        const STEPS: i64 = 12;
        let p = FnProgram::new(
            "stepper",
            || {
                let mut rb = RegistryBuilder::new(Profile::java());
                rb.class("C", |c| {
                    c.field("n", Value::Int(0));
                    c.method("step", |ctx, this, _| {
                        BODY_RUNS.with(|b| b.set(b.get() + 1));
                        let n = ctx.get_int(this, "n");
                        ctx.set(this, "n", Value::Int(n + 1));
                        Ok(Value::Null)
                    });
                });
                rb.build()
            },
            |vm| {
                let c = vm.construct("C", &[])?;
                vm.root(c);
                let mut last = Value::Null;
                for _ in 0..STEPS {
                    last = vm.call(c, "step", &[])?;
                }
                Ok(last)
            },
        );
        let sweep = |stride| {
            BODY_RUNS.with(|b| b.set(0));
            let result = Campaign::new(&p).workers(1).checkpoint_stride(stride).run();
            (result, BODY_RUNS.with(|b| b.get()))
        };
        let (scratch, scratch_bodies) = sweep(CheckpointStride::Off);
        let (resumed, resumed_bodies) = sweep(CheckpointStride::Every(1));
        assert_eq!(scratch.runs, resumed.runs, "bit-identical results");
        assert!(
            resumed_bodies * 2 < scratch_bodies,
            "resumed sweep re-executed almost as many guest bodies \
             ({resumed_bodies}) as the quadratic from-scratch sweep \
             ({scratch_bodies})"
        );
    }
}

//! Classification of methods and classes from campaign results.
//!
//! Implements the rules of §4.1 and §4.3:
//!
//! * a method is **failure atomic** iff it is *never* marked non-atomic;
//! * a failure non-atomic method is **pure** iff there exists a run in
//!   which it is the *first* method marked non-atomic (exceptions propagate
//!   callee→caller, so any non-atomic callee would have been marked
//!   earlier);
//! * all other failure non-atomic methods are **conditional**;
//! * a class is pure failure non-atomic iff it contains at least one pure
//!   failure non-atomic method, conditional iff it is non-atomic but not
//!   pure, and failure atomic otherwise (Fig. 4's roll-up);
//! * runs whose injection targeted a method the programmer has annotated as
//!   *exception-free* are discounted before classification ([`MarkFilter`],
//!   §4.3's web-interface reclassification).

use crate::campaign::{CampaignResult, RunHealth};
use atomask_mor::MethodId;
use std::collections::HashSet;

/// A method's failure-atomicity verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Never marked non-atomic.
    FailureAtomic,
    /// Non-atomic, but never first in a propagation chain: would be atomic
    /// if all callees were (Def. 3).
    ConditionalNonAtomic,
    /// Non-atomic on its own account.
    PureNonAtomic,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::FailureAtomic => write!(f, "atomic"),
            Verdict::ConditionalNonAtomic => write!(f, "conditional"),
            Verdict::PureNonAtomic => write!(f, "pure non-atomic"),
        }
    }
}

/// Discounts applied before classification (§4.3).
#[derive(Debug, Clone, Default)]
pub struct MarkFilter {
    /// Methods the programmer asserts can never throw: runs that injected
    /// into them are discarded, and methods classified non-atomic *solely*
    /// because of those runs revert to failure atomic.
    pub exception_free: HashSet<MethodId>,
}

impl MarkFilter {
    /// A filter that discounts injections into `methods`.
    pub fn exception_free(methods: impl IntoIterator<Item = MethodId>) -> Self {
        MarkFilter {
            exception_free: methods.into_iter().collect(),
        }
    }
}

/// Classification details for one method.
#[derive(Debug, Clone)]
pub struct MethodClassification {
    /// The method.
    pub method: MethodId,
    /// `Class::method` display name.
    pub name: String,
    /// Verdict; `None` when the method was neither called in the baseline
    /// run nor observed under exception (not "defined and used").
    pub verdict: Option<Verdict>,
    /// Baseline dynamic call count (the Figs. 2b/3b weight).
    pub calls: u64,
    /// Number of atomic marks across the campaign (post-filter).
    pub atomic_marks: u64,
    /// Number of non-atomic marks across the campaign (post-filter).
    pub nonatomic_marks: u64,
    /// An example object-graph difference, for the programmer's report.
    pub sample_diff: Option<String>,
}

/// Counts of methods (or calls) per verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Failure atomic.
    pub atomic: u64,
    /// Conditional failure non-atomic.
    pub conditional: u64,
    /// Pure failure non-atomic.
    pub pure_nonatomic: u64,
}

impl VerdictCounts {
    /// Sum of all three buckets.
    pub fn total(&self) -> u64 {
        self.atomic + self.conditional + self.pure_nonatomic
    }

    /// Percentage of a bucket (0 when empty).
    pub fn pct(&self, bucket: Verdict) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n = match bucket {
            Verdict::FailureAtomic => self.atomic,
            Verdict::ConditionalNonAtomic => self.conditional,
            Verdict::PureNonAtomic => self.pure_nonatomic,
        };
        n as f64 * 100.0 / total as f64
    }

    fn bump(&mut self, verdict: Verdict, by: u64) {
        match verdict {
            Verdict::FailureAtomic => self.atomic += by,
            Verdict::ConditionalNonAtomic => self.conditional += by,
            Verdict::PureNonAtomic => self.pure_nonatomic += by,
        }
    }
}

/// Per-class roll-up (Fig. 4).
#[derive(Debug, Clone)]
pub struct ClassRollup {
    /// Class name.
    pub class: String,
    /// Class verdict per the Fig. 4 rule.
    pub verdict: Verdict,
}

/// Counts of classes per verdict (Fig. 4's series).
pub type ClassVerdictCounts = VerdictCounts;

/// Full classification of a campaign.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Program name.
    pub program: String,
    /// Per-method details, one entry per registry method.
    pub methods: Vec<MethodClassification>,
    /// Counts over methods *defined and used* (Figs. 2a/3a).
    pub method_counts: VerdictCounts,
    /// Counts over baseline *calls*, weighted by call frequency
    /// (Figs. 2b/3b).
    pub call_counts: VerdictCounts,
    /// Per-class roll-ups, classes with at least one used method only.
    pub classes: Vec<ClassRollup>,
    /// Counts over classes (Fig. 4).
    pub class_counts: ClassVerdictCounts,
    /// Run-health of the underlying campaign. Unhealthy (diverged,
    /// panicked, skipped) runs contribute no marks to the verdicts above;
    /// this field reports how much of the sweep they were.
    pub health: RunHealth,
}

impl Classification {
    /// The classification entry of a method, by display name.
    pub fn method(&self, name: &str) -> Option<&MethodClassification> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Display names of all pure failure non-atomic methods.
    pub fn pure_nonatomic(&self) -> Vec<&MethodClassification> {
        self.methods
            .iter()
            .filter(|m| m.verdict == Some(Verdict::PureNonAtomic))
            .collect()
    }

    /// Method ids of every failure non-atomic method (pure and
    /// conditional) — the masking phase's input list.
    pub fn nonatomic_methods(&self) -> Vec<MethodId> {
        self.methods
            .iter()
            .filter(|m| {
                matches!(
                    m.verdict,
                    Some(Verdict::PureNonAtomic) | Some(Verdict::ConditionalNonAtomic)
                )
            })
            .map(|m| m.method)
            .collect()
    }
}

/// Classifies a campaign's methods and classes, after applying `filter`.
pub fn classify(result: &CampaignResult, filter: &MarkFilter) -> Classification {
    let registry = &result.registry;
    let n = registry.method_count();
    let mut atomic_marks = vec![0u64; n];
    let mut nonatomic_marks = vec![0u64; n];
    let mut sample_diff: Vec<Option<String>> = vec![None; n];
    let mut pure: HashSet<MethodId> = HashSet::new();

    for run in &result.runs {
        if !run.is_healthy() {
            // A diverged, panicked, or skipped run yields no trustworthy
            // before/after comparison: contribute no marks, but stay
            // visible through `Classification::health`.
            continue;
        }
        if let Some((target, _)) = run.injected {
            if filter.exception_free.contains(&target) {
                // The programmer ruled this exception out: discount the
                // whole run (§4.3).
                continue;
            }
        }
        // Exceptions propagate callee->caller, so within each propagation
        // chain the *first* non-atomic mark identifies a pure failure
        // non-atomic method (Def. 3). A run may see several independent
        // chains (application-thrown exceptions the driver absorbs plus
        // the injected one), tracked by the exception's chain id.
        let mut chains_with_nonatomic: HashSet<u64> = HashSet::new();
        for mark in &run.marks {
            let idx = mark.method.index();
            if mark.atomic {
                atomic_marks[idx] += 1;
            } else {
                nonatomic_marks[idx] += 1;
                if sample_diff[idx].is_none() {
                    sample_diff[idx] = mark.diff.clone();
                }
                if chains_with_nonatomic.insert(mark.chain) {
                    pure.insert(mark.method);
                }
            }
        }
    }

    let mut methods = Vec::with_capacity(n);
    let mut method_counts = VerdictCounts::default();
    let mut call_counts = VerdictCounts::default();
    for mid in registry.method_ids() {
        let idx = mid.index();
        let calls = result.baseline_calls.get(idx).copied().unwrap_or(0);
        let observed = atomic_marks[idx] + nonatomic_marks[idx] > 0;
        let used = calls > 0 || observed;
        let verdict = if !used {
            None
        } else if nonatomic_marks[idx] == 0 {
            Some(Verdict::FailureAtomic)
        } else if pure.contains(&mid) {
            Some(Verdict::PureNonAtomic)
        } else {
            Some(Verdict::ConditionalNonAtomic)
        };
        if let Some(v) = verdict {
            method_counts.bump(v, 1);
            call_counts.bump(v, calls);
        }
        methods.push(MethodClassification {
            method: mid,
            name: registry.method_display(mid),
            verdict,
            calls,
            atomic_marks: atomic_marks[idx],
            nonatomic_marks: nonatomic_marks[idx],
            sample_diff: sample_diff[idx].take(),
        });
    }

    // Fig. 4 roll-up.
    let mut classes = Vec::new();
    let mut class_counts = ClassVerdictCounts::default();
    for class in registry.classes() {
        let mut any_used = false;
        let mut any_nonatomic = false;
        let mut any_pure = false;
        for m in &class.methods {
            let mc = &methods[m.gid.index()];
            match mc.verdict {
                None => {}
                Some(Verdict::FailureAtomic) => any_used = true,
                Some(Verdict::ConditionalNonAtomic) => {
                    any_used = true;
                    any_nonatomic = true;
                }
                Some(Verdict::PureNonAtomic) => {
                    any_used = true;
                    any_nonatomic = true;
                    any_pure = true;
                }
            }
        }
        if !any_used {
            continue;
        }
        let verdict = if any_pure {
            Verdict::PureNonAtomic
        } else if any_nonatomic {
            Verdict::ConditionalNonAtomic
        } else {
            Verdict::FailureAtomic
        };
        class_counts.bump(verdict, 1);
        classes.push(ClassRollup {
            class: class.name.clone(),
            verdict,
        });
    }

    Classification {
        program: result.program.clone(),
        methods,
        method_counts,
        call_counts,
        classes,
        class_counts,
        health: result.health(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use atomask_mor::{FnProgram, Profile, RegistryBuilder, Value};

    /// Three-layer program:
    /// * `Leaf::work`   — atomic (mutates nothing).
    /// * `Mid::step`    — pure non-atomic (mutates, then calls leaf).
    /// * `Top::go`      — conditional (clean itself, but calls `Mid::step`).
    fn layered() -> FnProgram {
        FnProgram::new(
            "layered",
            || {
                let mut rb = RegistryBuilder::new(Profile::java());
                rb.class("Leaf", |c| {
                    c.field("dummy", Value::Int(0));
                    c.method("work", |_, _, _| Ok(Value::Null));
                });
                rb.class("Mid", |c| {
                    c.field("state", Value::Int(0));
                    c.field("leaf", Value::Null);
                    c.method("step", |ctx, this, _| {
                        let s = ctx.get_int(this, "state");
                        ctx.set(this, "state", Value::Int(s + 1));
                        let leaf = ctx.get(this, "leaf");
                        ctx.call_value(&leaf, "work", &[])?;
                        ctx.set(this, "state", Value::Int(s));
                        Ok(Value::Null)
                    });
                });
                rb.class("Top", |c| {
                    c.field("mid", Value::Null);
                    c.method("go", |ctx, this, _| {
                        let mid = ctx.get(this, "mid");
                        ctx.call_value(&mid, "step", &[])
                    });
                });
                rb.build()
            },
            |vm| {
                let leaf = vm.construct("Leaf", &[])?;
                vm.root(leaf);
                let mid = vm.construct("Mid", &[])?;
                vm.root(mid);
                vm.heap_mut()
                    .set_field(mid, "leaf", Value::Ref(leaf))
                    .unwrap();
                let top = vm.construct("Top", &[])?;
                vm.root(top);
                vm.heap_mut()
                    .set_field(top, "mid", Value::Ref(mid))
                    .unwrap();
                vm.call(top, "go", &[])
            },
        )
    }

    fn classified() -> Classification {
        let p = layered();
        let result = Campaign::new(&p).run();
        classify(&result, &MarkFilter::default())
    }

    #[test]
    fn verdicts_match_the_planted_structure() {
        let c = classified();
        assert_eq!(
            c.method("Leaf::work").unwrap().verdict,
            Some(Verdict::FailureAtomic)
        );
        assert_eq!(
            c.method("Mid::step").unwrap().verdict,
            Some(Verdict::PureNonAtomic)
        );
        assert_eq!(
            c.method("Top::go").unwrap().verdict,
            Some(Verdict::ConditionalNonAtomic)
        );
    }

    #[test]
    fn counts_cover_used_methods_only() {
        let c = classified();
        assert_eq!(c.method_counts.total(), 3);
        assert_eq!(c.method_counts.pure_nonatomic, 1);
        assert_eq!(c.method_counts.conditional, 1);
        assert_eq!(c.method_counts.atomic, 1);
        // One baseline call each.
        assert_eq!(c.call_counts.total(), 3);
    }

    #[test]
    fn class_rollup_follows_fig4_rule() {
        let c = classified();
        let by_name = |n: &str| c.classes.iter().find(|r| r.class == n).unwrap();
        assert_eq!(by_name("Leaf").verdict, Verdict::FailureAtomic);
        assert_eq!(by_name("Mid").verdict, Verdict::PureNonAtomic);
        assert_eq!(by_name("Top").verdict, Verdict::ConditionalNonAtomic);
        assert_eq!(c.class_counts.total(), 3);
    }

    #[test]
    fn nonatomic_method_list_feeds_masking() {
        let c = classified();
        let names: Vec<String> = c
            .nonatomic_methods()
            .iter()
            .map(|m| c.methods[m.index()].name.clone())
            .collect();
        assert!(names.contains(&"Mid::step".to_owned()));
        assert!(names.contains(&"Top::go".to_owned()));
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn exception_free_annotation_reclassifies() {
        let p = layered();
        let result = Campaign::new(&p).run();
        // Assert Leaf::work never throws: every run that injected into it
        // is discounted; Mid::step's only source of non-atomicity vanishes.
        let leaf_work = result
            .registry
            .class_by_name("Leaf")
            .unwrap()
            .methods
            .iter()
            .find(|m| m.name == "work")
            .unwrap()
            .gid;
        let c = classify(&result, &MarkFilter::exception_free([leaf_work]));
        assert_eq!(
            c.method("Mid::step").unwrap().verdict,
            Some(Verdict::FailureAtomic)
        );
        assert_eq!(
            c.method("Top::go").unwrap().verdict,
            Some(Verdict::FailureAtomic)
        );
        assert_eq!(c.method_counts.pure_nonatomic, 0);
    }

    #[test]
    fn pct_is_well_defined() {
        let c = classified();
        let sum = c.method_counts.pct(Verdict::FailureAtomic)
            + c.method_counts.pct(Verdict::ConditionalNonAtomic)
            + c.method_counts.pct(Verdict::PureNonAtomic);
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(VerdictCounts::default().pct(Verdict::FailureAtomic), 0.0);
    }

    #[test]
    fn sample_diff_reported_for_nonatomic() {
        let c = classified();
        assert!(c.method("Mid::step").unwrap().sample_diff.is_some());
        assert!(c.method("Leaf::work").unwrap().sample_diff.is_none());
    }
}

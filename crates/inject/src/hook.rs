//! Listing 1 — the injection wrapper — as a [`CallHook`].

use crate::marks::Mark;
use crate::replay::Divergence;
use atomask_mor::{
    CallHook, CallSite, ExcId, Exception, HookGuard, MethodId, MethodResult, ObjId, TraceEvent, Vm,
};
use atomask_objgraph::{graph_fingerprint, FingerprintCache, Snapshot};
use std::collections::HashSet;

/// How the injection wrapper captures the pre-call state it compares
/// against when an exception propagates (Listing 1 line 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CaptureMode {
    /// Deep-copy the receiver's (and by-reference arguments') object
    /// graph before **every** wrapped call — the paper's literal
    /// `objgraph_before = deep_copy(this)`, `O(graph)` per call even
    /// though most calls complete normally and never compare.
    Eager,
    /// Open a heap write-journal layer before the call and reconstruct
    /// the before-graph from the undo log only when an exception actually
    /// unwinds through the wrapper — `O(writes)` bookkeeping per call,
    /// snapshots only on the propagation path (the paper's §6.2
    /// copy-on-write optimization applied to detection).
    #[default]
    Lazy,
}

/// Capture-cost counters of one injector run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Canonical-trace captures performed ([`Snapshot`] traversals).
    pub snapshots: u64,
    /// Total approximate bytes of those snapshots.
    pub capture_bytes: u64,
}

/// Phase of the fast-forward gate (sweep-throughput engine).
///
/// A sweep run targets exactly one `InjectionPoint`; every wrapped call
/// before the armed window only needs to *advance the counter*. The gate
/// makes that explicit:
///
/// * **Disarmed** — the global counter has not reached the window yet.
///   Each call advances the counter by its full per-method exception-type
///   count in one arithmetic step (no per-type iteration). Capture
///   behaviour is untouched: lazy capture still pushes its O(1) journal
///   watermark, because *enclosing* frames of the eventual injection need
///   their undo context when the exception unwinds through them.
/// * **Armed** — the counter's window for this call contains the target
///   point: the firing exception type is picked by offset arithmetic and
///   thrown, exactly where the per-type loop would have thrown it.
/// * **Fired** — the injection happened; subsequent calls (a program may
///   catch the injected exception and continue) advance the counter
///   arithmetically again, since the target can never match twice.
///
/// Every transition preserves the counter values, firing behaviour, trace
/// emission, capture stats, and marks of the always-armed per-type loop
/// bit for bit; `crates/inject/tests/fastforward_equivalence.rs` proves
/// it property-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Before the armed window (or no target point at all).
    Disarmed,
    /// Transiently inside the armed window of the current call.
    Armed,
    /// The target point fired earlier in this run.
    Fired,
}

/// Lazy capture guard: a zero-sized marker (boxing it does not allocate).
/// The before-state lives in the heap's undo log, not in the guard.
struct LazyGuard;

/// The per-run state of the exception injector program.
///
/// Reproduces Listing 1 of the paper:
///
/// * a global counter `Point`, incremented once per throwable exception
///   type at every wrapped call;
/// * a preset threshold `InjectionPoint`; when the counter reaches it the
///   wrapper throws the corresponding exception instead of calling the
///   method;
/// * a pre-call deep copy (here: canonical [`Snapshot`]) of the receiver's
///   object graph plus all by-reference arguments;
/// * on exception propagation, an after-copy, a comparison, and a
///   `mark(m, atomic|nonatomic, InjectionPoint)` record before rethrowing.
///
/// One hook instance corresponds to one run of the injector program; the
/// campaign creates a fresh hook (and VM) per injection point. The hook is
/// `Clone` so the campaign can salvage its state even if something still
/// shares the `Rc` after a run.
#[derive(Debug, Clone)]
pub struct InjectionHook {
    point: u64,
    injection_point: Option<u64>,
    observe: bool,
    capture: CaptureMode,
    stats: CaptureStats,
    injected: Option<(MethodId, ExcId)>,
    marks: Vec<Mark>,
    minimize: bool,
    divergence: Option<Divergence>,
    /// Whether the fast-forward gate may replace the per-type counting
    /// loop with arithmetic advances outside the armed window.
    fast_forward: bool,
    phase: Phase,
    /// Memoized per-object structural hashes for the fingerprint fast
    /// path, persisted across the wrappers of one propagation cascade
    /// (the heap does not mutate while an exception unwinds).
    fp_cache: FingerprintCache,
    /// The heap mutation epoch `fp_cache` was filled against; a moved
    /// epoch invalidates the whole cache.
    fp_epoch: Option<u64>,
}

impl InjectionHook {
    fn base(injection_point: Option<u64>, observe: bool) -> Self {
        InjectionHook {
            point: 0,
            injection_point,
            observe,
            capture: CaptureMode::Eager,
            stats: CaptureStats::default(),
            injected: None,
            marks: Vec::new(),
            minimize: false,
            divergence: None,
            fast_forward: true,
            phase: Phase::Disarmed,
            fp_cache: FingerprintCache::new(),
            fp_epoch: None,
        }
    }

    /// A counting-only hook: never injects, never snapshots. Used for the
    /// initial run that sizes the campaign (`InjectionPoint` sweeps
    /// `1..=points()`) and doubles as the *original program* run whose call
    /// statistics weight Figs. 2b/3b.
    pub fn counting() -> Self {
        Self::base(None, false)
    }

    /// A full injector-run hook that throws at the `injection_point`-th
    /// potential point (1-based) and performs atomicity checks with eager
    /// capture. Use [`InjectionHook::capture`] to switch capture modes.
    pub fn with_injection_point(injection_point: u64) -> Self {
        Self::base(Some(injection_point), true)
    }

    /// An observation-only hook: snapshots and marks, but never injects.
    /// Used when validating a corrected program against the exceptions the
    /// application itself throws.
    pub fn observing() -> Self {
        Self::base(None, true)
    }

    /// Selects how pre-call state is captured (builder style; default for
    /// the direct constructors is [`CaptureMode::Eager`], the paper's
    /// literal wrapper).
    pub fn capture(mut self, mode: CaptureMode) -> Self {
        self.capture = mode;
        self
    }

    /// Enables the divergence minimizer (builder style): when the first
    /// non-atomic mark is recorded under [`CaptureMode::Lazy`], the
    /// surviving write set is reduced to a 1-minimal explanation while the
    /// undo-log layer is still open. Replay turns this on; campaigns leave
    /// it off (the probes cost extra graph traversals per non-atomic
    /// point).
    pub fn minimize_divergence(mut self, on: bool) -> Self {
        self.minimize = on;
        self
    }

    /// Enables or disables the fast-forward gate (builder style; default
    /// **on** — the gate is observationally identical to the per-type
    /// loop). Replay and the divergence minimizer turn it off so the
    /// debugging path stays on the literal Listing 1 reference execution:
    /// a sweep/replay disagreement then directly indicts the gate.
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Pre-loads the injector state a checkpoint-resumed run starts from
    /// (builder style): the point counter, the marks the prefix recorded
    /// (application-thrown exceptions can mark before the target point),
    /// and the prefix's capture counters. The phase stays `Disarmed` —
    /// resume plans only select checkpoints strictly *before* the target
    /// point, so the injection is always still ahead of the restored
    /// counter and the arming window fires exactly as it would have in a
    /// from-scratch run.
    pub fn resume_prefix(mut self, point: u64, marks: Vec<Mark>, stats: CaptureStats) -> Self {
        debug_assert!(
            self.injection_point.is_none_or(|ip| point < ip),
            "resume checkpoints must precede the injection point"
        );
        self.point = point;
        self.marks = marks;
        self.stats = stats;
        self
    }

    /// Takes the minimized divergence out of the hook, if one was
    /// recorded.
    pub fn take_divergence(&mut self) -> Option<Divergence> {
        self.divergence.take()
    }

    /// Capture-cost counters accumulated so far this run.
    pub fn capture_stats(&self) -> CaptureStats {
        self.stats
    }

    /// Total potential injection points seen so far (the final value after
    /// a counting run is the campaign size `N`).
    pub fn points(&self) -> u64 {
        self.point
    }

    /// What was injected in this run, if the threshold was reached.
    pub fn injected(&self) -> Option<(MethodId, ExcId)> {
        self.injected
    }

    /// The marks recorded this run, in wrapper-execution order
    /// (callee→caller along the propagation path).
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// Consumes the hook, returning its marks.
    pub fn into_marks(self) -> Vec<Mark> {
        self.marks
    }

    /// Listing 1's `mark(m, atomic|nonatomic, InjectionPoint)`.
    fn push_mark(&mut self, site: &CallSite, exc: &Exception, before: &Snapshot, after: &Snapshot) {
        self.marks.push(match before.first_difference(after) {
            None => Mark::atomic(site.method, exc.chain),
            Some(diff) => Mark::nonatomic(site.method, exc.chain, diff),
        });
    }

    /// Listing 1 lines 10-14 under lazy capture: compare the layer-open
    /// state against the live heap, mark, and fold the layer.
    ///
    /// The comparison is staged from cheapest to most detailed; each stage
    /// only runs when the previous one could not already decide:
    ///
    /// 1. **Revert check, O(dirty)** — if every journaled cell reads its
    ///    layer-open value bit-for-bit, the graphs are provably equal:
    ///    mark atomic without touching the graph at all.
    /// 2. **Fingerprint compare** — 64-bit structural hashes of both
    ///    views, memoized per object through [`FingerprintCache`] and
    ///    invalidated via the heap's mutation epoch plus the layer's
    ///    dirty set. Equal hashes mark atomic; since the fingerprint is a
    ///    pure function of the canonical trace, *unequal* hashes prove
    ///    the traces differ.
    /// 3. **Full structural diff** — only on fingerprint mismatch, to
    ///    produce the `first_difference` detail for the non-atomic mark
    ///    (and the snapshot the minimizer probes against).
    ///
    /// When the divergence minimizer is enabled (replay), stages 1-2 are
    /// skipped: the minimizer needs the full before-snapshot and probes
    /// the heap (which would thrash the cache), and replay deliberately
    /// stays on the reference path.
    fn lazy_compare(&mut self, vm: &mut Vm, site: &CallSite, exc: &Exception) {
        if !self.minimize {
            // Stage 1: exact O(dirty) revert check.
            if vm.heap().journal_innermost_reverted() {
                self.marks.push(Mark::atomic(site.method, exc.chain));
                vm.heap_mut().commit_journal();
                return;
            }
            // Stage 2: fingerprint compare. The cache survives across the
            // wrappers of one propagation cascade — the heap cannot
            // mutate while the exception unwinds — and is dropped
            // wholesale when the mutation epoch moves.
            let epoch = vm.heap().mutation_epoch();
            if self.fp_epoch != Some(epoch) {
                self.fp_cache.clear();
                self.fp_epoch = Some(epoch);
            }
            let roots = snapshot_roots(site);
            let heap = vm.heap();
            let dirty = heap.journal_innermost_touched();
            // After-walk first: it fills the cache against the live heap,
            // which the before-walk then reuses for every clean object.
            let after_fp = graph_fingerprint(heap, &roots, &mut self.fp_cache, &HashSet::new());
            let asof = heap
                .asof_innermost()
                .expect("lazy capture layer is open in after()");
            let before_fp = graph_fingerprint(&asof, &roots, &mut self.fp_cache, &dirty);
            if before_fp == after_fp {
                self.marks.push(Mark::atomic(site.method, exc.chain));
                vm.heap_mut().commit_journal();
                return;
            }
        }
        // Stage 3: reconstruct the before-graph from the undo log, trace
        // the live heap for the after-graph, compare, mark, fold.
        let roots = snapshot_roots(site);
        let (before, after) = {
            let heap = vm.heap();
            let asof = heap
                .asof_innermost()
                .expect("lazy capture layer is open in after()");
            (
                Snapshot::of_source(&asof, &roots),
                Snapshot::of_roots(heap, &roots),
            )
        };
        self.stats.snapshots += 2;
        self.stats.capture_bytes += before.approx_bytes() + after.approx_bytes();
        self.push_mark(site, exc, &before, &after);
        // The undo log is still open here — the only moment the
        // surviving write set is cheaply enumerable — so the minimizer
        // (replay only) runs on the *first* non-atomic mark, the
        // innermost wrapper on the propagation path.
        if self.minimize && self.divergence.is_none() {
            if let Some(mark) = self.marks.last() {
                if !mark.atomic {
                    let diff = mark.diff.clone().unwrap_or_default();
                    self.divergence = Some(crate::replay::minimize_divergence(
                        vm, site, exc.chain, diff, &before, &roots,
                    ));
                }
            }
        }
        vm.heap_mut().commit_journal();
    }
}

fn snapshot_roots(site: &CallSite) -> Vec<ObjId> {
    let mut roots = Vec::with_capacity(1 + site.ref_args.len());
    roots.push(site.recv);
    roots.extend_from_slice(&site.ref_args);
    roots
}

impl CallHook for InjectionHook {
    fn before(&mut self, vm: &mut Vm, site: &CallSite) -> Result<HookGuard, Exception> {
        let registry = vm.registry().clone();
        if !registry.instrumentable(site.method) {
            // No wrapper woven (Java core class): invisible to detection.
            return Ok(None);
        }
        // Listing 1 lines 2-5: one potential injection point per exception
        // type of the wrapped method.
        let excs = registry.injectable_exceptions(site.method);
        let n = excs.len() as u64;
        if self.fast_forward {
            // Phase-gated counting: outside the armed window the counter
            // advances by the whole per-method type count in one step —
            // identical final value, no iteration.
            match self.injection_point {
                Some(ip)
                    if self.phase != Phase::Fired && self.point < ip && self.point + n >= ip =>
                {
                    // Armed: the target lands inside this call's window.
                    // The (ip − point)-th type of this method is exactly
                    // the one the per-type loop would have selected.
                    self.phase = Phase::Armed;
                    let exc = excs[(ip - self.point - 1) as usize];
                    self.point = ip;
                    self.phase = Phase::Fired;
                    self.injected = Some((site.method, exc));
                    vm.trace(TraceEvent::InjectionFire {
                        method: site.method,
                        exc,
                        point: self.point,
                    });
                    return Err(Exception::injected(exc, site.method));
                }
                _ => self.point += n,
            }
        } else {
            for &exc in excs {
                self.point += 1;
                if Some(self.point) == self.injection_point {
                    self.phase = Phase::Fired;
                    self.injected = Some((site.method, exc));
                    vm.trace(TraceEvent::InjectionFire {
                        method: site.method,
                        exc,
                        point: self.point,
                    });
                    return Err(Exception::injected(exc, site.method));
                }
            }
        }
        if !self.observe {
            return Ok(None);
        }
        match self.capture {
            CaptureMode::Eager => {
                // Listing 1 line 6: objgraph_before = deep_copy(this) —
                // including by-reference arguments.
                let before = Snapshot::of_roots(vm.heap(), &snapshot_roots(site));
                self.stats.snapshots += 1;
                self.stats.capture_bytes += before.approx_bytes();
                Ok(Some(Box::new(before)))
            }
            CaptureMode::Lazy => {
                // Defer the copy: record writes instead. The layer is
                // closed (committed) in `after` on both outcomes, so the
                // heap's net state is untouched either way. This O(1)
                // watermark is kept even while disarmed: if the eventual
                // injection (or an application exception) unwinds through
                // this frame, its wrapper needs the undo context.
                vm.heap_mut().push_journal();
                Ok(Some(Box::new(LazyGuard)))
            }
        }
    }

    fn after(
        &mut self,
        vm: &mut Vm,
        site: &CallSite,
        guard: HookGuard,
        outcome: MethodResult,
    ) -> MethodResult {
        let Some(guard) = guard else {
            return outcome;
        };
        // The guard is either the eager before-snapshot or the zero-sized
        // lazy marker.
        match guard.downcast::<Snapshot>() {
            Ok(before) => match &outcome {
                Ok(_) => {}
                Err(exc) => {
                    let after = Snapshot::of_roots(vm.heap(), &snapshot_roots(site));
                    self.stats.snapshots += 1;
                    self.stats.capture_bytes += after.approx_bytes();
                    self.push_mark(site, exc, &before, &after);
                }
            },
            Err(guard) => {
                let _lazy = guard
                    .downcast::<LazyGuard>()
                    .expect("injection guard is a snapshot or a lazy marker");
                match &outcome {
                    Ok(_) => {
                        // The call completed: nobody will ever compare
                        // against its before-state. Fold the layer into
                        // the enclosing one (O(1) watermark pop) — no
                        // snapshot was ever taken.
                        vm.heap_mut().commit_journal();
                    }
                    Err(exc) => self.lazy_compare(vm, site, exc),
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{Profile, Registry, RegistryBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// `outer` increments `a`, calls `inner`, then increments `b`.
    /// `inner` is a no-op. Injecting into `inner` makes `outer` non-atomic.
    fn registry() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("T", |c| {
            c.field("a", Value::Int(0));
            c.field("b", Value::Int(0));
            c.method("outer", |ctx, this, _| {
                let a = ctx.get_int(this, "a");
                ctx.set(this, "a", Value::Int(a + 1));
                ctx.call(this, "inner", &[])?;
                let b = ctx.get_int(this, "b");
                ctx.set(this, "b", Value::Int(b + 1));
                Ok(Value::Null)
            });
            c.method("inner", |_, _, _| Ok(Value::Null));
        });
        rb.build()
    }

    fn run_with_point(ip: u64) -> (Vm, Rc<RefCell<InjectionHook>>, MethodResult) {
        let mut vm = Vm::new(registry());
        let hook = Rc::new(RefCell::new(InjectionHook::with_injection_point(ip)));
        vm.set_hook(Some(hook.clone()));
        let t = vm.construct("T", &[]).unwrap();
        vm.root(t);
        let r = vm.call(t, "outer", &[]);
        (vm, hook, r)
    }

    #[test]
    fn counting_run_counts_points() {
        let mut vm = Vm::new(registry());
        let hook = Rc::new(RefCell::new(InjectionHook::counting()));
        vm.set_hook(Some(hook.clone()));
        let t = vm.construct("T", &[]).unwrap();
        vm.root(t);
        vm.call(t, "outer", &[]).unwrap();
        // outer (2 runtime exceptions) + inner (2): 4 potential points.
        assert_eq!(hook.borrow().points(), 4);
        assert!(hook.borrow().injected().is_none());
        assert!(hook.borrow().marks().is_empty());
    }

    #[test]
    fn injection_into_outer_aborts_before_any_mutation() {
        // Points 1-2 belong to outer's own wrapper: thrown before the body
        // runs, so nothing is marked (the driver catches at top level).
        let (vm, hook, r) = run_with_point(1);
        let err = r.unwrap_err();
        assert!(err.injected);
        assert!(hook.borrow().marks().is_empty());
        let t = vm.heap().iter().next().unwrap().0;
        assert_eq!(vm.heap().field(t, "a"), Some(Value::Int(0)));
    }

    #[test]
    fn injection_into_inner_marks_outer_nonatomic() {
        // Points 3-4 are inner's: outer already incremented `a`, so the
        // exception propagating through outer's wrapper finds the graph
        // changed.
        let (_, hook, r) = run_with_point(3);
        assert!(r.unwrap_err().injected);
        let hook = hook.borrow();
        assert_eq!(hook.marks().len(), 1);
        let mark = &hook.marks()[0];
        assert!(!mark.atomic);
        assert!(mark.diff.is_some());
    }

    #[test]
    fn injected_record_names_target_and_exception() {
        let (vm, hook, _) = run_with_point(4);
        let (target, exc) = hook.borrow().injected().unwrap();
        assert_eq!(vm.registry().method_display(target), "T::inner");
        assert_eq!(
            vm.registry().exceptions().name(exc),
            "OutOfMemoryError",
            "second runtime exception of inner"
        );
    }

    #[test]
    fn threshold_beyond_points_injects_nothing() {
        let (_, hook, r) = run_with_point(99);
        assert!(r.is_ok());
        assert!(hook.borrow().injected().is_none());
    }

    #[test]
    fn lazy_capture_matches_eager_marks_with_fewer_snapshots() {
        let run = |ip: u64, mode: CaptureMode| {
            let mut vm = Vm::new(registry());
            let hook = Rc::new(RefCell::new(
                InjectionHook::with_injection_point(ip).capture(mode),
            ));
            vm.set_hook(Some(hook.clone()));
            let t = vm.construct("T", &[]).unwrap();
            vm.root(t);
            let _ = vm.call(t, "outer", &[]);
            vm.set_hook(None);
            assert_eq!(
                vm.heap().journal_depth(),
                0,
                "every capture layer was closed"
            );
            let hook = Rc::try_unwrap(hook).unwrap().into_inner();
            (hook.capture_stats(), hook.into_marks())
        };
        // Point 3 injects into inner: the exception unwinds through
        // outer's wrapper, so both modes compare — and must agree.
        let (eager_stats, eager_marks) = run(3, CaptureMode::Eager);
        let (lazy_stats, lazy_marks) = run(3, CaptureMode::Lazy);
        assert_eq!(
            lazy_marks, eager_marks,
            "identical marks, chain ids included"
        );
        assert!(
            lazy_stats.snapshots <= eager_stats.snapshots,
            "lazy {lazy_stats:?} vs eager {eager_stats:?}"
        );
        // Point 99 never fires: the run completes and nothing unwinds.
        // Eager still paid one before-copy per observed call; lazy paid
        // for no snapshots at all.
        let (eager_ok, _) = run(99, CaptureMode::Eager);
        let (lazy_ok, _) = run(99, CaptureMode::Lazy);
        assert_eq!(eager_ok.snapshots, 2, "one before-copy per observed call");
        assert_eq!(lazy_ok.snapshots, 0, "no exception, no capture at all");
    }

    #[test]
    fn lazy_capture_closes_its_layer_on_success_too() {
        let mut vm = Vm::new(registry());
        let hook = Rc::new(RefCell::new(
            InjectionHook::observing().capture(CaptureMode::Lazy),
        ));
        vm.set_hook(Some(hook.clone()));
        let t = vm.construct("T", &[]).unwrap();
        vm.root(t);
        vm.call(t, "outer", &[]).unwrap();
        assert_eq!(vm.heap().journal_depth(), 0);
        assert_eq!(
            hook.borrow().capture_stats().snapshots,
            0,
            "no exception propagated, so nothing was ever traced"
        );
    }

    #[test]
    fn application_thrown_exceptions_are_also_checked() {
        // A method that throws on its own (no injection) still gets
        // atomicity-checked by every wrapper the exception propagates
        // through.
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.exception("AppError");
        rb.class("T", |c| {
            c.field("a", Value::Int(0));
            c.method("outer", |ctx, this, _| {
                let a = ctx.get_int(this, "a");
                ctx.set(this, "a", Value::Int(a + 1));
                ctx.call(this, "thrower", &[])
            });
            c.method("thrower", |ctx, _, _| {
                Err(ctx.exception("AppError", "app-level"))
            });
        });
        let mut vm = Vm::new(rb.build());
        let hook = Rc::new(RefCell::new(InjectionHook::observing()));
        vm.set_hook(Some(hook.clone()));
        let t = vm.construct("T", &[]).unwrap();
        vm.root(t);
        let err = vm.call(t, "outer", &[]).unwrap_err();
        assert!(!err.injected);
        let hook = hook.borrow();
        // thrower marked atomic (it changed nothing), outer non-atomic.
        assert_eq!(hook.marks().len(), 2);
        assert!(hook.marks()[0].atomic);
        assert!(!hook.marks()[1].atomic);
    }
}

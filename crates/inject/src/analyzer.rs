//! The Analyzer (step 1 of Fig. 1): per-method injection plans.
//!
//! For every method the Analyzer determines the list of exception types its
//! injection wrapper must be able to throw: the declared exceptions
//! `E_1 .. E_k` followed by the profile's generic runtime exceptions
//! `E_{k+1} .. E_n` (Listing 1). Methods annotated as never-throwing and
//! methods of non-instrumentable core classes get empty plans.

use atomask_mor::{ExcId, MethodId, Registry};

/// The injection plan of one method: which exceptions its wrapper throws,
/// in Listing 1 order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionPlan {
    /// The planned method.
    pub method: MethodId,
    /// Exception types, declared first, then generic runtime exceptions.
    pub exceptions: Vec<ExcId>,
    /// Whether a wrapper is woven at all (core classes under the Java
    /// profile get none, so they are neither injected into nor observed).
    pub instrumented: bool,
}

impl InjectionPlan {
    /// Number of potential injection points contributed per dynamic call.
    pub fn points_per_call(&self) -> u64 {
        self.exceptions.len() as u64
    }
}

/// Computes the injection plan for one method.
pub fn method_injection_plan(registry: &Registry, method: MethodId) -> InjectionPlan {
    InjectionPlan {
        method,
        exceptions: registry.injectable_exceptions(method).to_vec(),
        instrumented: registry.instrumentable(method),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{Profile, RegistryBuilder, Value};

    #[test]
    fn declared_exceptions_come_first() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("A", |c| {
            c.method("m", |_, _, _| Ok(Value::Null))
                .throws("IOError")
                .throws("ParseError");
        });
        let reg = rb.build();
        let m = reg.class_by_name("A").unwrap().methods[0].gid;
        let plan = method_injection_plan(&reg, m);
        let names: Vec<&str> = plan
            .exceptions
            .iter()
            .map(|e| reg.exceptions().name(*e))
            .collect();
        assert_eq!(
            names,
            vec![
                "IOError",
                "ParseError",
                "RuntimeException",
                "OutOfMemoryError"
            ]
        );
        assert_eq!(plan.points_per_call(), 4);
        assert!(plan.instrumented);
    }

    #[test]
    fn core_class_plan_is_empty_under_java() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Str", |c| {
            c.core();
            c.method("len", |_, _, _| Ok(Value::Int(0)));
        });
        let reg = rb.build();
        let m = reg.class_by_name("Str").unwrap().methods[0].gid;
        let plan = method_injection_plan(&reg, m);
        assert!(plan.exceptions.is_empty());
        assert!(!plan.instrumented);
    }

    #[test]
    fn never_throws_plan_is_empty_but_instrumented() {
        let mut rb = RegistryBuilder::new(Profile::cpp());
        rb.class("A", |c| {
            c.method("quiet", |_, _, _| Ok(Value::Null)).never_throws();
        });
        let reg = rb.build();
        let m = reg.class_by_name("A").unwrap().methods[0].gid;
        let plan = method_injection_plan(&reg, m);
        assert!(plan.exceptions.is_empty());
        assert!(
            plan.instrumented,
            "never-throws methods still get atomicity-observing wrappers"
        );
    }
}

//! Campaign journaling: the append-only record that makes detection
//! campaigns resumable.
//!
//! A [`CampaignJournal`] holds the baseline of a campaign (total potential
//! injection points plus baseline call counts) and every finished
//! [`RunResult`]. [`crate::Campaign::resume`] replays journaled runs
//! verbatim and executes only the points the journal is missing, so an
//! interrupted sweep completes to the same [`crate::CampaignResult`] the
//! uninterrupted sweep would have produced.
//!
//! The journal also has a line-oriented text form ([`CampaignJournal::
//! serialize`] / [`CampaignJournal::parse`]) so a harness can persist it
//! between processes without any external serialization dependency.

use crate::campaign::{RunOutcome, RunResult};
use crate::marks::Mark;
use atomask_mor::{ExcId, MethodId};
use std::fmt;

/// Magic first line of the text form; bump the version on format changes.
/// v2 added the per-run capture stats (`snapshots`, `capture_bytes`) to
/// the `run` line; v3 added the per-run `trace_events` count.
const HEADER: &str = "atomask-campaign-journal v3";
/// Previous format versions, still parseable (missing stats read as 0).
const HEADER_V2: &str = "atomask-campaign-journal v2";
const HEADER_V1: &str = "atomask-campaign-journal v1";

/// Append-only record of a (possibly partial) detection campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignJournal {
    program: Option<String>,
    baseline: Option<(u64, Vec<u64>)>,
    runs: Vec<RunResult>,
}

impl CampaignJournal {
    /// An empty journal (no program bound, no baseline, no runs).
    pub fn new() -> Self {
        CampaignJournal::default()
    }

    /// The program this journal belongs to, once bound.
    pub fn program(&self) -> Option<&str> {
        self.program.as_deref()
    }

    /// Binds the journal to `program`, or asserts it is already bound to
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if the journal was recorded by a different program — mixing
    /// journals across programs would silently corrupt a campaign (host
    /// error).
    pub fn bind(&mut self, program: &str) {
        match &self.program {
            None => self.program = Some(program.to_owned()),
            Some(bound) => assert_eq!(
                bound, program,
                "campaign journal belongs to program `{bound}`, not `{program}`"
            ),
        }
    }

    /// The journaled baseline, if the counting run finished: total
    /// potential injection points and per-method baseline call counts.
    pub fn baseline(&self) -> Option<(u64, &[u64])> {
        self.baseline
            .as_ref()
            .map(|(points, calls)| (*points, calls.as_slice()))
    }

    /// Records the counting run's result.
    pub fn record_baseline(&mut self, total_points: u64, baseline_calls: &[u64]) {
        self.baseline = Some((total_points, baseline_calls.to_vec()));
    }

    /// Appends one finished run (cloned into the journal, so callers keep
    /// ownership of theirs).
    pub fn record_run(&mut self, run: &RunResult) {
        self.runs.push(run.clone());
    }

    /// The journaled result for `injection_point`, if that run finished.
    pub fn run_for(&self, injection_point: u64) -> Option<&RunResult> {
        self.runs
            .iter()
            .find(|r| r.injection_point == injection_point)
    }

    /// All journaled runs, in append order.
    pub fn runs(&self) -> &[RunResult] {
        &self.runs
    }

    /// Number of journaled runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` iff no runs are journaled.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Keeps only the first `keep` runs — simulates (or tidies up after)
    /// an interruption.
    pub fn truncate_runs(&mut self, keep: usize) {
        self.runs.truncate(keep);
    }

    /// Renders the journal in its line-oriented text form.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        if let Some(program) = &self.program {
            out.push_str("program\t");
            out.push_str(&escape(program));
            out.push('\n');
        }
        if let Some((points, calls)) = &self.baseline {
            let rendered: Vec<String> = calls.iter().map(u64::to_string).collect();
            out.push_str(&format!("baseline\t{points}\t{}\n", rendered.join(",")));
        }
        for run in &self.runs {
            let injected = match run.injected {
                None => "-".to_owned(),
                Some((m, e)) => format!("{},{}", m.into_raw(), e.into_raw()),
            };
            out.push_str(&format!(
                "run\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                run.injection_point,
                run.outcome.as_str(),
                run.retries,
                run.fuel_spent,
                run.snapshots,
                run.capture_bytes,
                run.trace_events,
                injected,
                opt_str(&run.top_error),
            ));
            for mark in &run.marks {
                out.push_str(&format!(
                    "mark\t{}\t{}\t{}\t{}\n",
                    mark.method.into_raw(),
                    mark.chain,
                    if mark.atomic { "a" } else { "n" },
                    opt_str(&mark.diff),
                ));
            }
        }
        out
    }

    /// Parses the text form produced by [`CampaignJournal::serialize`].
    /// Legacy v1 and v2 journals still parse; fields their format lacked
    /// (capture stats, trace counts) read as 0. Serialization always
    /// writes the current version.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalParseError`] naming the offending line when the
    /// input is not a valid journal of any known version. A parse failure
    /// is a hard error — [`crate::Campaign::resume`] never silently skips
    /// a malformed prefix.
    pub fn parse(text: &str) -> Result<Self, JournalParseError> {
        let fail = |line: usize, msg: &str| JournalParseError {
            line,
            msg: msg.to_owned(),
        };
        let mut lines = text.lines().enumerate();
        let version = match lines.next() {
            Some((_, first)) if first == HEADER => 3,
            Some((_, first)) if first == HEADER_V2 => 2,
            Some((_, first)) if first == HEADER_V1 => 1,
            _ => return Err(fail(1, "missing journal header")),
        };
        // Per-version `run` line shape: total field count and the index of
        // the `injected` field (the optional `top_error` always follows).
        let (run_fields, injected_at) = match version {
            1 => (7, 5),
            2 => (9, 7),
            _ => (10, 8),
        };
        let mut journal = CampaignJournal::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[0] {
                "program" if fields.len() == 2 => {
                    journal.program = Some(unescape(fields[1]));
                }
                "baseline" if fields.len() == 3 => {
                    let points = parse_u64(fields[1], lineno, "total points")?;
                    let calls = if fields[2].is_empty() {
                        Vec::new()
                    } else {
                        fields[2]
                            .split(',')
                            .map(|c| parse_u64(c, lineno, "baseline call count"))
                            .collect::<Result<_, _>>()?
                    };
                    journal.baseline = Some((points, calls));
                }
                "run" if fields.len() == run_fields => {
                    let outcome = RunOutcome::parse(fields[2])
                        .ok_or_else(|| fail(lineno, "unknown run outcome"))?;
                    let injected = match fields[injected_at] {
                        "-" => None,
                        pair => {
                            let (m, e) = pair
                                .split_once(',')
                                .ok_or_else(|| fail(lineno, "malformed injected pair"))?;
                            Some((
                                MethodId::from_raw(parse_u32(m, lineno, "method id")?),
                                ExcId::from_raw(parse_u32(e, lineno, "exception id")?),
                            ))
                        }
                    };
                    let (snapshots, capture_bytes) = if version >= 2 {
                        (
                            parse_u64(fields[5], lineno, "snapshots")?,
                            parse_u64(fields[6], lineno, "capture bytes")?,
                        )
                    } else {
                        (0, 0)
                    };
                    let trace_events = if version >= 3 {
                        parse_u64(fields[7], lineno, "trace events")?
                    } else {
                        0
                    };
                    journal.runs.push(RunResult {
                        injection_point: parse_u64(fields[1], lineno, "injection point")?,
                        injected,
                        marks: Vec::new(),
                        top_error: parse_opt_str(fields[injected_at + 1], lineno)?,
                        outcome,
                        retries: parse_u32(fields[3], lineno, "retries")?,
                        fuel_spent: parse_u64(fields[4], lineno, "fuel")?,
                        snapshots,
                        capture_bytes,
                        trace_events,
                    });
                }
                "mark" if fields.len() == 5 => {
                    let run = journal
                        .runs
                        .last_mut()
                        .ok_or_else(|| fail(lineno, "mark before any run"))?;
                    let atomic = match fields[3] {
                        "a" => true,
                        "n" => false,
                        _ => return Err(fail(lineno, "mark flag must be `a` or `n`")),
                    };
                    run.marks.push(Mark {
                        method: MethodId::from_raw(parse_u32(fields[1], lineno, "method id")?),
                        chain: parse_u64(fields[2], lineno, "chain id")?,
                        atomic,
                        diff: parse_opt_str(fields[4], lineno)?,
                    });
                }
                _ => return Err(fail(lineno, "unrecognized journal line")),
            }
        }
        Ok(journal)
    }
}

/// Error from [`CampaignJournal::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl fmt::Display for JournalParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for JournalParseError {}

/// Optional strings render as `-` (absent) or `=<escaped>` (present); the
/// `=` sigil keeps a literal `-` value unambiguous.
fn opt_str(value: &Option<String>) -> String {
    match value {
        None => "-".to_owned(),
        Some(s) => format!("={}", escape(s)),
    }
}

fn parse_opt_str(field: &str, line: usize) -> Result<Option<String>, JournalParseError> {
    match field {
        "-" => Ok(None),
        s if s.starts_with('=') => Ok(Some(unescape(&s[1..]))),
        _ => Err(JournalParseError {
            line,
            msg: "optional string must start with `-` or `=`".to_owned(),
        }),
    }
}

fn parse_u64(s: &str, line: usize, what: &str) -> Result<u64, JournalParseError> {
    s.parse().map_err(|_| JournalParseError {
        line,
        msg: format!("invalid {what}: `{s}`"),
    })
}

fn parse_u32(s: &str, line: usize, what: &str) -> Result<u32, JournalParseError> {
    s.parse().map_err(|_| JournalParseError {
        line,
        msg: format!("invalid {what}: `{s}`"),
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run(point: u64) -> RunResult {
        RunResult {
            injection_point: point,
            injected: Some((MethodId::from_raw(3), ExcId::from_raw(1))),
            marks: vec![
                Mark::atomic(MethodId::from_raw(3), 9),
                Mark::nonatomic(MethodId::from_raw(2), 9, "field\ta:\n1 vs 2".to_owned()),
            ],
            top_error: Some("[injected exc:1] injected".to_owned()),
            outcome: RunOutcome::Completed,
            retries: 1,
            fuel_spent: 123,
            snapshots: 5,
            capture_bytes: 640,
            trace_events: 42,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mut j = CampaignJournal::new();
        j.bind("demo");
        j.record_baseline(7, &[0, 2, 5]);
        j.record_run(&sample_run(1));
        j.record_run(&RunResult::skipped(2));
        let parsed = CampaignJournal::parse(&j.serialize()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn escaping_survives_tabs_newlines_and_dashes() {
        let mut run = sample_run(1);
        run.top_error = Some("-".to_owned());
        let mut j = CampaignJournal::new();
        j.record_run(&run);
        let parsed = CampaignJournal::parse(&j.serialize()).unwrap();
        assert_eq!(parsed.runs()[0], run);
    }

    #[test]
    fn run_for_finds_journaled_points() {
        let mut j = CampaignJournal::new();
        j.record_run(&sample_run(4));
        assert!(j.run_for(4).is_some());
        assert!(j.run_for(1).is_none());
        assert_eq!(j.len(), 1);
        assert!(!j.is_empty());
    }

    #[test]
    fn truncation_simulates_interruption() {
        let mut j = CampaignJournal::new();
        j.record_run(&sample_run(1));
        j.record_run(&sample_run(2));
        j.truncate_runs(1);
        assert_eq!(j.len(), 1);
        assert!(j.run_for(2).is_none());
    }

    #[test]
    #[should_panic(expected = "belongs to program")]
    fn bind_rejects_a_different_program() {
        let mut j = CampaignJournal::new();
        j.bind("alpha");
        j.bind("beta");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CampaignJournal::parse("not a journal").is_err());
        let bad_line = format!("{HEADER}\nwat\t1\n");
        let err = CampaignJournal::parse(&bad_line).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        let bad_mark = format!("{HEADER}\nmark\t1\t2\ta\t-\n");
        assert!(CampaignJournal::parse(&bad_mark).is_err());
    }
}

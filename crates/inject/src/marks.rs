//! Atomicity marks recorded by injection wrappers.

use atomask_mor::MethodId;

/// One `mark(m, atomic|nonatomic, InjectionPoint)` record from Listing 1:
/// an exception propagated through the wrapper of `method`, and the
/// before/after object graphs were (or were not) identical.
///
/// Marks are stored in wrapper-execution order within a run; because
/// exceptions propagate callee→caller, the *first* non-atomic mark of a run
/// identifies a pure failure non-atomic method (Def. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mark {
    /// The wrapped method the exception propagated through.
    pub method: MethodId,
    /// Propagation chain the triggering exception belongs to (see
    /// [`atomask_mor::Exception::chain`]).
    pub chain: u64,
    /// `true` iff the object graph was unchanged (atomic for this
    /// injection).
    pub atomic: bool,
    /// First graph difference, for the programmer's report (non-atomic
    /// marks only).
    pub diff: Option<String>,
}

impl Mark {
    /// Creates an atomic mark.
    pub fn atomic(method: MethodId, chain: u64) -> Self {
        Mark {
            method,
            chain,
            atomic: true,
            diff: None,
        }
    }

    /// Creates a non-atomic mark with a difference description.
    pub fn nonatomic(method: MethodId, chain: u64, diff: String) -> Self {
        Mark {
            method,
            chain,
            atomic: false,
            diff: Some(diff),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let m = MethodId::from_raw(4);
        assert!(Mark::atomic(m, 1).atomic);
        let n = Mark::nonatomic(m, 1, "field x changed".into());
        assert!(!n.atomic);
        assert_eq!(n.diff.as_deref(), Some("field x changed"));
    }
}

//! # atomask-inject — the detection phase
//!
//! Implements steps 1–3 of the paper's Fig. 1: transform the program into
//! an *exception injector program*, run it once per potential injection
//! point, and classify every method as **failure atomic**, **conditional
//! failure non-atomic** or **pure failure non-atomic**.
//!
//! * [`InjectionHook`] is Listing 1 as a [`atomask_mor::CallHook`]: one
//!   potential injection point per throwable exception type of the called
//!   method, driven by the global `Point` counter against the preset
//!   `InjectionPoint` threshold; a pre-call object-graph snapshot of the
//!   receiver and by-reference arguments; and an atomicity check plus mark
//!   whenever an exception propagates through the wrapper.
//! * [`Campaign`] runs a [`atomask_mor::Program`] once without injection
//!   (counting potential points and recording baseline call statistics),
//!   then once per injection point on a fresh VM.
//! * [`classify`] implements the paper's classification rules, including
//!   the §4.3 *pure vs. conditional* distinction (a method is pure iff in
//!   some run it is the **first** method marked non-atomic) and the
//!   exception-free discounting used by the policy layer.
//!
//! ```
//! use atomask_mor::{FnProgram, Profile, RegistryBuilder, Value};
//! use atomask_inject::{classify, Campaign, MarkFilter, Verdict};
//!
//! let program = FnProgram::new(
//!     "demo",
//!     || {
//!         let mut rb = RegistryBuilder::new(Profile::java());
//!         rb.class("Acc", |c| {
//!             c.field("sum", Value::Int(0));
//!             c.field("count", Value::Int(0));
//!             c.method("add", |ctx, this, args| {
//!                 let v = args[0].as_int().unwrap_or(0);
//!                 let sum = ctx.get_int(this, "sum");
//!                 ctx.set(this, "sum", Value::Int(sum + v));
//!                 // An exception injected into `touch` below leaves `sum`
//!                 // updated but `count` not: add is failure non-atomic.
//!                 ctx.call(this, "touch", &[])?;
//!                 let n = ctx.get_int(this, "count");
//!                 ctx.set(this, "count", Value::Int(n + 1));
//!                 Ok(Value::Null)
//!             });
//!             c.method("touch", |_ctx, _this, _args| Ok(Value::Null));
//!         });
//!         rb.build()
//!     },
//!     |vm| {
//!         let a = vm.construct("Acc", &[])?;
//!         vm.root(a);
//!         vm.call(a, "add", &[Value::Int(5)])
//!     },
//! );
//!
//! let result = Campaign::new(&program).run();
//! let classification = classify(&result, &MarkFilter::default());
//! let add = classification
//!     .methods
//!     .iter()
//!     .find(|m| m.name == "Acc::add")
//!     .unwrap();
//! assert_eq!(add.verdict, Some(Verdict::PureNonAtomic));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod campaign;
mod classify;
mod hook;
mod journal;
mod marks;
mod replay;
mod suggest;

pub use analyzer::{method_injection_plan, InjectionPlan};
pub use campaign::{
    silent_diagnostics, stderr_diagnostics, Campaign, CampaignConfig, CampaignResult,
    CheckpointStride, DiagnosticsFn, RetryPolicy, RunHealth, RunOutcome, RunResult, TraceMode,
    DEFAULT_RING_CAPACITY,
};
pub use classify::{
    classify, ClassRollup, ClassVerdictCounts, Classification, MarkFilter, MethodClassification,
    Verdict, VerdictCounts,
};
pub use hook::{CaptureMode, CaptureStats, InjectionHook};
pub use journal::{CampaignJournal, JournalParseError};
pub use marks::Mark;
pub use replay::{Divergence, ReplayReport, SurvivingWrite};
pub use suggest::suggest_exception_free;

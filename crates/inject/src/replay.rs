//! Deterministic single-point replay and the divergence minimizer.
//!
//! A campaign journal records *that* injection point `n` left the graph
//! changed; this module answers *why*. [`crate::Campaign::replay`] re-runs
//! exactly one injection point on a fresh VM with the flight recorder
//! installed and returns a [`ReplayReport`]: the full event trace, the run
//! record, and — for non-atomic points — a [`Divergence`] naming the
//! minimal set of surviving heap writes that explains the before/after
//! graph difference.
//!
//! The minimizer is a delta-debugging-style reduction over the write set
//! the injection wrapper's undo log recorded: starting from every cell
//! whose value still differs from its layer-open value, it bisects while a
//! half alone reproduces the graph diff, then greedily drops single writes
//! until the set is 1-minimal. Each probe flips the non-kept cells back to
//! their layer-open values, re-traces the graph, and restores — `O(kept
//! cells)` heap pokes per probe, no VM re-execution.

use atomask_mor::{CallSite, ClassId, MethodId, ObjId, Registry, TraceEvent, Value, Vm};
use atomask_objgraph::Snapshot;
use std::collections::HashSet;
use std::rc::Rc;

/// One heap cell whose value at exception-propagation time still differed
/// from its value when the wrapped call began — a *surviving write*.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivingWrite {
    /// The written object.
    pub obj: ObjId,
    /// Its class.
    pub class: ClassId,
    /// The written field's schema slot.
    pub slot: usize,
    /// The field's name (resolved at capture time so reports need no
    /// registry).
    pub field: String,
    /// The cell's value when the wrapped call began.
    pub before: Value,
    /// The cell's value when the exception propagated.
    pub after: Value,
}

/// Why a non-atomic mark was non-atomic: the graph diff reduced to a
/// minimal explanatory write set.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The method whose wrapper recorded the non-atomic mark.
    pub method: MethodId,
    /// Propagation chain of the triggering exception.
    pub chain: u64,
    /// The first canonical-trace difference (same text as the mark's
    /// `diff`).
    pub first_diff: String,
    /// Total surviving writes at propagation time.
    pub total_surviving: usize,
    /// A 1-minimal subset of the surviving writes that alone still
    /// reproduces a graph difference (empty only if nothing survived).
    pub minimal: Vec<SurvivingWrite>,
}

impl Divergence {
    /// Renders the divergence as human-readable lines.
    pub fn render(&self, registry: &Registry) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "non-atomic: {} (chain {}), {} surviving write(s), minimal explanation {}:\n",
            registry.method_display(self.method),
            self.chain,
            self.total_surviving,
            self.minimal.len(),
        ));
        for w in &self.minimal {
            out.push_str(&format!(
                "  {} {}.{}: {} -> {}\n",
                w.obj,
                registry.class(w.class).name,
                w.field,
                w.before,
                w.after
            ));
        }
        out.push_str(&format!("  first diff: {}\n", self.first_diff));
        out
    }
}

/// The artifact of one [`crate::Campaign::replay`]: the run's record, its
/// full event trace, and the minimized divergence (non-atomic points
/// only).
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The replayed run, exactly as a campaign would record it (same
    /// outcome, marks, fuel and capture statistics — `trace_events`
    /// reflects the replay's always-on recorder, not the campaign's
    /// setting).
    pub run: crate::RunResult,
    /// The recorded events, oldest first (bounded by the replay ring; see
    /// [`ReplayReport::trace_dropped`]).
    pub trace: Vec<TraceEvent>,
    /// Total events the run emitted.
    pub trace_emitted: u64,
    /// Events that fell off the front of the replay ring (0 unless the
    /// run emitted more than the ring holds).
    pub trace_dropped: u64,
    /// The registry the replay ran against, for rendering ids.
    pub registry: Rc<Registry>,
    /// The minimized write-set explanation, when the run's last mark was
    /// non-atomic.
    pub divergence: Option<Divergence>,
}

/// Minimizes the surviving write set of a non-atomic mark. Called by the
/// injection wrapper while its undo-log layer is still open: `before` is
/// the reconstructed layer-open snapshot, `roots` the wrapped call's
/// receiver and by-reference arguments.
pub(crate) fn minimize_divergence(
    vm: &mut Vm,
    site: &CallSite,
    chain: u64,
    first_diff: String,
    before: &Snapshot,
    roots: &[ObjId],
) -> Divergence {
    let registry = vm.registry().clone();
    let surviving: Vec<SurvivingWrite> = vm
        .heap()
        .journal_innermost_writes()
        .into_iter()
        .filter_map(|(obj, slot, open_value)| {
            let current = vm.heap().field_by_slot(obj, slot)?;
            if current == open_value {
                return None;
            }
            let class = vm.heap().get(obj)?.class_id();
            let field = registry
                .class(class)
                .fields
                .get(slot)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| format!("slot{slot}"));
            Some(SurvivingWrite {
                obj,
                class,
                slot,
                field,
                before: open_value,
                after: current,
            })
        })
        .collect();

    let heap = vm.heap_mut();
    // Probe predicate: does keeping exactly `kept` (reverting every other
    // surviving cell to its layer-open value) still change the graph?
    let mut diff_present = |kept: &[usize]| -> bool {
        let kept_set: HashSet<usize> = kept.iter().copied().collect();
        for (i, w) in surviving.iter().enumerate() {
            if !kept_set.contains(&i) {
                heap.probe_set_slot(w.obj, w.slot, w.before.clone());
            }
        }
        let probe = Snapshot::of_roots(heap, roots);
        for (i, w) in surviving.iter().enumerate() {
            if !kept_set.contains(&i) {
                heap.probe_set_slot(w.obj, w.slot, w.after.clone());
            }
        }
        before.first_difference(&probe).is_some()
    };

    let mut current: Vec<usize> = (0..surviving.len()).collect();
    // Bisection: narrow to one half while a half alone reproduces the
    // diff.
    while current.len() > 1 {
        let mid = current.len() / 2;
        let left = current[..mid].to_vec();
        let right = current[mid..].to_vec();
        if diff_present(&left) {
            current = left;
        } else if diff_present(&right) {
            current = right;
        } else {
            break;
        }
    }
    // Greedy 1-minimal pass: drop single writes while the rest still
    // diverges.
    let mut i = 0;
    while current.len() > 1 && i < current.len() {
        let mut cand = current.clone();
        cand.remove(i);
        if diff_present(&cand) {
            current = cand;
        } else {
            i += 1;
        }
    }

    Divergence {
        method: site.method,
        chain,
        first_diff,
        total_surviving: surviving.len(),
        minimal: current.into_iter().map(|i| surviving[i].clone()).collect(),
    }
}

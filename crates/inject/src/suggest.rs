//! Exception-free suggestions — the Analyzer improvement the paper leaves
//! as future work.
//!
//! §4.3: *"This conservative classification is a consequence of the
//! limitations of our current Analyzer implementation, which does not
//! attempt to determine whether it is possible for a runtime exception to
//! occur in a given method. We plan to address this issue in the future."*
//!
//! Method bodies are opaque host functions in this runtime, so a static
//! analysis is out of reach — but an *empirical* one is not: observe a
//! baseline run and propose as exception-free every instrumentable method
//! that (a) was actually exercised, (b) made **no** nested calls (a leaf —
//! nothing downstream can throw into it), and (c) never threw itself.
//!
//! The suggestions carry the same caveat the paper attaches to the manual
//! annotations: they are judgements about *possible executions* based on
//! observed ones. Accepting a wrong suggestion never corrupts a program —
//! it merely discounts injections that could, in fact, happen — so the
//! paper's "merely an unnecessary loss in performance" trade-off inverts
//! into "possibly an unnoticed non-atomicity"; the API therefore returns
//! suggestions for a human (or test) to confirm rather than feeding them
//! into the policy silently.

use atomask_mor::{CallHook, CallSite, Exception, HookGuard, MethodId, MethodResult, Program, Vm};
use std::cell::RefCell;
use std::rc::Rc;

/// Observes one run and records, per method: dynamic calls, whether it made
/// nested calls, and whether it ever returned with an exception.
#[derive(Debug, Default)]
struct ObservationHook {
    stack: Vec<MethodId>,
    calls: Vec<u64>,
    makes_calls: Vec<bool>,
    threw: Vec<bool>,
}

impl ObservationHook {
    fn sized(methods: usize) -> Self {
        ObservationHook {
            stack: Vec::new(),
            calls: vec![0; methods],
            makes_calls: vec![false; methods],
            threw: vec![false; methods],
        }
    }
}

impl CallHook for ObservationHook {
    fn before(&mut self, _vm: &mut Vm, site: &CallSite) -> Result<HookGuard, Exception> {
        if let Some(&parent) = self.stack.last() {
            self.makes_calls[parent.index()] = true;
        }
        self.calls[site.method.index()] += 1;
        self.stack.push(site.method);
        Ok(None)
    }

    fn after(
        &mut self,
        _vm: &mut Vm,
        site: &CallSite,
        _guard: HookGuard,
        outcome: MethodResult,
    ) -> MethodResult {
        self.stack.pop();
        if outcome.is_err() {
            self.threw[site.method.index()] = true;
        }
        outcome
    }
}

/// Runs `program` once under observation and returns the methods that look
/// exception-free: exercised leaves that never threw.
///
/// Feed the (confirmed) result into
/// [`MarkFilter::exception_free`](crate::MarkFilter::exception_free) or a
/// masking policy to discount the corresponding injections.
pub fn suggest_exception_free(program: &dyn Program) -> Vec<MethodId> {
    let mut vm = Vm::new(program.build_registry());
    let methods = vm.registry().method_count();
    let hook = Rc::new(RefCell::new(ObservationHook::sized(methods)));
    vm.set_hook(Some(hook.clone()));
    let _ = program.run(&mut vm);
    vm.set_hook(None);
    let registry = vm.registry().clone();
    let hook = hook.borrow();
    registry
        .method_ids()
        .filter(|m| {
            let i = m.index();
            hook.calls[i] > 0
                && !hook.makes_calls[i]
                && !hook.threw[i]
                && registry.instrumentable(*m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify, Campaign, MarkFilter, Verdict};
    use atomask_mor::{FnProgram, Profile, RegistryBuilder, Value};

    /// `getter` and `setter` are quiet leaves; `thrower` is a leaf that
    /// throws; `walker` makes calls.
    fn program() -> FnProgram {
        FnProgram::new(
            "suggest-demo",
            || {
                let mut rb = RegistryBuilder::new(Profile::java());
                rb.exception("AppError");
                rb.class("A", |c| {
                    c.field("x", Value::Int(0));
                    c.method("getter", |ctx, this, _| Ok(ctx.get(this, "x")));
                    c.method("setter", |ctx, this, args| {
                        ctx.set(this, "x", args[0].clone());
                        Ok(Value::Null)
                    });
                    c.method("thrower", |ctx, _, _| {
                        Err(ctx.exception("AppError", "always"))
                    });
                    c.method("walker", |ctx, this, args| {
                        let x = ctx.get_int(this, "x");
                        ctx.set(this, "x", Value::Int(x + 1));
                        ctx.call(this, "setter", &[args[0].clone()])?;
                        ctx.call(this, "getter", &[])
                    });
                    c.method("unused", |_, _, _| Ok(Value::Null));
                });
                rb.build()
            },
            |vm| {
                let a = vm.construct("A", &[])?;
                vm.root(a);
                vm.call(a, "walker", &[Value::Int(5)])?;
                let _ = vm.call(a, "thrower", &[]);
                vm.call(a, "getter", &[])
            },
        )
    }

    fn names(p: &FnProgram, ids: &[MethodId]) -> Vec<String> {
        use atomask_mor::Program;
        let reg = p.build_registry();
        let mut out: Vec<String> = ids.iter().map(|m| reg.method_display(*m)).collect();
        out.sort();
        out
    }

    #[test]
    fn suggests_quiet_leaves_only() {
        let p = program();
        let suggested = suggest_exception_free(&p);
        assert_eq!(
            names(&p, &suggested),
            vec!["A::getter".to_owned(), "A::setter".to_owned()],
            "thrower threw, walker makes calls, unused was never exercised"
        );
    }

    #[test]
    fn suggestions_reclassify_the_walker() {
        let p = program();
        let result = Campaign::new(&p).run();
        // Without suggestions, walker is pure non-atomic: injections into
        // its callees land after its first write.
        let c = classify(&result, &MarkFilter::default());
        assert_eq!(
            c.method("A::walker").unwrap().verdict,
            Some(Verdict::PureNonAtomic)
        );
        // With the suggested exception-free set, only thrower's (real!)
        // exception path remains — and that aborts walker before it runs,
        // so walker becomes failure atomic.
        let suggested = suggest_exception_free(&p);
        let c = classify(&result, &MarkFilter::exception_free(suggested));
        assert_eq!(
            c.method("A::walker").unwrap().verdict,
            Some(Verdict::FailureAtomic)
        );
    }

    #[test]
    fn core_methods_are_not_suggested() {
        let p = FnProgram::new(
            "core-demo",
            || {
                let mut rb = RegistryBuilder::new(Profile::java());
                rb.class("Str", |c| {
                    c.core();
                    c.field("dummy", Value::Null);
                    c.method("len", |_, _, _| Ok(Value::Int(0)));
                });
                rb.build()
            },
            |vm| {
                let s = vm.construct("Str", &[])?;
                vm.root(s);
                vm.call(s, "len", &[])
            },
        );
        // A core-class method never gets injections anyway: suggesting it
        // would be noise.
        assert!(suggest_exception_free(&p).is_empty());
    }
}

//! Object-graph size accounting, used by the Fig. 5 reproduction (masking
//! overhead as a function of checkpointed object size).

use atomask_mor::{Heap, ObjId, Object};
use std::collections::HashSet;

/// Size measures of one object graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphSize {
    /// Distinct objects reachable from the root.
    pub objects: usize,
    /// Reference edges followed (including back/shared edges).
    pub edges: usize,
    /// Approximate payload bytes (fields plus a fixed per-object header).
    pub bytes: usize,
}

/// Fixed per-object overhead assumed by the byte accounting.
pub(crate) const OBJECT_HEADER_BYTES: usize = 16;

pub(crate) fn object_bytes(obj: &Object) -> usize {
    OBJECT_HEADER_BYTES
        + obj
            .fields()
            .iter()
            .map(|v| v.payload_bytes())
            .sum::<usize>()
}

/// Measures the object graph of `root`.
///
/// ```
/// use atomask_mor::{Profile, RegistryBuilder, Value, Vm};
/// use atomask_objgraph::graph_size;
///
/// let mut rb = RegistryBuilder::new(Profile::cpp());
/// rb.class("Blob", |c| { c.field("data", Value::from("")); });
/// let mut vm = Vm::new(rb.build());
/// let b = vm.construct("Blob", &[])?;
/// vm.root(b);
/// vm.heap_mut().set_field(b, "data", Value::from("x".repeat(100))).unwrap();
/// assert!(graph_size(vm.heap(), b).bytes >= 100);
/// # Ok::<(), atomask_mor::Exception>(())
/// ```
pub fn graph_size(heap: &Heap, root: ObjId) -> GraphSize {
    let mut seen: HashSet<ObjId> = HashSet::new();
    let mut stack = vec![root];
    let mut size = GraphSize::default();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let Some(obj) = heap.get(id) else { continue };
        size.objects += 1;
        size.bytes += object_bytes(obj);
        for v in obj.fields() {
            if let Some(target) = v.as_ref_id() {
                size.edges += 1;
                if !seen.contains(&target) {
                    stack.push(target);
                }
            }
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{Profile, RegistryBuilder, Value, Vm};

    #[test]
    fn measures_chain() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Node", |c| {
            c.field("next", Value::Null);
            c.field("value", Value::Int(0));
        });
        let mut vm = Vm::new(rb.build());
        let a = vm.alloc_raw("Node");
        let b = vm.alloc_raw("Node");
        vm.root(a);
        vm.heap_mut().set_field(a, "next", Value::Ref(b)).unwrap();
        let s = graph_size(vm.heap(), a);
        assert_eq!(s.objects, 2);
        assert_eq!(s.edges, 1);
        // 2 headers + (8B ref + 8B int) + (0B null + 8B int)
        assert_eq!(s.bytes, 2 * OBJECT_HEADER_BYTES + 16 + 8);
    }

    #[test]
    fn shared_edges_counted_objects_deduped() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Pair", |c| {
            c.field("a", Value::Null);
            c.field("b", Value::Null);
        });
        let mut vm = Vm::new(rb.build());
        let p = vm.alloc_raw("Pair");
        let s = vm.alloc_raw("Pair");
        vm.root(p);
        vm.heap_mut().set_field(p, "a", Value::Ref(s)).unwrap();
        vm.heap_mut().set_field(p, "b", Value::Ref(s)).unwrap();
        let m = graph_size(vm.heap(), p);
        assert_eq!(m.objects, 2);
        assert_eq!(m.edges, 2);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Node", |c| {
            c.field("next", Value::Null);
        });
        let mut vm = Vm::new(rb.build());
        let a = vm.alloc_raw("Node");
        vm.root(a);
        vm.heap_mut().set_field(a, "next", Value::Ref(a)).unwrap();
        let m = graph_size(vm.heap(), a);
        assert_eq!(m.objects, 1);
        assert_eq!(m.edges, 1);
    }
}

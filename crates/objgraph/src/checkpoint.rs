//! Heap checkpoints: deep copies that can be restored — the masking phase's
//! `deep_copy` / `replace` pair (Listing 2 of the paper).

use crate::size::object_bytes;
use atomask_mor::{Heap, ObjId, Object, Value};
use std::collections::BTreeMap;

/// A restorable deep copy of everything reachable from a set of roots.
///
/// Restoring rewrites every checkpointed object back to its captured field
/// values, resurrecting objects that were reclaimed in the meantime at
/// their original [`ObjId`]s (ids are never reused by the heap, so this is
/// always possible). Objects *created* after the checkpoint are left in
/// place; if the rollback made them unreachable they become garbage for
/// [`Heap::reclaim`] / [`Heap::collect`] — this is exactly the paper's
/// §5.1 rollback-cleanup story (reference counting plus a cycle GC).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    roots: Vec<ObjId>,
    objects: BTreeMap<ObjId, Object>,
    bytes: usize,
}

impl Checkpoint {
    /// Captures the graphs of `roots` (receiver plus by-reference
    /// arguments, per Listing 1/2).
    pub fn capture(heap: &Heap, roots: &[ObjId]) -> Self {
        let mut objects = BTreeMap::new();
        let mut bytes = 0;
        let mut stack: Vec<ObjId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if objects.contains_key(&id) {
                continue;
            }
            let Some(obj) = heap.get(id) else {
                continue; // dangling (incomplete graph): skip, as §5.1 allows
            };
            bytes += object_bytes(obj);
            for v in obj.fields() {
                if let Some(target) = v.as_ref_id() {
                    if !objects.contains_key(&target) {
                        stack.push(target);
                    }
                }
            }
            objects.insert(id, obj.clone());
        }
        Checkpoint {
            roots: roots.to_vec(),
            objects,
            bytes,
        }
    }

    /// The roots this checkpoint was captured from.
    pub fn roots(&self) -> &[ObjId] {
        &self.roots
    }

    /// Number of objects captured.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Approximate captured payload size in bytes (Fig. 5's x-axis).
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Restores the heap region covered by this checkpoint: every captured
    /// object gets its captured field values back; reclaimed objects are
    /// resurrected. Reference counts are recomputed afterwards.
    ///
    /// This is the `replace(this, objgraph)` of Listing 2.
    pub fn restore(&self, heap: &mut Heap) {
        for (&id, obj) in &self.objects {
            if heap.is_live(id) {
                heap.restore_fields(id, obj.fields().to_vec())
                    .expect("live object accepts restore");
            } else {
                heap.resurrect(id, obj.clone());
            }
        }
        heap.recompute_refcounts();
    }

    /// Iterates over the captured objects in id order.
    pub fn objects(&self) -> impl Iterator<Item = (ObjId, &Object)> {
        self.objects.iter().map(|(id, o)| (*id, o))
    }

    /// Returns `true` iff `id` was captured.
    pub fn contains(&self, id: ObjId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Convenience: the captured value of `field` on `id`, if captured.
    pub fn field(&self, id: ObjId, slot: usize) -> Option<&Value> {
        self.objects.get(&id)?.fields().get(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Snapshot;
    use atomask_mor::{Profile, Registry, RegistryBuilder, Vm};

    fn registry() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Node", |c| {
            c.field("next", Value::Null);
            c.field("value", Value::Int(0));
        });
        rb.build()
    }

    fn chain(vm: &mut Vm, values: &[i64]) -> ObjId {
        let mut head = Value::Null;
        for &v in values.iter().rev() {
            let n = vm.alloc_raw("Node");
            vm.root(n);
            vm.heap_mut().set_field(n, "value", Value::Int(v)).unwrap();
            vm.heap_mut().set_field(n, "next", head.clone()).unwrap();
            if let Some(old) = head.as_ref_id() {
                vm.unroot(old);
            }
            head = Value::Ref(n);
        }
        head.as_ref_id().unwrap()
    }

    #[test]
    fn capture_covers_reachable_graph() {
        let mut vm = Vm::new(registry());
        let head = chain(&mut vm, &[1, 2, 3]);
        let cp = Checkpoint::capture(vm.heap(), &[head]);
        assert_eq!(cp.object_count(), 3);
        assert!(cp.byte_size() > 0);
        assert_eq!(cp.roots(), &[head]);
    }

    #[test]
    fn restore_reverts_field_mutations() {
        let mut vm = Vm::new(registry());
        let head = chain(&mut vm, &[1, 2]);
        let before = Snapshot::of(vm.heap(), head);
        let cp = Checkpoint::capture(vm.heap(), &[head]);
        vm.heap_mut()
            .set_field(head, "value", Value::Int(99))
            .unwrap();
        let next = vm.heap().field(head, "next").unwrap().as_ref_id().unwrap();
        vm.heap_mut()
            .set_field(next, "value", Value::Int(98))
            .unwrap();
        assert_ne!(Snapshot::of(vm.heap(), head), before);
        cp.restore(vm.heap_mut());
        assert_eq!(Snapshot::of(vm.heap(), head), before);
    }

    #[test]
    fn restore_reverts_structural_mutations() {
        let mut vm = Vm::new(registry());
        let head = chain(&mut vm, &[1, 2, 3]);
        let before = Snapshot::of(vm.heap(), head);
        let cp = Checkpoint::capture(vm.heap(), &[head]);
        // Drop the tail: [1] only.
        vm.heap_mut().set_field(head, "next", Value::Null).unwrap();
        cp.restore(vm.heap_mut());
        assert_eq!(Snapshot::of(vm.heap(), head), before);
    }

    #[test]
    fn restore_resurrects_reclaimed_objects() {
        let mut vm = Vm::new(registry());
        let head = chain(&mut vm, &[1, 2, 3]);
        let before = Snapshot::of(vm.heap(), head);
        let cp = Checkpoint::capture(vm.heap(), &[head]);
        // Unlink and reclaim the tail.
        vm.heap_mut().set_field(head, "next", Value::Null).unwrap();
        assert_eq!(vm.heap_mut().reclaim(), 2);
        cp.restore(vm.heap_mut());
        assert_eq!(Snapshot::of(vm.heap(), head), before);
    }

    #[test]
    fn restore_fixes_refcounts() {
        let mut vm = Vm::new(registry());
        let head = chain(&mut vm, &[1, 2]);
        let next = vm.heap().field(head, "next").unwrap().as_ref_id().unwrap();
        let cp = Checkpoint::capture(vm.heap(), &[head]);
        vm.heap_mut().set_field(head, "next", Value::Null).unwrap();
        assert_eq!(vm.heap().refcount(next), 0);
        cp.restore(vm.heap_mut());
        assert_eq!(vm.heap().refcount(next), 1);
    }

    #[test]
    fn objects_created_after_checkpoint_become_garbage_on_rollback() {
        let mut vm = Vm::new(registry());
        let head = chain(&mut vm, &[1]);
        let cp = Checkpoint::capture(vm.heap(), &[head]);
        // Simulate a failing method that inserted a node before throwing.
        let fresh = vm.alloc_raw("Node");
        vm.heap_mut()
            .set_field(head, "next", Value::Ref(fresh))
            .unwrap();
        cp.restore(vm.heap_mut());
        // fresh is unreachable and unrooted: refcount cleanup collects it.
        assert_eq!(vm.heap_mut().reclaim(), 1);
        assert!(!vm.heap().is_live(fresh));
        assert!(vm.heap().is_live(head));
    }

    #[test]
    fn cyclic_graphs_checkpoint_and_restore() {
        let mut vm = Vm::new(registry());
        let a = vm.alloc_raw("Node");
        let b = vm.alloc_raw("Node");
        vm.root(a);
        vm.heap_mut().set_field(a, "next", Value::Ref(b)).unwrap();
        vm.heap_mut().set_field(b, "next", Value::Ref(a)).unwrap();
        let before = Snapshot::of(vm.heap(), a);
        let cp = Checkpoint::capture(vm.heap(), &[a]);
        assert_eq!(cp.object_count(), 2);
        vm.heap_mut().set_field(b, "next", Value::Null).unwrap();
        cp.restore(vm.heap_mut());
        assert_eq!(Snapshot::of(vm.heap(), a), before);
    }

    #[test]
    fn multi_root_checkpoint_restores_arguments_too() {
        let mut vm = Vm::new(registry());
        let recv = chain(&mut vm, &[1]);
        let arg = chain(&mut vm, &[5]);
        let before = Snapshot::of_roots(vm.heap(), &[recv, arg]);
        let cp = Checkpoint::capture(vm.heap(), &[recv, arg]);
        vm.heap_mut()
            .set_field(arg, "value", Value::Int(6))
            .unwrap();
        cp.restore(vm.heap_mut());
        assert_eq!(Snapshot::of_roots(vm.heap(), &[recv, arg]), before);
    }
}

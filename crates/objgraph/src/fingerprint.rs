//! Incremental 64-bit structural fingerprints of object graphs.
//!
//! A fingerprint is a pure function of the graph's **canonical trace**
//! (see [`crate::Snapshot`]): the walk visits objects in exactly the same
//! depth-first, slot-ordered, visit-indexed order the trace does, so
//!
//! * equal canonical traces always produce equal fingerprints, and
//! * unequal fingerprints therefore *prove* the traces differ.
//!
//! Equal fingerprints do not prove trace equality (64-bit hashes collide
//! with probability ~2⁻⁶⁴), which is why callers that need `first_difference`
//! detail fall back to a full [`crate::Snapshot`] comparison on mismatch —
//! the fast path only ever short-circuits the *equal* verdict.
//!
//! The expensive part of a walk is [`GraphSource::node`], which clones a
//! field vector per object (and, for as-of views, applies the undo-log
//! overlay). A [`FingerprintCache`] memoizes each object's *local* hash
//! (class + leaf field values + reference-slot markers) and its outgoing
//! references, so repeated walks over an unchanged heap touch no heap
//! storage at all. Staleness is managed by the caller through
//! [`atomask_mor::Heap::mutation_epoch`] (drop the cache when the epoch
//! moved) and per-walk dirty sets (objects the innermost journal layer
//! touched bypass the cache entirely — see
//! [`atomask_mor::Heap::journal_innermost_touched`]).

use crate::trace::GraphSource;
use atomask_mor::{ObjId, Value};
use std::collections::{HashMap, HashSet};

/// Memoized per-object walk data: everything a fingerprint walk needs to
/// know about an object without calling [`GraphSource::node`].
#[derive(Debug, Clone)]
struct CachedNode {
    /// Hash of the object's class, field count, leaf field values (in
    /// slot order) and reference-slot positions. Deliberately excludes
    /// reference *targets* — object ids are not canonical; sharing is
    /// folded in by the walk via visit indices.
    local: u64,
    /// Reference targets in slot order (the walk recurses into these).
    refs: Vec<ObjId>,
}

/// A reusable memo table for [`graph_fingerprint`] walks.
///
/// The cache is keyed by [`ObjId`] and is only valid for the heap (and
/// mutation epoch) it was filled against; callers are responsible for
/// clearing it when [`atomask_mor::Heap::mutation_epoch`] changes.
#[derive(Debug, Clone, Default)]
pub struct FingerprintCache {
    nodes: HashMap<ObjId, CachedNode>,
}

impl FingerprintCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every memoized node (keeps the allocation).
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Number of memoized objects.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

// Distinct token tags per canonical-trace event kind, so e.g. Int(0) and
// Null cannot collide structurally. Arbitrary odd constants.
const TAG_ENTER: u64 = 0x9ae1_6a3b_2f90_404f;
const TAG_BACK: u64 = 0xd6e8_feb8_6659_fd93;
const TAG_NULL: u64 = 0xa076_1d64_78bd_642f;
const TAG_INT: u64 = 0xe703_7ed1_a0b4_28db;
const TAG_FLOAT: u64 = 0x8ebc_6af0_9c88_c6e3;
const TAG_BOOL: u64 = 0x5899_65cc_7537_4cc3;
const TAG_STR: u64 = 0x1d8e_4e27_c47d_124f;
const TAG_DANGLING: u64 = 0xeb44_acca_b455_d165;
const TAG_REF_SLOT: u64 = 0x2f63_3507_75b4_8f35;
const TAG_ROOT_SEP: u64 = 0x6c62_272e_07bb_0142;

/// splitmix64-style avalanche: every input bit affects every output bit.
#[inline]
fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-sensitive fold of one token into an accumulator.
#[inline]
fn mix(acc: u64, token: u64) -> u64 {
    avalanche(acc.rotate_left(11) ^ avalanche(token))
}

/// Deterministic hash of a string leaf (FNV-1a; the std `DefaultHasher`
/// is not documented as stable across releases).
#[inline]
fn str_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds an object's cacheable local data from its class and fields.
fn local_node(class: atomask_mor::ClassId, fields: &[Value]) -> CachedNode {
    let mut local = mix(TAG_ENTER, class.into_raw() as u64);
    local = mix(local, fields.len() as u64);
    let mut refs = Vec::new();
    for f in fields {
        local = match f {
            Value::Null => mix(local, TAG_NULL),
            Value::Int(v) => mix(mix(local, TAG_INT), *v as u64),
            Value::Float(v) => mix(mix(local, TAG_FLOAT), v.to_bits()),
            Value::Bool(v) => mix(mix(local, TAG_BOOL), *v as u64),
            Value::Str(s) => mix(mix(local, TAG_STR), str_hash(s)),
            Value::Ref(id) => {
                refs.push(*id);
                // Only the slot's *position* is local; the target's
                // structure enters through the walk.
                mix(local, TAG_REF_SLOT)
            }
        };
    }
    CachedNode { local, refs }
}

struct Walker<'a, S> {
    source: &'a S,
    cache: &'a mut FingerprintCache,
    /// Objects whose cache entries must be neither read nor written —
    /// their state in `source` differs from the heap the cache was filled
    /// against (journaled writes / layer births).
    dirty: &'a HashSet<ObjId>,
    visited: HashMap<ObjId, usize>,
    acc: u64,
}

impl<S: GraphSource> Walker<'_, S> {
    fn visit_ref(&mut self, id: ObjId) {
        if let Some(&idx) = self.visited.get(&id) {
            self.acc = mix(mix(self.acc, TAG_BACK), idx as u64);
            return;
        }
        let clean = !self.dirty.contains(&id);
        let node = if clean {
            self.cache.nodes.get(&id).cloned()
        } else {
            None
        };
        let node = match node {
            Some(n) => n,
            None => {
                let Some((class, fields)) = self.source.node(id) else {
                    self.acc = mix(self.acc, TAG_DANGLING);
                    return;
                };
                let n = local_node(class, &fields);
                if clean {
                    self.cache.nodes.insert(id, n.clone());
                }
                n
            }
        };
        let idx = self.visited.len();
        self.visited.insert(id, idx);
        self.acc = mix(self.acc, node.local);
        for target in node.refs {
            self.visit_ref(target);
        }
    }
}

/// Computes the structural fingerprint of the combined object graphs of
/// `roots` — a pure function of the canonical trace
/// [`crate::Snapshot::of_source`] would capture from the same source and
/// roots.
///
/// `cache` memoizes per-object data across walks over the *same* heap
/// state; `dirty` names the objects for which `source` disagrees with
/// that heap state (journaled writes and layer-born objects), which are
/// always re-read from `source` and never stored. Pass an empty set when
/// walking the live heap the cache belongs to.
pub fn graph_fingerprint<S: GraphSource>(
    source: &S,
    roots: &[ObjId],
    cache: &mut FingerprintCache,
    dirty: &HashSet<ObjId>,
) -> u64 {
    let mut walker = Walker {
        source,
        cache,
        dirty,
        visited: HashMap::new(),
        acc: 0x243f_6a88_85a3_08d3, // arbitrary non-zero seed
    };
    for (i, &root) in roots.iter().enumerate() {
        if i > 0 {
            walker.acc = mix(walker.acc, TAG_ROOT_SEP);
        }
        walker.visit_ref(root);
    }
    // Fold in the length implicitly via final avalanche; the event stream
    // is prefix-free per root (Enter carries the field count), so the
    // ordered fold is already injective over token streams.
    avalanche(walker.acc)
}

/// One-shot fingerprint with a throwaway cache (tests and benches).
pub fn fingerprint_of_roots<S: GraphSource>(source: &S, roots: &[ObjId]) -> u64 {
    graph_fingerprint(source, roots, &mut FingerprintCache::new(), &HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshot;
    use atomask_mor::{Profile, Registry, RegistryBuilder, Vm};

    fn registry() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Node", |c| {
            c.field("next", Value::Null);
            c.field("value", Value::Int(0));
        });
        rb.build()
    }

    fn node(vm: &mut Vm, value: i64) -> ObjId {
        let id = vm.alloc_raw("Node");
        vm.root(id);
        vm.heap_mut()
            .set_field(id, "value", Value::Int(value))
            .unwrap();
        id
    }

    #[test]
    fn equal_graphs_equal_fingerprints_across_identities() {
        let mut vm = Vm::new(registry());
        let a1 = node(&mut vm, 1);
        let a2 = node(&mut vm, 2);
        vm.heap_mut().set_field(a1, "next", Value::Ref(a2)).unwrap();
        let b1 = node(&mut vm, 1);
        let b2 = node(&mut vm, 2);
        vm.heap_mut().set_field(b1, "next", Value::Ref(b2)).unwrap();
        assert_eq!(
            Snapshot::of(vm.heap(), a1),
            Snapshot::of(vm.heap(), b1),
            "precondition"
        );
        assert_eq!(
            fingerprint_of_roots(vm.heap(), &[a1]),
            fingerprint_of_roots(vm.heap(), &[b1])
        );
    }

    #[test]
    fn field_change_changes_fingerprint() {
        let mut vm = Vm::new(registry());
        let a = node(&mut vm, 1);
        let before = fingerprint_of_roots(vm.heap(), &[a]);
        vm.heap_mut().set_field(a, "value", Value::Int(2)).unwrap();
        assert_ne!(before, fingerprint_of_roots(vm.heap(), &[a]));
    }

    #[test]
    fn sharing_is_part_of_the_fingerprint() {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Node", |c| {
            c.field("next", Value::Null);
            c.field("value", Value::Int(0));
        });
        rb.class("Pair", |c| {
            c.field("a", Value::Null);
            c.field("b", Value::Null);
        });
        let mut vm = Vm::new(rb.build());
        let mk = |vm: &mut Vm, v: i64| {
            let id = vm.alloc_raw("Node");
            vm.root(id);
            vm.heap_mut().set_field(id, "value", Value::Int(v)).unwrap();
            id
        };
        let shared = mk(&mut vm, 7);
        let p1 = vm.alloc_raw("Pair");
        vm.root(p1);
        vm.heap_mut()
            .set_field(p1, "a", Value::Ref(shared))
            .unwrap();
        vm.heap_mut()
            .set_field(p1, "b", Value::Ref(shared))
            .unwrap();
        let n1 = mk(&mut vm, 7);
        let n2 = mk(&mut vm, 7);
        let p2 = vm.alloc_raw("Pair");
        vm.root(p2);
        vm.heap_mut().set_field(p2, "a", Value::Ref(n1)).unwrap();
        vm.heap_mut().set_field(p2, "b", Value::Ref(n2)).unwrap();
        assert_ne!(
            fingerprint_of_roots(vm.heap(), &[p1]),
            fingerprint_of_roots(vm.heap(), &[p2])
        );
    }

    #[test]
    fn cycles_terminate_and_direction_matters() {
        let mut vm = Vm::new(registry());
        let a = node(&mut vm, 1);
        let b = node(&mut vm, 2);
        vm.heap_mut().set_field(a, "next", Value::Ref(b)).unwrap();
        vm.heap_mut().set_field(b, "next", Value::Ref(a)).unwrap();
        assert_eq!(
            fingerprint_of_roots(vm.heap(), &[a]),
            fingerprint_of_roots(vm.heap(), &[a])
        );
        assert_ne!(
            fingerprint_of_roots(vm.heap(), &[a]),
            fingerprint_of_roots(vm.heap(), &[b])
        );
    }

    #[test]
    fn float_leaves_fingerprint_bitwise() {
        let mut vm = Vm::new(registry());
        let a = node(&mut vm, 0);
        vm.heap_mut()
            .set_field(a, "value", Value::Float(f64::NAN))
            .unwrap();
        assert_eq!(
            fingerprint_of_roots(vm.heap(), &[a]),
            fingerprint_of_roots(vm.heap(), &[a]),
            "NaN equals itself bitwise"
        );
        let zero_pos = {
            vm.heap_mut()
                .set_field(a, "value", Value::Float(0.0))
                .unwrap();
            fingerprint_of_roots(vm.heap(), &[a])
        };
        let zero_neg = {
            vm.heap_mut()
                .set_field(a, "value", Value::Float(-0.0))
                .unwrap();
            fingerprint_of_roots(vm.heap(), &[a])
        };
        assert_ne!(zero_pos, zero_neg, "0.0 and -0.0 differ bitwise");
    }

    #[test]
    fn cached_walk_equals_uncached_walk() {
        let mut vm = Vm::new(registry());
        let a = node(&mut vm, 1);
        let b = node(&mut vm, 2);
        vm.heap_mut().set_field(a, "next", Value::Ref(b)).unwrap();
        let mut cache = FingerprintCache::new();
        let empty = HashSet::new();
        let first = graph_fingerprint(vm.heap(), &[a], &mut cache, &empty);
        assert_eq!(cache.len(), 2, "both nodes memoized");
        let second = graph_fingerprint(vm.heap(), &[a], &mut cache, &empty);
        assert_eq!(first, second);
        assert_eq!(first, fingerprint_of_roots(vm.heap(), &[a]));
    }

    #[test]
    fn asof_walk_with_dirty_set_matches_eager_before_fingerprint() {
        let mut vm = Vm::new(registry());
        let a = node(&mut vm, 1);
        let b = node(&mut vm, 2);
        vm.heap_mut().set_field(a, "next", Value::Ref(b)).unwrap();
        let eager_before = fingerprint_of_roots(vm.heap(), &[a]);

        vm.heap_mut().push_journal();
        let mut cache = FingerprintCache::new();
        let empty = HashSet::new();
        // Fill the cache against the live (post-open, pre-write) heap.
        graph_fingerprint(vm.heap(), &[a], &mut cache, &empty);

        let c = node(&mut vm, 3);
        vm.heap_mut().set_field(a, "next", Value::Ref(c)).unwrap();
        vm.heap_mut().set_field(b, "value", Value::Int(9)).unwrap();

        // The live heap changed, so the cache is stale for the live view —
        // but the *as-of* view agrees with the cache except on touched
        // objects, which the dirty set routes around.
        let dirty = vm.heap().journal_innermost_touched();
        let asof = vm.heap().asof_innermost().unwrap();
        let lazy_before = graph_fingerprint(&asof, &[a], &mut cache, &dirty);
        assert_eq!(lazy_before, eager_before);

        // Sanity: the live after-graph differs.
        vm.heap_mut().commit_journal();
        assert_ne!(fingerprint_of_roots(vm.heap(), &[a]), eager_before);
    }

    #[test]
    fn checkpoint_restore_bumps_epoch_and_reseeded_cache_agrees() {
        // Checkpoint-resume sweeps restore whole heaps between runs
        // (`Vm::restore`). The fingerprint-cache protocol — drop the cache
        // whenever `Heap::mutation_epoch` moved — must treat a restore as
        // a mutation, or a cache filled against the pre-restore heap would
        // silently poison post-restore walks.
        let mut vm = Vm::new(registry());
        let a = node(&mut vm, 1);
        let b = node(&mut vm, 2);
        vm.heap_mut().set_field(a, "next", Value::Ref(b)).unwrap();

        let mut cache = FingerprintCache::new();
        let empty = HashSet::new();
        let fp_before = graph_fingerprint(vm.heap(), &[a], &mut cache, &empty);
        let cp = vm.checkpoint();
        let epoch_at_cp = vm.heap().mutation_epoch();

        // Diverge: rewire the graph so the cached entries go stale.
        vm.heap_mut().set_field(a, "next", Value::Null).unwrap();
        vm.heap_mut().set_field(b, "value", Value::Int(9)).unwrap();
        assert_ne!(fingerprint_of_roots(vm.heap(), &[a]), fp_before);

        vm.restore(&cp);
        assert_ne!(
            vm.heap().mutation_epoch(),
            epoch_at_cp,
            "restore must advance the epoch so epoch-keyed caches drop"
        );

        // Follow the protocol: epoch moved, so reseed the cache. The
        // restored heap then fingerprints identically to the original.
        cache.clear();
        let fp_after = graph_fingerprint(vm.heap(), &[a], &mut cache, &empty);
        assert_eq!(fp_after, fp_before);
        assert_eq!(cache.len(), 2, "walk re-memoized the restored objects");
    }

    #[test]
    fn dangling_refs_fingerprint_like_the_trace() {
        let mut vm = Vm::new(registry());
        let a = node(&mut vm, 1);
        vm.heap_mut()
            .set_field(a, "next", Value::Ref(ObjId::from_raw(u64::MAX)))
            .unwrap();
        assert_eq!(
            fingerprint_of_roots(vm.heap(), &[a]),
            fingerprint_of_roots(vm.heap(), &[a])
        );
    }

    #[test]
    fn multi_root_separator_and_order_matter() {
        let mut vm = Vm::new(registry());
        let a = node(&mut vm, 1);
        let b = node(&mut vm, 2);
        assert_ne!(
            fingerprint_of_roots(vm.heap(), &[a, b]),
            fingerprint_of_roots(vm.heap(), &[b, a])
        );
        assert_ne!(
            fingerprint_of_roots(vm.heap(), &[a]),
            fingerprint_of_roots(vm.heap(), &[a, b])
        );
    }
}

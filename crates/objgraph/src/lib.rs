//! # atomask-objgraph — object graphs, comparison, checkpoint/rollback
//!
//! Implements Definition 1 of the DSN 2003 paper for the managed runtime of
//! [`atomask_mor`]:
//!
//! > *An object graph is a graph where each node is either an object or an
//! > instance of a basic data type. [...] If two non-null pointers are
//! > pointing to the same object or instance, their nodes in the object
//! > graph share the same child node.*
//!
//! Two representations are provided, matching the two uses the paper makes
//! of `deep_copy`:
//!
//! * [`Snapshot`] — a **canonical trace** of the graph, cheap to capture and
//!   to compare. Two snapshots are equal **iff** the object graphs are
//!   equal in the sense of Definition 1/2 (isomorphic respecting class
//!   labels, field names and order, basic values, sharing, and cycles) —
//!   note in particular that equality is insensitive to object identity, so
//!   a method that replaces a node with a structurally identical fresh node
//!   still counts as failure atomic. Used by the detection phase's
//!   before/after comparison (Listing 1).
//! * [`Checkpoint`] — **deep copies** of every reachable object, able to
//!   [`Checkpoint::restore`] the heap to the captured state. Used by the
//!   masking phase's atomicity wrappers (Listing 2) for "checkpoint,
//!   execute, and roll back on exception".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod fingerprint;
mod size;
mod trace;

pub use checkpoint::Checkpoint;
pub use fingerprint::{fingerprint_of_roots, graph_fingerprint, FingerprintCache};
pub use size::{graph_size, GraphSize};
pub use trace::{GraphSource, Snapshot};

//! Canonical object-graph traces.
//!
//! A trace linearizes the object graph of one or more roots by depth-first
//! traversal, assigning each object a *visit index* on first visit and
//! emitting a back-reference on subsequent visits. Because field order is
//! fixed by the class schema, the trace is a **canonical form**: two graphs
//! produce the same trace iff they are equal in the sense of the paper's
//! Definition 1 (same shape, same class labels, same field values, same
//! sharing), regardless of the underlying [`ObjId`]s.

use atomask_mor::{AsOfHeap, ClassId, Heap, ObjId, Value};
use std::collections::HashMap;

/// Anything a canonical trace can be captured from: a live [`Heap`] or a
/// reconstructed historical view of one ([`AsOfHeap`]). Implementations
/// return the class and field values of a live object, or `None` for a
/// dangling reference.
pub trait GraphSource {
    /// The object's class and field values, or `None` if it is not live
    /// in this view.
    fn node(&self, id: ObjId) -> Option<(ClassId, Vec<Value>)>;
}

impl GraphSource for Heap {
    fn node(&self, id: ObjId) -> Option<(ClassId, Vec<Value>)> {
        self.get(id)
            .map(|obj| (obj.class_id(), obj.fields().to_vec()))
    }
}

impl GraphSource for AsOfHeap<'_> {
    fn node(&self, id: ObjId) -> Option<(ClassId, Vec<Value>)> {
        AsOfHeap::node(self, id)
    }
}

/// One event of a canonical trace.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// First visit of an object: class label and number of fields; the
    /// object implicitly receives the next visit index.
    Enter(ClassId, usize),
    /// Reference to an already-visited object, by visit index.
    Back(usize),
    /// A null pointer.
    Null,
    /// An integer leaf.
    Int(i64),
    /// A float leaf, by bit pattern (so comparison is an equivalence).
    Float(u64),
    /// A boolean leaf.
    Bool(bool),
    /// A string leaf (shared storage — snapshotting costs a refcount
    /// bump, not a copy).
    Str(std::rc::Rc<str>),
    /// A reference to an object that is not live (dangling). Recorded
    /// rather than panicking so detection can still compare and report.
    Dangling,
    /// Separator between multiple roots.
    RootSep,
}

/// A snapshot of the object graph(s) of one or more roots — the detection
/// phase's `deep_copy` for comparison purposes.
///
/// ```
/// use atomask_mor::{Profile, RegistryBuilder, Value, Vm};
/// use atomask_objgraph::Snapshot;
///
/// let mut rb = RegistryBuilder::new(Profile::java());
/// rb.class("P", |c| { c.field("x", Value::Int(0)); });
/// let mut vm = Vm::new(rb.build());
/// let p = vm.construct("P", &[])?;
/// vm.root(p);
/// let before = Snapshot::of(vm.heap(), p);
/// vm.heap_mut().set_field(p, "x", Value::Int(1)).unwrap();
/// let after = Snapshot::of(vm.heap(), p);
/// assert_ne!(before, after);
/// # Ok::<(), atomask_mor::Exception>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    events: Vec<Event>,
    objects: usize,
}

impl Snapshot {
    /// Captures the object graph of a single root.
    pub fn of(heap: &Heap, root: ObjId) -> Self {
        Self::of_roots(heap, &[root])
    }

    /// Captures the combined object graphs of several roots (Listing 1
    /// copies the receiver *and* all reference arguments).
    ///
    /// Visit indices are shared across roots, so sharing *between* the
    /// receiver's graph and argument graphs is part of the canonical form.
    pub fn of_roots(heap: &Heap, roots: &[ObjId]) -> Self {
        Self::of_source(heap, roots)
    }

    /// Captures the combined object graphs of several roots from any
    /// [`GraphSource`] — a live heap or an as-of view reconstructed from
    /// an undo log.
    pub fn of_source<S: GraphSource>(source: &S, roots: &[ObjId]) -> Self {
        let mut tracer = Tracer {
            source,
            events: Vec::new(),
            visited: HashMap::new(),
        };
        for (i, &root) in roots.iter().enumerate() {
            if i > 0 {
                tracer.events.push(Event::RootSep);
            }
            tracer.visit(&Value::Ref(root));
        }
        let objects = tracer.visited.len();
        Snapshot {
            events: tracer.events,
            objects,
        }
    }

    /// Number of distinct objects in the captured graph(s).
    pub fn object_count(&self) -> usize {
        self.objects
    }

    /// Deterministic estimate of the snapshot's in-memory size: 16 bytes
    /// per trace event plus the payload of string leaves. Used by capture
    /// accounting (`capture_bytes` in campaign run results), not by
    /// comparison.
    pub fn approx_bytes(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Str(s) => 16 + s.len() as u64,
                _ => 16,
            })
            .sum()
    }

    /// Human-readable description of the first difference from `other`,
    /// or `None` if the snapshots are equal. Used in detection reports to
    /// tell the programmer *what* changed.
    pub fn first_difference(&self, other: &Snapshot) -> Option<String> {
        for (i, (a, b)) in self.events.iter().zip(other.events.iter()).enumerate() {
            if a != b {
                return Some(format!("event {i}: before {a:?}, after {b:?}"));
            }
        }
        match self.events.len().cmp(&other.events.len()) {
            std::cmp::Ordering::Equal => None,
            _ => Some(format!(
                "trace length changed: before {} events, after {}",
                self.events.len(),
                other.events.len()
            )),
        }
    }
}

struct Tracer<'s, S> {
    source: &'s S,
    events: Vec<Event>,
    visited: HashMap<ObjId, usize>,
}

impl<S: GraphSource> Tracer<'_, S> {
    fn visit(&mut self, value: &Value) {
        match value {
            Value::Null => self.events.push(Event::Null),
            Value::Int(v) => self.events.push(Event::Int(*v)),
            Value::Float(v) => self.events.push(Event::Float(v.to_bits())),
            Value::Bool(v) => self.events.push(Event::Bool(*v)),
            Value::Str(s) => self.events.push(Event::Str(s.clone())),
            Value::Ref(id) => {
                if let Some(&idx) = self.visited.get(id) {
                    self.events.push(Event::Back(idx));
                    return;
                }
                // The source hands out an owned field vector, so traversal
                // does not hold a heap borrow across recursion (fields are
                // cheap values).
                let Some((class, fields)) = self.source.node(*id) else {
                    self.events.push(Event::Dangling);
                    return;
                };
                let idx = self.visited.len();
                self.visited.insert(*id, idx);
                self.events.push(Event::Enter(class, fields.len()));
                for f in &fields {
                    self.visit(f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{Profile, Registry, RegistryBuilder, Vm};

    fn registry() -> Registry {
        let mut rb = RegistryBuilder::new(Profile::java());
        rb.class("Node", |c| {
            c.field("next", Value::Null);
            c.field("value", Value::Int(0));
        });
        rb.class("Pair", |c| {
            c.field("a", Value::Null);
            c.field("b", Value::Null);
        });
        rb.build()
    }

    fn vm() -> Vm {
        Vm::new(registry())
    }

    fn node(vm: &mut Vm, value: i64) -> ObjId {
        let id = vm.alloc_raw("Node");
        vm.root(id);
        vm.heap_mut()
            .set_field(id, "value", Value::Int(value))
            .unwrap();
        id
    }

    #[test]
    fn identical_graphs_compare_equal() {
        let mut vm = vm();
        let a = node(&mut vm, 1);
        let s1 = Snapshot::of(vm.heap(), a);
        let s2 = Snapshot::of(vm.heap(), a);
        assert_eq!(s1, s2);
        assert!(s1.first_difference(&s2).is_none());
    }

    #[test]
    fn equality_is_insensitive_to_object_identity() {
        // Two structurally identical chains built from different objects
        // must compare equal (Def. 1 graphs carry no identities).
        let mut vm = vm();
        let a1 = node(&mut vm, 1);
        let a2 = node(&mut vm, 2);
        vm.heap_mut().set_field(a1, "next", Value::Ref(a2)).unwrap();
        let b1 = node(&mut vm, 1);
        let b2 = node(&mut vm, 2);
        vm.heap_mut().set_field(b1, "next", Value::Ref(b2)).unwrap();
        assert_eq!(Snapshot::of(vm.heap(), a1), Snapshot::of(vm.heap(), b1));
    }

    #[test]
    fn field_change_is_detected() {
        let mut vm = vm();
        let a = node(&mut vm, 1);
        let before = Snapshot::of(vm.heap(), a);
        vm.heap_mut().set_field(a, "value", Value::Int(2)).unwrap();
        let after = Snapshot::of(vm.heap(), a);
        assert_ne!(before, after);
        let diff = before.first_difference(&after).unwrap();
        assert!(diff.contains("Int(1)") && diff.contains("Int(2)"), "{diff}");
    }

    #[test]
    fn sharing_is_part_of_the_graph() {
        // Pair(a -> n, b -> n)  vs  Pair(a -> n1, b -> n2) with n1 == n2
        // structurally: Def. 1 says shared children are *the same node*, so
        // these graphs differ.
        let mut vm = vm();
        let shared = node(&mut vm, 7);
        let p1 = vm.alloc_raw("Pair");
        vm.root(p1);
        vm.heap_mut()
            .set_field(p1, "a", Value::Ref(shared))
            .unwrap();
        vm.heap_mut()
            .set_field(p1, "b", Value::Ref(shared))
            .unwrap();

        let n1 = node(&mut vm, 7);
        let n2 = node(&mut vm, 7);
        let p2 = vm.alloc_raw("Pair");
        vm.root(p2);
        vm.heap_mut().set_field(p2, "a", Value::Ref(n1)).unwrap();
        vm.heap_mut().set_field(p2, "b", Value::Ref(n2)).unwrap();

        assert_ne!(Snapshot::of(vm.heap(), p1), Snapshot::of(vm.heap(), p2));
    }

    #[test]
    fn cycles_terminate_and_compare() {
        let mut vm = vm();
        let a = node(&mut vm, 1);
        let b = node(&mut vm, 2);
        vm.heap_mut().set_field(a, "next", Value::Ref(b)).unwrap();
        vm.heap_mut().set_field(b, "next", Value::Ref(a)).unwrap();
        let s1 = Snapshot::of(vm.heap(), a);
        let s2 = Snapshot::of(vm.heap(), a);
        assert_eq!(s1, s2);
        assert_eq!(s1.object_count(), 2);
        // Starting from the other end of the cycle yields a *different*
        // rooted graph (values 2,1 vs 1,2).
        assert_ne!(s1, Snapshot::of(vm.heap(), b));
    }

    #[test]
    fn multi_root_traces_capture_cross_root_sharing() {
        let mut vm = vm();
        let shared = node(&mut vm, 9);
        let r1 = node(&mut vm, 1);
        let r2 = node(&mut vm, 2);
        vm.heap_mut()
            .set_field(r1, "next", Value::Ref(shared))
            .unwrap();
        vm.heap_mut()
            .set_field(r2, "next", Value::Ref(shared))
            .unwrap();
        let shared_trace = Snapshot::of_roots(vm.heap(), &[r1, r2]);

        // Same shape but r2 points at a private copy.
        let priv2 = node(&mut vm, 9);
        let q1 = node(&mut vm, 1);
        let q2 = node(&mut vm, 2);
        let shared2 = node(&mut vm, 9);
        vm.heap_mut()
            .set_field(q1, "next", Value::Ref(shared2))
            .unwrap();
        vm.heap_mut()
            .set_field(q2, "next", Value::Ref(priv2))
            .unwrap();
        let unshared_trace = Snapshot::of_roots(vm.heap(), &[q1, q2]);

        assert_ne!(shared_trace, unshared_trace);
    }

    #[test]
    fn dangling_refs_are_recorded_not_fatal() {
        let mut vm = vm();
        let a = node(&mut vm, 1);
        // A pointer to a node that no longer (or never) existed — the
        // paper's §5.1 limitation 2 (incomplete object graphs): traversal
        // must record the hole rather than abort.
        vm.heap_mut()
            .set_field(a, "next", Value::Ref(ObjId::from_raw(u64::MAX)))
            .unwrap();
        let s = Snapshot::of(vm.heap(), a);
        assert_eq!(s.object_count(), 1);
        assert_eq!(s, Snapshot::of(vm.heap(), a));
    }

    #[test]
    fn asof_snapshot_equals_the_eager_before_snapshot() {
        // Capture eagerly, mutate under a journal layer, then reconstruct
        // the before-state from the undo log: the two canonical traces
        // must be identical events, not merely equivalent.
        let mut vm = vm();
        let a = node(&mut vm, 1);
        let b = node(&mut vm, 2);
        vm.heap_mut().set_field(a, "next", Value::Ref(b)).unwrap();
        let eager = Snapshot::of(vm.heap(), a);
        vm.heap_mut().push_journal();
        let c = node(&mut vm, 3);
        vm.heap_mut().set_field(a, "next", Value::Ref(c)).unwrap();
        vm.heap_mut().set_field(b, "value", Value::Int(9)).unwrap();
        let asof = vm.heap().asof_innermost().unwrap();
        let lazy = Snapshot::of_source(&asof, &[a]);
        assert_eq!(lazy, eager);
        assert_eq!(lazy.approx_bytes(), eager.approx_bytes());
        // And the live heap has of course moved on.
        assert_ne!(Snapshot::of(vm.heap(), a), eager);
    }

    #[test]
    fn approx_bytes_counts_events_and_string_payloads() {
        let mut vm = vm();
        let a = node(&mut vm, 1);
        let plain = Snapshot::of(vm.heap(), a);
        assert_eq!(plain.approx_bytes(), 3 * 16, "Enter + Null + Int");
        vm.heap_mut()
            .set_field(a, "value", Value::from("hello"))
            .unwrap();
        let stringy = Snapshot::of(vm.heap(), a);
        assert_eq!(stringy.approx_bytes(), 3 * 16 + 5);
    }

    #[test]
    fn float_leaves_compare_bitwise() {
        let mut vm = vm();
        let a = node(&mut vm, 0);
        vm.heap_mut()
            .set_field(a, "value", Value::Float(f64::NAN))
            .unwrap();
        let s1 = Snapshot::of(vm.heap(), a);
        let s2 = Snapshot::of(vm.heap(), a);
        assert_eq!(s1, s2, "NaN must equal itself in canonical traces");
    }

    #[test]
    fn object_count_counts_distinct_objects_once() {
        let mut vm = vm();
        let shared = node(&mut vm, 7);
        let p = vm.alloc_raw("Pair");
        vm.root(p);
        vm.heap_mut().set_field(p, "a", Value::Ref(shared)).unwrap();
        vm.heap_mut().set_field(p, "b", Value::Ref(shared)).unwrap();
        assert_eq!(Snapshot::of(vm.heap(), p).object_count(), 2);
    }
}

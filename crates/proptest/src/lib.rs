//! A minimal, deterministic, dependency-free stand-in for the `proptest`
//! crate, covering exactly the surface this workspace uses.
//!
//! The build environment is fully offline (no crates.io access), so the
//! workspace vendors this shim instead of the real crate. It keeps the
//! property-test sources unchanged: `proptest!`, `prop_oneof!`, the
//! `prop_assert*` family, `prop::collection::vec`, `prop::sample::Index`,
//! `any::<T>()`, string char-class strategies, `prop_map` and
//! `prop_recursive` all work as in upstream proptest, with two deliberate
//! simplifications:
//!
//! * sampling is **deterministic**: the RNG is seeded from the test's full
//!   module path and case index, so every run (and every CI machine) sees
//!   the same inputs — reproducibility over raw coverage;
//! * there is **no shrinking**: a failing case panics with the case number,
//!   and the deterministic seeding makes it reproducible as-is.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::rc::Rc;

/// Deterministic split-mix style pseudo-random generator.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Generator for one test case: mixes the per-test seed with the case
    /// index.
    pub fn for_case(seed: u64, case: u32) -> Self {
        let mut rng = TestRng::new(seed.wrapping_add(0x632b_e5ab * case as u64 + 1));
        // Warm the state so nearby seeds diverge immediately.
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty sampling range");
        // Multiply-shift reduction is unbiased enough for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Hashes a test path into a seed (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A source of generated values.
///
/// Unlike upstream proptest there is no value tree: a strategy samples a
/// concrete value directly from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous nesting level and returns the strategy for the next one,
    /// applied `depth` times starting from `self` (the leaf level). The
    /// `_desired_size`/`_expected_branch` hints of upstream proptest are
    /// accepted and ignored — bounded structural depth already guarantees
    /// termination.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level: BoxedStrategy<Self::Value> = self.boxed();
        for _ in 0..depth {
            level = f(level).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy (clonable, unlike a `Box`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies from a character-class pattern — the subset of
/// proptest's regex strategies this workspace uses: literal characters,
/// `[a-z0-9 ]` classes, and `{m,n}` / `{n}` / `?` / `*` / `+` repetition.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // One unit: a char class or a literal character...
        let set: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated class in pattern `{pattern}`"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    set.extend((lo..=hi).filter(char::is_ascii));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!set.is_empty(), "empty class in pattern `{pattern}`");
        // ...followed by an optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0u64, 1u64)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated quantifier in `{pattern}`"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier min"),
                        n.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        let count = min + rng.below(max - min + 1);
        for _ in 0..count {
            out.push(set[rng.below(set.len() as u64) as usize]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<usize>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted choice between type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Creates a union from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for vectors whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — a vector of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Projects the index into `[0, len)`; `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// The `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; there is no
/// shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted or unweighted choice between strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// Supports the upstream shape used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed =
                $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(seed, case);
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                // The closure gives `prop_assume!` (an early `return`) a
                // per-case scope.
                let run_case = move || $body;
                run_case();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = Strategy::sample(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn patterns_match_their_classes() {
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let s = Strategy::sample(&"[a-z][a-z0-9]{0,5}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn oneof_respects_weights_loosely() {
        let strat = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let mut rng = TestRng::new(23);
        let hits = (0..400).filter(|_| strat.sample(&mut rng)).count();
        assert!(
            hits > 300,
            "expected the 90% arm to dominate, got {hits}/400"
        );
    }

    #[test]
    fn vec_and_tuples_compose() {
        let strat = prop::collection::vec((0u8..4, any::<bool>()), 1..5);
        let mut rng = TestRng::new(42);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 4));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(5);
        for _ in 0..50 {
            assert!(depth(&strat.sample(&mut rng)) <= 4);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec(0i64..100, 1..20);
        let a: Vec<_> = {
            let mut rng = TestRng::for_case(99, 3);
            strat.sample(&mut rng)
        };
        let b: Vec<_> = {
            let mut rng = TestRng::for_case(99, 3);
            strat.sample(&mut rng)
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u8..10, flip in any::<bool>()) {
            prop_assume!(x > 0 || flip);
            prop_assert!(x < 10);
            prop_assert_eq!(x as u64 + 1, (x + 1) as u64);
        }
    }
}

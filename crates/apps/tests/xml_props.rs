//! Property tests of the Self\* XML substrate: parse∘serialize is the
//! identity on generated documents, and parsing never dirties the parser.

use atomask_mor::{ObjId, Value, Vm};
use proptest::prelude::*;

/// A generated XML document model.
#[derive(Debug, Clone)]
struct Elem {
    tag: String,
    attrs: Vec<(String, String)>,
    text: String,
    children: Vec<Elem>,
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}".prop_map(|s| s)
}

fn elem_strategy() -> impl Strategy<Value = Elem> {
    let leaf = (
        name_strategy(),
        prop::collection::vec((name_strategy(), "[a-z0-9 ]{0,6}"), 0..3),
        "[a-z0-9]{0,8}",
    )
        .prop_map(|(tag, attrs, text)| Elem {
            tag,
            attrs,
            text,
            children: Vec::new(),
        });
    leaf.prop_recursive(3, 16, 3, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), "[a-z0-9 ]{0,6}"), 0..3),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, attrs, children)| Elem {
                tag,
                attrs,
                text: String::new(),
                children,
            })
    })
}

/// Serializes the model the way `XmlWriter` does (compact form), after
/// deduplicating attribute names (the parser keeps duplicates, but a
/// canonical document should not have them).
fn render(elem: &Elem) -> String {
    let mut out = format!("<{}", elem.tag);
    let mut seen = std::collections::HashSet::new();
    for (k, v) in &elem.attrs {
        if seen.insert(k.clone()) {
            out.push_str(&format!(" {k}=\"{v}\""));
        }
    }
    if elem.text.is_empty() && elem.children.is_empty() {
        out.push_str("/>");
        return out;
    }
    out.push('>');
    out.push_str(&elem.text);
    for c in &elem.children {
        out.push_str(&render(c));
    }
    out.push_str(&format!("</{}>", elem.tag));
    out
}

fn xml_vm() -> Vm {
    // Reuse the full xml2xml registry, which registers the XML substrate.
    Vm::new(atomask_apps::selfstar::xml2xml::build_registry())
}

fn parse(vm: &mut Vm, doc: &str) -> Result<ObjId, atomask_mor::Exception> {
    let p = vm.construct("XmlParser", &[Value::from(doc)])?;
    vm.root(p);
    let root = vm.call(p, "parseDocument", &[])?;
    Ok(root.as_ref_id().expect("document root"))
}

fn serialize(vm: &mut Vm, root: ObjId) -> String {
    let w = vm.construct("XmlWriter", &[]).expect("ctor");
    vm.root(w);
    vm.call(w, "writeDoc", &[Value::Ref(root)])
        .expect("serialization cannot fail")
        .as_str()
        .expect("writer returns a string")
        .to_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// parse ∘ serialize is the identity on canonical documents.
    #[test]
    fn parse_serialize_round_trips(doc in elem_strategy()) {
        let rendered = render(&doc);
        let mut vm = xml_vm();
        let root = parse(&mut vm, &rendered).expect("generated docs are valid");
        prop_assert_eq!(serialize(&mut vm, root), rendered);
    }

    /// Serializing, reparsing and reserializing is stable (idempotence of
    /// the canonical form).
    #[test]
    fn serialization_is_idempotent(doc in elem_strategy()) {
        let rendered = render(&doc);
        let mut vm = xml_vm();
        let root = parse(&mut vm, &rendered).expect("valid");
        let once = serialize(&mut vm, root);
        let root2 = parse(&mut vm, &once).expect("writer output is valid");
        prop_assert_eq!(serialize(&mut vm, root2), once);
    }

    /// The parser object's graph is untouched by parsing — success or
    /// failure (the exception-safe style that keeps it failure atomic).
    #[test]
    fn parser_state_is_never_dirtied(doc in elem_strategy(), cut in any::<prop::sample::Index>()) {
        use atomask_objgraph::Snapshot;
        let rendered = render(&doc);
        // Truncate somewhere to produce a (usually) malformed document.
        let cut = cut.index(rendered.len().max(1));
        let broken: String = rendered.chars().take(cut).collect();
        let mut vm = xml_vm();
        let p = vm
            .construct("XmlParser", &[Value::from(broken)])
            .expect("ctor");
        vm.root(p);
        let before = Snapshot::of(vm.heap(), p);
        let _ = vm.call(p, "parseDocument", &[]);
        prop_assert_eq!(Snapshot::of(vm.heap(), p), before);
    }

    /// Attribute lookup agrees with the model.
    #[test]
    fn attribute_lookup_matches_model(doc in elem_strategy()) {
        let rendered = render(&doc);
        let mut vm = xml_vm();
        let root = parse(&mut vm, &rendered).expect("valid");
        let mut seen = std::collections::HashSet::new();
        for (k, v) in &doc.attrs {
            if !seen.insert(k.clone()) {
                continue; // deduplicated at render time
            }
            let got = vm
                .call(root, "attr", &[Value::from(k.clone())])
                .unwrap();
            prop_assert_eq!(got, Value::from(v.clone()));
        }
        let missing = vm
            .call(root, "attr", &[Value::Str("zzz-missing".into())])
            .unwrap();
        prop_assert_eq!(missing, Value::Null);
    }
}

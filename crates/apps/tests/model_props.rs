//! Model-based property tests: each collection application behaves like
//! its `std` counterpart under random operation sequences — with and
//! without atomicity wrappers installed.

use atomask_apps::collections;
use atomask_mask::MaskingHook;
use atomask_mor::{ObjId, Value, Vm};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

fn int(v: i64) -> Value {
    Value::Int(v)
}

/// Installs deep-copy wrappers on *every* method — masking must be
/// behaviour-preserving on fault-free runs, so the models must still agree.
fn mask_everything(vm: &mut Vm) {
    let all: std::collections::HashSet<_> = vm.registry().method_ids().collect();
    vm.set_hook(Some(Rc::new(RefCell::new(MaskingHook::new(all)))));
}

#[derive(Debug, Clone)]
enum ListOp {
    PushFront(i64),
    PushBack(i64),
    PopFront,
    PopBack,
    InsertAt(usize, i64),
    RemoveAt(usize),
    Reverse,
}

fn list_op() -> impl Strategy<Value = ListOp> {
    prop_oneof![
        (0i64..50).prop_map(ListOp::PushFront),
        (0i64..50).prop_map(ListOp::PushBack),
        Just(ListOp::PopFront),
        Just(ListOp::PopBack),
        (any::<usize>(), 0i64..50).prop_map(|(i, v)| ListOp::InsertAt(i, v)),
        any::<usize>().prop_map(ListOp::RemoveAt),
        Just(ListOp::Reverse),
    ]
}

fn run_list_ops(vm: &mut Vm, list: ObjId, ops: &[ListOp]) -> VecDeque<i64> {
    let mut model: VecDeque<i64> = VecDeque::new();
    for op in ops {
        match op {
            ListOp::PushFront(v) => {
                vm.call(list, "insertFirst", &[int(*v)]).unwrap();
                model.push_front(*v);
            }
            ListOp::PushBack(v) => {
                vm.call(list, "insertLast", &[int(*v)]).unwrap();
                model.push_back(*v);
            }
            ListOp::PopFront => {
                let got = vm.call(list, "removeFirst", &[]);
                match model.pop_front() {
                    Some(v) => assert_eq!(got.unwrap(), int(v)),
                    None => assert!(got.is_err()),
                }
            }
            ListOp::PopBack => {
                let got = vm.call(list, "removeLast", &[]);
                match model.pop_back() {
                    Some(v) => assert_eq!(got.unwrap(), int(v)),
                    None => assert!(got.is_err()),
                }
            }
            ListOp::InsertAt(i, v) => {
                if model.is_empty() {
                    continue;
                }
                let i = i % (model.len() + 1);
                vm.call(list, "insertAt", &[int(i as i64), int(*v)])
                    .unwrap();
                model.insert(i, *v);
            }
            ListOp::RemoveAt(i) => {
                if model.is_empty() {
                    continue;
                }
                let i = i % model.len();
                let got = vm.call(list, "removeAt", &[int(i as i64)]).unwrap();
                assert_eq!(got, int(model.remove(i).unwrap()));
            }
            ListOp::Reverse => {
                vm.call(list, "reverse", &[]).unwrap();
                model = model.into_iter().rev().collect();
            }
        }
    }
    model
}

fn check_list_matches(vm: &mut Vm, list: ObjId, model: &VecDeque<i64>) {
    let size = vm.call(list, "size", &[]).unwrap().as_int().unwrap();
    assert_eq!(size as usize, model.len());
    for (i, v) in model.iter().enumerate() {
        assert_eq!(vm.call(list, "at", &[int(i as i64)]).unwrap(), int(*v));
    }
    assert_eq!(
        vm.call(list, "checkInvariant", &[]).unwrap(),
        Value::Bool(true)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linked_list_matches_vecdeque(ops in prop::collection::vec(list_op(), 1..40)) {
        for (buggy, masked) in [(true, false), (false, false), (true, true)] {
            let registry = if buggy {
                collections::linked_list::build_registry()
            } else {
                collections::linked_list::fixed_registry()
            };
            let mut vm = Vm::new(registry);
            if masked {
                mask_everything(&mut vm);
            }
            let list = vm.construct("LinkedList", &[]).unwrap();
            vm.root(list);
            let model = run_list_ops(&mut vm, list, &ops);
            check_list_matches(&mut vm, list, &model);
        }
    }

    #[test]
    fn dynarray_matches_vec(
        ops in prop::collection::vec((0u8..4, any::<usize>(), 0i64..50), 1..40)
    ) {
        let mut vm = Vm::new(collections::dynarray::build_registry());
        let arr = vm.construct("Dynarray", &[int(2)]).unwrap();
        vm.root(arr);
        let mut model: Vec<i64> = Vec::new();
        for (kind, i, v) in ops {
            match kind {
                0 => {
                    vm.call(arr, "append", &[int(v)]).unwrap();
                    model.push(v);
                }
                1 if !model.is_empty() => {
                    let i = i % model.len();
                    vm.call(arr, "setAt", &[int(i as i64), int(v)]).unwrap();
                    model[i] = v;
                }
                2 if !model.is_empty() => {
                    let i = i % model.len();
                    let got = vm.call(arr, "removeAt", &[int(i as i64)]).unwrap();
                    prop_assert_eq!(got, int(model.remove(i)));
                }
                3 => {
                    let i = i % (model.len() + 1);
                    vm.call(arr, "insertAt", &[int(i as i64), int(v)]).unwrap();
                    model.insert(i, v);
                }
                _ => {}
            }
        }
        let size = vm.call(arr, "size", &[]).unwrap().as_int().unwrap();
        prop_assert_eq!(size as usize, model.len());
        for (i, v) in model.iter().enumerate() {
            prop_assert_eq!(vm.call(arr, "at", &[int(i as i64)]).unwrap(), int(*v));
        }
    }

    #[test]
    fn hashed_map_matches_hashmap(
        ops in prop::collection::vec((0u8..3, 0i64..25, 0i64..100), 1..60)
    ) {
        let mut vm = Vm::new(collections::hashed_map::build_registry());
        let map = vm.construct("HashedMap", &[]).unwrap();
        vm.root(map);
        let mut model: std::collections::HashMap<i64, i64> = Default::default();
        for (kind, k, v) in ops {
            match kind {
                0 => {
                    let got = vm.call(map, "put", &[int(k), int(v)]).unwrap();
                    let expected = model.insert(k, v);
                    prop_assert_eq!(got, expected.map(int).unwrap_or(Value::Null));
                }
                1 => {
                    let got = vm.call(map, "remove", &[int(k)]).unwrap();
                    let expected = model.remove(&k);
                    prop_assert_eq!(got, expected.map(int).unwrap_or(Value::Null));
                }
                _ => {
                    let got = vm.call(map, "get", &[int(k)]).unwrap();
                    let expected = model.get(&k).copied();
                    prop_assert_eq!(got, expected.map(int).unwrap_or(Value::Null));
                }
            }
        }
        let size = vm.call(map, "size", &[]).unwrap().as_int().unwrap();
        prop_assert_eq!(size as usize, model.len());
        prop_assert_eq!(
            vm.call(map, "checkInvariant", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn hashed_set_matches_hashset(
        ops in prop::collection::vec((0u8..3, 0i64..25), 1..60)
    ) {
        let mut vm = Vm::new(collections::hashed_set::build_registry());
        let set = vm.construct("HashedSet", &[]).unwrap();
        vm.root(set);
        let mut model: std::collections::HashSet<i64> = Default::default();
        for (kind, k) in ops {
            match kind {
                0 => {
                    let got = vm.call(set, "add", &[int(k)]).unwrap();
                    prop_assert_eq!(got, Value::Bool(model.insert(k)));
                }
                1 => {
                    let got = vm.call(set, "remove", &[int(k)]).unwrap();
                    prop_assert_eq!(got, Value::Bool(model.remove(&k)));
                }
                _ => {
                    let got = vm.call(set, "contains", &[int(k)]).unwrap();
                    prop_assert_eq!(got, Value::Bool(model.contains(&k)));
                }
            }
        }
        let size = vm.call(set, "size", &[]).unwrap().as_int().unwrap();
        prop_assert_eq!(size as usize, model.len());
    }

    #[test]
    fn rbmap_matches_btreemap_with_masking(
        ops in prop::collection::vec((0u8..2, 0i64..30, 0i64..100), 1..50)
    ) {
        let mut vm = Vm::new(collections::rbmap::build_registry());
        mask_everything(&mut vm);
        let map = vm.construct("RBMap", &[]).unwrap();
        vm.root(map);
        let mut model: std::collections::BTreeMap<i64, i64> = Default::default();
        for (kind, k, v) in ops {
            match kind {
                0 => {
                    let got = vm.call(map, "put", &[int(k), int(v)]).unwrap();
                    prop_assert_eq!(got, model.insert(k, v).map(int).unwrap_or(Value::Null));
                }
                _ => {
                    let got = vm.call(map, "remove", &[int(k)]).unwrap();
                    prop_assert_eq!(got, model.remove(&k).map(int).unwrap_or(Value::Null));
                }
            }
            prop_assert!(collections::rbmap::invariant_holds(&vm, map));
        }
        for (k, v) in &model {
            prop_assert_eq!(vm.call(map, "get", &[int(*k)]).unwrap(), int(*v));
        }
    }

    #[test]
    fn regexp_agrees_with_reference_on_simple_patterns(
        pattern_atoms in prop::collection::vec(
            prop_oneof![Just("a"), Just("b"), Just("."), Just("a*"), Just("b?")],
            1..5
        ),
        input in "[ab]{0,6}",
    ) {
        let pattern: String = pattern_atoms.concat();
        let mut vm = Vm::new(atomask_apps::regexp::build_registry());
        let re = vm
            .construct("RegExp", &[Value::from(pattern.clone())])
            .expect("generated patterns are valid");
        vm.root(re);
        let got = vm
            .call(re, "matches", &[Value::from(input.clone())])
            .unwrap()
            .as_bool()
            .unwrap();
        // Reference: a tiny host-side backtracking matcher over the same
        // restricted syntax.
        let expected = reference_match(&pattern, &input);
        prop_assert_eq!(got, expected, "pattern {:?} vs {:?}", pattern, input);
    }
}

/// Reference matcher for the restricted generated syntax (literals, `.`,
/// postfix `*`/`?`), full match.
fn reference_match(pattern: &str, input: &str) -> bool {
    #[derive(Debug)]
    enum Tok {
        Char(char),
        Any,
        Star(Box<Tok>),
        Opt(Box<Tok>),
    }
    let mut toks = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let base = match chars[i] {
            '.' => Tok::Any,
            c => Tok::Char(c),
        };
        i += 1;
        match chars.get(i) {
            Some('*') => {
                toks.push(Tok::Star(Box::new(base)));
                i += 1;
            }
            Some('?') => {
                toks.push(Tok::Opt(Box::new(base)));
                i += 1;
            }
            _ => toks.push(base),
        }
    }
    fn single(t: &Tok, c: char) -> bool {
        match t {
            Tok::Char(x) => *x == c,
            Tok::Any => true,
            _ => unreachable!("nested postfix"),
        }
    }
    fn go(toks: &[Tok], input: &[char]) -> bool {
        match toks.first() {
            None => input.is_empty(),
            Some(Tok::Star(inner)) => {
                if go(&toks[1..], input) {
                    return true;
                }
                let mut k = 0;
                while k < input.len() && single(inner, input[k]) {
                    k += 1;
                    if go(&toks[1..], &input[k..]) {
                        return true;
                    }
                }
                false
            }
            Some(Tok::Opt(inner)) => {
                if !input.is_empty() && single(inner, input[0]) && go(&toks[1..], &input[1..]) {
                    return true;
                }
                go(&toks[1..], input)
            }
            Some(t) => !input.is_empty() && single(t, input[0]) && go(&toks[1..], &input[1..]),
        }
    }
    let input: Vec<char> = input.chars().collect();
    go(&toks, &input)
}

//! Shared Self\*-style component substrate: channels, sinks, and the stock
//! adaptors reused by several applications.

use crate::util::int;
use atomask_mor::{RegistryBuilder, Value};

/// Registers the `Channel` class: a typed output port bound to a sink
/// component and a method name. `send` is a pure delegator.
pub(crate) fn register_channel(rb: &mut RegistryBuilder) {
    rb.class("Channel", |c| {
        c.field("sink", Value::Null);
        c.field("port", Value::from("push"));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "sink", args[0].clone());
            if let Some(p) = args.get(1) {
                ctx.set(this, "port", p.clone());
            }
            Ok(Value::Null)
        });
        c.method("send", |ctx, this, args| {
            let sink = ctx.get(this, "sink");
            let port = ctx.get_str(this, "port");
            ctx.call_value(&sink, &port, args)
        });
        c.method("rebind", |ctx, this, args| {
            ctx.set(this, "sink", args[0].clone());
            Ok(Value::Null)
        });
    });
}

/// Registers the `Sink` class: collects values; all mutations are direct
/// field writes, so every method is failure atomic.
pub(crate) fn register_sink(rb: &mut RegistryBuilder) {
    rb.class("Sink", |c| {
        c.field("received", int(0));
        c.field("sum", int(0));
        c.field("last", Value::Null);
        c.field("log", Value::from(""));
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("push", |ctx, this, args| {
            let received = ctx.get_int(this, "received");
            let sum = ctx.get_int(this, "sum");
            let add = args[0].as_int().unwrap_or(0);
            let log = ctx.get_str(this, "log");
            ctx.set(this, "received", int(received + 1));
            ctx.set(this, "sum", int(sum + add));
            ctx.set(this, "last", args[0].clone());
            ctx.set(this, "log", Value::from(format!("{log}{},", args[0])));
            Ok(Value::Null)
        });
        c.method("received", |ctx, this, _| Ok(ctx.get(this, "received")));
        c.method("sum", |ctx, this, _| Ok(ctx.get(this, "sum")));
        c.method("last", |ctx, this, _| Ok(ctx.get(this, "last")));
        c.method("log", |ctx, this, _| Ok(ctx.get(this, "log")));
        c.method("reset", |ctx, this, _| {
            ctx.set(this, "received", int(0));
            ctx.set(this, "sum", int(0));
            ctx.set(this, "last", Value::Null);
            ctx.set(this, "log", Value::from(""));
            Ok(Value::Null)
        });
    });
}

/// Registers the stock adaptors. Each holds an output `Channel`, transforms
/// the value, forwards it, and only then updates its statistics
/// (compute-first / commit-last: atomic as long as its callees are).
pub(crate) fn register_adaptors(rb: &mut RegistryBuilder) {
    rb.class("Doubler", |c| {
        c.field("out", Value::Null);
        c.field("processed", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "out", args[0].clone());
            Ok(Value::Null)
        });
        c.method("push", |ctx, this, args| {
            let v = args[0].as_int().unwrap_or(0);
            let out = ctx.get(this, "out");
            ctx.call_value(&out, "send", &[int(v * 2)])?;
            let n = ctx.get_int(this, "processed");
            ctx.set(this, "processed", int(n + 1));
            Ok(Value::Null)
        });
        c.method("processed", |ctx, this, _| Ok(ctx.get(this, "processed")));
    });
    rb.class("Offset", |c| {
        c.field("out", Value::Null);
        c.field("delta", int(0));
        c.field("processed", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "out", args[0].clone());
            if let Some(d) = args.get(1) {
                ctx.set(this, "delta", d.clone());
            }
            Ok(Value::Null)
        });
        c.method("push", |ctx, this, args| {
            let v = args[0].as_int().unwrap_or(0);
            let delta = ctx.get_int(this, "delta");
            let out = ctx.get(this, "out");
            ctx.call_value(&out, "send", &[int(v + delta)])?;
            let n = ctx.get_int(this, "processed");
            ctx.set(this, "processed", int(n + 1));
            Ok(Value::Null)
        });
        c.method("processed", |ctx, this, _| Ok(ctx.get(this, "processed")));
    });
    rb.class("Clamp", |c| {
        c.field("out", Value::Null);
        c.field("lo", int(i64::MIN));
        c.field("hi", int(i64::MAX));
        c.field("clamped", int(0));
        c.field("processed", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "out", args[0].clone());
            Ok(Value::Null)
        });
        c.method("push", |ctx, this, args| {
            let v = args[0].as_int().unwrap_or(0);
            let lo = ctx.get_int(this, "lo");
            let hi = ctx.get_int(this, "hi");
            // max/min rather than clamp: a failed reconfiguration can
            // leave lo > hi (that is the planted bug), and the component
            // must misbehave gracefully rather than abort.
            let cv = v.max(lo).min(hi);
            let out = ctx.get(this, "out");
            ctx.call_value(&out, "send", &[int(cv)])?;
            let n = ctx.get_int(this, "processed");
            ctx.set(this, "processed", int(n + 1));
            if cv != v {
                let k = ctx.get_int(this, "clamped");
                ctx.set(this, "clamped", int(k + 1));
            }
            Ok(Value::Null)
        });
        c.method("processed", |ctx, this, _| Ok(ctx.get(this, "processed")));
        c.method("clamped", |ctx, this, _| Ok(ctx.get(this, "clamped")));
        c.method("checkBounds", |ctx, this, _| {
            let lo = ctx.get_int(this, "lo");
            let hi = ctx.get_int(this, "hi");
            if lo > hi {
                return Err(ctx.exception("ConfigError", "lo > hi"));
            }
            Ok(Value::Null)
        })
        .throws("ConfigError");
        // The one sloppy method of the chain: a reconfiguration path that
        // writes `lo`, *then* validates (a call), *then* writes `hi`. Runs
        // only when an operator reconfigures the component — rarely.
        c.method("reconfigure", |ctx, this, args| {
            ctx.set(this, "lo", args[0].clone());
            ctx.call(this, "checkBounds", &[])?;
            ctx.set(this, "hi", args[1].clone());
            ctx.call(this, "checkBounds", &[])?;
            Ok(Value::Null)
        })
        .throws("ConfigError");
    });
    rb.class("Tee", |c| {
        c.field("left", Value::Null);
        c.field("right", Value::Null);
        c.field("processed", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "left", args[0].clone());
            ctx.set(this, "right", args[1].clone());
            Ok(Value::Null)
        });
        // Duplicates each value to both outputs; a failure between the two
        // sends leaves them observably diverged (conditional non-atomic).
        c.method("push", |ctx, this, args| {
            let left = ctx.get(this, "left");
            ctx.call_value(&left, "send", &[args[0].clone()])?;
            let right = ctx.get(this, "right");
            ctx.call_value(&right, "send", &[args[0].clone()])?;
            let n = ctx.get_int(this, "processed");
            ctx.set(this, "processed", int(n + 1));
            Ok(Value::Null)
        });
        c.method("processed", |ctx, this, _| Ok(ctx.get(this, "processed")));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{Profile, Vm};

    fn vm() -> Vm {
        let mut rb = RegistryBuilder::new(Profile::cpp());
        register_channel(&mut rb);
        register_sink(&mut rb);
        register_adaptors(&mut rb);
        Vm::new(rb.build())
    }

    #[test]
    fn channel_routes_to_sink_port() {
        let mut vm = vm();
        let sink = vm.construct("Sink", &[]).unwrap();
        vm.root(sink);
        let ch = vm
            .construct("Channel", &[Value::Ref(sink), Value::Str("push".into())])
            .unwrap();
        vm.root(ch);
        vm.call(ch, "send", &[int(7)]).unwrap();
        assert_eq!(vm.call(sink, "sum", &[]).unwrap(), int(7));
        assert_eq!(vm.call(sink, "received", &[]).unwrap(), int(1));
    }

    #[test]
    fn adaptors_compose() {
        let mut vm = vm();
        let sink = vm.construct("Sink", &[]).unwrap();
        vm.root(sink);
        let ch_sink = vm.construct("Channel", &[Value::Ref(sink)]).unwrap();
        vm.root(ch_sink);
        let doubler = vm.construct("Doubler", &[Value::Ref(ch_sink)]).unwrap();
        vm.root(doubler);
        let ch_doubler = vm.construct("Channel", &[Value::Ref(doubler)]).unwrap();
        vm.root(ch_doubler);
        let offset = vm
            .construct("Offset", &[Value::Ref(ch_doubler), int(3)])
            .unwrap();
        vm.root(offset);
        // offset(+3) then double: (5+3)*2 = 16
        vm.call(offset, "push", &[int(5)]).unwrap();
        assert_eq!(vm.call(sink, "last", &[]).unwrap(), int(16));
        assert_eq!(vm.call(doubler, "processed", &[]).unwrap(), int(1));
    }

    #[test]
    fn clamp_reconfigure_validates() {
        let mut vm = vm();
        let sink = vm.construct("Sink", &[]).unwrap();
        vm.root(sink);
        let ch = vm.construct("Channel", &[Value::Ref(sink)]).unwrap();
        vm.root(ch);
        let clamp = vm.construct("Clamp", &[Value::Ref(ch)]).unwrap();
        vm.root(clamp);
        vm.call(clamp, "reconfigure", &[int(0), int(10)]).unwrap();
        vm.call(clamp, "push", &[int(50)]).unwrap();
        assert_eq!(vm.call(sink, "last", &[]).unwrap(), int(10));
        assert_eq!(vm.call(clamp, "clamped", &[]).unwrap(), int(1));
        // Invalid reconfiguration throws — and leaves `lo` dirty, the
        // planted non-atomicity.
        let err = vm
            .call(clamp, "reconfigure", &[int(99), int(5)])
            .unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), "ConfigError");
        assert_eq!(vm.heap().field(clamp, "lo"), Some(int(99)));
        assert_eq!(vm.heap().field(clamp, "hi"), Some(int(10)));
    }

    #[test]
    fn tee_duplicates() {
        let mut vm = vm();
        let a = vm.construct("Sink", &[]).unwrap();
        vm.root(a);
        let b = vm.construct("Sink", &[]).unwrap();
        vm.root(b);
        let ca = vm.construct("Channel", &[Value::Ref(a)]).unwrap();
        vm.root(ca);
        let cb = vm.construct("Channel", &[Value::Ref(b)]).unwrap();
        vm.root(cb);
        let tee = vm
            .construct("Tee", &[Value::Ref(ca), Value::Ref(cb)])
            .unwrap();
        vm.root(tee);
        vm.call(tee, "push", &[int(4)]).unwrap();
        assert_eq!(vm.call(a, "sum", &[]).unwrap(), int(4));
        assert_eq!(vm.call(b, "sum", &[]).unwrap(), int(4));
    }
}

//! The `xml2xml1` application: XML-to-XML transformation — parse a
//! document, rewrite it (tag renaming + attribute stripping), and
//! serialize the result.

use super::xml::register_xml;
use crate::util::{absorb, int, rooted, s};
use atomask_mor::{FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

fn register(rb: &mut RegistryBuilder) {
    register_xml(rb);
    rb.class("Transformer", |c| {
        c.field("fromTag", Value::from(""));
        c.field("toTag", Value::from(""));
        c.field("stripAttrs", Value::Bool(false));
        c.field("nodesRewritten", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "fromTag", args[0].clone());
            ctx.set(this, "toTag", args[1].clone());
            if let Some(strip) = args.get(2) {
                ctx.set(this, "stripAttrs", strip.clone());
            }
            Ok(Value::Null)
        });
        // Builds a *fresh* transformed tree through return values — failure
        // atomic by construction (transformer state untouched during the
        // recursion; the counter is committed by `transformDoc` at the end).
        c.method("transform", |ctx, this, args| {
            let elem = match &args[0] {
                Value::Ref(id) => *id,
                _ => return Ok(Value::Null),
            };
            let from = ctx.get_str(this, "fromTag");
            let to = ctx.get_str(this, "toTag");
            let strip = ctx.get_bool(this, "stripAttrs");
            let tag = ctx.get_str(elem, "tag");
            let fresh = ctx.alloc("XmlElem");
            ctx.set(fresh, "tag", s(if tag == from { &to } else { &tag }));
            let text = ctx.get(elem, "text");
            ctx.set(fresh, "text", text);
            if !strip {
                // Copy the attribute chain into fresh nodes.
                let mut src = ctx.get(elem, "firstAttr");
                let mut last: Option<atomask_mor::ObjId> = None;
                while let Value::Ref(a) = src {
                    let copy = ctx.alloc("XmlAttr");
                    let name = ctx.get(a, "name");
                    ctx.set(copy, "name", name);
                    let value = ctx.get(a, "value");
                    ctx.set(copy, "value", value);
                    match last {
                        None => ctx.set(fresh, "firstAttr", Value::Ref(copy)),
                        Some(prev) => ctx.set(prev, "next", Value::Ref(copy)),
                    }
                    last = Some(copy);
                    src = ctx.get(a, "next");
                }
            }
            let mut child = ctx.get(elem, "firstChild");
            let mut last_child: Option<atomask_mor::ObjId> = None;
            while let Value::Ref(cid) = child {
                let sub = ctx.call(this, "transform", &[Value::Ref(cid)])?;
                let sub_id = sub.as_ref_id().expect("transform returns element");
                match last_child {
                    None => ctx.set(fresh, "firstChild", sub),
                    Some(prev) => ctx.set(prev, "nextSibling", sub),
                }
                last_child = Some(sub_id);
                child = ctx.get(cid, "nextSibling");
            }
            Ok(Value::Ref(fresh))
        });
        // Counts the rewritten nodes of a fresh tree (read-only walk).
        c.method("countNodes", |ctx, this, args| {
            let mut n = 0i64;
            let mut stack = vec![args[0].clone()];
            while let Some(v) = stack.pop() {
                if let Value::Ref(id) = v {
                    n += 1;
                    stack.push(ctx.get(id, "firstChild"));
                    stack.push(ctx.get(id, "nextSibling"));
                }
            }
            let _ = this;
            Ok(int(n))
        });
        // Commit-last wrapper around the recursion.
        c.method("transformDoc", |ctx, this, args| {
            let out = ctx.call(this, "transform", &[args[0].clone()])?;
            let n = ctx.call(this, "countNodes", &[out.clone()])?;
            let total = ctx.get_int(this, "nodesRewritten");
            ctx.set(this, "nodesRewritten", int(total + n.as_int().unwrap_or(0)));
            Ok(out)
        });
        c.method("nodesRewritten", |ctx, this, _| {
            Ok(ctx.get(this, "nodesRewritten"))
        });
    });
    rb.class("Xml2Xml", |c| {
        c.field("parser", Value::Null);
        c.field("transformer", Value::Null);
        c.field("writer", Value::Null);
        c.field("docs", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "parser", args[0].clone());
            ctx.set(this, "transformer", args[1].clone());
            ctx.set(this, "writer", args[2].clone());
            Ok(Value::Null)
        });
        c.method("processDoc", |ctx, this, args| {
            let parser = ctx.get(this, "parser");
            ctx.call_value(&parser, "setInput", &[args[0].clone()])?;
            let root = ctx.call_value(&parser, "parseDocument", &[])?;
            let transformer = ctx.get(this, "transformer");
            let rewritten = ctx.call_value(&transformer, "transformDoc", &[root])?;
            let writer = ctx.get(this, "writer");
            let out = ctx.call_value(&writer, "writeDoc", &[rewritten])?;
            let docs = ctx.get_int(this, "docs");
            ctx.set(this, "docs", int(docs + 1));
            Ok(out)
        })
        .throws("XmlError");
        c.method("docs", |ctx, this, _| Ok(ctx.get(this, "docs")));
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    let parser = rooted(vm, "XmlParser", &[s("")])?;
    let transformer = rooted(
        vm,
        "Transformer",
        &[s("item"), s("entry"), Value::Bool(false)],
    )?;
    let writer = rooted(vm, "XmlWriter", &[])?;
    let app = rooted(vm, "Xml2Xml", &[parser, transformer.clone(), writer])?;
    let app_id = app.as_ref_id().expect("ref");

    for doc in [
        r#"<list><item id="1">one</item><item id="2">two</item></list>"#,
        r#"<item><item/></item>"#,
        r#"<empty/>"#,
    ] {
        vm.call(app_id, "processDoc", &[s(doc)])?;
    }
    absorb(vm.call(app_id, "processDoc", &[s("<bad<")]));
    let t = transformer.as_ref_id().expect("ref");
    for _ in 0..2 {
        absorb(vm.call(app_id, "docs", &[]));
        absorb(vm.call(t, "nodesRewritten", &[]));
    }
    Ok(Value::Null)
}

/// The `xml2xml1` program.
pub fn program() -> FnProgram {
    FnProgram::new("xml2xml1", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::cpp());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::Program;

    fn app(vm: &mut Vm, strip: bool) -> atomask_mor::ObjId {
        let parser = vm.construct("XmlParser", &[s("")]).unwrap();
        vm.root(parser);
        let transformer = vm
            .construct("Transformer", &[s("item"), s("entry"), Value::Bool(strip)])
            .unwrap();
        vm.root(transformer);
        let writer = vm.construct("XmlWriter", &[]).unwrap();
        vm.root(writer);
        let a = vm
            .construct(
                "Xml2Xml",
                &[
                    Value::Ref(parser),
                    Value::Ref(transformer),
                    Value::Ref(writer),
                ],
            )
            .unwrap();
        vm.root(a);
        a
    }

    #[test]
    fn renames_tags_recursively() {
        let mut vm = Vm::new(build_registry());
        let a = app(&mut vm, false);
        let out = vm
            .call(
                a,
                "processDoc",
                &[s(r#"<list><item id="1"><item/></item></list>"#)],
            )
            .unwrap();
        assert_eq!(
            out.as_str().unwrap(),
            r#"<list><entry id="1"><entry/></entry></list>"#
        );
    }

    #[test]
    fn strips_attributes_when_asked() {
        let mut vm = Vm::new(build_registry());
        let a = app(&mut vm, true);
        let out = vm
            .call(a, "processDoc", &[s(r#"<item id="1" k="v">t</item>"#)])
            .unwrap();
        assert_eq!(out.as_str().unwrap(), "<entry>t</entry>");
    }

    #[test]
    fn parse_failure_leaves_counters_clean() {
        let mut vm = Vm::new(build_registry());
        let a = app(&mut vm, false);
        assert!(vm.call(a, "processDoc", &[s("<nope")]).is_err());
        assert_eq!(vm.call(a, "docs", &[]).unwrap(), int(0));
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

//! The `xml2Ctcp` application: XML documents parsed, serialized compactly
//! and pushed over the simulated TCP transport.

use super::transport::{register_transport, CONN_ERROR};
use super::xml::register_xml;
use crate::util::{absorb, int, rooted, s};
use atomask_mor::{FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

fn register(rb: &mut RegistryBuilder) {
    register_xml(rb);
    register_transport(rb);
    rb.class("XmlTcpPump", |c| {
        c.field("parser", Value::Null);
        c.field("writer", Value::Null);
        c.field("conn", Value::Null);
        c.field("docs", int(0));
        c.field("failures", int(0));
        c.field("reconnects", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "parser", args[0].clone());
            ctx.set(this, "writer", args[1].clone());
            ctx.set(this, "conn", args[2].clone());
            Ok(Value::Null)
        });
        // Parse → serialize → send, then commit the counter: conditional
        // failure non-atomic at worst.
        c.method("processDoc", |ctx, this, args| {
            let parser = ctx.get(this, "parser");
            ctx.call_value(&parser, "setInput", &[args[0].clone()])?;
            let root = ctx.call_value(&parser, "parseDocument", &[])?;
            let writer = ctx.get(this, "writer");
            let compact = ctx.call_value(&writer, "writeDoc", &[root])?;
            let conn = ctx.get(this, "conn");
            ctx.call_value(&conn, "send", &[compact])?;
            let docs = ctx.get_int(this, "docs");
            ctx.set(this, "docs", int(docs + 1));
            Ok(Value::Null)
        })
        .throws("XmlError")
        .throws(CONN_ERROR);
        // The sloppy error-recovery path (runs only after a send failure):
        // the failure counter is bumped *before* the reconnect call chain —
        // pure failure non-atomic, and rarely called, exactly the profile
        // the paper reports for the xml2C applications.
        c.method("recover", |ctx, this, _| {
            let failures = ctx.get_int(this, "failures");
            ctx.set(this, "failures", int(failures + 1));
            let conn = ctx.get(this, "conn");
            ctx.call_value(&conn, "close", &[])?;
            ctx.call_value(&conn, "connect", &[])?;
            let reconnects = ctx.get_int(this, "reconnects");
            ctx.set(this, "reconnects", int(reconnects + 1));
            Ok(Value::Null)
        })
        .throws(CONN_ERROR);
        c.method("docs", |ctx, this, _| Ok(ctx.get(this, "docs")));
        c.method("failures", |ctx, this, _| Ok(ctx.get(this, "failures")));
    });
}

const DOCS: [&str; 3] = [
    r#"<order id="17"><item sku="a1" qty="2"/><item sku="b9" qty="1"/></order>"#,
    r#"<ping seq="1"/>"#,
    r#"<report><line>alpha</line><line>beta</line></report>"#,
];

fn driver(vm: &mut Vm) -> MethodResult {
    let parser = rooted(vm, "XmlParser", &[s("")])?;
    let writer = rooted(vm, "XmlWriter", &[])?;
    let conn = rooted(vm, "TcpConn", &[])?;
    let conn_id = conn.as_ref_id().expect("ref");
    let pump = rooted(vm, "XmlTcpPump", &[parser, writer, conn])?;
    let pump_id = pump.as_ref_id().expect("ref");

    vm.call(conn_id, "connect", &[])?;
    for doc in DOCS {
        vm.call(pump_id, "processDoc", &[s(doc)])?;
    }
    // Malformed document: parse failure handled by the operator (driver).
    absorb(vm.call(pump_id, "processDoc", &[s("<broken")]));
    // Connection drop mid-stream → failed send → recovery path.
    vm.call(conn_id, "close", &[])?;
    absorb(vm.call(pump_id, "processDoc", &[s(DOCS[1])]));
    absorb(vm.call(pump_id, "recover", &[]));
    vm.call(pump_id, "processDoc", &[s(DOCS[1])])?;
    for _ in 0..2 {
        absorb(vm.call(pump_id, "docs", &[]));
        absorb(vm.call(pump_id, "failures", &[]));
        absorb(vm.call(conn_id, "sent", &[]));
        absorb(vm.call(conn_id, "bytes", &[]));
        absorb(vm.call(conn_id, "isOpen", &[]));
    }
    vm.call(conn_id, "drainAck", &[])?;
    Ok(Value::Null)
}

/// The `xml2Ctcp` program.
pub fn program() -> FnProgram {
    FnProgram::new("xml2Ctcp", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::cpp());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::Program;

    #[test]
    fn pump_sends_compact_documents() {
        let mut vm = Vm::new(build_registry());
        let parser = vm.construct("XmlParser", &[s("")]).unwrap();
        vm.root(parser);
        let writer = vm.construct("XmlWriter", &[]).unwrap();
        vm.root(writer);
        let conn = vm.construct("TcpConn", &[]).unwrap();
        vm.root(conn);
        let pump = vm
            .construct(
                "XmlTcpPump",
                &[Value::Ref(parser), Value::Ref(writer), Value::Ref(conn)],
            )
            .unwrap();
        vm.root(pump);
        vm.call(conn, "connect", &[]).unwrap();
        vm.call(pump, "processDoc", &[s("<a><b/></a>")]).unwrap();
        assert_eq!(vm.call(pump, "docs", &[]).unwrap(), int(1));
        let wire = vm.call(conn, "wire", &[]).unwrap();
        assert!(wire.as_str().unwrap().contains("<a><b/></a>"));
    }

    #[test]
    fn send_failure_leaves_doc_count_unchanged() {
        let mut vm = Vm::new(build_registry());
        let parser = vm.construct("XmlParser", &[s("")]).unwrap();
        vm.root(parser);
        let writer = vm.construct("XmlWriter", &[]).unwrap();
        vm.root(writer);
        let conn = vm.construct("TcpConn", &[]).unwrap();
        vm.root(conn);
        let pump = vm
            .construct(
                "XmlTcpPump",
                &[Value::Ref(parser), Value::Ref(writer), Value::Ref(conn)],
            )
            .unwrap();
        vm.root(pump);
        // Connection never opened: send fails after parse+serialize.
        let err = vm.call(pump, "processDoc", &[s("<a/>")]).unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), CONN_ERROR);
        assert_eq!(vm.call(pump, "docs", &[]).unwrap(), int(0));
        // Recovery reopens and the pump proceeds.
        vm.call(pump, "recover", &[]).unwrap();
        vm.call(pump, "processDoc", &[s("<a/>")]).unwrap();
        assert_eq!(vm.call(pump, "docs", &[]).unwrap(), int(1));
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

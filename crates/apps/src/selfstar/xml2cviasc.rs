//! The `xml2Cviasc1` / `xml2Cviasc2` applications: *self-configuring*
//! component chains.
//!
//! An XML configuration document describes a pipeline
//! (`<chain><doubler/><offset delta="3"/>...</chain>`); a `ChainBuilder`
//! instantiates the corresponding adaptors at runtime and wires them with
//! channels — the "via sc" (self-configuring channels) part of the paper's
//! application names. Variant 1 builds a linear chain; variant 2 builds a
//! teed topology with two sinks and adds a validation pass.
//!
//! The builder's `build` method instantiates components while committing
//! the partially built chain into its own fields — a genuinely hard to fix
//! failure non-atomic method that runs exactly once per configuration:
//! the paper singles out the `xml2Cviasc` applications as the ones whose
//! pure failure non-atomic methods "are called very rarely, and would
//! probably not have been discovered without the automated exception
//! injections".

use super::component::{register_adaptors, register_channel, register_sink};
use super::xml::register_xml;
use crate::util::{absorb, int, rooted, s};
use atomask_mor::{FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

/// Exception thrown on unknown component kinds in the configuration.
pub const CONFIG_ERROR: &str = "ConfigError";

fn register(rb: &mut RegistryBuilder) {
    register_xml(rb);
    register_channel(rb);
    register_sink(rb);
    register_adaptors(rb);
    rb.exception(CONFIG_ERROR);
    rb.class("ChainBuilder", |c| {
        c.field("head", Value::Null); // Channel into the chain front
        c.field("sinkChannel", Value::Null); // Channel feeding the sink
        c.field("sink", Value::Null);
        c.field("sink2", Value::Null); // variant 2 only
        c.field("components", int(0));
        c.ctor(|_, _, _| Ok(Value::Null));
        // Builds the chain described by the `<chain>` element, back to
        // front. The component counter and the partial head are committed
        // as it goes: a failure mid-build leaves a half-configured builder.
        c.method("build", |ctx, this, args| {
            let chain_elem = match &args[0] {
                Value::Ref(id) => *id,
                _ => return Err(ctx.exception(CONFIG_ERROR, "missing <chain> element")),
            };
            let sink = ctx.new_object("Sink", &[])?;
            ctx.set(this, "sink", Value::Ref(sink));
            let mut downstream = {
                let ch = ctx.new_object("Channel", &[Value::Ref(sink)])?;
                ctx.set(this, "sinkChannel", Value::Ref(ch));
                Value::Ref(ch)
            };
            // Collect child component specs (front..back), then wire from
            // the back.
            let mut specs = Vec::new();
            let mut child = ctx.get(chain_elem, "firstChild");
            while let Value::Ref(cid) = child {
                specs.push(cid);
                child = ctx.get(cid, "nextSibling");
            }
            for &cid in specs.iter().rev() {
                let kind = ctx.get_str(cid, "tag");
                let comp = match &*kind {
                    "doubler" => ctx.new_object("Doubler", &[downstream.clone()])?,
                    "offset" => {
                        let delta = ctx
                            .call(cid, "attr", &[s("delta")])?
                            .as_str()
                            .and_then(|d| d.parse::<i64>().ok())
                            .unwrap_or(0);
                        ctx.new_object("Offset", &[downstream.clone(), int(delta)])?
                    }
                    "clamp" => {
                        let comp = ctx.new_object("Clamp", &[downstream.clone()])?;
                        let lo = ctx
                            .call(cid, "attr", &[s("lo")])?
                            .as_str()
                            .and_then(|d| d.parse::<i64>().ok())
                            .unwrap_or(i64::MIN);
                        let hi = ctx
                            .call(cid, "attr", &[s("hi")])?
                            .as_str()
                            .and_then(|d| d.parse::<i64>().ok())
                            .unwrap_or(i64::MAX);
                        ctx.call(comp, "reconfigure", &[int(lo), int(hi)])?;
                        comp
                    }
                    other => {
                        return Err(ctx
                            .exception(CONFIG_ERROR, format!("unknown component kind `{other}`")))
                    }
                };
                // Commit progress eagerly (the planted vulnerability).
                let n = ctx.get_int(this, "components");
                ctx.set(this, "components", int(n + 1));
                let ch = ctx.new_object("Channel", &[Value::Ref(comp)])?;
                downstream = Value::Ref(ch);
                ctx.set(this, "head", downstream.clone());
            }
            ctx.set(this, "head", downstream);
            Ok(Value::Null)
        })
        .throws(CONFIG_ERROR)
        .throws("XmlError");
        // Variant 2: duplicate the chain output into a second sink via a
        // Tee in front of the primary sink.
        c.method("teeOutput", |ctx, this, _| {
            let sink2 = ctx.new_object("Sink", &[])?;
            ctx.set(this, "sink2", Value::Ref(sink2));
            let sink = ctx.get(this, "sink");
            let ch1 = ctx.new_object("Channel", &[sink])?;
            let ch2 = ctx.new_object("Channel", &[Value::Ref(sink2)])?;
            let tee = ctx.new_object("Tee", &[Value::Ref(ch1), Value::Ref(ch2)])?;
            // Rebind the channel feeding the sink so the tee sits between
            // the last adaptor and the two sinks.
            let sink_channel = ctx.get(this, "sinkChannel");
            if sink_channel.is_null() {
                return Err(ctx.exception(CONFIG_ERROR, "teeOutput before build"));
            }
            ctx.call_value(&sink_channel, "rebind", &[Value::Ref(tee)])?;
            let n = ctx.get_int(this, "components");
            ctx.set(this, "components", int(n + 1));
            Ok(Value::Null)
        })
        .throws(CONFIG_ERROR);
        c.method("push", |ctx, this, args| {
            let head = ctx.get(this, "head");
            if head.is_null() {
                return Err(ctx.exception(CONFIG_ERROR, "push before build"));
            }
            ctx.call_value(&head, "send", &[args[0].clone()])
        })
        .throws(CONFIG_ERROR);
        c.method("components", |ctx, this, _| Ok(ctx.get(this, "components")));
        // Read-only sanity pass over the wiring.
        c.method("validate", |ctx, this, _| {
            let built = ctx.get_int(this, "components");
            let head = ctx.get(this, "head");
            Ok(Value::Bool(built >= 0 && !head.is_null()))
        });
    });
    rb.class("Xml2Csc", |c| {
        c.field("parser", Value::Null);
        c.field("builder", Value::Null);
        c.field("pushed", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "parser", args[0].clone());
            ctx.set(this, "builder", args[1].clone());
            Ok(Value::Null)
        });
        c.method("configure", |ctx, this, args| {
            let parser = ctx.get(this, "parser");
            ctx.call_value(&parser, "setInput", &[args[0].clone()])?;
            let root = ctx.call_value(&parser, "parseDocument", &[])?;
            let builder = ctx.get(this, "builder");
            ctx.call_value(&builder, "build", &[root])
        })
        .throws("XmlError")
        .throws(CONFIG_ERROR);
        c.method("process", |ctx, this, args| {
            let builder = ctx.get(this, "builder");
            ctx.call_value(&builder, "push", &[args[0].clone()])?;
            let n = ctx.get_int(this, "pushed");
            ctx.set(this, "pushed", int(n + 1));
            Ok(Value::Null)
        })
        .throws(CONFIG_ERROR);
        c.method("processBatch", |ctx, this, args| {
            let from = args[0].as_int().unwrap_or(0);
            let to = args[1].as_int().unwrap_or(0);
            for v in from..to {
                ctx.call(this, "process", &[int(v)])?;
            }
            Ok(Value::Null)
        })
        .throws(CONFIG_ERROR);
        c.method("pushed", |ctx, this, _| Ok(ctx.get(this, "pushed")));
    });
}

const CONFIG_V1: &str = r#"<chain><offset delta="5"/><doubler/><clamp lo="0" hi="60"/></chain>"#;
const CONFIG_V2: &str = r#"<chain><doubler/><offset delta="-1"/></chain>"#;

fn driver_v1(vm: &mut Vm) -> MethodResult {
    let parser = rooted(vm, "XmlParser", &[s("")])?;
    let builder = rooted(vm, "ChainBuilder", &[])?;
    let b = builder.as_ref_id().expect("ref");
    let app = rooted(vm, "Xml2Csc", &[parser, builder])?;
    let a = app.as_ref_id().expect("ref");
    vm.call(a, "configure", &[s(CONFIG_V1)])?;
    absorb(vm.call(b, "validate", &[]));
    vm.call(a, "processBatch", &[int(0), int(15)])?;
    for v in [40, -9] {
        absorb(vm.call(a, "process", &[int(v)]));
    }
    // Bad configurations exercise the builder's error paths.
    absorb(vm.call(a, "configure", &[s("<chain><warp/></chain>")]));
    absorb(vm.call(a, "configure", &[s("<chain><doubler")]));
    for _ in 0..2 {
        absorb(vm.call(b, "components", &[]));
        absorb(vm.call(a, "pushed", &[]));
        // Replay-aware read: checkpoint-resume retraces this branch.
        let sink = vm.field(b, "sink").unwrap_or(Value::Null);
        if let Some(sid) = sink.as_ref_id() {
            absorb(vm.call(sid, "received", &[]));
            absorb(vm.call(sid, "sum", &[]));
        }
    }
    Ok(Value::Null)
}

fn driver_v2(vm: &mut Vm) -> MethodResult {
    let parser = rooted(vm, "XmlParser", &[s("")])?;
    let builder = rooted(vm, "ChainBuilder", &[])?;
    let b = builder.as_ref_id().expect("ref");
    let app = rooted(vm, "Xml2Csc", &[parser, builder])?;
    let a = app.as_ref_id().expect("ref");
    vm.call(a, "configure", &[s(CONFIG_V2)])?;
    vm.call(b, "teeOutput", &[])?;
    absorb(vm.call(b, "validate", &[]));
    vm.call(a, "processBatch", &[int(0), int(10)])?;
    for _ in 0..2 {
        absorb(vm.call(b, "components", &[]));
        absorb(vm.call(a, "pushed", &[]));
        for field in ["sink", "sink2"] {
            // Replay-aware read: checkpoint-resume retraces this branch.
            let sink = vm.field(b, field).unwrap_or(Value::Null);
            if let Some(sid) = sink.as_ref_id() {
                absorb(vm.call(sid, "received", &[]));
                absorb(vm.call(sid, "sum", &[]));
                absorb(vm.call(sid, "last", &[]));
            }
        }
    }
    Ok(Value::Null)
}

/// The `xml2Cviasc1` program (linear chain).
pub fn program_v1() -> FnProgram {
    FnProgram::new("xml2Cviasc1", build_registry, driver_v1)
}

/// The `xml2Cviasc2` program (teed topology + validation pass).
pub fn program_v2() -> FnProgram {
    FnProgram::new("xml2Cviasc2", build_registry, driver_v2)
}

/// Builds the shared registry of both variants.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::cpp());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::Program;

    fn configured(config: &str) -> (Vm, atomask_mor::ObjId, atomask_mor::ObjId) {
        let mut vm = Vm::new(build_registry());
        let parser = vm.construct("XmlParser", &[s("")]).unwrap();
        vm.root(parser);
        let builder = vm.construct("ChainBuilder", &[]).unwrap();
        vm.root(builder);
        let app = vm
            .construct("Xml2Csc", &[Value::Ref(parser), Value::Ref(builder)])
            .unwrap();
        vm.root(app);
        vm.call(app, "configure", &[s(config)]).unwrap();
        (vm, app, builder)
    }

    #[test]
    fn chain_is_built_from_xml_and_transforms() {
        let (mut vm, app, builder) = configured(CONFIG_V1);
        assert_eq!(vm.call(builder, "components", &[]).unwrap(), int(3));
        // Pipeline order is document order: offset(+5) → doubler → clamp.
        vm.call(app, "process", &[int(10)]).unwrap();
        let sink = vm
            .heap()
            .field(builder, "sink")
            .unwrap()
            .as_ref_id()
            .unwrap();
        assert_eq!(vm.call(sink, "last", &[]).unwrap(), int(30));
        // Clamp cap at 60.
        vm.call(app, "process", &[int(100)]).unwrap();
        assert_eq!(vm.call(sink, "last", &[]).unwrap(), int(60));
    }

    #[test]
    fn unknown_component_kind_fails_midway() {
        let mut vm = Vm::new(build_registry());
        let parser = vm.construct("XmlParser", &[s("")]).unwrap();
        vm.root(parser);
        let builder = vm.construct("ChainBuilder", &[]).unwrap();
        vm.root(builder);
        let app = vm
            .construct("Xml2Csc", &[Value::Ref(parser), Value::Ref(builder)])
            .unwrap();
        vm.root(app);
        // The bogus component comes *after* a valid one (built back to
        // front, so the doubler is already committed when <warp/> fails).
        let err = vm
            .call(app, "configure", &[s("<chain><warp/><doubler/></chain>")])
            .unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), CONFIG_ERROR);
        // The planted non-atomicity: the builder is left half-configured.
        assert_eq!(vm.call(builder, "components", &[]).unwrap(), int(1));
    }

    #[test]
    fn tee_duplicates_to_both_sinks() {
        let (mut vm, app, builder) = configured(CONFIG_V2);
        vm.call(builder, "teeOutput", &[]).unwrap();
        vm.call(app, "process", &[int(5)]).unwrap();
        // doubler → offset(-1): 5*2 - 1 = 9 into both sinks.
        for field in ["sink", "sink2"] {
            let sink = vm
                .heap()
                .field(builder, field)
                .unwrap()
                .as_ref_id()
                .unwrap();
            assert_eq!(vm.call(sink, "last", &[]).unwrap(), int(9), "{field}");
        }
    }

    #[test]
    fn drivers_are_clean() {
        for p in [program_v1(), program_v2()] {
            let mut vm = Vm::new(p.build_registry());
            p.run(&mut vm).unwrap();
        }
    }
}

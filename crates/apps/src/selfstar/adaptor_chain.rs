//! The `adaptorChain` application: a Self\*-style chain of value adaptors
//! fed by a source component.

use super::component::{register_adaptors, register_channel, register_sink};
use crate::util::{absorb, int, rooted};
use atomask_mor::{FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

fn register(rb: &mut RegistryBuilder) {
    register_channel(rb);
    register_sink(rb);
    register_adaptors(rb);
    rb.class("Source", |c| {
        c.field("out", Value::Null);
        c.field("produced", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "out", args[0].clone());
            Ok(Value::Null)
        });
        // Commit-last: forward first, count after.
        c.method("emit", |ctx, this, args| {
            let out = ctx.get(this, "out");
            ctx.call_value(&out, "send", &[args[0].clone()])?;
            let n = ctx.get_int(this, "produced");
            ctx.set(this, "produced", int(n + 1));
            Ok(Value::Null)
        });
        // Batch emission: inherently non-atomic on mid-batch failure, but
        // driven rarely (once per burst).
        c.method("emitRange", |ctx, this, args| {
            let from = args[0].as_int().unwrap_or(0);
            let to = args[1].as_int().unwrap_or(0);
            for v in from..to {
                ctx.call(this, "emit", &[int(v)])?;
            }
            Ok(Value::Null)
        });
        c.method("produced", |ctx, this, _| Ok(ctx.get(this, "produced")));
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    // sink <- clamp <- doubler <- offset <- source
    let sink = rooted(vm, "Sink", &[])?;
    let ch_sink = rooted(vm, "Channel", &[sink.clone()])?;
    let clamp = rooted(vm, "Clamp", &[ch_sink])?;
    let clamp_id = clamp.as_ref_id().expect("ref");
    vm.call(clamp_id, "reconfigure", &[int(0), int(40)])?;
    let ch_clamp = rooted(vm, "Channel", &[clamp])?;
    let doubler = rooted(vm, "Doubler", &[ch_clamp])?;
    let ch_doubler = rooted(vm, "Channel", &[doubler.clone()])?;
    let offset = rooted(vm, "Offset", &[ch_doubler, int(5)])?;
    let ch_offset = rooted(vm, "Channel", &[offset.clone()])?;
    let source = rooted(vm, "Source", &[ch_offset])?;
    let source_id = source.as_ref_id().expect("ref");

    vm.call(source_id, "emitRange", &[int(0), int(12)])?;
    for i in [100, -7, 3] {
        absorb(vm.call(source_id, "emit", &[int(i)]));
    }
    // A bad reconfiguration exercises the error path, then it is repaired.
    absorb(vm.call(clamp_id, "reconfigure", &[int(50), int(10)]));
    absorb(vm.call(clamp_id, "reconfigure", &[int(0), int(100)]));
    vm.call(source_id, "emitRange", &[int(12), int(18)])?;

    let sink_id = sink.as_ref_id().expect("ref");
    for _ in 0..3 {
        absorb(vm.call(sink_id, "received", &[]));
        absorb(vm.call(sink_id, "sum", &[]));
        absorb(vm.call(sink_id, "last", &[]));
        absorb(vm.call(source_id, "produced", &[]));
        absorb(vm.call(clamp_id, "processed", &[]));
        absorb(vm.call(clamp_id, "clamped", &[]));
        let d = doubler.as_ref_id().expect("ref");
        absorb(vm.call(d, "processed", &[]));
        let o = offset.as_ref_id().expect("ref");
        absorb(vm.call(o, "processed", &[]));
    }
    absorb(vm.call(sink_id, "reset", &[]));
    Ok(Value::Null)
}

/// The `adaptorChain` program.
pub fn program() -> FnProgram {
    FnProgram::new("adaptorChain", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::cpp());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::Program;

    #[test]
    fn chain_transforms_values_in_order() {
        let mut vm = Vm::new(build_registry());
        let sink = vm.construct("Sink", &[]).unwrap();
        vm.root(sink);
        let ch_sink = vm.construct("Channel", &[Value::Ref(sink)]).unwrap();
        vm.root(ch_sink);
        let doubler = vm.construct("Doubler", &[Value::Ref(ch_sink)]).unwrap();
        vm.root(doubler);
        let ch_d = vm.construct("Channel", &[Value::Ref(doubler)]).unwrap();
        vm.root(ch_d);
        let source = vm.construct("Source", &[Value::Ref(ch_d)]).unwrap();
        vm.root(source);
        vm.call(source, "emit", &[int(21)]).unwrap();
        assert_eq!(vm.call(sink, "last", &[]).unwrap(), int(42));
        assert_eq!(vm.call(source, "produced", &[]).unwrap(), int(1));
    }

    #[test]
    fn emit_range_counts_all() {
        let mut vm = Vm::new(build_registry());
        let sink = vm.construct("Sink", &[]).unwrap();
        vm.root(sink);
        let ch = vm.construct("Channel", &[Value::Ref(sink)]).unwrap();
        vm.root(ch);
        let source = vm.construct("Source", &[Value::Ref(ch)]).unwrap();
        vm.root(source);
        vm.call(source, "emitRange", &[int(0), int(5)]).unwrap();
        assert_eq!(vm.call(source, "produced", &[]).unwrap(), int(5));
        assert_eq!(vm.call(sink, "sum", &[]).unwrap(), int(10));
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

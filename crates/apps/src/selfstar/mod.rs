//! The Self\*-style C++ applications.
//!
//! The paper evaluates its C++ infrastructure on applications built with
//! Self\* [Fetzer & Högstedt, WORDS 2003], a component-based data-flow
//! framework. This module rebuilds the relevant substrate on the managed
//! runtime — components with typed output channels, a simulated in-process
//! TCP transport, and an XML parser/serializer — plus the six evaluation
//! applications:
//!
//! * [`adaptor_chain`] — a chain of value-transforming adaptors.
//! * [`stdq`] — a bounded queue between a producer and a consumer.
//! * [`xml2ctcp`] — XML documents parsed, serialized compactly and pushed
//!   over the simulated TCP connection.
//! * [`xml2cviasc`] — XML-configured ("self-configuring") adaptor chains,
//!   in two topologies.
//! * [`xml2xml`] — XML-to-XML transformation.
//!
//! In contrast to the Java collections, these components are written in
//! the careful compute-first/commit-last style the paper credits for the
//! Self\* applications' small pure failure non-atomic fraction; the
//! remaining non-atomic methods sit on rarely exercised reconfiguration
//! and error-recovery paths — which is exactly where the paper found them.

pub mod adaptor_chain;
pub(crate) mod component;
pub mod stdq;
pub(crate) mod transport;
pub(crate) mod xml;
pub mod xml2ctcp;
pub mod xml2cviasc;
pub mod xml2xml;

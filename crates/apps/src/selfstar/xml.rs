//! XML substrate for the Self\* applications: a DOM on the managed heap, a
//! recursive-descent parser, and a serializer.
//!
//! The parser is written in the exception-safe style the paper credits the
//! Self\* code base for: each `parseElement` call builds a **fresh**
//! subtree and records its end position *on the new node* (`endPos`), so
//! the parser object itself is never mutated — the method is failure
//! atomic by construction, no matter where an exception lands.

use crate::util::{int, s};
use atomask_mor::{Ctx, ObjId, RegistryBuilder, Value};

/// Exception thrown on malformed documents.
pub(crate) const XML_ERROR: &str = "XmlError";

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

fn skip_ws(bytes: &[u8], mut pos: usize) -> usize {
    while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
        pos += 1;
    }
    pos
}

fn xml_err(ctx: &mut Ctx<'_>, pos: usize, what: &str) -> atomask_mor::Exception {
    ctx.exception(XML_ERROR, format!("{what} at byte {pos}"))
}

/// Registers `XmlElem`, `XmlAttr`, `XmlParser` and `XmlWriter`.
pub(crate) fn register_xml(rb: &mut RegistryBuilder) {
    rb.exception(XML_ERROR);
    rb.class("XmlAttr", |c| {
        c.field("name", Value::from(""));
        c.field("value", Value::from(""));
        c.field("next", Value::Null);
    });
    rb.class("XmlElem", |c| {
        c.field("tag", Value::from(""));
        c.field("text", Value::from(""));
        c.field("firstAttr", Value::Null);
        c.field("firstChild", Value::Null);
        c.field("nextSibling", Value::Null);
        c.field("endPos", int(0));
        // Read-only helpers used by transformers and tests.
        c.method("tag", |ctx, this, _| Ok(ctx.get(this, "tag")));
        c.method("text", |ctx, this, _| Ok(ctx.get(this, "text")));
        c.method("childCount", |ctx, this, _| {
            let mut n = 0i64;
            let mut cur = ctx.get(this, "firstChild");
            while let Value::Ref(id) = cur {
                n += 1;
                cur = ctx.get(id, "nextSibling");
            }
            Ok(int(n))
        });
        c.method("attrCount", |ctx, this, _| {
            let mut n = 0i64;
            let mut cur = ctx.get(this, "firstAttr");
            while let Value::Ref(id) = cur {
                n += 1;
                cur = ctx.get(id, "next");
            }
            Ok(int(n))
        });
        c.method("attr", |ctx, this, args| {
            let mut cur = ctx.get(this, "firstAttr");
            while let Value::Ref(id) = cur {
                if ctx.get(id, "name") == args[0] {
                    return Ok(ctx.get(id, "value"));
                }
                cur = ctx.get(id, "next");
            }
            Ok(Value::Null)
        });
    });
    rb.class("XmlParser", |c| {
        c.field("input", Value::from(""));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "input", args[0].clone());
            Ok(Value::Null)
        });
        c.method("setInput", |ctx, this, args| {
            ctx.set(this, "input", args[0].clone());
            Ok(Value::Null)
        });
        // Parses the whole document and returns the root element.
        c.method("parseDocument", |ctx, this, _| {
            let input = ctx.get_str(this, "input");
            let bytes = input.as_bytes();
            let start = skip_ws(bytes, 0);
            let root = ctx.call(this, "parseElement", &[int(start as i64)])?;
            let root_id = root.as_ref_id().expect("parseElement returns an element");
            let end = ctx.get_int(root_id, "endPos") as usize;
            let rest = skip_ws(bytes, end);
            if rest != bytes.len() {
                return Err(xml_err(ctx, rest, "trailing content after document root"));
            }
            Ok(root)
        })
        .throws(XML_ERROR);
        // Parses one element starting at the byte offset in `args[0]`; the
        // element's `endPos` field carries the continuation offset.
        c.method("parseElement", |ctx, this, args| {
            let input = ctx.get_str(this, "input");
            let bytes = input.as_bytes();
            let mut pos = args[0].as_int().unwrap_or(0).max(0) as usize;
            if pos >= bytes.len() || bytes[pos] != b'<' {
                return Err(xml_err(ctx, pos, "expected `<`"));
            }
            pos += 1;
            let name_start = pos;
            while pos < bytes.len() && is_name_byte(bytes[pos]) {
                pos += 1;
            }
            if pos == name_start {
                return Err(xml_err(ctx, pos, "expected element name"));
            }
            let tag = input[name_start..pos].to_owned();
            let elem = ctx.alloc("XmlElem");
            ctx.set(elem, "tag", s(&tag));

            // Attributes.
            let mut first_attr = Value::Null;
            let mut last_attr: Option<ObjId> = None;
            loop {
                pos = skip_ws(bytes, pos);
                match bytes.get(pos) {
                    Some(b'/') => {
                        if bytes.get(pos + 1) != Some(&b'>') {
                            return Err(xml_err(ctx, pos, "expected `/>`"));
                        }
                        ctx.set(elem, "firstAttr", first_attr);
                        ctx.set(elem, "endPos", int((pos + 2) as i64));
                        return Ok(Value::Ref(elem));
                    }
                    Some(b'>') => {
                        pos += 1;
                        break;
                    }
                    Some(b) if is_name_byte(*b) => {
                        let an_start = pos;
                        while pos < bytes.len() && is_name_byte(bytes[pos]) {
                            pos += 1;
                        }
                        let an = input[an_start..pos].to_owned();
                        if bytes.get(pos) != Some(&b'=') || bytes.get(pos + 1) != Some(&b'"') {
                            return Err(xml_err(ctx, pos, "expected `=\"` in attribute"));
                        }
                        pos += 2;
                        let av_start = pos;
                        while pos < bytes.len() && bytes[pos] != b'"' {
                            pos += 1;
                        }
                        if pos >= bytes.len() {
                            return Err(xml_err(ctx, pos, "unterminated attribute value"));
                        }
                        let av = input[av_start..pos].to_owned();
                        pos += 1;
                        let attr = ctx.alloc("XmlAttr");
                        ctx.set(attr, "name", s(&an));
                        ctx.set(attr, "value", s(&av));
                        match last_attr {
                            None => first_attr = Value::Ref(attr),
                            Some(prev) => ctx.set(prev, "next", Value::Ref(attr)),
                        }
                        last_attr = Some(attr);
                    }
                    _ => return Err(xml_err(ctx, pos, "malformed tag")),
                }
            }
            ctx.set(elem, "firstAttr", first_attr);

            // Content: children and text runs.
            let mut text = String::new();
            let mut last_child: Option<ObjId> = None;
            loop {
                if pos >= bytes.len() {
                    return Err(xml_err(ctx, pos, "unterminated element"));
                }
                if bytes[pos] == b'<' {
                    if bytes.get(pos + 1) == Some(&b'/') {
                        let mut p = pos + 2;
                        let cn_start = p;
                        while p < bytes.len() && is_name_byte(bytes[p]) {
                            p += 1;
                        }
                        if input[cn_start..p] != tag {
                            return Err(xml_err(ctx, pos, "mismatched closing tag"));
                        }
                        if bytes.get(p) != Some(&b'>') {
                            return Err(xml_err(ctx, p, "expected `>`"));
                        }
                        ctx.set(elem, "text", s(text.trim()));
                        ctx.set(elem, "endPos", int((p + 1) as i64));
                        return Ok(Value::Ref(elem));
                    }
                    let child = ctx.call(this, "parseElement", &[int(pos as i64)])?;
                    let child_id = child.as_ref_id().expect("element");
                    pos = ctx.get_int(child_id, "endPos") as usize;
                    match last_child {
                        None => ctx.set(elem, "firstChild", child),
                        Some(prev) => ctx.set(prev, "nextSibling", child),
                    }
                    last_child = Some(child_id);
                } else {
                    text.push(bytes[pos] as char);
                    pos += 1;
                }
            }
        })
        .throws(XML_ERROR);
    });
    rb.class("XmlWriter", |c| {
        c.field("docs", int(0));
        c.field("compact", Value::Bool(true));
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("docs", |ctx, this, _| Ok(ctx.get(this, "docs")));
        // Pure recursive serialization: builds the string through return
        // values, no writer state is touched.
        c.method("toXml", |ctx, this, args| {
            let elem = match &args[0] {
                Value::Ref(id) => *id,
                _ => return Ok(Value::from("")),
            };
            let tag = ctx.get_str(elem, "tag");
            let mut out = format!("<{tag}");
            let mut attr = ctx.get(elem, "firstAttr");
            while let Value::Ref(a) = attr {
                let name = ctx.get_str(a, "name");
                let value = ctx.get_str(a, "value");
                out.push_str(&format!(" {name}=\"{value}\""));
                attr = ctx.get(a, "next");
            }
            let text = ctx.get_str(elem, "text");
            let first_child = ctx.get(elem, "firstChild");
            if text.is_empty() && first_child.is_null() {
                out.push_str("/>");
                return Ok(Value::from(out));
            }
            out.push('>');
            out.push_str(&text);
            let mut child = first_child;
            while let Value::Ref(c) = child {
                let sub = ctx.call(this, "toXml", &[Value::Ref(c)])?;
                out.push_str(sub.as_str().unwrap_or(""));
                child = ctx.get(c, "nextSibling");
            }
            out.push_str(&format!("</{tag}>"));
            Ok(Value::from(out))
        });
        // Commit-last: the statistic is updated after serialization
        // completed.
        c.method("writeDoc", |ctx, this, args| {
            let out = ctx.call(this, "toXml", args)?;
            let docs = ctx.get_int(this, "docs");
            ctx.set(this, "docs", int(docs + 1));
            Ok(out)
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::MethodResult;
    use atomask_mor::{Profile, RegistryBuilder, Vm};

    fn vm() -> Vm {
        let mut rb = RegistryBuilder::new(Profile::cpp());
        register_xml(&mut rb);
        Vm::new(rb.build())
    }

    fn parse(vm: &mut Vm, doc: &str) -> MethodResult {
        let p = vm.construct("XmlParser", &[s(doc)]).unwrap();
        vm.root(p);
        vm.call(p, "parseDocument", &[])
    }

    #[test]
    fn parses_nested_elements() {
        let mut vm = vm();
        let root = parse(&mut vm, r#"<a x="1"><b>hi</b><c/></a>"#).unwrap();
        let root = root.as_ref_id().unwrap();
        vm.root(root);
        assert_eq!(vm.heap().field(root, "tag"), Some(s("a")));
        assert_eq!(vm.call(root, "childCount", &[]).unwrap(), int(2));
        assert_eq!(vm.call(root, "attrCount", &[]).unwrap(), int(1));
        assert_eq!(vm.call(root, "attr", &[s("x")]).unwrap(), s("1"));
        assert_eq!(vm.call(root, "attr", &[s("nope")]).unwrap(), Value::Null);
    }

    #[test]
    fn round_trips_through_writer() {
        let mut vm = vm();
        let doc = r#"<root a="1" b="2"><kid>text</kid><empty/></root>"#;
        let root = parse(&mut vm, doc).unwrap();
        let w = vm.construct("XmlWriter", &[]).unwrap();
        vm.root(w);
        let out = vm.call(w, "writeDoc", &[root]).unwrap();
        assert_eq!(out.as_str().unwrap(), doc);
        assert_eq!(vm.call(w, "docs", &[]).unwrap(), int(1));
    }

    #[test]
    fn whitespace_and_text_handling() {
        let mut vm = vm();
        let root = parse(&mut vm, "  <m>  padded  </m>  ").unwrap();
        let root = root.as_ref_id().unwrap();
        assert_eq!(vm.heap().field(root, "text"), Some(s("padded")));
    }

    #[test]
    fn errors_are_positioned() {
        let mut vm = vm();
        for bad in [
            "<a><b></a>",  // mismatched closing tag
            "<a",          // truncated
            "no-xml",      // no root
            "<a></a><b/>", // trailing content
            r#"<a x=1/>"#, // unquoted attribute
        ] {
            let err = parse(&mut vm, bad).unwrap_err();
            assert_eq!(
                vm.registry().exceptions().name(err.ty),
                XML_ERROR,
                "doc {bad:?}"
            );
            assert!(err.message.contains("at byte"), "{}", err.message);
        }
    }

    #[test]
    fn parser_object_is_never_dirtied_by_failures() {
        // The exception-safe style: a failed parse leaves the parser's own
        // object graph untouched.
        let mut vm = vm();
        let p = vm.construct("XmlParser", &[s("<a><broken")]).unwrap();
        vm.root(p);
        let before = atomask_objgraph::Snapshot::of(vm.heap(), p);
        assert!(vm.call(p, "parseDocument", &[]).is_err());
        assert_eq!(atomask_objgraph::Snapshot::of(vm.heap(), p), before);
    }
}

//! Simulated TCP transport.
//!
//! The paper's `xml2Ctcp` application pushes serialized XML over a TCP
//! connection; the testbed's network is out of reach here, so `TcpConn`
//! simulates the connection as an in-process component with the same
//! observable control surface: an explicit connection state machine,
//! per-send accounting, a bounded in-flight buffer, and `ConnError`
//! exceptions on misuse — enough to exercise the identical exception
//! handling paths in the application code above it.

use crate::util::int;
use atomask_mor::{RegistryBuilder, Value};

/// Exception thrown on transport misuse or overflow.
pub(crate) const CONN_ERROR: &str = "ConnError";

const STATE_CLOSED: i64 = 0;
const STATE_OPEN: i64 = 1;

/// Registers the `TcpConn` class.
pub(crate) fn register_transport(rb: &mut RegistryBuilder) {
    rb.exception(CONN_ERROR);
    rb.class("TcpConn", |c| {
        c.field("state", int(STATE_CLOSED));
        c.field("sent", int(0));
        c.field("bytes", int(0));
        c.field("window", int(1 << 16));
        c.field("wire", Value::from(""));
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("connect", |ctx, this, _| {
            if ctx.get_int(this, "state") == STATE_OPEN {
                return Err(ctx.exception(CONN_ERROR, "already connected"));
            }
            ctx.set(this, "state", int(STATE_OPEN));
            Ok(Value::Null)
        })
        .throws(CONN_ERROR);
        // Commit-last: all checks first, then the field writes.
        c.method("send", |ctx, this, args| {
            if ctx.get_int(this, "state") != STATE_OPEN {
                return Err(ctx.exception(CONN_ERROR, "send on closed connection"));
            }
            let payload = args[0].as_str().unwrap_or("").to_owned();
            let bytes = ctx.get_int(this, "bytes");
            if bytes + payload.len() as i64 > ctx.get_int(this, "window") {
                return Err(ctx.exception(CONN_ERROR, "send window exhausted"));
            }
            let sent = ctx.get_int(this, "sent");
            let wire = ctx.get_str(this, "wire");
            ctx.set(this, "sent", int(sent + 1));
            ctx.set(this, "bytes", int(bytes + payload.len() as i64));
            ctx.set(this, "wire", Value::from(format!("{wire}{payload}\u{1e}")));
            Ok(Value::Null)
        })
        .throws(CONN_ERROR);
        c.method("close", |ctx, this, _| {
            ctx.set(this, "state", int(STATE_CLOSED));
            Ok(Value::Null)
        });
        c.method("isOpen", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "state") == STATE_OPEN))
        });
        c.method("sent", |ctx, this, _| Ok(ctx.get(this, "sent")));
        c.method("bytes", |ctx, this, _| Ok(ctx.get(this, "bytes")));
        c.method("wire", |ctx, this, _| Ok(ctx.get(this, "wire")));
        c.method("drainAck", |ctx, this, _| {
            // The peer acknowledged everything: reset the window usage.
            ctx.set(this, "bytes", int(0));
            ctx.set(this, "wire", Value::from(""));
            Ok(Value::Null)
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{Profile, Vm};

    fn conn() -> (Vm, atomask_mor::ObjId) {
        let mut rb = RegistryBuilder::new(Profile::cpp());
        register_transport(&mut rb);
        let mut vm = Vm::new(rb.build());
        let c = vm.construct("TcpConn", &[]).unwrap();
        vm.root(c);
        (vm, c)
    }

    #[test]
    fn connect_send_close_lifecycle() {
        let (mut vm, c) = conn();
        assert_eq!(vm.call(c, "isOpen", &[]).unwrap(), Value::Bool(false));
        vm.call(c, "connect", &[]).unwrap();
        vm.call(c, "send", &[Value::Str("hello".into())]).unwrap();
        assert_eq!(vm.call(c, "sent", &[]).unwrap(), int(1));
        assert_eq!(vm.call(c, "bytes", &[]).unwrap(), int(5));
        vm.call(c, "close", &[]).unwrap();
        let err = vm.call(c, "send", &[Value::Str("x".into())]).unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), CONN_ERROR);
    }

    #[test]
    fn double_connect_throws() {
        let (mut vm, c) = conn();
        vm.call(c, "connect", &[]).unwrap();
        assert!(vm.call(c, "connect", &[]).is_err());
    }

    #[test]
    fn window_overflow_is_atomic() {
        let (mut vm, c) = conn();
        vm.call(c, "connect", &[]).unwrap();
        vm.heap_mut().set_field(c, "window", int(6)).unwrap();
        vm.call(c, "send", &[Value::Str("abcd".into())]).unwrap();
        let before = atomask_objgraph::Snapshot::of(vm.heap(), c);
        let err = vm
            .call(c, "send", &[Value::Str("efgh".into())])
            .unwrap_err();
        assert_eq!(err.message, "send window exhausted");
        // Commit-last style: the failed send changed nothing.
        assert_eq!(atomask_objgraph::Snapshot::of(vm.heap(), c), before);
        vm.call(c, "drainAck", &[]).unwrap();
        vm.call(c, "send", &[Value::Str("efgh".into())]).unwrap();
        assert_eq!(vm.call(c, "sent", &[]).unwrap(), int(2));
    }
}

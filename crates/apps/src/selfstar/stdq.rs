//! The `stdQ` application: a bounded queue component between a producer
//! and a defensively written consumer.
//!
//! Queue internals are written in the inline C++ style — node fields are
//! manipulated directly rather than through accessor methods — so the core
//! operations contain no injectable calls after their first mutation and
//! are failure atomic by construction.

use crate::util::{absorb, int, rooted};
use atomask_mor::{FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

/// Exception thrown by `enqueue` on a full queue.
pub const QUEUE_FULL: &str = "QueueFullError";
/// Exception thrown by `dequeue`/`peek` on an empty queue.
pub const QUEUE_EMPTY: &str = "QueueEmptyError";

fn register(rb: &mut RegistryBuilder) {
    rb.class("QNode", |c| {
        c.field("value", Value::Null);
        c.field("next", Value::Null);
    });
    rb.class("StdQueue", |c| {
        c.field("head", Value::Null);
        c.field("tail", Value::Null);
        c.field("size", int(0));
        c.field("capacity", int(16));
        c.ctor(|ctx, this, args| {
            if let Some(cap) = args.first() {
                ctx.set(this, "capacity", cap.clone());
            }
            Ok(Value::Null)
        });
        c.method("size", |ctx, this, _| Ok(ctx.get(this, "size")))
            .never_throws();
        c.method("capacity", |ctx, this, _| Ok(ctx.get(this, "capacity")))
            .never_throws();
        c.method("isEmpty", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "size") == 0))
        });
        c.method("enqueue", |ctx, this, args| {
            let size = ctx.get_int(this, "size");
            if size >= ctx.get_int(this, "capacity") {
                return Err(ctx.exception(QUEUE_FULL, "queue at capacity"));
            }
            let node = ctx.alloc("QNode");
            ctx.set(node, "value", args[0].clone());
            let tail = ctx.get(this, "tail");
            if let Value::Ref(t) = tail {
                ctx.set(t, "next", Value::Ref(node));
            } else {
                ctx.set(this, "head", Value::Ref(node));
            }
            ctx.set(this, "tail", Value::Ref(node));
            ctx.set(this, "size", int(size + 1));
            Ok(Value::Null)
        })
        .throws(QUEUE_FULL);
        c.method("dequeue", |ctx, this, _| {
            let head = ctx.get(this, "head");
            let Value::Ref(h) = head else {
                return Err(ctx.exception(QUEUE_EMPTY, "dequeue on empty queue"));
            };
            let v = ctx.get(h, "value");
            let next = ctx.get(h, "next");
            ctx.set(this, "head", next.clone());
            if next.is_null() {
                ctx.set(this, "tail", Value::Null);
            }
            let size = ctx.get_int(this, "size");
            ctx.set(this, "size", int(size - 1));
            Ok(v)
        })
        .throws(QUEUE_EMPTY);
        c.method("peek", |ctx, this, _| {
            let head = ctx.get(this, "head");
            let Value::Ref(h) = head else {
                return Err(ctx.exception(QUEUE_EMPTY, "peek on empty queue"));
            };
            Ok(ctx.get(h, "value"))
        })
        .throws(QUEUE_EMPTY);
        c.method("clear", |ctx, this, _| {
            ctx.set(this, "head", Value::Null);
            ctx.set(this, "tail", Value::Null);
            ctx.set(this, "size", int(0));
            Ok(Value::Null)
        });
    });
    rb.class("Producer", |c| {
        c.field("queue", Value::Null);
        c.field("produced", int(0));
        c.field("rejected", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "queue", args[0].clone());
            Ok(Value::Null)
        });
        // Fills the queue with `n` values starting at `base`. A mid-batch
        // failure leaves earlier items enqueued — the batch itself is the
        // non-atomic unit, as in real producer code.
        c.method("produceBatch", |ctx, this, args| {
            let base = args[0].as_int().unwrap_or(0);
            let n = args[1].as_int().unwrap_or(0);
            let queue = ctx.get(this, "queue");
            let mut accepted = 0i64;
            let mut rejected = 0i64;
            for i in 0..n {
                match ctx.call_value(&queue, "enqueue", &[int(base + i)]) {
                    Ok(_) => accepted += 1,
                    // catch (QueueFullError): drop the item and go on; any
                    // other exception type keeps propagating.
                    Err(e) if e.ty == ctx.vm().exc_id(QUEUE_FULL) => rejected += 1,
                    Err(e) => return Err(e),
                }
            }
            let produced = ctx.get_int(this, "produced");
            ctx.set(this, "produced", int(produced + accepted));
            let r = ctx.get_int(this, "rejected");
            ctx.set(this, "rejected", int(r + rejected));
            Ok(int(accepted))
        })
        .throws(QUEUE_FULL);
        c.method("produced", |ctx, this, _| Ok(ctx.get(this, "produced")));
        c.method("rejected", |ctx, this, _| Ok(ctx.get(this, "rejected")));
    });
    rb.class("Consumer", |c| {
        c.field("queue", Value::Null);
        c.field("consumed", int(0));
        c.field("total", int(0));
        c.ctor(|ctx, this, args| {
            ctx.set(this, "queue", args[0].clone());
            Ok(Value::Null)
        });
        // Defensive drain: catches the empty-queue exception to terminate,
        // commits its statistics only after the loop.
        c.method("drainAll", |ctx, this, _| {
            let queue = ctx.get(this, "queue");
            let mut taken = 0i64;
            let mut sum = 0i64;
            loop {
                match ctx.call_value(&queue, "dequeue", &[]) {
                    Ok(v) => {
                        taken += 1;
                        sum += v.as_int().unwrap_or(0);
                    }
                    // catch (QueueEmptyError): the queue is drained.
                    Err(e) if e.ty == ctx.vm().exc_id(QUEUE_EMPTY) => break,
                    Err(e) => return Err(e),
                }
            }
            let consumed = ctx.get_int(this, "consumed");
            ctx.set(this, "consumed", int(consumed + taken));
            let total = ctx.get_int(this, "total");
            ctx.set(this, "total", int(total + sum));
            Ok(int(taken))
        });
        c.method("consumed", |ctx, this, _| Ok(ctx.get(this, "consumed")));
        c.method("total", |ctx, this, _| Ok(ctx.get(this, "total")));
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    let queue = rooted(vm, "StdQueue", &[int(8)])?;
    let q = queue.as_ref_id().expect("ref");
    let producer = rooted(vm, "Producer", &[queue.clone()])?;
    let p = producer.as_ref_id().expect("ref");
    let consumer = rooted(vm, "Consumer", &[queue])?;
    let c = consumer.as_ref_id().expect("ref");

    for round in 0..3 {
        vm.call(p, "produceBatch", &[int(round * 10), int(6)])?;
        absorb(vm.call(q, "peek", &[]));
        absorb(vm.call(q, "size", &[]));
        vm.call(c, "drainAll", &[])?;
    }
    // Overflow round: 12 items into a capacity-8 queue.
    vm.call(p, "produceBatch", &[int(100), int(12)])?;
    absorb(vm.call(p, "rejected", &[]));
    vm.call(c, "drainAll", &[])?;
    // Empty-queue error paths.
    absorb(vm.call(q, "dequeue", &[]));
    absorb(vm.call(q, "peek", &[]));
    for _ in 0..2 {
        absorb(vm.call(p, "produced", &[]));
        absorb(vm.call(c, "consumed", &[]));
        absorb(vm.call(c, "total", &[]));
        absorb(vm.call(q, "isEmpty", &[]));
        absorb(vm.call(q, "capacity", &[]));
    }
    absorb(vm.call(q, "clear", &[]));
    Ok(Value::Null)
}

/// The `stdQ` program.
pub fn program() -> FnProgram {
    FnProgram::new("stdQ", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::cpp());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{ObjId, Program};

    fn fresh(cap: i64) -> (Vm, ObjId) {
        let mut vm = Vm::new(build_registry());
        let q = vm.construct("StdQueue", &[int(cap)]).unwrap();
        vm.root(q);
        (vm, q)
    }

    #[test]
    fn fifo_order() {
        let (mut vm, q) = fresh(8);
        for i in 0..4 {
            vm.call(q, "enqueue", &[int(i)]).unwrap();
        }
        for i in 0..4 {
            assert_eq!(vm.call(q, "dequeue", &[]).unwrap(), int(i));
        }
        assert!(vm.call(q, "dequeue", &[]).is_err());
    }

    #[test]
    fn capacity_is_enforced_atomically() {
        let (mut vm, q) = fresh(2);
        vm.call(q, "enqueue", &[int(1)]).unwrap();
        vm.call(q, "enqueue", &[int(2)]).unwrap();
        let before = atomask_objgraph::Snapshot::of(vm.heap(), q);
        let err = vm.call(q, "enqueue", &[int(3)]).unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), QUEUE_FULL);
        assert_eq!(atomask_objgraph::Snapshot::of(vm.heap(), q), before);
    }

    #[test]
    fn producer_consumer_round_trip() {
        let mut vm = Vm::new(build_registry());
        let q = vm.construct("StdQueue", &[int(4)]).unwrap();
        vm.root(q);
        let p = vm.construct("Producer", &[Value::Ref(q)]).unwrap();
        vm.root(p);
        let c = vm.construct("Consumer", &[Value::Ref(q)]).unwrap();
        vm.root(c);
        // 6 items into a 4-slot queue: 4 accepted, 2 rejected.
        let accepted = vm.call(p, "produceBatch", &[int(0), int(6)]).unwrap();
        assert_eq!(accepted, int(4));
        assert_eq!(vm.call(p, "rejected", &[]).unwrap(), int(2));
        let taken = vm.call(c, "drainAll", &[]).unwrap();
        assert_eq!(taken, int(4));
        assert_eq!(vm.call(c, "total", &[]).unwrap(), int(1 + 2 + 3));
        assert_eq!(vm.call(q, "isEmpty", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

//! # atomask-apps — the evaluation applications
//!
//! Reimplementations, on the managed runtime of [`atomask_mor`], of the
//! applications the DSN 2003 paper evaluates (Table 1):
//!
//! | Paper app        | Language | Here |
//! |------------------|----------|------|
//! | `adaptorChain`   | C++      | [`selfstar::adaptor_chain`] |
//! | `stdQ`           | C++      | [`selfstar::stdq`] |
//! | `xml2Ctcp`       | C++      | [`selfstar::xml2ctcp`] |
//! | `xml2Cviasc1/2`  | C++      | [`selfstar::xml2cviasc`] |
//! | `xml2xml1`       | C++      | [`selfstar::xml2xml`] |
//! | `CircularList`   | Java     | [`collections::circular_list`] |
//! | `Dynarray`       | Java     | [`collections::dynarray`] |
//! | `HashedMap`      | Java     | [`collections::hashed_map`] |
//! | `HashedSet`      | Java     | [`collections::hashed_set`] |
//! | `LLMap`          | Java     | [`collections::llmap`] |
//! | `LinkedBuffer`   | Java     | [`collections::linked_buffer`] |
//! | `LinkedList`     | Java     | [`collections::linked_list`] |
//! | `RBMap`          | Java     | [`collections::rbmap`] |
//! | `RBTree`         | Java     | [`collections::rbtree`] |
//! | `RegExp`         | Java     | [`regexp`] |
//!
//! The Java applications follow the style of Doug Lea's `collections`
//! package and Jakarta RegExp: state lives in little cell/entry objects
//! accessed through accessor *methods*, so mutation sequences interleave
//! with many injectable calls — which is why the paper finds a substantial
//! fraction of pure failure non-atomic methods in the Java tests. The C++
//! applications follow the Self\* component style the paper describes as
//! "programmed carefully, with failure atomicity in mind": compute first,
//! commit with field writes last.
//!
//! Every application exposes a `program()` constructor returning a
//! [`atomask_mor::FnProgram`] with a deterministic driver (the paper's
//! "test program P"); [`suite::all_apps`] registers them for campaigns,
//! reports and benches. `linked_list` additionally exposes the §6.1 case
//! study: a `fixed_program()` whose trivial statement reorderings plus
//! `never_throws` annotations reduce the pure failure non-atomic count, as
//! in the paper's 18 → 3 experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Guest call sites pass argument slices as `&[v.clone()]`; rewriting the
// single-argument cases to `std::slice::from_ref` would make them read
// differently from the multi-argument ones for no functional gain.
#![allow(clippy::cloned_ref_to_slice_refs)]

pub mod collections;
pub mod regexp;
pub mod selfstar;
pub mod suite;
pub(crate) mod util;

pub use suite::{all_apps, cpp_apps, java_apps, program_by_name, AppSpec};

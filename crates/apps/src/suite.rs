//! The evaluation suite: the sixteen applications of the paper's Table 1,
//! addressable by name and language.

use atomask_mor::{FnProgram, Lang};

/// One evaluation application.
#[derive(Clone)]
pub struct AppSpec {
    /// Application name, matching the paper's Table 1 row.
    pub name: &'static str,
    /// Which side of the evaluation the app belongs to.
    pub lang: Lang,
    /// Program constructor.
    pub make: fn() -> FnProgram,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec")
            .field("name", &self.name)
            .field("lang", &self.lang)
            .finish()
    }
}

impl AppSpec {
    /// Instantiates the program.
    pub fn program(&self) -> FnProgram {
        (self.make)()
    }
}

/// All sixteen applications, C++ rows first, in Table 1 order.
pub fn all_apps() -> Vec<AppSpec> {
    let mut apps = cpp_apps();
    apps.extend(java_apps());
    apps
}

/// The six C++ (Self\*) applications.
pub fn cpp_apps() -> Vec<AppSpec> {
    use crate::selfstar::*;
    vec![
        AppSpec {
            name: "adaptorChain",
            lang: Lang::Cpp,
            make: adaptor_chain::program,
        },
        AppSpec {
            name: "stdQ",
            lang: Lang::Cpp,
            make: stdq::program,
        },
        AppSpec {
            name: "xml2Ctcp",
            lang: Lang::Cpp,
            make: xml2ctcp::program,
        },
        AppSpec {
            name: "xml2Cviasc1",
            lang: Lang::Cpp,
            make: xml2cviasc::program_v1,
        },
        AppSpec {
            name: "xml2Cviasc2",
            lang: Lang::Cpp,
            make: xml2cviasc::program_v2,
        },
        AppSpec {
            name: "xml2xml1",
            lang: Lang::Cpp,
            make: xml2xml::program,
        },
    ]
}

/// The ten Java applications.
pub fn java_apps() -> Vec<AppSpec> {
    use crate::collections::*;
    vec![
        AppSpec {
            name: "CircularList",
            lang: Lang::Java,
            make: circular_list::program,
        },
        AppSpec {
            name: "Dynarray",
            lang: Lang::Java,
            make: dynarray::program,
        },
        AppSpec {
            name: "HashedMap",
            lang: Lang::Java,
            make: hashed_map::program,
        },
        AppSpec {
            name: "HashedSet",
            lang: Lang::Java,
            make: hashed_set::program,
        },
        AppSpec {
            name: "LLMap",
            lang: Lang::Java,
            make: llmap::program,
        },
        AppSpec {
            name: "LinkedBuffer",
            lang: Lang::Java,
            make: linked_buffer::program,
        },
        AppSpec {
            name: "LinkedList",
            lang: Lang::Java,
            make: linked_list::program,
        },
        AppSpec {
            name: "RBMap",
            lang: Lang::Java,
            make: rbmap::program,
        },
        AppSpec {
            name: "RBTree",
            lang: Lang::Java,
            make: rbtree::program,
        },
        AppSpec {
            name: "RegExp",
            lang: Lang::Java,
            make: crate::regexp::program,
        },
    ]
}

/// Looks an application up by its Table 1 name. The §6.1 case-study
/// variant is addressable as `"LinkedList-fixed"`.
pub fn program_by_name(name: &str) -> Option<FnProgram> {
    if name == "LinkedList-fixed" {
        return Some(crate::collections::linked_list::fixed_program());
    }
    all_apps()
        .into_iter()
        .find(|a| a.name == name)
        .map(|a| a.program())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{Program, Vm};

    #[test]
    fn sixteen_apps_in_table1_order() {
        let apps = all_apps();
        assert_eq!(apps.len(), 16);
        assert_eq!(cpp_apps().len(), 6);
        assert_eq!(java_apps().len(), 10);
        assert_eq!(apps[0].name, "adaptorChain");
        assert_eq!(apps[6].name, "CircularList");
        assert_eq!(apps[15].name, "RegExp");
    }

    #[test]
    fn every_driver_runs_clean() {
        for spec in all_apps() {
            let p = spec.program();
            assert_eq!(p.name(), spec.name);
            let mut vm = Vm::new(p.build_registry());
            p.run(&mut vm)
                .unwrap_or_else(|e| panic!("{} driver failed: {e}", spec.name));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(program_by_name("RBMap").is_some());
        assert!(program_by_name("LinkedList-fixed").is_some());
        assert!(program_by_name("NoSuchApp").is_none());
    }

    #[test]
    fn profiles_match_language() {
        for spec in all_apps() {
            let reg = spec.program().build_registry();
            assert_eq!(reg.profile().lang, spec.lang, "{}", spec.name);
        }
    }
}

//! The `HashedMap` application: a chained hash table.
//!
//! Buckets live on the managed heap as a linked chain of `HBucket` objects
//! (the runtime has no arrays); each bucket holds a chain of `HEntry`
//! objects. `rehash` rebuilds the whole table — a long multi-step mutation
//! that is only triggered when the load factor is exceeded, i.e. rarely:
//! exactly the kind of infrequently-called failure non-atomic method the
//! paper says "would probably not have been discovered without the
//! automated exception injections".

use crate::util::{absorb, int, rooted, s};
use atomask_mor::{
    Ctx, FnProgram, MethodResult, ObjId, Profile, Registry, RegistryBuilder, Value, Vm,
};

fn hash_value(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        Value::Str(t) => t
            .bytes()
            .fold(7i64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as i64)),
        Value::Bool(b) => *b as i64,
        _ => 0,
    }
    .rem_euclid(i64::MAX)
}

fn register_entry_and_bucket(rb: &mut RegistryBuilder) {
    rb.class("HEntry", |c| {
        c.field("key", Value::Null);
        c.field("hash", int(0));
        c.field("value", Value::Null);
        c.field("next", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "key", args[0].clone());
            ctx.set(this, "hash", args[1].clone());
            ctx.set(this, "value", args[2].clone());
            Ok(Value::Null)
        });
        c.method("key", |ctx, this, _| Ok(ctx.get(this, "key")));
        c.method("hash", |ctx, this, _| Ok(ctx.get(this, "hash")));
        c.method("value", |ctx, this, _| Ok(ctx.get(this, "value")));
        c.method("setValue", |ctx, this, args| {
            ctx.set(this, "value", args[0].clone());
            Ok(Value::Null)
        });
        c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
        c.method("setNext", |ctx, this, args| {
            ctx.set(this, "next", args[0].clone());
            Ok(Value::Null)
        });
    });
    rb.class("HBucket", |c| {
        c.field("chain", Value::Null);
        c.field("next", Value::Null);
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("chain", |ctx, this, _| Ok(ctx.get(this, "chain")));
        c.method("setChain", |ctx, this, args| {
            ctx.set(this, "chain", args[0].clone());
            Ok(Value::Null)
        });
        c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
        c.method("setNext", |ctx, this, args| {
            ctx.set(this, "next", args[0].clone());
            Ok(Value::Null)
        });
    });
}

/// Walks to the `i`-th bucket of the table chain.
fn bucket_at(ctx: &mut Ctx<'_>, this: ObjId, i: i64) -> MethodResult {
    let mut cur = ctx.get(this, "table");
    for _ in 0..i {
        cur = ctx.call_value(&cur, "next", &[])?;
    }
    Ok(cur)
}

fn register(rb: &mut RegistryBuilder) {
    register_entry_and_bucket(rb);
    rb.class("HashedMap", |c| {
        c.field("table", Value::Null);
        c.field("buckets", int(0));
        c.field("count", int(0));
        c.field("threshold", int(0));
        c.ctor(|ctx, this, _| {
            ctx.call(this, "growTable", &[int(4)])?;
            Ok(Value::Null)
        });
        c.method("size", |ctx, this, _| Ok(ctx.get(this, "count")))
            .never_throws();
        c.method("isEmpty", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "count") == 0))
        });
        c.method("hashOf", |_, _, args| Ok(int(hash_value(&args[0]))))
            .never_throws();
        // Builds a fresh bucket chain of `n` buckets and installs it.
        // Vulnerable: bucket count written before the chain is complete.
        c.method("growTable", |ctx, this, args| {
            let n = args[0].as_int().unwrap_or(4);
            ctx.set(this, "buckets", int(n));
            ctx.set(this, "threshold", int(n * 2));
            let mut head = Value::Null;
            for _ in 0..n {
                let b = ctx.new_object("HBucket", &[])?;
                ctx.call(b, "setNext", &[head])?;
                head = Value::Ref(b);
            }
            ctx.set(this, "table", head);
            Ok(Value::Null)
        });
        c.method("bucketFor", |ctx, this, args| {
            let h = args[0].as_int().unwrap_or(0);
            let n = ctx.get_int(this, "buckets");
            bucket_at(ctx, this, h.rem_euclid(n.max(1)))
        });
        c.method("get", |ctx, this, args| {
            let h = ctx.call(this, "hashOf", &[args[0].clone()])?;
            let bucket = ctx.call(this, "bucketFor", &[h])?;
            let mut cur = ctx.call_value(&bucket, "chain", &[])?;
            while !cur.is_null() {
                let k = ctx.call_value(&cur, "key", &[])?;
                if k == args[0] {
                    return ctx.call_value(&cur, "value", &[]);
                }
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(Value::Null)
        });
        c.method("containsKey", |ctx, this, args| {
            let h = ctx.call(this, "hashOf", &[args[0].clone()])?;
            let bucket = ctx.call(this, "bucketFor", &[h])?;
            let mut cur = ctx.call_value(&bucket, "chain", &[])?;
            while !cur.is_null() {
                let k = ctx.call_value(&cur, "key", &[])?;
                if k == args[0] {
                    return Ok(Value::Bool(true));
                }
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(Value::Bool(false))
        });
        // Vulnerable: count bumped before the entry is linked; rehash runs
        // after the insert.
        c.method("put", |ctx, this, args| {
            let h = ctx.call(this, "hashOf", &[args[0].clone()])?;
            let bucket = ctx.call(this, "bucketFor", &[h.clone()])?;
            let mut cur = ctx.call_value(&bucket, "chain", &[])?;
            while !cur.is_null() {
                let k = ctx.call_value(&cur, "key", &[])?;
                if k == args[0] {
                    let old = ctx.call_value(&cur, "value", &[])?;
                    ctx.call_value(&cur, "setValue", &[args[1].clone()])?;
                    return Ok(old);
                }
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            let count = ctx.get_int(this, "count");
            ctx.set(this, "count", int(count + 1));
            let entry = ctx.new_object("HEntry", &[args[0].clone(), h, args[1].clone()])?;
            let chain = ctx.call_value(&bucket, "chain", &[])?;
            ctx.call(entry, "setNext", &[chain])?;
            ctx.call_value(&bucket, "setChain", &[Value::Ref(entry)])?;
            if count + 1 > ctx.get_int(this, "threshold") {
                ctx.call(this, "rehash", &[])?;
            }
            Ok(Value::Null)
        });
        // Rebuilds the table with twice the buckets: collects all entries,
        // installs a fresh chain, reinserts one by one. Rarely called, and
        // thoroughly non-atomic.
        c.method("rehash", |ctx, this, _| {
            let buckets = ctx.get_int(this, "buckets");
            // Collect entries (reads only).
            let mut entries = Vec::new();
            let mut bucket = ctx.get(this, "table");
            while !bucket.is_null() {
                let mut cur = ctx.call_value(&bucket, "chain", &[])?;
                while !cur.is_null() {
                    let k = ctx.call_value(&cur, "key", &[])?;
                    let v = ctx.call_value(&cur, "value", &[])?;
                    entries.push((k, v));
                    cur = ctx.call_value(&cur, "next", &[])?;
                }
                bucket = ctx.call_value(&bucket, "next", &[])?;
            }
            // Install the larger table, then reinsert.
            ctx.set(this, "count", int(0));
            ctx.call(this, "growTable", &[int(buckets * 2)])?;
            for (k, v) in entries {
                ctx.call(this, "put", &[k, v])?;
            }
            Ok(Value::Null)
        });
        c.method("remove", |ctx, this, args| {
            let h = ctx.call(this, "hashOf", &[args[0].clone()])?;
            let bucket = ctx.call(this, "bucketFor", &[h])?;
            let chain = ctx.call_value(&bucket, "chain", &[])?;
            if chain.is_null() {
                return Ok(Value::Null);
            }
            let count = ctx.get_int(this, "count");
            let hk = ctx.call_value(&chain, "key", &[])?;
            if hk == args[0] {
                ctx.set(this, "count", int(count - 1));
                let v = ctx.call_value(&chain, "value", &[])?;
                let next = ctx.call_value(&chain, "next", &[])?;
                ctx.call_value(&bucket, "setChain", &[next])?;
                return Ok(v);
            }
            let mut prev = chain;
            loop {
                let cur = ctx.call_value(&prev, "next", &[])?;
                if cur.is_null() {
                    return Ok(Value::Null);
                }
                let k = ctx.call_value(&cur, "key", &[])?;
                if k == args[0] {
                    ctx.set(this, "count", int(count - 1));
                    let v = ctx.call_value(&cur, "value", &[])?;
                    let next = ctx.call_value(&cur, "next", &[])?;
                    ctx.call_value(&prev, "setNext", &[next])?;
                    return Ok(v);
                }
                prev = cur;
            }
        });
        c.method("clear", |ctx, this, _| {
            let mut bucket = ctx.get(this, "table");
            while !bucket.is_null() {
                ctx.call_value(&bucket, "setChain", &[Value::Null])?;
                bucket = ctx.call_value(&bucket, "next", &[])?;
            }
            ctx.set(this, "count", int(0));
            Ok(Value::Null)
        });
        c.method("checkInvariant", |ctx, this, _| {
            let mut n = 0i64;
            let mut bucket = ctx.get(this, "table");
            let mut buckets = 0i64;
            while !bucket.is_null() {
                buckets += 1;
                let mut cur = ctx.call_value(&bucket, "chain", &[])?;
                while !cur.is_null() {
                    n += 1;
                    cur = ctx.call_value(&cur, "next", &[])?;
                }
                bucket = ctx.call_value(&bucket, "next", &[])?;
            }
            Ok(Value::Bool(
                n == ctx.get_int(this, "count") && buckets == ctx.get_int(this, "buckets"),
            ))
        });
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    let map = rooted(vm, "HashedMap", &[])?;
    let m = map.as_ref_id().expect("ref");
    // Enough puts to cross the initial threshold and trigger a rehash.
    for (i, k) in [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota",
    ]
    .iter()
    .enumerate()
    {
        vm.call(m, "put", &[s(k), int(i as i64)])?;
    }
    vm.call(m, "put", &[s("beta"), int(200)])?;
    absorb(vm.call(m, "remove", &[s("gamma")]));
    absorb(vm.call(m, "remove", &[s("missing")]));
    for _ in 0..2 {
        for k in ["alpha", "beta", "delta", "missing"] {
            absorb(vm.call(m, "get", &[s(k)]));
            absorb(vm.call(m, "containsKey", &[s(k)]));
        }
        absorb(vm.call(m, "size", &[]));
        absorb(vm.call(m, "isEmpty", &[]));
        absorb(vm.call(m, "checkInvariant", &[]));
    }
    absorb(vm.call(m, "clear", &[]));
    absorb(vm.call(m, "isEmpty", &[]));
    Ok(Value::Null)
}

/// The `HashedMap` program.
pub fn program() -> FnProgram {
    FnProgram::new("HashedMap", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::Program;

    fn fresh() -> (Vm, ObjId) {
        let mut vm = Vm::new(build_registry());
        let m = vm.construct("HashedMap", &[]).unwrap();
        vm.root(m);
        (vm, m)
    }

    #[test]
    fn put_get_update_remove() {
        let (mut vm, m) = fresh();
        assert_eq!(vm.call(m, "put", &[s("a"), int(1)]).unwrap(), Value::Null);
        assert_eq!(vm.call(m, "put", &[s("a"), int(2)]).unwrap(), int(1));
        assert_eq!(vm.call(m, "get", &[s("a")]).unwrap(), int(2));
        assert_eq!(vm.call(m, "remove", &[s("a")]).unwrap(), int(2));
        assert_eq!(vm.call(m, "get", &[s("a")]).unwrap(), Value::Null);
        assert_eq!(vm.call(m, "size", &[]).unwrap(), int(0));
    }

    #[test]
    fn rehash_preserves_entries() {
        let (mut vm, m) = fresh();
        let keys: Vec<String> = (0..20).map(|i| format!("key-{i}")).collect();
        for (i, k) in keys.iter().enumerate() {
            vm.call(m, "put", &[s(k), int(i as i64)]).unwrap();
        }
        // Threshold starts at 8, so several rehashes ran.
        let buckets = vm.heap().field(m, "buckets").unwrap().as_int().unwrap();
        assert!(buckets > 4, "table should have grown, buckets={buckets}");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(vm.call(m, "get", &[s(k)]).unwrap(), int(i as i64), "{k}");
        }
        assert_eq!(vm.call(m, "size", &[]).unwrap(), int(20));
        assert_eq!(
            vm.call(m, "checkInvariant", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn int_and_bool_keys_hash() {
        let (mut vm, m) = fresh();
        vm.call(m, "put", &[int(-5), s("neg")]).unwrap();
        vm.call(m, "put", &[Value::Bool(true), s("yes")]).unwrap();
        assert_eq!(vm.call(m, "get", &[int(-5)]).unwrap(), s("neg"));
        assert_eq!(vm.call(m, "get", &[Value::Bool(true)]).unwrap(), s("yes"));
    }

    #[test]
    fn clear_empties_but_keeps_buckets() {
        let (mut vm, m) = fresh();
        vm.call(m, "put", &[s("a"), int(1)]).unwrap();
        vm.call(m, "clear", &[]).unwrap();
        assert_eq!(vm.call(m, "isEmpty", &[]).unwrap(), Value::Bool(true));
        assert_eq!(
            vm.call(m, "checkInvariant", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

//! The `Dynarray` application: a growable array.
//!
//! The managed runtime has no variable-length arrays, so storage is a chain
//! of `Slot` cells managed by capacity — the observable behaviour (indexed
//! access, amortized growth, shifting inserts/removes) matches a classic
//! `Dynarray`.

use crate::util::{absorb, int, rooted};
use atomask_mor::{Ctx, FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

use super::linked_list::INDEX_OOB;

fn register(rb: &mut RegistryBuilder) {
    rb.class("Slot", |c| {
        c.field("value", Value::Null);
        c.field("next", Value::Null);
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("value", |ctx, this, _| Ok(ctx.get(this, "value")));
        c.method("setValue", |ctx, this, args| {
            ctx.set(this, "value", args[0].clone());
            Ok(Value::Null)
        });
        c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
        c.method("setNext", |ctx, this, args| {
            ctx.set(this, "next", args[0].clone());
            Ok(Value::Null)
        });
    });
    rb.class("Dynarray", |c| {
        c.field("slots", Value::Null);
        c.field("size", int(0));
        c.field("capacity", int(0));
        c.ctor(|ctx, this, args| {
            let cap = args.first().and_then(Value::as_int).unwrap_or(4);
            ctx.call(this, "ensureCapacity", &[int(cap)])?;
            Ok(Value::Null)
        });
        c.method("size", |ctx, this, _| Ok(ctx.get(this, "size")))
            .never_throws();
        c.method("capacity", |ctx, this, _| Ok(ctx.get(this, "capacity")));
        c.method("isEmpty", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "size") == 0))
        });
        // Grows the slot chain. Vulnerable order: capacity is bumped before
        // the slots exist, one at a time.
        c.method("ensureCapacity", |ctx, this, args| {
            let want = args[0].as_int().unwrap_or(0);
            loop {
                let cap = ctx.get_int(this, "capacity");
                if cap >= want {
                    return Ok(Value::Null);
                }
                ctx.set(this, "capacity", int(cap + 1));
                let slot = ctx.new_object("Slot", &[])?;
                let slots = ctx.get(this, "slots");
                if slots.is_null() {
                    ctx.set(this, "slots", Value::Ref(slot));
                } else {
                    let last = last_slot(ctx, slots)?;
                    ctx.call_value(&last, "setNext", &[Value::Ref(slot)])?;
                }
            }
        });
        c.method("at", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            if i < 0 || i >= ctx.get_int(this, "size") {
                return Err(ctx.exception(INDEX_OOB, format!("index {i}")));
            }
            let slot = slot_at(ctx, this, i)?;
            ctx.call_value(&slot, "value", &[])
        })
        .throws(INDEX_OOB);
        c.method("setAt", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            if i < 0 || i >= ctx.get_int(this, "size") {
                return Err(ctx.exception(INDEX_OOB, format!("setAt {i}")));
            }
            let slot = slot_at(ctx, this, i)?;
            ctx.call_value(&slot, "setValue", &[args[1].clone()])
        })
        .throws(INDEX_OOB);
        // Vulnerable order: size is bumped before growth and the store.
        c.method("append", |ctx, this, args| {
            let size = ctx.get_int(this, "size");
            ctx.set(this, "size", int(size + 1));
            ctx.call(this, "ensureCapacity", &[int(size + 1)])?;
            let slot = slot_at(ctx, this, size)?;
            ctx.call_value(&slot, "setValue", &[args[0].clone()])
        });
        // Shifts elements right from the end — a long multi-step mutation.
        c.method("insertAt", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            let size = ctx.get_int(this, "size");
            if i < 0 || i > size {
                return Err(ctx.exception(INDEX_OOB, format!("insertAt {i}")));
            }
            ctx.call(this, "append", &[Value::Null])?;
            let mut k = size;
            while k > i {
                let prev = ctx.call(this, "at", &[int(k - 1)])?;
                ctx.call(this, "setAt", &[int(k), prev])?;
                k -= 1;
            }
            ctx.call(this, "setAt", &[int(i), args[1].clone()])?;
            Ok(Value::Null)
        })
        .throws(INDEX_OOB);
        c.method("removeAt", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            let size = ctx.get_int(this, "size");
            if i < 0 || i >= size {
                return Err(ctx.exception(INDEX_OOB, format!("removeAt {i}")));
            }
            let victim = ctx.call(this, "at", &[int(i)])?;
            let mut k = i;
            while k < size - 1 {
                let next = ctx.call(this, "at", &[int(k + 1)])?;
                ctx.call(this, "setAt", &[int(k), next])?;
                k += 1;
            }
            // Clear the vacated slot, then shrink.
            ctx.call(this, "setAt", &[int(size - 1), Value::Null])?;
            ctx.set(this, "size", int(size - 1));
            Ok(victim)
        })
        .throws(INDEX_OOB);
        c.method("indexOf", |ctx, this, args| {
            let size = ctx.get_int(this, "size");
            for i in 0..size {
                let v = ctx.call(this, "at", &[int(i)])?;
                if v == args[0] {
                    return Ok(int(i));
                }
            }
            Ok(int(-1))
        })
        .throws(INDEX_OOB);
        c.method("contains", |ctx, this, args| {
            let idx = ctx.call(this, "indexOf", args)?;
            Ok(Value::Bool(idx.as_int().unwrap_or(-1) >= 0))
        })
        .throws(INDEX_OOB);
        c.method("fill", |ctx, this, args| {
            let size = ctx.get_int(this, "size");
            for i in 0..size {
                ctx.call(this, "setAt", &[int(i), args[0].clone()])?;
            }
            Ok(Value::Null)
        })
        .throws(INDEX_OOB);
        c.method("clear", |ctx, this, _| {
            ctx.set(this, "size", int(0));
            Ok(Value::Null)
        });
        // Drops unused trailing slots. Vulnerable: capacity written before
        // the chain is actually cut.
        c.method("trimToSize", |ctx, this, _| {
            let size = ctx.get_int(this, "size");
            ctx.set(this, "capacity", int(size));
            if size == 0 {
                ctx.set(this, "slots", Value::Null);
                return Ok(Value::Null);
            }
            let slots = ctx.get(this, "slots");
            let last = nth_slot(ctx, slots, size - 1)?;
            ctx.call_value(&last, "setNext", &[Value::Null])?;
            Ok(Value::Null)
        });
    });
}

fn last_slot(ctx: &mut Ctx<'_>, first: Value) -> MethodResult {
    let mut cur = first;
    loop {
        let next = ctx.call_value(&cur, "next", &[])?;
        if next.is_null() {
            return Ok(cur);
        }
        cur = next;
    }
}

fn nth_slot(ctx: &mut Ctx<'_>, first: Value, n: i64) -> MethodResult {
    let mut cur = first;
    for _ in 0..n {
        cur = ctx.call_value(&cur, "next", &[])?;
    }
    Ok(cur)
}

fn slot_at(ctx: &mut Ctx<'_>, this: atomask_mor::ObjId, i: i64) -> MethodResult {
    let slots = ctx.get(this, "slots");
    nth_slot(ctx, slots, i)
}

fn driver(vm: &mut Vm) -> MethodResult {
    let arr = rooted(vm, "Dynarray", &[int(2)])?;
    let a = arr.as_ref_id().expect("ref");
    for i in 0..6 {
        vm.call(a, "append", &[int(i * 10)])?;
    }
    absorb(vm.call(a, "insertAt", &[int(2), int(99)]));
    absorb(vm.call(a, "removeAt", &[int(4)]));
    absorb(vm.call(a, "setAt", &[int(0), int(-1)]));
    absorb(vm.call(a, "trimToSize", &[]));
    for _ in 0..3 {
        for i in 0..6 {
            absorb(vm.call(a, "at", &[int(i)]));
        }
        absorb(vm.call(a, "contains", &[int(30)]));
        absorb(vm.call(a, "indexOf", &[int(99)]));
        absorb(vm.call(a, "size", &[]));
        absorb(vm.call(a, "capacity", &[]));
        absorb(vm.call(a, "isEmpty", &[]));
    }
    absorb(vm.call(a, "fill", &[int(7)]));
    // Error paths.
    absorb(vm.call(a, "at", &[int(50)]));
    absorb(vm.call(a, "removeAt", &[int(-3)]));
    absorb(vm.call(a, "clear", &[]));
    absorb(vm.call(a, "isEmpty", &[]));
    Ok(Value::Null)
}

/// The `Dynarray` program.
pub fn program() -> FnProgram {
    FnProgram::new("Dynarray", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{ObjId, Program};

    fn fresh() -> (Vm, ObjId) {
        let mut vm = Vm::new(build_registry());
        let a = vm.construct("Dynarray", &[int(2)]).unwrap();
        vm.root(a);
        (vm, a)
    }

    fn contents(vm: &mut Vm, a: ObjId) -> Vec<i64> {
        let size = vm.heap().field(a, "size").unwrap().as_int().unwrap();
        (0..size)
            .map(|i| vm.call(a, "at", &[int(i)]).unwrap().as_int().unwrap())
            .collect()
    }

    #[test]
    fn append_grows_capacity() {
        let (mut vm, a) = fresh();
        for i in 0..5 {
            vm.call(a, "append", &[int(i)]).unwrap();
        }
        assert_eq!(contents(&mut vm, a), vec![0, 1, 2, 3, 4]);
        let cap = vm.call(a, "capacity", &[]).unwrap().as_int().unwrap();
        assert!(cap >= 5);
    }

    #[test]
    fn insert_and_remove_shift() {
        let (mut vm, a) = fresh();
        for i in 0..4 {
            vm.call(a, "append", &[int(i)]).unwrap();
        }
        vm.call(a, "insertAt", &[int(1), int(9)]).unwrap();
        assert_eq!(contents(&mut vm, a), vec![0, 9, 1, 2, 3]);
        assert_eq!(vm.call(a, "removeAt", &[int(2)]).unwrap(), int(1));
        assert_eq!(contents(&mut vm, a), vec![0, 9, 2, 3]);
    }

    #[test]
    fn set_fill_trim() {
        let (mut vm, a) = fresh();
        for i in 0..3 {
            vm.call(a, "append", &[int(i)]).unwrap();
        }
        vm.call(a, "setAt", &[int(1), int(42)]).unwrap();
        assert_eq!(contents(&mut vm, a), vec![0, 42, 2]);
        vm.call(a, "fill", &[int(5)]).unwrap();
        assert_eq!(contents(&mut vm, a), vec![5, 5, 5]);
        vm.call(a, "trimToSize", &[]).unwrap();
        assert_eq!(vm.call(a, "capacity", &[]).unwrap(), int(3));
    }

    #[test]
    fn bounds_are_enforced() {
        let (mut vm, a) = fresh();
        vm.call(a, "append", &[int(1)]).unwrap();
        let err = vm.call(a, "at", &[int(5)]).unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), INDEX_OOB);
        assert!(vm.call(a, "insertAt", &[int(9), int(0)]).is_err());
        assert!(vm.call(a, "removeAt", &[int(-1)]).is_err());
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

//! The `HashedSet` application: a chained hash set sharing the bucket
//! design of [`super::hashed_map`], plus set-algebra operations.

use crate::util::{absorb, int, rooted};
use atomask_mor::{
    Ctx, FnProgram, MethodResult, ObjId, Profile, Registry, RegistryBuilder, Value, Vm,
};

fn hash_value(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        Value::Str(t) => t
            .bytes()
            .fold(7i64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as i64)),
        Value::Bool(b) => *b as i64,
        _ => 0,
    }
    .rem_euclid(i64::MAX)
}

fn bucket_at(ctx: &mut Ctx<'_>, this: ObjId, i: i64) -> MethodResult {
    let mut cur = ctx.get(this, "table");
    for _ in 0..i {
        cur = ctx.call_value(&cur, "next", &[])?;
    }
    Ok(cur)
}

fn register(rb: &mut RegistryBuilder) {
    rb.class("SEntry", |c| {
        c.field("element", Value::Null);
        c.field("next", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "element", args[0].clone());
            Ok(Value::Null)
        });
        c.method("element", |ctx, this, _| Ok(ctx.get(this, "element")));
        c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
        c.method("setNext", |ctx, this, args| {
            ctx.set(this, "next", args[0].clone());
            Ok(Value::Null)
        });
    });
    rb.class("SBucket", |c| {
        c.field("chain", Value::Null);
        c.field("next", Value::Null);
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("chain", |ctx, this, _| Ok(ctx.get(this, "chain")));
        c.method("setChain", |ctx, this, args| {
            ctx.set(this, "chain", args[0].clone());
            Ok(Value::Null)
        });
        c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
        c.method("setNext", |ctx, this, args| {
            ctx.set(this, "next", args[0].clone());
            Ok(Value::Null)
        });
    });
    rb.class("HashedSet", |c| {
        c.field("table", Value::Null);
        c.field("buckets", int(0));
        c.field("count", int(0));
        c.field("threshold", int(0));
        c.ctor(|ctx, this, _| {
            ctx.call(this, "growTable", &[int(4)])?;
            Ok(Value::Null)
        });
        c.method("size", |ctx, this, _| Ok(ctx.get(this, "count")))
            .never_throws();
        c.method("isEmpty", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "count") == 0))
        });
        c.method("hashOf", |_, _, args| Ok(int(hash_value(&args[0]))))
            .never_throws();
        c.method("growTable", |ctx, this, args| {
            let n = args[0].as_int().unwrap_or(4);
            ctx.set(this, "buckets", int(n));
            ctx.set(this, "threshold", int(n * 2));
            let mut head = Value::Null;
            for _ in 0..n {
                let b = ctx.new_object("SBucket", &[])?;
                ctx.call(b, "setNext", &[head])?;
                head = Value::Ref(b);
            }
            ctx.set(this, "table", head);
            Ok(Value::Null)
        });
        c.method("bucketFor", |ctx, this, args| {
            let h = args[0].as_int().unwrap_or(0);
            let n = ctx.get_int(this, "buckets");
            bucket_at(ctx, this, h.rem_euclid(n.max(1)))
        });
        c.method("contains", |ctx, this, args| {
            let h = ctx.call(this, "hashOf", &[args[0].clone()])?;
            let bucket = ctx.call(this, "bucketFor", &[h])?;
            let mut cur = ctx.call_value(&bucket, "chain", &[])?;
            while !cur.is_null() {
                let e = ctx.call_value(&cur, "element", &[])?;
                if e == args[0] {
                    return Ok(Value::Bool(true));
                }
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(Value::Bool(false))
        });
        // Returns true iff the element was inserted. Vulnerable: count
        // bumped before the entry is linked in.
        c.method("add", |ctx, this, args| {
            let present = ctx.call(this, "contains", &[args[0].clone()])?;
            if present == Value::Bool(true) {
                return Ok(Value::Bool(false));
            }
            let count = ctx.get_int(this, "count");
            ctx.set(this, "count", int(count + 1));
            let h = ctx.call(this, "hashOf", &[args[0].clone()])?;
            let bucket = ctx.call(this, "bucketFor", &[h])?;
            let entry = ctx.new_object("SEntry", &[args[0].clone()])?;
            let chain = ctx.call_value(&bucket, "chain", &[])?;
            ctx.call(entry, "setNext", &[chain])?;
            ctx.call_value(&bucket, "setChain", &[Value::Ref(entry)])?;
            if count + 1 > ctx.get_int(this, "threshold") {
                ctx.call(this, "rehash", &[])?;
            }
            Ok(Value::Bool(true))
        });
        c.method("rehash", |ctx, this, _| {
            let buckets = ctx.get_int(this, "buckets");
            let mut elements = Vec::new();
            let mut bucket = ctx.get(this, "table");
            while !bucket.is_null() {
                let mut cur = ctx.call_value(&bucket, "chain", &[])?;
                while !cur.is_null() {
                    elements.push(ctx.call_value(&cur, "element", &[])?);
                    cur = ctx.call_value(&cur, "next", &[])?;
                }
                bucket = ctx.call_value(&bucket, "next", &[])?;
            }
            ctx.set(this, "count", int(0));
            ctx.call(this, "growTable", &[int(buckets * 2)])?;
            for e in elements {
                ctx.call(this, "add", &[e])?;
            }
            Ok(Value::Null)
        });
        c.method("remove", |ctx, this, args| {
            let h = ctx.call(this, "hashOf", &[args[0].clone()])?;
            let bucket = ctx.call(this, "bucketFor", &[h])?;
            let chain = ctx.call_value(&bucket, "chain", &[])?;
            if chain.is_null() {
                return Ok(Value::Bool(false));
            }
            let count = ctx.get_int(this, "count");
            let he = ctx.call_value(&chain, "element", &[])?;
            if he == args[0] {
                ctx.set(this, "count", int(count - 1));
                let next = ctx.call_value(&chain, "next", &[])?;
                ctx.call_value(&bucket, "setChain", &[next])?;
                return Ok(Value::Bool(true));
            }
            let mut prev = chain;
            loop {
                let cur = ctx.call_value(&prev, "next", &[])?;
                if cur.is_null() {
                    return Ok(Value::Bool(false));
                }
                let e = ctx.call_value(&cur, "element", &[])?;
                if e == args[0] {
                    ctx.set(this, "count", int(count - 1));
                    let next = ctx.call_value(&cur, "next", &[])?;
                    ctx.call_value(&prev, "setNext", &[next])?;
                    return Ok(Value::Bool(true));
                }
                prev = cur;
            }
        });
        // In-place union. Vulnerable in aggregate: adds land one by one.
        c.method("addAll", |ctx, this, args| {
            let other = match &args[0] {
                Value::Ref(id) => *id,
                _ => return Ok(Value::Null),
            };
            let mut bucket = ctx.get(other, "table");
            while !bucket.is_null() {
                let mut cur = ctx.call_value(&bucket, "chain", &[])?;
                while !cur.is_null() {
                    let e = ctx.call_value(&cur, "element", &[])?;
                    ctx.call(this, "add", &[e])?;
                    cur = ctx.call_value(&cur, "next", &[])?;
                }
                bucket = ctx.call_value(&bucket, "next", &[])?;
            }
            Ok(Value::Null)
        });
        // Removes everything not present in `other`.
        c.method("retainAll", |ctx, this, args| {
            let other = args[0].clone();
            // Collect elements first (reads), then remove the strays.
            let mut mine = Vec::new();
            let mut bucket = ctx.get(this, "table");
            while !bucket.is_null() {
                let mut cur = ctx.call_value(&bucket, "chain", &[])?;
                while !cur.is_null() {
                    mine.push(ctx.call_value(&cur, "element", &[])?);
                    cur = ctx.call_value(&cur, "next", &[])?;
                }
                bucket = ctx.call_value(&bucket, "next", &[])?;
            }
            for e in mine {
                let keep = ctx.call_value(&other, "contains", &[e.clone()])?;
                if keep == Value::Bool(false) {
                    ctx.call(this, "remove", &[e])?;
                }
            }
            Ok(Value::Null)
        });
        c.method("clear", |ctx, this, _| {
            let mut bucket = ctx.get(this, "table");
            while !bucket.is_null() {
                ctx.call_value(&bucket, "setChain", &[Value::Null])?;
                bucket = ctx.call_value(&bucket, "next", &[])?;
            }
            ctx.set(this, "count", int(0));
            Ok(Value::Null)
        });
        c.method("checkInvariant", |ctx, this, _| {
            let mut n = 0i64;
            let mut bucket = ctx.get(this, "table");
            while !bucket.is_null() {
                let mut cur = ctx.call_value(&bucket, "chain", &[])?;
                while !cur.is_null() {
                    n += 1;
                    cur = ctx.call_value(&cur, "next", &[])?;
                }
                bucket = ctx.call_value(&bucket, "next", &[])?;
            }
            Ok(Value::Bool(n == ctx.get_int(this, "count")))
        });
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    let set = rooted(vm, "HashedSet", &[])?;
    let a = set.as_ref_id().expect("ref");
    for i in 0..9 {
        vm.call(a, "add", &[int(i)])?;
    }
    vm.call(a, "add", &[int(3)])?; // duplicate
    absorb(vm.call(a, "remove", &[int(5)]));
    absorb(vm.call(a, "remove", &[int(99)]));
    let other = rooted(vm, "HashedSet", &[])?;
    let b = other.as_ref_id().expect("ref");
    for i in [1, 3, 5, 7, 11] {
        vm.call(b, "add", &[int(i)])?;
    }
    vm.call(a, "addAll", &[other.clone()])?;
    vm.call(a, "retainAll", &[other])?;
    for _ in 0..2 {
        for i in [1, 3, 7, 42] {
            absorb(vm.call(a, "contains", &[int(i)]));
        }
        absorb(vm.call(a, "size", &[]));
        absorb(vm.call(a, "isEmpty", &[]));
        absorb(vm.call(a, "checkInvariant", &[]));
    }
    absorb(vm.call(b, "clear", &[]));
    absorb(vm.call(b, "isEmpty", &[]));
    Ok(Value::Null)
}

/// The `HashedSet` program.
pub fn program() -> FnProgram {
    FnProgram::new("HashedSet", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::s;
    use atomask_mor::Program;

    fn fresh() -> (Vm, ObjId) {
        let mut vm = Vm::new(build_registry());
        let a = vm.construct("HashedSet", &[]).unwrap();
        vm.root(a);
        (vm, a)
    }

    #[test]
    fn add_is_idempotent() {
        let (mut vm, a) = fresh();
        assert_eq!(vm.call(a, "add", &[int(1)]).unwrap(), Value::Bool(true));
        assert_eq!(vm.call(a, "add", &[int(1)]).unwrap(), Value::Bool(false));
        assert_eq!(vm.call(a, "size", &[]).unwrap(), int(1));
        assert_eq!(
            vm.call(a, "contains", &[int(1)]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn rehash_preserves_membership() {
        let (mut vm, a) = fresh();
        for i in 0..25 {
            vm.call(a, "add", &[int(i)]).unwrap();
        }
        for i in 0..25 {
            assert_eq!(
                vm.call(a, "contains", &[int(i)]).unwrap(),
                Value::Bool(true),
                "element {i}"
            );
        }
        assert_eq!(vm.call(a, "size", &[]).unwrap(), int(25));
        assert_eq!(
            vm.call(a, "checkInvariant", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn union_and_intersection() {
        let (mut vm, a) = fresh();
        for i in [1, 2, 3] {
            vm.call(a, "add", &[int(i)]).unwrap();
        }
        let b = vm.construct("HashedSet", &[]).unwrap();
        vm.root(b);
        for i in [2, 3, 4] {
            vm.call(b, "add", &[int(i)]).unwrap();
        }
        vm.call(a, "addAll", &[Value::Ref(b)]).unwrap();
        assert_eq!(vm.call(a, "size", &[]).unwrap(), int(4));
        vm.call(a, "retainAll", &[Value::Ref(b)]).unwrap();
        assert_eq!(vm.call(a, "size", &[]).unwrap(), int(3));
        assert_eq!(
            vm.call(a, "contains", &[int(1)]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn remove_returns_membership() {
        let (mut vm, a) = fresh();
        vm.call(a, "add", &[s("x")]).unwrap();
        assert_eq!(vm.call(a, "remove", &[s("x")]).unwrap(), Value::Bool(true));
        assert_eq!(vm.call(a, "remove", &[s("x")]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

//! The `LLMap` application: a linked-list map (association list) in the
//! style of Doug Lea's `LLMap`.

use crate::util::{absorb, int, rooted, s};
use atomask_mor::{Ctx, FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

/// Exception thrown by `firstKey` on an empty map.
pub const NO_SUCH_ELEMENT: &str = "NoSuchElementException";

fn register(rb: &mut RegistryBuilder) {
    rb.class("LLPair", |c| {
        c.field("key", Value::Null);
        c.field("value", Value::Null);
        c.field("next", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "key", args[0].clone());
            ctx.set(this, "value", args[1].clone());
            Ok(Value::Null)
        });
        c.method("key", |ctx, this, _| Ok(ctx.get(this, "key")));
        c.method("value", |ctx, this, _| Ok(ctx.get(this, "value")));
        c.method("setValue", |ctx, this, args| {
            ctx.set(this, "value", args[0].clone());
            Ok(Value::Null)
        });
        c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
        c.method("setNext", |ctx, this, args| {
            ctx.set(this, "next", args[0].clone());
            Ok(Value::Null)
        });
    });
    rb.class("LLMap", |c| {
        c.field("head", Value::Null);
        c.field("size", int(0));
        c.field("puts", int(0));
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("size", |ctx, this, _| Ok(ctx.get(this, "size")))
            .never_throws();
        c.method("isEmpty", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "size") == 0))
        });
        c.method("get", |ctx, this, args| {
            let pair = find_pair(ctx, this, &args[0])?;
            if pair.is_null() {
                return Ok(Value::Null);
            }
            ctx.call_value(&pair, "value", &[])
        });
        c.method("containsKey", |ctx, this, args| {
            let pair = find_pair(ctx, this, &args[0])?;
            Ok(Value::Bool(!pair.is_null()))
        });
        c.method("containsValue", |ctx, this, args| {
            let mut cur = ctx.get(this, "head");
            while !cur.is_null() {
                let v = ctx.call_value(&cur, "value", &[])?;
                if v == args[0] {
                    return Ok(Value::Bool(true));
                }
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(Value::Bool(false))
        });
        // Vulnerable order: statistics and size bumped before the new pair
        // is linked in.
        c.method("put", |ctx, this, args| {
            let puts = ctx.get_int(this, "puts");
            ctx.set(this, "puts", int(puts + 1));
            let pair = find_pair(ctx, this, &args[0])?;
            if !pair.is_null() {
                let old = ctx.call_value(&pair, "value", &[])?;
                ctx.call_value(&pair, "setValue", &[args[1].clone()])?;
                return Ok(old);
            }
            let size = ctx.get_int(this, "size");
            ctx.set(this, "size", int(size + 1));
            let fresh = ctx.new_object("LLPair", &[args[0].clone(), args[1].clone()])?;
            let head = ctx.get(this, "head");
            ctx.call(fresh, "setNext", &[head])?;
            ctx.set(this, "head", Value::Ref(fresh));
            Ok(Value::Null)
        });
        c.method("remove", |ctx, this, args| {
            let head = ctx.get(this, "head");
            if head.is_null() {
                return Ok(Value::Null);
            }
            let hk = ctx.call_value(&head, "key", &[])?;
            let size = ctx.get_int(this, "size");
            if hk == args[0] {
                ctx.set(this, "size", int(size - 1));
                let v = ctx.call_value(&head, "value", &[])?;
                let next = ctx.call_value(&head, "next", &[])?;
                ctx.set(this, "head", next);
                return Ok(v);
            }
            let mut prev = head;
            loop {
                let cur = ctx.call_value(&prev, "next", &[])?;
                if cur.is_null() {
                    return Ok(Value::Null);
                }
                let k = ctx.call_value(&cur, "key", &[])?;
                if k == args[0] {
                    // Vulnerable: size decremented before the unlink.
                    ctx.set(this, "size", int(size - 1));
                    let v = ctx.call_value(&cur, "value", &[])?;
                    let next = ctx.call_value(&cur, "next", &[])?;
                    ctx.call_value(&prev, "setNext", &[next])?;
                    return Ok(v);
                }
                prev = cur;
            }
        });
        c.method("firstKey", |ctx, this, _| {
            let head = ctx.get(this, "head");
            if head.is_null() {
                return Err(ctx.exception(NO_SUCH_ELEMENT, "firstKey on empty map"));
            }
            ctx.call_value(&head, "key", &[])
        })
        .throws(NO_SUCH_ELEMENT);
        // Copies all pairs from `other` into `this`.
        c.method("putAll", |ctx, this, args| {
            let other = match &args[0] {
                Value::Ref(id) => *id,
                _ => return Ok(Value::Null),
            };
            let mut cur = ctx.get(other, "head");
            while !cur.is_null() {
                let k = ctx.call_value(&cur, "key", &[])?;
                let v = ctx.call_value(&cur, "value", &[])?;
                ctx.call(this, "put", &[k, v])?;
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(Value::Null)
        });
        c.method("clear", |ctx, this, _| {
            ctx.set(this, "head", Value::Null);
            ctx.set(this, "size", int(0));
            Ok(Value::Null)
        });
        c.method("checkInvariant", |ctx, this, _| {
            let mut n = 0i64;
            let mut cur = ctx.get(this, "head");
            while !cur.is_null() {
                n += 1;
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(Value::Bool(n == ctx.get_int(this, "size")))
        });
    });
}

fn find_pair(ctx: &mut Ctx<'_>, this: atomask_mor::ObjId, key: &Value) -> MethodResult {
    let mut cur = ctx.get(this, "head");
    while !cur.is_null() {
        let k = ctx.call_value(&cur, "key", &[])?;
        if &k == key {
            return Ok(cur);
        }
        cur = ctx.call_value(&cur, "next", &[])?;
    }
    Ok(Value::Null)
}

fn driver(vm: &mut Vm) -> MethodResult {
    let map = rooted(vm, "LLMap", &[])?;
    let m = map.as_ref_id().expect("ref");
    for (k, v) in [("one", 1), ("two", 2), ("three", 3), ("four", 4)] {
        vm.call(m, "put", &[s(k), int(v)])?;
    }
    vm.call(m, "put", &[s("two"), int(22)])?;
    absorb(vm.call(m, "remove", &[s("three")]));
    absorb(vm.call(m, "remove", &[s("nope")]));
    let other = rooted(vm, "LLMap", &[])?;
    let o = other.as_ref_id().expect("ref");
    vm.call(o, "put", &[s("five"), int(5)])?;
    vm.call(m, "putAll", &[other])?;
    for _ in 0..3 {
        for k in ["one", "two", "four", "five", "missing"] {
            absorb(vm.call(m, "get", &[s(k)]));
            absorb(vm.call(m, "containsKey", &[s(k)]));
        }
        absorb(vm.call(m, "containsValue", &[int(22)]));
        absorb(vm.call(m, "size", &[]));
        absorb(vm.call(m, "firstKey", &[]));
        absorb(vm.call(m, "checkInvariant", &[]));
    }
    absorb(vm.call(o, "clear", &[]));
    absorb(vm.call(o, "firstKey", &[])); // empty-map error path
    absorb(vm.call(m, "isEmpty", &[]));
    Ok(Value::Null)
}

/// The `LLMap` program.
pub fn program() -> FnProgram {
    FnProgram::new("LLMap", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{ObjId, Program};

    fn fresh() -> (Vm, ObjId) {
        let mut vm = Vm::new(build_registry());
        let m = vm.construct("LLMap", &[]).unwrap();
        vm.root(m);
        (vm, m)
    }

    #[test]
    fn put_get_update() {
        let (mut vm, m) = fresh();
        assert_eq!(vm.call(m, "put", &[s("a"), int(1)]).unwrap(), Value::Null);
        assert_eq!(vm.call(m, "get", &[s("a")]).unwrap(), int(1));
        assert_eq!(vm.call(m, "put", &[s("a"), int(2)]).unwrap(), int(1));
        assert_eq!(vm.call(m, "get", &[s("a")]).unwrap(), int(2));
        assert_eq!(vm.call(m, "size", &[]).unwrap(), int(1));
    }

    #[test]
    fn remove_head_and_middle() {
        let (mut vm, m) = fresh();
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            vm.call(m, "put", &[s(k), int(v)]).unwrap();
        }
        // "c" is at the head (put prepends).
        assert_eq!(vm.call(m, "remove", &[s("c")]).unwrap(), int(3));
        assert_eq!(vm.call(m, "remove", &[s("a")]).unwrap(), int(1));
        assert_eq!(vm.call(m, "remove", &[s("zz")]).unwrap(), Value::Null);
        assert_eq!(vm.call(m, "size", &[]).unwrap(), int(1));
        assert_eq!(
            vm.call(m, "containsKey", &[s("b")]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            vm.call(m, "checkInvariant", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn contains_value_and_put_all() {
        let (mut vm, m) = fresh();
        vm.call(m, "put", &[s("x"), int(7)]).unwrap();
        assert_eq!(
            vm.call(m, "containsValue", &[int(7)]).unwrap(),
            Value::Bool(true)
        );
        let o = vm.construct("LLMap", &[]).unwrap();
        vm.root(o);
        vm.call(o, "put", &[s("y"), int(8)]).unwrap();
        vm.call(m, "putAll", &[Value::Ref(o)]).unwrap();
        assert_eq!(vm.call(m, "get", &[s("y")]).unwrap(), int(8));
        assert_eq!(vm.call(m, "size", &[]).unwrap(), int(2));
    }

    #[test]
    fn first_key_errors_on_empty() {
        let (mut vm, m) = fresh();
        let err = vm.call(m, "firstKey", &[]).unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), NO_SUCH_ELEMENT);
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

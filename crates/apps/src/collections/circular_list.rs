//! The `CircularList` application: a circular doubly-linked list in the
//! style of Doug Lea's `CircularList`/`CLCell`.

use crate::util::{absorb, int, rooted};
use atomask_mor::{FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

use super::linked_list::{INDEX_OOB, NO_SUCH_ELEMENT};

fn register(rb: &mut RegistryBuilder) {
    rb.class("CLCell", |c| {
        c.field("value", Value::Null);
        c.field("next", Value::Null);
        c.field("prev", Value::Null);
        c.ctor(|ctx, this, args| {
            if let Some(v) = args.first() {
                ctx.set(this, "value", v.clone());
            }
            Ok(Value::Null)
        });
        c.method("value", |ctx, this, _| Ok(ctx.get(this, "value")));
        c.method("setValue", |ctx, this, args| {
            ctx.set(this, "value", args[0].clone());
            Ok(Value::Null)
        });
        c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
        c.method("setNext", |ctx, this, args| {
            ctx.set(this, "next", args[0].clone());
            Ok(Value::Null)
        });
        c.method("prev", |ctx, this, _| Ok(ctx.get(this, "prev")));
        c.method("setPrev", |ctx, this, args| {
            ctx.set(this, "prev", args[0].clone());
            Ok(Value::Null)
        });
        // Makes the cell a singleton ring.
        c.method("selfLink", |ctx, this, _| {
            ctx.set(this, "next", Value::Ref(this));
            ctx.set(this, "prev", Value::Ref(this));
            Ok(Value::Null)
        });
        // Splices `cell` in right before `this` in the ring: four pointer
        // updates through accessor calls — non-atomic as written.
        c.method("spliceBefore", |ctx, this, args| {
            let cell = args[0].clone();
            let prev = ctx.call(this, "prev", &[])?;
            ctx.call_value(&cell, "setPrev", &[prev.clone()])?;
            ctx.call_value(&cell, "setNext", &[Value::Ref(this)])?;
            ctx.call_value(&prev, "setNext", &[cell.clone()])?;
            ctx.set(this, "prev", cell);
            Ok(Value::Null)
        });
        // Unlinks `this` from the ring.
        c.method("unlink", |ctx, this, _| {
            let prev = ctx.call(this, "prev", &[])?;
            let next = ctx.call(this, "next", &[])?;
            ctx.call_value(&prev, "setNext", &[next.clone()])?;
            ctx.call_value(&next, "setPrev", &[prev])?;
            Ok(Value::Null)
        });
    });
    rb.class("CircularList", |c| {
        c.field("list", Value::Null);
        c.field("size", int(0));
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("size", |ctx, this, _| Ok(ctx.get(this, "size")))
            .never_throws();
        c.method("isEmpty", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "size") == 0))
        });
        c.method("first", |ctx, this, _| {
            let head = ctx.get(this, "list");
            if head.is_null() {
                return Err(ctx.exception(NO_SUCH_ELEMENT, "first on empty ring"));
            }
            ctx.call_value(&head, "value", &[])
        })
        .throws(NO_SUCH_ELEMENT);
        c.method("last", |ctx, this, _| {
            let head = ctx.get(this, "list");
            if head.is_null() {
                return Err(ctx.exception(NO_SUCH_ELEMENT, "last on empty ring"));
            }
            let tail = ctx.call_value(&head, "prev", &[])?;
            ctx.call_value(&tail, "value", &[])
        })
        .throws(NO_SUCH_ELEMENT);
        c.method("at", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            if i < 0 || i >= ctx.get_int(this, "size") {
                return Err(ctx.exception(INDEX_OOB, format!("index {i}")));
            }
            let mut cur = ctx.get(this, "list");
            for _ in 0..i {
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            ctx.call_value(&cur, "value", &[])
        })
        .throws(INDEX_OOB);
        c.method("indexOf", |ctx, this, args| {
            let size = ctx.get_int(this, "size");
            let mut cur = ctx.get(this, "list");
            for i in 0..size {
                let v = ctx.call_value(&cur, "value", &[])?;
                if v == args[0] {
                    return Ok(int(i));
                }
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(int(-1))
        });
        c.method("contains", |ctx, this, args| {
            let idx = ctx.call(this, "indexOf", args)?;
            Ok(Value::Bool(idx.as_int().unwrap_or(-1) >= 0))
        });
        // Rotate the ring head forward: one call, then one write — atomic.
        c.method("rotate", |ctx, this, _| {
            let head = ctx.get(this, "list");
            if head.is_null() {
                return Ok(Value::Null);
            }
            let next = ctx.call_value(&head, "next", &[])?;
            ctx.set(this, "list", next);
            Ok(Value::Null)
        });
        // Vulnerable order: size updated before the ring is re-linked.
        c.method("insertFirst", |ctx, this, args| {
            let size = ctx.get_int(this, "size");
            ctx.set(this, "size", int(size + 1));
            let cell = ctx.new_object("CLCell", &[args[0].clone()])?;
            let head = ctx.get(this, "list");
            if head.is_null() {
                ctx.call(cell, "selfLink", &[])?;
            } else {
                ctx.call_value(&head, "spliceBefore", &[Value::Ref(cell)])?;
            }
            ctx.set(this, "list", Value::Ref(cell));
            Ok(Value::Null)
        });
        c.method("insertLast", |ctx, this, args| {
            let size = ctx.get_int(this, "size");
            ctx.set(this, "size", int(size + 1));
            let cell = ctx.new_object("CLCell", &[args[0].clone()])?;
            let head = ctx.get(this, "list");
            if head.is_null() {
                ctx.call(cell, "selfLink", &[])?;
                ctx.set(this, "list", Value::Ref(cell));
            } else {
                // Last = before head in the ring.
                ctx.call_value(&head, "spliceBefore", &[Value::Ref(cell)])?;
            }
            Ok(Value::Null)
        });
        c.method("removeFirst", |ctx, this, _| {
            let size = ctx.get_int(this, "size");
            if size == 0 {
                return Err(ctx.exception(NO_SUCH_ELEMENT, "removeFirst on empty ring"));
            }
            ctx.set(this, "size", int(size - 1));
            let head = ctx.get(this, "list");
            let v = ctx.call_value(&head, "value", &[])?;
            if size == 1 {
                ctx.set(this, "list", Value::Null);
            } else {
                let next = ctx.call_value(&head, "next", &[])?;
                ctx.call_value(&head, "unlink", &[])?;
                ctx.set(this, "list", next);
            }
            Ok(v)
        })
        .throws(NO_SUCH_ELEMENT);
        c.method("removeLast", |ctx, this, _| {
            let size = ctx.get_int(this, "size");
            if size == 0 {
                return Err(ctx.exception(NO_SUCH_ELEMENT, "removeLast on empty ring"));
            }
            ctx.set(this, "size", int(size - 1));
            let head = ctx.get(this, "list");
            if size == 1 {
                let v = ctx.call_value(&head, "value", &[])?;
                ctx.set(this, "list", Value::Null);
                return Ok(v);
            }
            let tail = ctx.call_value(&head, "prev", &[])?;
            let v = ctx.call_value(&tail, "value", &[])?;
            ctx.call_value(&tail, "unlink", &[])?;
            Ok(v)
        })
        .throws(NO_SUCH_ELEMENT);
        c.method("clear", |ctx, this, _| {
            // Break the ring so reference counting can reclaim it.
            let head = ctx.get(this, "list");
            if !head.is_null() {
                let tail = ctx.call_value(&head, "prev", &[])?;
                ctx.call_value(&tail, "setNext", &[Value::Null])?;
            }
            ctx.set(this, "list", Value::Null);
            ctx.set(this, "size", int(0));
            Ok(Value::Null)
        });
        c.method("checkInvariant", |ctx, this, _| {
            let size = ctx.get_int(this, "size");
            let head = ctx.get(this, "list");
            if head.is_null() {
                return Ok(Value::Bool(size == 0));
            }
            let mut cur = head.clone();
            for _ in 0..size {
                let next = ctx.call_value(&cur, "next", &[])?;
                let back = ctx.call_value(&next, "prev", &[])?;
                if back != cur {
                    return Ok(Value::Bool(false));
                }
                cur = next;
            }
            Ok(Value::Bool(cur == head))
        });
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    let ring = rooted(vm, "CircularList", &[])?;
    let ring_id = ring.as_ref_id().expect("ref");
    for i in 0..5 {
        vm.call(ring_id, "insertLast", &[int(i)])?;
    }
    for i in 0..2 {
        vm.call(ring_id, "insertFirst", &[int(100 + i)])?;
    }
    absorb(vm.call(ring_id, "rotate", &[]));
    absorb(vm.call(ring_id, "removeFirst", &[]));
    absorb(vm.call(ring_id, "removeLast", &[]));
    for _ in 0..3 {
        for i in 0..5 {
            absorb(vm.call(ring_id, "at", &[int(i)]));
        }
        absorb(vm.call(ring_id, "first", &[]));
        absorb(vm.call(ring_id, "last", &[]));
        absorb(vm.call(ring_id, "contains", &[int(3)]));
        absorb(vm.call(ring_id, "indexOf", &[int(101)]));
        absorb(vm.call(ring_id, "size", &[]));
        absorb(vm.call(ring_id, "checkInvariant", &[]));
        absorb(vm.call(ring_id, "rotate", &[]));
    }
    // Error paths.
    absorb(vm.call(ring_id, "at", &[int(99)]));
    absorb(vm.call(ring_id, "clear", &[]));
    absorb(vm.call(ring_id, "first", &[]));
    absorb(vm.call(ring_id, "isEmpty", &[]));
    Ok(Value::Null)
}

/// The `CircularList` program.
pub fn program() -> FnProgram {
    FnProgram::new("CircularList", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{ObjId, Program};

    fn fresh() -> (Vm, ObjId) {
        let mut vm = Vm::new(build_registry());
        let r = vm.construct("CircularList", &[]).unwrap();
        vm.root(r);
        (vm, r)
    }

    fn contents(vm: &mut Vm, r: ObjId) -> Vec<i64> {
        let size = vm.heap().field(r, "size").unwrap().as_int().unwrap();
        (0..size)
            .map(|i| vm.call(r, "at", &[int(i)]).unwrap().as_int().unwrap())
            .collect()
    }

    #[test]
    fn inserts_keep_ring_order() {
        let (mut vm, r) = fresh();
        for i in 0..3 {
            vm.call(r, "insertLast", &[int(i)]).unwrap();
        }
        vm.call(r, "insertFirst", &[int(9)]).unwrap();
        assert_eq!(contents(&mut vm, r), vec![9, 0, 1, 2]);
        assert_eq!(vm.call(r, "last", &[]).unwrap(), int(2));
        assert_eq!(
            vm.call(r, "checkInvariant", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn rotate_moves_the_head() {
        let (mut vm, r) = fresh();
        for i in 0..3 {
            vm.call(r, "insertLast", &[int(i)]).unwrap();
        }
        vm.call(r, "rotate", &[]).unwrap();
        assert_eq!(contents(&mut vm, r), vec![1, 2, 0]);
    }

    #[test]
    fn removals_maintain_ring() {
        let (mut vm, r) = fresh();
        for i in 0..4 {
            vm.call(r, "insertLast", &[int(i)]).unwrap();
        }
        assert_eq!(vm.call(r, "removeFirst", &[]).unwrap(), int(0));
        assert_eq!(vm.call(r, "removeLast", &[]).unwrap(), int(3));
        assert_eq!(contents(&mut vm, r), vec![1, 2]);
        assert_eq!(
            vm.call(r, "checkInvariant", &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(vm.call(r, "removeFirst", &[]).unwrap(), int(1));
        assert_eq!(vm.call(r, "removeLast", &[]).unwrap(), int(2));
        let err = vm.call(r, "removeFirst", &[]).unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), NO_SUCH_ELEMENT);
    }

    #[test]
    fn clear_breaks_the_cycle_for_reclamation() {
        let (mut vm, r) = fresh();
        for i in 0..4 {
            vm.call(r, "insertLast", &[int(i)]).unwrap();
        }
        let live = vm.heap().len();
        assert_eq!(live, 5);
        vm.call(r, "clear", &[]).unwrap();
        // `clear` breaks the next-chain, but the prev-pointers still form a
        // cycle: reference counting alone cannot reclaim the cells — the
        // paper's §5.1 limitation 4, which prescribes a garbage collector
        // for cyclic structures.
        assert_eq!(vm.heap_mut().reclaim(), 0);
        assert_eq!(vm.heap_mut().collect(), 4);
        assert_eq!(vm.heap().len(), 1, "cells collected after clear");
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

//! The `RBMap` application: a red-black tree map with integer keys, in the
//! style of `java.util.TreeMap` (which is itself derived from the CLR
//! algorithms the Doug Lea collections use).
//!
//! The rebalancing machinery — `rotateLeft`, `rotateRight`,
//! `fixAfterInsertion`, `fixAfterDeletion` — consists of long chains of
//! pointer updates performed through node accessor methods, which makes it
//! a rich source of failure non-atomic methods under exception injection.

use super::rbcore::{
    delete_entry, fix_after_insertion, get_node, key_of, left_of, min_node, rb_invariant,
    register_node, right_of, BLACK,
};
use crate::util::{absorb, int, rooted};
use atomask_mor::{FnProgram, MethodResult, ObjId, Profile, Registry, RegistryBuilder, Value, Vm};

fn register(rb: &mut RegistryBuilder) {
    register_node(rb, "RBNode");
    rb.class("RBMap", |c| {
        c.field("root", Value::Null);
        c.field("size", int(0));
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("size", |ctx, this, _| Ok(ctx.get(this, "size")))
            .never_throws();
        c.method("isEmpty", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "size") == 0))
        });
        c.method("get", |ctx, this, args| {
            let k = args[0].as_int().unwrap_or(0);
            let node = get_node(ctx, this, k)?;
            if node.is_null() {
                return Ok(Value::Null);
            }
            ctx.call_value(&node, "value", &[])
        });
        c.method("containsKey", |ctx, this, args| {
            let k = args[0].as_int().unwrap_or(0);
            Ok(Value::Bool(!get_node(ctx, this, k)?.is_null()))
        });
        // Vulnerable order: size bumped before insertion and rebalancing.
        c.method("put", |ctx, this, args| {
            let k = args[0].as_int().unwrap_or(0);
            let root = ctx.get(this, "root");
            if root.is_null() {
                ctx.set(this, "size", int(1));
                let node = ctx.new_object("RBNode", &[args[0].clone(), args[1].clone()])?;
                ctx.call(node, "setColor", &[int(BLACK)])?;
                ctx.set(this, "root", Value::Ref(node));
                return Ok(Value::Null);
            }
            let mut t = root;
            loop {
                let tk = key_of(ctx, &t)?;
                if k == tk {
                    let old = ctx.call_value(&t, "value", &[])?;
                    ctx.call_value(&t, "setValue", &[args[1].clone()])?;
                    return Ok(old);
                }
                let next = if k < tk {
                    left_of(ctx, &t)?
                } else {
                    right_of(ctx, &t)?
                };
                if next.is_null() {
                    let size = ctx.get_int(this, "size");
                    ctx.set(this, "size", int(size + 1));
                    let node =
                        ctx.new_object("RBNode", &[args[0].clone(), args[1].clone(), t.clone()])?;
                    if k < tk {
                        ctx.call_value(&t, "setLeft", &[Value::Ref(node)])?;
                    } else {
                        ctx.call_value(&t, "setRight", &[Value::Ref(node)])?;
                    }
                    fix_after_insertion(ctx, this, Value::Ref(node))?;
                    return Ok(Value::Null);
                }
                t = next;
            }
        });
        c.method("remove", |ctx, this, args| {
            let k = args[0].as_int().unwrap_or(0);
            let node = get_node(ctx, this, k)?;
            if node.is_null() {
                return Ok(Value::Null);
            }
            let old = ctx.call_value(&node, "value", &[])?;
            let size = ctx.get_int(this, "size");
            ctx.set(this, "size", int(size - 1));
            delete_entry(ctx, this, node)?;
            Ok(old)
        });
        c.method("firstKey", |ctx, this, _| {
            let root = ctx.get(this, "root");
            if root.is_null() {
                return Err(ctx.exception("NoSuchElementException", "firstKey on empty map"));
            }
            let node = min_node(ctx, root)?;
            ctx.call_value(&node, "key", &[])
        })
        .throws("NoSuchElementException");
        c.method("lastKey", |ctx, this, _| {
            let mut cur = ctx.get(this, "root");
            if cur.is_null() {
                return Err(ctx.exception("NoSuchElementException", "lastKey on empty map"));
            }
            loop {
                let r = right_of(ctx, &cur)?;
                if r.is_null() {
                    return ctx.call_value(&cur, "key", &[]);
                }
                cur = r;
            }
        })
        .throws("NoSuchElementException");
        c.method("clear", |ctx, this, _| {
            ctx.set(this, "root", Value::Null);
            ctx.set(this, "size", int(0));
            Ok(Value::Null)
        });
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    let map = rooted(vm, "RBMap", &[])?;
    let m = map.as_ref_id().expect("ref");
    // Keys in an order that exercises every rebalancing case.
    for k in [50, 20, 70, 10, 30, 60, 90, 5, 25, 35, 80] {
        vm.call(m, "put", &[int(k), int(k * 10)])?;
    }
    vm.call(m, "put", &[int(30), int(999)])?; // update
    absorb(vm.call(m, "remove", &[int(20)])); // internal node
    absorb(vm.call(m, "remove", &[int(90)])); // near-leaf
    absorb(vm.call(m, "remove", &[int(123)])); // missing
    for _ in 0..2 {
        for k in [5, 25, 35, 50, 60, 123] {
            absorb(vm.call(m, "get", &[int(k)]));
            absorb(vm.call(m, "containsKey", &[int(k)]));
        }
        absorb(vm.call(m, "firstKey", &[]));
        absorb(vm.call(m, "lastKey", &[]));
        absorb(vm.call(m, "size", &[]));
        absorb(vm.call(m, "isEmpty", &[]));
    }
    absorb(vm.call(m, "clear", &[]));
    absorb(vm.call(m, "firstKey", &[])); // empty error path
    Ok(Value::Null)
}

/// The `RBMap` program.
pub fn program() -> FnProgram {
    FnProgram::new("RBMap", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register(&mut rb);
    rb.build()
}

/// Exposed for tests/benches: host-side red-black invariant check.
pub fn invariant_holds(vm: &Vm, map: ObjId) -> bool {
    rb_invariant(vm, map, "RBNode")
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::Program;
    use std::collections::BTreeMap;

    fn fresh() -> (Vm, ObjId) {
        let mut vm = Vm::new(build_registry());
        let m = vm.construct("RBMap", &[]).unwrap();
        vm.root(m);
        (vm, m)
    }

    #[test]
    fn put_get_update() {
        let (mut vm, m) = fresh();
        assert_eq!(vm.call(m, "put", &[int(5), int(50)]).unwrap(), Value::Null);
        assert_eq!(vm.call(m, "put", &[int(5), int(55)]).unwrap(), int(50));
        assert_eq!(vm.call(m, "get", &[int(5)]).unwrap(), int(55));
        assert_eq!(vm.call(m, "get", &[int(9)]).unwrap(), Value::Null);
    }

    #[test]
    fn matches_btreemap_model_under_mixed_ops() {
        let (mut vm, m) = fresh();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        // Deterministic pseudo-random op sequence.
        let mut x: i64 = 12345;
        for step in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 33).rem_euclid(40);
            match step % 3 {
                0 | 1 => {
                    let expected = model.insert(k, step);
                    let got = vm.call(m, "put", &[int(k), int(step)]).unwrap();
                    assert_eq!(got, expected.map(int).unwrap_or(Value::Null), "put {k}");
                }
                _ => {
                    let expected = model.remove(&k);
                    let got = vm.call(m, "remove", &[int(k)]).unwrap();
                    assert_eq!(got, expected.map(int).unwrap_or(Value::Null), "remove {k}");
                }
            }
            assert!(
                invariant_holds(&vm, m),
                "RB invariant broken at step {step}"
            );
            assert_eq!(
                vm.call(m, "size", &[]).unwrap(),
                int(model.len() as i64),
                "size at step {step}"
            );
        }
        // Final content check.
        for (k, v) in &model {
            assert_eq!(vm.call(m, "get", &[int(*k)]).unwrap(), int(*v));
        }
        if let Some((k, _)) = model.iter().next() {
            assert_eq!(vm.call(m, "firstKey", &[]).unwrap(), int(*k));
        }
        if let Some((k, _)) = model.iter().next_back() {
            assert_eq!(vm.call(m, "lastKey", &[]).unwrap(), int(*k));
        }
    }

    #[test]
    fn first_and_last_key() {
        let (mut vm, m) = fresh();
        for k in [10, 5, 20, 1, 7] {
            vm.call(m, "put", &[int(k), int(0)]).unwrap();
        }
        assert_eq!(vm.call(m, "firstKey", &[]).unwrap(), int(1));
        assert_eq!(vm.call(m, "lastKey", &[]).unwrap(), int(20));
    }

    #[test]
    fn empty_map_errors() {
        let (mut vm, m) = fresh();
        assert!(vm.call(m, "firstKey", &[]).is_err());
        assert!(vm.call(m, "lastKey", &[]).is_err());
        assert_eq!(vm.call(m, "remove", &[int(1)]).unwrap(), Value::Null);
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

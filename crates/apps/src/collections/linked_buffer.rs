//! The `LinkedBuffer` application: a chunked string buffer in the style of
//! Doug Lea's `LinkedBuffer`.

use crate::util::{absorb, int, rooted, s};
use atomask_mor::{FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

fn register(rb: &mut RegistryBuilder) {
    rb.class("Chunk", |c| {
        c.field("data", Value::from(""));
        c.field("next", Value::Null);
        c.ctor(|ctx, this, args| {
            if let Some(v) = args.first() {
                ctx.set(this, "data", v.clone());
            }
            Ok(Value::Null)
        });
        c.method("data", |ctx, this, _| Ok(ctx.get(this, "data")));
        c.method("setData", |ctx, this, args| {
            ctx.set(this, "data", args[0].clone());
            Ok(Value::Null)
        });
        c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
        c.method("setNext", |ctx, this, args| {
            ctx.set(this, "next", args[0].clone());
            Ok(Value::Null)
        });
        c.method("len", |ctx, this, _| {
            Ok(int(ctx.get_str(this, "data").len() as i64))
        });
    });
    rb.class("LinkedBuffer", |c| {
        c.field("head", Value::Null);
        c.field("tail", Value::Null);
        c.field("length", int(0));
        c.field("chunks", int(0));
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("length", |ctx, this, _| Ok(ctx.get(this, "length")))
            .never_throws();
        c.method("chunkCount", |ctx, this, _| Ok(ctx.get(this, "chunks")));
        c.method("isEmpty", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "length") == 0))
        });
        // Vulnerable order: counters first, linking after.
        c.method("append", |ctx, this, args| {
            let text = args[0].as_str().unwrap_or("").to_owned();
            let length = ctx.get_int(this, "length");
            ctx.set(this, "length", int(length + text.len() as i64));
            let chunks = ctx.get_int(this, "chunks");
            ctx.set(this, "chunks", int(chunks + 1));
            let chunk = ctx.new_object("Chunk", &[args[0].clone()])?;
            let tail = ctx.get(this, "tail");
            if tail.is_null() {
                ctx.set(this, "head", Value::Ref(chunk));
            } else {
                ctx.call_value(&tail, "setNext", &[Value::Ref(chunk)])?;
            }
            ctx.set(this, "tail", Value::Ref(chunk));
            Ok(Value::Null)
        });
        c.method("prepend", |ctx, this, args| {
            let text = args[0].as_str().unwrap_or("").to_owned();
            let length = ctx.get_int(this, "length");
            ctx.set(this, "length", int(length + text.len() as i64));
            let chunks = ctx.get_int(this, "chunks");
            ctx.set(this, "chunks", int(chunks + 1));
            let chunk = ctx.new_object("Chunk", &[args[0].clone()])?;
            let head = ctx.get(this, "head");
            ctx.call(chunk, "setNext", &[head.clone()])?;
            ctx.set(this, "head", Value::Ref(chunk));
            if head.is_null() {
                ctx.set(this, "tail", Value::Ref(chunk));
            }
            Ok(Value::Null)
        });
        // Read-only concatenation walk: atomic.
        c.method("toStr", |ctx, this, _| {
            let mut out = String::new();
            let mut cur = ctx.get(this, "head");
            while !cur.is_null() {
                let d = ctx.call_value(&cur, "data", &[])?;
                out.push_str(d.as_str().unwrap_or(""));
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(Value::from(out))
        });
        c.method("firstChunk", |ctx, this, _| {
            let head = ctx.get(this, "head");
            if head.is_null() {
                return Ok(Value::from(""));
            }
            ctx.call_value(&head, "data", &[])
        });
        // Drops the first chunk. Vulnerable: counters updated before the
        // relink completes.
        c.method("dropFirst", |ctx, this, _| {
            let head = ctx.get(this, "head");
            if head.is_null() {
                return Ok(Value::Null);
            }
            let len = ctx.call_value(&head, "len", &[])?;
            let length = ctx.get_int(this, "length");
            ctx.set(this, "length", int(length - len.as_int().unwrap_or(0)));
            let chunks = ctx.get_int(this, "chunks");
            ctx.set(this, "chunks", int(chunks - 1));
            let next = ctx.call_value(&head, "next", &[])?;
            ctx.set(this, "head", next.clone());
            if next.is_null() {
                ctx.set(this, "tail", Value::Null);
            }
            ctx.call_value(&head, "data", &[])
        });
        // Merges small neighbouring chunks — a rarely-called maintenance
        // pass with many interleaved mutations.
        c.method("compact", |ctx, this, _| {
            let mut cur = ctx.get(this, "head");
            while !cur.is_null() {
                let next = ctx.call_value(&cur, "next", &[])?;
                if next.is_null() {
                    break;
                }
                let a = ctx.call_value(&cur, "data", &[])?;
                let b = ctx.call_value(&next, "data", &[])?;
                let (a, b) = (
                    a.as_str().unwrap_or("").to_owned(),
                    b.as_str().unwrap_or("").to_owned(),
                );
                if a.len() + b.len() <= 8 {
                    ctx.call_value(&cur, "setData", &[Value::from(format!("{a}{b}"))])?;
                    let after = ctx.call_value(&next, "next", &[])?;
                    ctx.call_value(&cur, "setNext", &[after.clone()])?;
                    if after.is_null() {
                        ctx.set(this, "tail", cur.clone());
                    }
                    let chunks = ctx.get_int(this, "chunks");
                    ctx.set(this, "chunks", int(chunks - 1));
                } else {
                    cur = next;
                }
            }
            Ok(Value::Null)
        });
        c.method("appendBuffer", |ctx, this, args| {
            let other = match &args[0] {
                Value::Ref(id) => *id,
                _ => return Ok(Value::Null),
            };
            let mut cur = ctx.get(other, "head");
            while !cur.is_null() {
                let d = ctx.call_value(&cur, "data", &[])?;
                ctx.call(this, "append", &[d])?;
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(Value::Null)
        });
        c.method("clear", |ctx, this, _| {
            ctx.set(this, "head", Value::Null);
            ctx.set(this, "tail", Value::Null);
            ctx.set(this, "length", int(0));
            ctx.set(this, "chunks", int(0));
            Ok(Value::Null)
        });
        c.method("checkInvariant", |ctx, this, _| {
            let mut total = 0i64;
            let mut n = 0i64;
            let mut cur = ctx.get(this, "head");
            while !cur.is_null() {
                let len = ctx.call_value(&cur, "len", &[])?;
                total += len.as_int().unwrap_or(0);
                n += 1;
                cur = ctx.call_value(&cur, "next", &[])?;
            }
            Ok(Value::Bool(
                total == ctx.get_int(this, "length") && n == ctx.get_int(this, "chunks"),
            ))
        });
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    let buf = rooted(vm, "LinkedBuffer", &[])?;
    let b = buf.as_ref_id().expect("ref");
    for word in ["hello", " ", "world", "!", " ", "abc"] {
        vm.call(b, "append", &[s(word)])?;
    }
    vm.call(b, "prepend", &[s(">> ")])?;
    absorb(vm.call(b, "dropFirst", &[]));
    absorb(vm.call(b, "compact", &[]));
    let other = rooted(vm, "LinkedBuffer", &[])?;
    let o = other.as_ref_id().expect("ref");
    vm.call(o, "append", &[s("tail")])?;
    vm.call(b, "appendBuffer", &[other])?;
    for _ in 0..3 {
        absorb(vm.call(b, "toStr", &[]));
        absorb(vm.call(b, "length", &[]));
        absorb(vm.call(b, "chunkCount", &[]));
        absorb(vm.call(b, "firstChunk", &[]));
        absorb(vm.call(b, "isEmpty", &[]));
        absorb(vm.call(b, "checkInvariant", &[]));
    }
    absorb(vm.call(o, "clear", &[]));
    absorb(vm.call(b, "dropFirst", &[]));
    Ok(Value::Null)
}

/// The `LinkedBuffer` program.
pub fn program() -> FnProgram {
    FnProgram::new("LinkedBuffer", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::{ObjId, Program};

    fn fresh() -> (Vm, ObjId) {
        let mut vm = Vm::new(build_registry());
        let b = vm.construct("LinkedBuffer", &[]).unwrap();
        vm.root(b);
        (vm, b)
    }

    fn text(vm: &mut Vm, b: ObjId) -> String {
        vm.call(b, "toStr", &[])
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned()
    }

    #[test]
    fn append_prepend_to_str() {
        let (mut vm, b) = fresh();
        vm.call(b, "append", &[s("bc")]).unwrap();
        vm.call(b, "append", &[s("d")]).unwrap();
        vm.call(b, "prepend", &[s("a")]).unwrap();
        assert_eq!(text(&mut vm, b), "abcd");
        assert_eq!(vm.call(b, "length", &[]).unwrap(), int(4));
        assert_eq!(vm.call(b, "chunkCount", &[]).unwrap(), int(3));
        assert_eq!(
            vm.call(b, "checkInvariant", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn drop_first_returns_chunk() {
        let (mut vm, b) = fresh();
        vm.call(b, "append", &[s("one")]).unwrap();
        vm.call(b, "append", &[s("two")]).unwrap();
        assert_eq!(vm.call(b, "dropFirst", &[]).unwrap(), s("one"));
        assert_eq!(text(&mut vm, b), "two");
        assert_eq!(vm.call(b, "length", &[]).unwrap(), int(3));
    }

    #[test]
    fn compact_merges_small_chunks() {
        let (mut vm, b) = fresh();
        for w in ["ab", "cd", "ef", "a-very-long-chunk", "gh"] {
            vm.call(b, "append", &[s(w)]).unwrap();
        }
        let before = text(&mut vm, b);
        vm.call(b, "compact", &[]).unwrap();
        assert_eq!(text(&mut vm, b), before, "compaction preserves content");
        let chunks = vm.call(b, "chunkCount", &[]).unwrap().as_int().unwrap();
        assert!(chunks < 5);
        assert_eq!(
            vm.call(b, "checkInvariant", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn append_buffer_copies_other() {
        let (mut vm, b) = fresh();
        vm.call(b, "append", &[s("x")]).unwrap();
        let o = vm.construct("LinkedBuffer", &[]).unwrap();
        vm.root(o);
        vm.call(o, "append", &[s("y")]).unwrap();
        vm.call(o, "append", &[s("z")]).unwrap();
        vm.call(b, "appendBuffer", &[Value::Ref(o)]).unwrap();
        assert_eq!(text(&mut vm, b), "xyz");
        assert_eq!(text(&mut vm, o), "yz", "source untouched");
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

//! The `LinkedList` application — including the paper's §6.1 case study.
//!
//! Two variants are provided:
//!
//! * [`program`] — the original list, written the way much real collection
//!   code is: size counters updated *before* the linking calls complete,
//!   values read through cell accessor methods after mutations have begun.
//!   Under exception injection a large number of its methods are pure
//!   failure non-atomic.
//! * [`fixed_program`] — the same public behaviour after the paper's
//!   "trivial modifications": statements reordered into compute-then-commit
//!   shape, temporaries introduced, and the cell accessors annotated as
//!   never throwing (§4.3's exception-free interface). Only `extend` — a
//!   loop of injectable self-calls after earlier iterations already
//!   mutated the list — remains pure failure non-atomic, mirroring the
//!   paper's 18 → 3 reduction (the annotations even rescue `reverse` and
//!   `removeLast`, whose only post-mutation calls are cell accessors).

use crate::util::{absorb, int, rooted};
use atomask_mor::{
    Ctx, FnProgram, MethodResult, ObjId, Profile, Registry, RegistryBuilder, Value, Vm,
};

/// Exception thrown by element accessors on empty lists / bad indices.
pub const NO_SUCH_ELEMENT: &str = "NoSuchElementException";
/// Exception thrown on out-of-range indices.
pub const INDEX_OOB: &str = "IndexOutOfBoundsException";

fn register_cell(rb: &mut RegistryBuilder, never_throws_accessors: bool) {
    rb.class("LLCell", |c| {
        c.field("value", Value::Null);
        c.field("next", Value::Null);
        c.ctor(|ctx, this, args| {
            if let Some(v) = args.first() {
                ctx.set(this, "value", v.clone());
            }
            if let Some(n) = args.get(1) {
                ctx.set(this, "next", n.clone());
            }
            Ok(Value::Null)
        });
        let mut m = c.method("value", |ctx, this, _| Ok(ctx.get(this, "value")));
        if never_throws_accessors {
            m.never_throws();
        }
        let mut m = c.method("setValue", |ctx, this, args| {
            ctx.set(this, "value", args[0].clone());
            Ok(Value::Null)
        });
        if never_throws_accessors {
            m.never_throws();
        }
        let mut m = c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
        if never_throws_accessors {
            m.never_throws();
        }
        let mut m = c.method("setNext", |ctx, this, args| {
            ctx.set(this, "next", args[0].clone());
            Ok(Value::Null)
        });
        if never_throws_accessors {
            m.never_throws();
        }
        // Splices `cell` in right after `this`: a multi-step mutation that
        // interleaves accessor calls — non-atomic as written.
        c.method("spliceAfter", |ctx, this, args| {
            let old_next = ctx.call(this, "next", &[])?;
            let cell = args[0].clone();
            ctx.call_value(&cell, "setNext", &[old_next])?;
            ctx.set(this, "next", cell);
            Ok(Value::Null)
        });
    });
}

/// Walks `steps` cells forward from `cell` using accessor calls.
fn walk(ctx: &mut Ctx<'_>, cell: Value, steps: i64) -> MethodResult {
    let mut cur = cell;
    for _ in 0..steps {
        cur = ctx.call_value(&cur, "next", &[])?;
        if cur.is_null() {
            return Ok(Value::Null);
        }
    }
    Ok(cur)
}

fn common_readers(c: &mut atomask_mor::ClassBuilder) {
    c.method("size", |ctx, this, _| Ok(ctx.get(this, "size")))
        .never_throws();
    c.method("isEmpty", |ctx, this, _| {
        Ok(Value::Bool(ctx.get_int(this, "size") == 0))
    });
    c.method("first", |ctx, this, _| {
        let head = ctx.get(this, "head");
        if head.is_null() {
            return Err(ctx.exception(NO_SUCH_ELEMENT, "first on empty list"));
        }
        ctx.call_value(&head, "value", &[])
    })
    .throws(NO_SUCH_ELEMENT);
    c.method("last", |ctx, this, _| {
        let tail = ctx.get(this, "tail");
        if tail.is_null() {
            return Err(ctx.exception(NO_SUCH_ELEMENT, "last on empty list"));
        }
        ctx.call_value(&tail, "value", &[])
    })
    .throws(NO_SUCH_ELEMENT);
    c.method("at", |ctx, this, args| {
        let i = args[0].as_int().unwrap_or(-1);
        if i < 0 || i >= ctx.get_int(this, "size") {
            return Err(ctx.exception(INDEX_OOB, format!("index {i}")));
        }
        let head = ctx.get(this, "head");
        let cell = walk(ctx, head, i)?;
        ctx.call_value(&cell, "value", &[])
    })
    .throws(INDEX_OOB);
    c.method("indexOf", |ctx, this, args| {
        let mut cur = ctx.get(this, "head");
        let mut i = 0i64;
        while !cur.is_null() {
            let v = ctx.call_value(&cur, "value", &[])?;
            if v == args[0] {
                return Ok(Value::Int(i));
            }
            cur = ctx.call_value(&cur, "next", &[])?;
            i += 1;
        }
        Ok(Value::Int(-1))
    });
    c.method("contains", |ctx, this, args| {
        let idx = ctx.call(this, "indexOf", args)?;
        Ok(Value::Bool(idx.as_int().unwrap_or(-1) >= 0))
    });
    c.method("count", |ctx, this, args| {
        let mut cur = ctx.get(this, "head");
        let mut n = 0i64;
        while !cur.is_null() {
            let v = ctx.call_value(&cur, "value", &[])?;
            if v == args[0] {
                n += 1;
            }
            cur = ctx.call_value(&cur, "next", &[])?;
        }
        Ok(Value::Int(n))
    });
    c.method("checkInvariant", |ctx, this, _| {
        let mut cur = ctx.get(this, "head");
        let mut n = 0i64;
        while !cur.is_null() {
            n += 1;
            cur = ctx.call_value(&cur, "next", &[])?;
        }
        Ok(Value::Bool(n == ctx.get_int(this, "size")))
    });
    // Delegators: no own mutation before the delegate call — conditional
    // failure non-atomic at worst.
    c.method("push", |ctx, this, args| {
        ctx.call(this, "insertFirst", args)
    });
    c.method("pop", |ctx, this, _| ctx.call(this, "removeFirst", &[]))
        .throws(NO_SUCH_ELEMENT);
    c.method("enqueue", |ctx, this, args| {
        ctx.call(this, "insertLast", args)
    });
    c.method("dequeue", |ctx, this, _| ctx.call(this, "removeFirst", &[]))
        .throws(NO_SUCH_ELEMENT);
    c.method("clear", |ctx, this, _| {
        ctx.set(this, "head", Value::Null);
        ctx.set(this, "tail", Value::Null);
        ctx.set(this, "size", int(0));
        Ok(Value::Null)
    });
    // Hard-to-fix mutators, shared verbatim by both variants: these are the
    // methods the paper's case study could not fix with trivial edits.
    c.method("reverse", |ctx, this, _| {
        let mut prev = Value::Null;
        let mut cur = ctx.get(this, "head");
        ctx.set(this, "tail", cur.clone());
        while !cur.is_null() {
            let next = ctx.call_value(&cur, "next", &[])?;
            ctx.call_value(&cur, "setNext", &[prev.clone()])?;
            prev = cur;
            cur = next;
        }
        ctx.set(this, "head", prev);
        Ok(Value::Null)
    });
    c.method("extend", |ctx, this, args| {
        let mut cur = match &args[0] {
            Value::Ref(id) => ctx.get(*id, "head"),
            _ => Value::Null,
        };
        while !cur.is_null() {
            let v = ctx.call_value(&cur, "value", &[])?;
            ctx.call(this, "insertLast", &[v])?;
            cur = ctx.call_value(&cur, "next", &[])?;
        }
        Ok(Value::Null)
    });
    c.method("removeLast", |ctx, this, _| {
        let size = ctx.get_int(this, "size");
        if size == 0 {
            return Err(ctx.exception(NO_SUCH_ELEMENT, "removeLast on empty list"));
        }
        // Decrement early, walk with calls afterwards: non-atomic, and the
        // two-pointer walk resists a trivial reordering fix.
        ctx.set(this, "size", int(size - 1));
        if size == 1 {
            let tail = ctx.get(this, "tail");
            let v = ctx.call_value(&tail, "value", &[])?;
            ctx.set(this, "head", Value::Null);
            ctx.set(this, "tail", Value::Null);
            return Ok(v);
        }
        let head = ctx.get(this, "head");
        let before = walk(ctx, head, size - 2)?;
        let tail = ctx.call_value(&before, "next", &[])?;
        let v = ctx.call_value(&tail, "value", &[])?;
        ctx.call_value(&before, "setNext", &[Value::Null])?;
        ctx.set(this, "tail", before);
        Ok(v)
    })
    .throws(NO_SUCH_ELEMENT);
}

/// Registers the *original* (failure non-atomic) `LinkedList`.
fn register_buggy(rb: &mut RegistryBuilder) {
    register_cell(rb, false);
    rb.class("LinkedList", |c| {
        c.field("head", Value::Null);
        c.field("tail", Value::Null);
        c.field("size", int(0));
        c.ctor(|_, _, _| Ok(Value::Null));
        common_readers(c);
        // Mutators in the vulnerable order: counters first, linking calls
        // afterwards.
        c.method("insertFirst", |ctx, this, args| {
            let size = ctx.get_int(this, "size");
            ctx.set(this, "size", int(size + 1));
            let head = ctx.get(this, "head");
            let cell = ctx.new_object("LLCell", &[args[0].clone(), head])?;
            ctx.set(this, "head", Value::Ref(cell));
            if ctx.get(this, "tail").is_null() {
                ctx.set(this, "tail", Value::Ref(cell));
            }
            Ok(Value::Null)
        });
        c.method("insertLast", |ctx, this, args| {
            let size = ctx.get_int(this, "size");
            ctx.set(this, "size", int(size + 1));
            let cell = ctx.new_object("LLCell", &[args[0].clone()])?;
            let tail = ctx.get(this, "tail");
            if tail.is_null() {
                ctx.set(this, "head", Value::Ref(cell));
            } else {
                ctx.call_value(&tail, "setNext", &[Value::Ref(cell)])?;
            }
            ctx.set(this, "tail", Value::Ref(cell));
            Ok(Value::Null)
        });
        c.method("removeFirst", |ctx, this, _| {
            let size = ctx.get_int(this, "size");
            if size == 0 {
                return Err(ctx.exception(NO_SUCH_ELEMENT, "removeFirst on empty list"));
            }
            ctx.set(this, "size", int(size - 1));
            let head = ctx.get(this, "head");
            let v = ctx.call_value(&head, "value", &[])?;
            let next = ctx.call_value(&head, "next", &[])?;
            ctx.set(this, "head", next.clone());
            if next.is_null() {
                ctx.set(this, "tail", Value::Null);
            }
            Ok(v)
        })
        .throws(NO_SUCH_ELEMENT);
        c.method("insertAt", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            let size = ctx.get_int(this, "size");
            if i < 0 || i > size {
                return Err(ctx.exception(INDEX_OOB, format!("insertAt {i}")));
            }
            if i == 0 {
                return ctx.call(this, "insertFirst", &[args[1].clone()]);
            }
            if i == size {
                return ctx.call(this, "insertLast", &[args[1].clone()]);
            }
            ctx.set(this, "size", int(size + 1));
            let head = ctx.get(this, "head");
            let before = walk(ctx, head, i - 1)?;
            let cell = ctx.new_object("LLCell", &[args[1].clone()])?;
            ctx.call_value(&before, "spliceAfter", &[Value::Ref(cell)])?;
            Ok(Value::Null)
        })
        .throws(INDEX_OOB);
        c.method("removeAt", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            let size = ctx.get_int(this, "size");
            if i < 0 || i >= size {
                return Err(ctx.exception(INDEX_OOB, format!("removeAt {i}")));
            }
            if i == 0 {
                return ctx.call(this, "removeFirst", &[]);
            }
            ctx.set(this, "size", int(size - 1));
            let head = ctx.get(this, "head");
            let before = walk(ctx, head, i - 1)?;
            let victim = ctx.call_value(&before, "next", &[])?;
            let v = ctx.call_value(&victim, "value", &[])?;
            let after = ctx.call_value(&victim, "next", &[])?;
            ctx.call_value(&before, "setNext", &[after.clone()])?;
            if after.is_null() {
                ctx.set(this, "tail", before);
            }
            Ok(v)
        })
        .throws(INDEX_OOB);
        c.method("removeValue", |ctx, this, args| {
            let idx = ctx.call(this, "indexOf", &[args[0].clone()])?;
            let i = idx.as_int().unwrap_or(-1);
            if i < 0 {
                return Ok(Value::Bool(false));
            }
            ctx.call(this, "removeAt", &[int(i)])?;
            Ok(Value::Bool(true))
        })
        .throws(INDEX_OOB);
        c.method("swap", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            let j = args[1].as_int().unwrap_or(-1);
            let size = ctx.get_int(this, "size");
            if i < 0 || j < 0 || i >= size || j >= size {
                return Err(ctx.exception(INDEX_OOB, "swap"));
            }
            let head = ctx.get(this, "head");
            let a = walk(ctx, head.clone(), i)?;
            let va = ctx.call_value(&a, "value", &[])?;
            let b = walk(ctx, head, j)?;
            let vb = ctx.call_value(&b, "value", &[])?;
            // First write, then more calls: vulnerable order.
            ctx.call_value(&a, "setValue", &[vb])?;
            ctx.call_value(&b, "setValue", &[va])?;
            Ok(Value::Null)
        })
        .throws(INDEX_OOB);
    });
}

/// Registers the *fixed* `LinkedList` (§6.1 case study): same behaviour,
/// compute-then-commit statement order, `never_throws` cell accessors.
fn register_fixed(rb: &mut RegistryBuilder) {
    register_cell(rb, true);
    rb.class("LinkedList", |c| {
        c.field("head", Value::Null);
        c.field("tail", Value::Null);
        c.field("size", int(0));
        c.ctor(|_, _, _| Ok(Value::Null));
        common_readers(c);
        c.method("insertFirst", |ctx, this, args| {
            // All calls first, field writes last: atomic.
            let head = ctx.get(this, "head");
            let cell = ctx.new_object("LLCell", &[args[0].clone(), head])?;
            let size = ctx.get_int(this, "size");
            ctx.set(this, "head", Value::Ref(cell));
            if ctx.get(this, "tail").is_null() {
                ctx.set(this, "tail", Value::Ref(cell));
            }
            ctx.set(this, "size", int(size + 1));
            Ok(Value::Null)
        });
        c.method("insertLast", |ctx, this, args| {
            let cell = ctx.new_object("LLCell", &[args[0].clone()])?;
            let size = ctx.get_int(this, "size");
            let tail = ctx.get(this, "tail");
            if tail.is_null() {
                ctx.set(this, "head", Value::Ref(cell));
            } else {
                // setNext is never_throws, and a fresh cell is not yet part
                // of the list graph: still atomic.
                ctx.call_value(&tail, "setNext", &[Value::Ref(cell)])?;
            }
            ctx.set(this, "tail", Value::Ref(cell));
            ctx.set(this, "size", int(size + 1));
            Ok(Value::Null)
        });
        c.method("removeFirst", |ctx, this, _| {
            let size = ctx.get_int(this, "size");
            if size == 0 {
                return Err(ctx.exception(NO_SUCH_ELEMENT, "removeFirst on empty list"));
            }
            let head = ctx.get(this, "head");
            let v = ctx.call_value(&head, "value", &[])?;
            let next = ctx.call_value(&head, "next", &[])?;
            ctx.set(this, "head", next.clone());
            if next.is_null() {
                ctx.set(this, "tail", Value::Null);
            }
            ctx.set(this, "size", int(size - 1));
            Ok(v)
        })
        .throws(NO_SUCH_ELEMENT);
        c.method("insertAt", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            let size = ctx.get_int(this, "size");
            if i < 0 || i > size {
                return Err(ctx.exception(INDEX_OOB, format!("insertAt {i}")));
            }
            if i == 0 {
                return ctx.call(this, "insertFirst", &[args[1].clone()]);
            }
            if i == size {
                return ctx.call(this, "insertLast", &[args[1].clone()]);
            }
            let head = ctx.get(this, "head");
            let before = walk(ctx, head, i - 1)?;
            let after = ctx.call_value(&before, "next", &[])?;
            let cell = ctx.new_object("LLCell", &[args[1].clone(), after])?;
            // Single commit: link the prepared cell, then bump the size
            // (setNext never throws).
            ctx.call_value(&before, "setNext", &[Value::Ref(cell)])?;
            ctx.set(this, "size", int(size + 1));
            Ok(Value::Null)
        })
        .throws(INDEX_OOB);
        c.method("removeAt", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            let size = ctx.get_int(this, "size");
            if i < 0 || i >= size {
                return Err(ctx.exception(INDEX_OOB, format!("removeAt {i}")));
            }
            if i == 0 {
                return ctx.call(this, "removeFirst", &[]);
            }
            let head = ctx.get(this, "head");
            let before = walk(ctx, head, i - 1)?;
            let victim = ctx.call_value(&before, "next", &[])?;
            let v = ctx.call_value(&victim, "value", &[])?;
            let after = ctx.call_value(&victim, "next", &[])?;
            ctx.call_value(&before, "setNext", &[after.clone()])?;
            if after.is_null() {
                ctx.set(this, "tail", before);
            }
            ctx.set(this, "size", int(size - 1));
            Ok(v)
        })
        .throws(INDEX_OOB);
        c.method("removeValue", |ctx, this, args| {
            let idx = ctx.call(this, "indexOf", &[args[0].clone()])?;
            let i = idx.as_int().unwrap_or(-1);
            if i < 0 {
                return Ok(Value::Bool(false));
            }
            ctx.call(this, "removeAt", &[int(i)])?;
            Ok(Value::Bool(true))
        })
        .throws(INDEX_OOB);
        c.method("swap", |ctx, this, args| {
            let i = args[0].as_int().unwrap_or(-1);
            let j = args[1].as_int().unwrap_or(-1);
            let size = ctx.get_int(this, "size");
            if i < 0 || j < 0 || i >= size || j >= size {
                return Err(ctx.exception(INDEX_OOB, "swap"));
            }
            let head = ctx.get(this, "head");
            let a = walk(ctx, head.clone(), i)?;
            let va = ctx.call_value(&a, "value", &[])?;
            let b = walk(ctx, head, j)?;
            let vb = ctx.call_value(&b, "value", &[])?;
            // Both writes back-to-back through never-throwing setters.
            ctx.call_value(&a, "setValue", &[vb])?;
            ctx.call_value(&b, "setValue", &[va])?;
            Ok(Value::Null)
        })
        .throws(INDEX_OOB);
    });
}

/// The shared deterministic driver (the paper's test program `P`).
fn driver(vm: &mut Vm) -> MethodResult {
    let list = rooted(vm, "LinkedList", &[])?;
    let list_id = list.as_ref_id().expect("rooted returns a ref");
    for i in 0..6 {
        vm.call(list_id, "insertLast", &[int(i)])?;
    }
    for i in 0..3 {
        vm.call(list_id, "insertFirst", &[int(100 + i)])?;
    }
    absorb(vm.call(list_id, "insertAt", &[int(2), int(55)]));
    absorb(vm.call(list_id, "removeAt", &[int(3)]));
    absorb(vm.call(list_id, "removeValue", &[int(4)]));
    absorb(vm.call(list_id, "swap", &[int(0), int(5)]));
    absorb(vm.call(list_id, "removeFirst", &[]));
    absorb(vm.call(list_id, "removeLast", &[]));
    absorb(vm.call(list_id, "reverse", &[]));
    // Exception-handling paths of the original program.
    absorb(vm.call(list_id, "at", &[int(99)]));
    absorb(vm.call(list_id, "removeAt", &[int(-1)]));
    // Queue/stack aliases.
    vm.call(list_id, "push", &[int(7)])?;
    absorb(vm.call(list_id, "pop", &[]));
    vm.call(list_id, "enqueue", &[int(8)])?;
    absorb(vm.call(list_id, "dequeue", &[]));
    // A second list to extend from.
    let other = rooted(vm, "LinkedList", &[])?;
    let other_id = other.as_ref_id().expect("ref");
    for i in 0..3 {
        vm.call(other_id, "insertLast", &[int(200 + i)])?;
    }
    vm.call(list_id, "extend", &[other])?;
    absorb(vm.call(list_id, "checkInvariant", &[]));
    absorb(vm.call(other_id, "clear", &[]));
    // Reads dominate the workload, as in real use.
    for _ in 0..4 {
        for i in 0..9 {
            absorb(vm.call(list_id, "at", &[int(i)]));
        }
        absorb(vm.call(list_id, "contains", &[int(4)]));
        absorb(vm.call(list_id, "indexOf", &[int(102)]));
        absorb(vm.call(list_id, "count", &[int(1)]));
        absorb(vm.call(list_id, "first", &[]));
        absorb(vm.call(list_id, "last", &[]));
        absorb(vm.call(list_id, "size", &[]));
        absorb(vm.call(list_id, "isEmpty", &[]));
        absorb(vm.call(list_id, "checkInvariant", &[]));
    }
    // Drain to empty and hit the empty-list error paths.
    while vm.call(list_id, "removeFirst", &[]).is_ok() {
        // Replay-aware read: checkpoint-resume retraces this loop.
        if vm.field(list_id, "size") == Some(int(0)) {
            break;
        }
    }
    absorb(vm.call(list_id, "first", &[]));
    Ok(Value::Null)
}

/// The original (failure non-atomic) `LinkedList` program.
pub fn program() -> FnProgram {
    FnProgram::new("LinkedList", build_registry, driver)
}

/// Builds the registry of the original program (exposed for tests and
/// benches that need method ids).
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register_buggy(&mut rb);
    rb.build()
}

/// The §6.1 case-study variant after trivial fixes and exception-free
/// annotations.
pub fn fixed_program() -> FnProgram {
    FnProgram::new("LinkedList-fixed", fixed_registry, driver)
}

/// Builds the registry of the fixed program.
pub fn fixed_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register_fixed(&mut rb);
    rb.build()
}

/// Functional helper for tests: drains the list into a Rust vector.
pub fn to_vec(vm: &mut Vm, list: ObjId) -> Vec<Value> {
    let mut out = Vec::new();
    let size = vm
        .heap()
        .field(list, "size")
        .and_then(|v| v.as_int())
        .unwrap_or(0);
    for i in 0..size {
        out.push(vm.call(list, "at", &[int(i)]).expect("index in range"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_inject::{classify, Campaign, MarkFilter, Verdict};
    use atomask_mor::Program;

    fn fresh(buggy: bool) -> (Vm, ObjId) {
        let reg = if buggy {
            build_registry()
        } else {
            fixed_registry()
        };
        let mut vm = Vm::new(reg);
        let l = vm.construct("LinkedList", &[]).unwrap();
        vm.root(l);
        (vm, l)
    }

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|v| int(*v)).collect()
    }

    #[test]
    fn insert_and_at_both_variants() {
        for buggy in [true, false] {
            let (mut vm, l) = fresh(buggy);
            vm.call(l, "insertLast", &[int(1)]).unwrap();
            vm.call(l, "insertLast", &[int(2)]).unwrap();
            vm.call(l, "insertFirst", &[int(0)]).unwrap();
            assert_eq!(to_vec(&mut vm, l), ints(&[0, 1, 2]), "buggy={buggy}");
            assert_eq!(vm.call(l, "size", &[]).unwrap(), int(3));
        }
    }

    #[test]
    fn remove_operations() {
        for buggy in [true, false] {
            let (mut vm, l) = fresh(buggy);
            for i in 0..5 {
                vm.call(l, "insertLast", &[int(i)]).unwrap();
            }
            assert_eq!(vm.call(l, "removeFirst", &[]).unwrap(), int(0));
            assert_eq!(vm.call(l, "removeLast", &[]).unwrap(), int(4));
            assert_eq!(vm.call(l, "removeAt", &[int(1)]).unwrap(), int(2));
            assert_eq!(
                vm.call(l, "removeValue", &[int(3)]).unwrap(),
                Value::Bool(true)
            );
            assert_eq!(to_vec(&mut vm, l), ints(&[1]));
            assert_eq!(
                vm.call(l, "checkInvariant", &[]).unwrap(),
                Value::Bool(true)
            );
        }
    }

    #[test]
    fn reverse_and_extend() {
        for buggy in [true, false] {
            let (mut vm, l) = fresh(buggy);
            for i in 0..4 {
                vm.call(l, "insertLast", &[int(i)]).unwrap();
            }
            vm.call(l, "reverse", &[]).unwrap();
            assert_eq!(to_vec(&mut vm, l), ints(&[3, 2, 1, 0]));
            assert_eq!(vm.call(l, "last", &[]).unwrap(), int(0));
            let other = vm.construct("LinkedList", &[]).unwrap();
            vm.root(other);
            vm.call(other, "insertLast", &[int(9)]).unwrap();
            vm.call(l, "extend", &[Value::Ref(other)]).unwrap();
            assert_eq!(to_vec(&mut vm, l), ints(&[3, 2, 1, 0, 9]));
        }
    }

    #[test]
    fn error_paths_throw_declared_exceptions() {
        let (mut vm, l) = fresh(true);
        let err = vm.call(l, "removeFirst", &[]).unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), NO_SUCH_ELEMENT);
        let err = vm.call(l, "at", &[int(0)]).unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), INDEX_OOB);
    }

    #[test]
    fn swap_and_aliases() {
        for buggy in [true, false] {
            let (mut vm, l) = fresh(buggy);
            for i in 0..3 {
                vm.call(l, "enqueue", &[int(i)]).unwrap();
            }
            vm.call(l, "swap", &[int(0), int(2)]).unwrap();
            assert_eq!(to_vec(&mut vm, l), ints(&[2, 1, 0]));
            vm.call(l, "push", &[int(9)]).unwrap();
            assert_eq!(vm.call(l, "pop", &[]).unwrap(), int(9));
            assert_eq!(vm.call(l, "dequeue", &[]).unwrap(), int(2));
        }
    }

    #[test]
    fn driver_is_clean_without_injection() {
        for p in [program(), fixed_program()] {
            let mut vm = Vm::new(p.build_registry());
            p.run(&mut vm).unwrap();
        }
    }

    #[test]
    fn case_study_reduces_pure_nonatomic_methods() {
        let buggy = program();
        let result = Campaign::new(&buggy).max_points(600).run();
        let c = classify(&result, &MarkFilter::default());
        let buggy_pure = c.method_counts.pure_nonatomic;

        let fixed = fixed_program();
        let result = Campaign::new(&fixed).max_points(600).run();
        let cf = classify(&result, &MarkFilter::default());
        let fixed_pure = cf.method_counts.pure_nonatomic;

        assert!(
            buggy_pure >= 6,
            "original list should be riddled with pure non-atomic methods, got {buggy_pure}"
        );
        assert!(
            fixed_pure <= 4,
            "fixed list should have few pure non-atomic methods, got {fixed_pure}: {:?}",
            cf.pure_nonatomic()
                .iter()
                .map(|m| m.name.clone())
                .collect::<Vec<_>>()
        );
        assert!(fixed_pure < buggy_pure);
        // The fixed insertFirst specifically must now be atomic.
        assert_eq!(
            cf.method("LinkedList::insertFirst").unwrap().verdict,
            Some(Verdict::FailureAtomic)
        );
    }
}

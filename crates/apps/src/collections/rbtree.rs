//! The `RBTree` application: a red-black tree *set* over integer keys,
//! sharing the CLR machinery of the crate-private `rbcore` module but with its own node
//! class and set-flavoured API (`add`/`contains`/`remove`/`min`/`max`).

use super::rbcore::{
    delete_entry, fix_after_insertion, get_node, key_of, left_of, min_node, rb_invariant,
    register_node, right_of, BLACK,
};
use crate::util::{absorb, int, rooted};
use atomask_mor::{FnProgram, MethodResult, ObjId, Profile, Registry, RegistryBuilder, Value, Vm};

fn register(rb: &mut RegistryBuilder) {
    register_node(rb, "TNode");
    rb.class("RBTree", |c| {
        c.field("root", Value::Null);
        c.field("size", int(0));
        c.field("adds", int(0));
        c.ctor(|_, _, _| Ok(Value::Null));
        c.method("size", |ctx, this, _| Ok(ctx.get(this, "size")))
            .never_throws();
        c.method("isEmpty", |ctx, this, _| {
            Ok(Value::Bool(ctx.get_int(this, "size") == 0))
        });
        c.method("contains", |ctx, this, args| {
            let k = args[0].as_int().unwrap_or(0);
            Ok(Value::Bool(!get_node(ctx, this, k)?.is_null()))
        });
        // Returns true iff inserted. Vulnerable: statistics and size
        // updated before the node is linked and the tree rebalanced.
        c.method("add", |ctx, this, args| {
            let k = args[0].as_int().unwrap_or(0);
            let adds = ctx.get_int(this, "adds");
            ctx.set(this, "adds", int(adds + 1));
            let root = ctx.get(this, "root");
            if root.is_null() {
                ctx.set(this, "size", int(1));
                let node = ctx.new_object("TNode", &[args[0].clone()])?;
                ctx.call(node, "setColor", &[int(BLACK)])?;
                ctx.set(this, "root", Value::Ref(node));
                return Ok(Value::Bool(true));
            }
            let mut t = root;
            loop {
                let tk = key_of(ctx, &t)?;
                if k == tk {
                    return Ok(Value::Bool(false));
                }
                let next = if k < tk {
                    left_of(ctx, &t)?
                } else {
                    right_of(ctx, &t)?
                };
                if next.is_null() {
                    let size = ctx.get_int(this, "size");
                    ctx.set(this, "size", int(size + 1));
                    let node =
                        ctx.new_object("TNode", &[args[0].clone(), Value::Null, t.clone()])?;
                    if k < tk {
                        ctx.call_value(&t, "setLeft", &[Value::Ref(node)])?;
                    } else {
                        ctx.call_value(&t, "setRight", &[Value::Ref(node)])?;
                    }
                    fix_after_insertion(ctx, this, Value::Ref(node))?;
                    return Ok(Value::Bool(true));
                }
                t = next;
            }
        });
        c.method("remove", |ctx, this, args| {
            let k = args[0].as_int().unwrap_or(0);
            let node = get_node(ctx, this, k)?;
            if node.is_null() {
                return Ok(Value::Bool(false));
            }
            let size = ctx.get_int(this, "size");
            ctx.set(this, "size", int(size - 1));
            delete_entry(ctx, this, node)?;
            Ok(Value::Bool(true))
        });
        c.method("min", |ctx, this, _| {
            let root = ctx.get(this, "root");
            if root.is_null() {
                return Err(ctx.exception("NoSuchElementException", "min of empty set"));
            }
            let node = min_node(ctx, root)?;
            ctx.call_value(&node, "key", &[])
        })
        .throws("NoSuchElementException");
        c.method("max", |ctx, this, _| {
            let mut cur = ctx.get(this, "root");
            if cur.is_null() {
                return Err(ctx.exception("NoSuchElementException", "max of empty set"));
            }
            loop {
                let r = right_of(ctx, &cur)?;
                if r.is_null() {
                    return ctx.call_value(&cur, "key", &[]);
                }
                cur = r;
            }
        })
        .throws("NoSuchElementException");
        // Counts keys in [lo, hi] by descending recursively through
        // accessor calls — read-only.
        c.method("countRange", |ctx, this, args| {
            let lo = args[0].as_int().unwrap_or(i64::MIN);
            let hi = args[1].as_int().unwrap_or(i64::MAX);
            let root = ctx.get(this, "root");
            let mut stack = vec![root];
            let mut n = 0i64;
            while let Some(cur) = stack.pop() {
                if cur.is_null() {
                    continue;
                }
                let k = key_of(ctx, &cur)?;
                if k >= lo && k <= hi {
                    n += 1;
                }
                if k > lo {
                    stack.push(left_of(ctx, &cur)?);
                }
                if k < hi {
                    stack.push(right_of(ctx, &cur)?);
                }
            }
            Ok(int(n))
        });
        c.method("addAll", |ctx, this, args| {
            let other = match &args[0] {
                Value::Ref(id) => *id,
                _ => return Ok(Value::Null),
            };
            let mut stack = vec![ctx.get(other, "root")];
            while let Some(cur) = stack.pop() {
                if cur.is_null() {
                    continue;
                }
                let k = ctx.call_value(&cur, "key", &[])?;
                ctx.call(this, "add", &[k])?;
                stack.push(left_of(ctx, &cur)?);
                stack.push(right_of(ctx, &cur)?);
            }
            Ok(Value::Null)
        });
        c.method("clear", |ctx, this, _| {
            ctx.set(this, "root", Value::Null);
            ctx.set(this, "size", int(0));
            Ok(Value::Null)
        });
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    let tree = rooted(vm, "RBTree", &[])?;
    let t = tree.as_ref_id().expect("ref");
    for k in [8, 3, 12, 1, 6, 10, 14, 4, 7, 13] {
        vm.call(t, "add", &[int(k)])?;
    }
    vm.call(t, "add", &[int(6)])?; // duplicate
    absorb(vm.call(t, "remove", &[int(3)]));
    absorb(vm.call(t, "remove", &[int(14)]));
    absorb(vm.call(t, "remove", &[int(99)]));
    let other = rooted(vm, "RBTree", &[])?;
    let o = other.as_ref_id().expect("ref");
    for k in [2, 6, 20] {
        vm.call(o, "add", &[int(k)])?;
    }
    vm.call(t, "addAll", &[other])?;
    for _ in 0..2 {
        for k in [1, 4, 7, 20, 99] {
            absorb(vm.call(t, "contains", &[int(k)]));
        }
        absorb(vm.call(t, "min", &[]));
        absorb(vm.call(t, "max", &[]));
        absorb(vm.call(t, "countRange", &[int(4), int(12)]));
        absorb(vm.call(t, "size", &[]));
        absorb(vm.call(t, "isEmpty", &[]));
    }
    absorb(vm.call(o, "clear", &[]));
    absorb(vm.call(o, "min", &[])); // empty error path
    Ok(Value::Null)
}

/// The `RBTree` program.
pub fn program() -> FnProgram {
    FnProgram::new("RBTree", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register(&mut rb);
    rb.build()
}

/// Exposed for tests/benches: host-side red-black invariant check.
pub fn invariant_holds(vm: &Vm, tree: ObjId) -> bool {
    rb_invariant(vm, tree, "TNode")
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::Program;
    use std::collections::BTreeSet;

    fn fresh() -> (Vm, ObjId) {
        let mut vm = Vm::new(build_registry());
        let t = vm.construct("RBTree", &[]).unwrap();
        vm.root(t);
        (vm, t)
    }

    #[test]
    fn add_contains_remove() {
        let (mut vm, t) = fresh();
        assert_eq!(vm.call(t, "add", &[int(5)]).unwrap(), Value::Bool(true));
        assert_eq!(vm.call(t, "add", &[int(5)]).unwrap(), Value::Bool(false));
        assert_eq!(
            vm.call(t, "contains", &[int(5)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(vm.call(t, "remove", &[int(5)]).unwrap(), Value::Bool(true));
        assert_eq!(vm.call(t, "remove", &[int(5)]).unwrap(), Value::Bool(false));
        assert_eq!(vm.call(t, "size", &[]).unwrap(), int(0));
    }

    #[test]
    fn matches_btreeset_model_under_mixed_ops() {
        let (mut vm, t) = fresh();
        let mut model: BTreeSet<i64> = BTreeSet::new();
        let mut x: i64 = 98765;
        for step in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 33).rem_euclid(35);
            if step % 3 != 2 {
                let expected = model.insert(k);
                let got = vm.call(t, "add", &[int(k)]).unwrap();
                assert_eq!(got, Value::Bool(expected), "add {k} at step {step}");
            } else {
                let expected = model.remove(&k);
                let got = vm.call(t, "remove", &[int(k)]).unwrap();
                assert_eq!(got, Value::Bool(expected), "remove {k} at step {step}");
            }
            assert!(
                invariant_holds(&vm, t),
                "RB invariant broken at step {step}"
            );
        }
        assert_eq!(vm.call(t, "size", &[]).unwrap(), int(model.len() as i64));
        if let Some(min) = model.iter().next() {
            assert_eq!(vm.call(t, "min", &[]).unwrap(), int(*min));
            assert_eq!(
                vm.call(t, "max", &[]).unwrap(),
                int(*model.iter().next_back().unwrap())
            );
        }
    }

    #[test]
    fn count_range() {
        let (mut vm, t) = fresh();
        for k in 0..20 {
            vm.call(t, "add", &[int(k)]).unwrap();
        }
        assert_eq!(vm.call(t, "countRange", &[int(5), int(9)]).unwrap(), int(5));
        assert_eq!(
            vm.call(t, "countRange", &[int(-5), int(100)]).unwrap(),
            int(20)
        );
        assert_eq!(
            vm.call(t, "countRange", &[int(30), int(40)]).unwrap(),
            int(0)
        );
    }

    #[test]
    fn add_all_unions() {
        let (mut vm, t) = fresh();
        for k in [1, 2] {
            vm.call(t, "add", &[int(k)]).unwrap();
        }
        let o = vm.construct("RBTree", &[]).unwrap();
        vm.root(o);
        for k in [2, 3, 4] {
            vm.call(o, "add", &[int(k)]).unwrap();
        }
        vm.call(t, "addAll", &[Value::Ref(o)]).unwrap();
        assert_eq!(vm.call(t, "size", &[]).unwrap(), int(4));
        assert!(invariant_holds(&vm, t));
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

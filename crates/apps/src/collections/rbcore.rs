//! Shared red-black tree machinery used by the `RBMap` and `RBTree`
//! applications: node class registration, the CLR rotations and fixups
//! (as in `java.util.TreeMap`), and a host-side invariant checker.
//!
//! All helpers operate through node *accessor methods*, so every pointer
//! update is a separate injectable call — faithfully reproducing how the
//! original Java collections behave under the paper's instrumentation.

use crate::util::int;
use atomask_mor::{Ctx, MethodResult, ObjId, RegistryBuilder, Value, Vm};

pub(crate) const RED: i64 = 0;
pub(crate) const BLACK: i64 = 1;

pub(crate) fn register_node(rb: &mut RegistryBuilder, class: &str) {
    rb.class(class, |c| {
        c.field("key", int(0));
        c.field("value", Value::Null);
        c.field("color", int(RED));
        c.field("left", Value::Null);
        c.field("right", Value::Null);
        c.field("parent", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "key", args[0].clone());
            if let Some(v) = args.get(1) {
                ctx.set(this, "value", v.clone());
            }
            if let Some(p) = args.get(2) {
                ctx.set(this, "parent", p.clone());
            }
            Ok(Value::Null)
        });
        c.method("key", |ctx, this, _| Ok(ctx.get(this, "key")));
        c.method("value", |ctx, this, _| Ok(ctx.get(this, "value")));
        c.method("setValue", |ctx, this, args| {
            ctx.set(this, "value", args[0].clone());
            Ok(Value::Null)
        });
        c.method("setKey", |ctx, this, args| {
            ctx.set(this, "key", args[0].clone());
            Ok(Value::Null)
        });
        c.method("color", |ctx, this, _| Ok(ctx.get(this, "color")));
        c.method("setColor", |ctx, this, args| {
            ctx.set(this, "color", args[0].clone());
            Ok(Value::Null)
        });
        c.method("left", |ctx, this, _| Ok(ctx.get(this, "left")));
        c.method("setLeft", |ctx, this, args| {
            ctx.set(this, "left", args[0].clone());
            Ok(Value::Null)
        });
        c.method("right", |ctx, this, _| Ok(ctx.get(this, "right")));
        c.method("setRight", |ctx, this, args| {
            ctx.set(this, "right", args[0].clone());
            Ok(Value::Null)
        });
        c.method("parent", |ctx, this, _| Ok(ctx.get(this, "parent")));
        c.method("setParent", |ctx, this, args| {
            ctx.set(this, "parent", args[0].clone());
            Ok(Value::Null)
        });
    });
}

// --- null-safe helpers used by the tree methods (TreeMap's static
// colorOf/parentOf/leftOf/rightOf) ---

pub(crate) fn color_of(ctx: &mut Ctx<'_>, n: &Value) -> Result<i64, atomask_mor::Exception> {
    if n.is_null() {
        return Ok(BLACK);
    }
    Ok(ctx.call_value(n, "color", &[])?.as_int().unwrap_or(BLACK))
}

pub(crate) fn set_color(
    ctx: &mut Ctx<'_>,
    n: &Value,
    c: i64,
) -> Result<(), atomask_mor::Exception> {
    if !n.is_null() {
        ctx.call_value(n, "setColor", &[int(c)])?;
    }
    Ok(())
}

pub(crate) fn parent_of(ctx: &mut Ctx<'_>, n: &Value) -> MethodResult {
    if n.is_null() {
        return Ok(Value::Null);
    }
    ctx.call_value(n, "parent", &[])
}

pub(crate) fn left_of(ctx: &mut Ctx<'_>, n: &Value) -> MethodResult {
    if n.is_null() {
        return Ok(Value::Null);
    }
    ctx.call_value(n, "left", &[])
}

pub(crate) fn right_of(ctx: &mut Ctx<'_>, n: &Value) -> MethodResult {
    if n.is_null() {
        return Ok(Value::Null);
    }
    ctx.call_value(n, "right", &[])
}

pub(crate) fn key_of(ctx: &mut Ctx<'_>, n: &Value) -> Result<i64, atomask_mor::Exception> {
    Ok(ctx.call_value(n, "key", &[])?.as_int().unwrap_or(0))
}

/// TreeMap's `rotateLeft`, on a map instance.
pub(crate) fn rotate_left(
    ctx: &mut Ctx<'_>,
    this: ObjId,
    p: &Value,
) -> Result<(), atomask_mor::Exception> {
    if p.is_null() {
        return Ok(());
    }
    let r = right_of(ctx, p)?;
    let rl = left_of(ctx, &r)?;
    ctx.call_value(p, "setRight", &[rl.clone()])?;
    if !rl.is_null() {
        ctx.call_value(&rl, "setParent", &[p.clone()])?;
    }
    let pp = parent_of(ctx, p)?;
    ctx.call_value(&r, "setParent", &[pp.clone()])?;
    if pp.is_null() {
        ctx.set(this, "root", r.clone());
    } else if left_of(ctx, &pp)? == *p {
        ctx.call_value(&pp, "setLeft", &[r.clone()])?;
    } else {
        ctx.call_value(&pp, "setRight", &[r.clone()])?;
    }
    ctx.call_value(&r, "setLeft", &[p.clone()])?;
    ctx.call_value(p, "setParent", &[r])?;
    Ok(())
}

/// TreeMap's `rotateRight`.
pub(crate) fn rotate_right(
    ctx: &mut Ctx<'_>,
    this: ObjId,
    p: &Value,
) -> Result<(), atomask_mor::Exception> {
    if p.is_null() {
        return Ok(());
    }
    let l = left_of(ctx, p)?;
    let lr = right_of(ctx, &l)?;
    ctx.call_value(p, "setLeft", &[lr.clone()])?;
    if !lr.is_null() {
        ctx.call_value(&lr, "setParent", &[p.clone()])?;
    }
    let pp = parent_of(ctx, p)?;
    ctx.call_value(&l, "setParent", &[pp.clone()])?;
    if pp.is_null() {
        ctx.set(this, "root", l.clone());
    } else if right_of(ctx, &pp)? == *p {
        ctx.call_value(&pp, "setRight", &[l.clone()])?;
    } else {
        ctx.call_value(&pp, "setLeft", &[l.clone()])?;
    }
    ctx.call_value(&l, "setRight", &[p.clone()])?;
    ctx.call_value(p, "setParent", &[l])?;
    Ok(())
}

/// TreeMap's `fixAfterInsertion`.
pub(crate) fn fix_after_insertion(
    ctx: &mut Ctx<'_>,
    this: ObjId,
    x0: Value,
) -> Result<(), atomask_mor::Exception> {
    let mut x = x0;
    set_color(ctx, &x, RED)?;
    loop {
        if x.is_null() || x == ctx.get(this, "root") {
            break;
        }
        let xp = parent_of(ctx, &x)?;
        if color_of(ctx, &xp)? != RED {
            break;
        }
        let xpp = parent_of(ctx, &xp)?;
        if xp == left_of(ctx, &xpp)? {
            let y = right_of(ctx, &xpp)?;
            if color_of(ctx, &y)? == RED {
                set_color(ctx, &xp, BLACK)?;
                set_color(ctx, &y, BLACK)?;
                set_color(ctx, &xpp, RED)?;
                x = xpp;
            } else {
                if x == right_of(ctx, &xp)? {
                    x = xp;
                    rotate_left(ctx, this, &x.clone())?;
                }
                let xp = parent_of(ctx, &x)?;
                set_color(ctx, &xp, BLACK)?;
                let xpp = parent_of(ctx, &xp)?;
                set_color(ctx, &xpp, RED)?;
                rotate_right(ctx, this, &xpp)?;
            }
        } else {
            let y = left_of(ctx, &xpp)?;
            if color_of(ctx, &y)? == RED {
                set_color(ctx, &xp, BLACK)?;
                set_color(ctx, &y, BLACK)?;
                set_color(ctx, &xpp, RED)?;
                x = xpp;
            } else {
                if x == left_of(ctx, &xp)? {
                    x = xp;
                    rotate_right(ctx, this, &x.clone())?;
                }
                let xp = parent_of(ctx, &x)?;
                set_color(ctx, &xp, BLACK)?;
                let xpp = parent_of(ctx, &xp)?;
                set_color(ctx, &xpp, RED)?;
                rotate_left(ctx, this, &xpp)?;
            }
        }
    }
    let root = ctx.get(this, "root");
    set_color(ctx, &root, BLACK)?;
    Ok(())
}

/// TreeMap's `fixAfterDeletion`.
pub(crate) fn fix_after_deletion(
    ctx: &mut Ctx<'_>,
    this: ObjId,
    x0: Value,
) -> Result<(), atomask_mor::Exception> {
    let mut x = x0;
    while x != ctx.get(this, "root") && color_of(ctx, &x)? == BLACK {
        let xp = parent_of(ctx, &x)?;
        if x == left_of(ctx, &xp)? {
            let mut sib = right_of(ctx, &xp)?;
            if color_of(ctx, &sib)? == RED {
                set_color(ctx, &sib, BLACK)?;
                set_color(ctx, &xp, RED)?;
                rotate_left(ctx, this, &xp)?;
                let xp = parent_of(ctx, &x)?;
                sib = right_of(ctx, &xp)?;
            }
            let sl = left_of(ctx, &sib)?;
            let sr = right_of(ctx, &sib)?;
            if color_of(ctx, &sl)? == BLACK && color_of(ctx, &sr)? == BLACK {
                set_color(ctx, &sib, RED)?;
                x = parent_of(ctx, &x)?;
            } else {
                if color_of(ctx, &sr)? == BLACK {
                    set_color(ctx, &sl, BLACK)?;
                    set_color(ctx, &sib, RED)?;
                    rotate_right(ctx, this, &sib)?;
                    let xp = parent_of(ctx, &x)?;
                    sib = right_of(ctx, &xp)?;
                }
                let xp = parent_of(ctx, &x)?;
                let pc = color_of(ctx, &xp)?;
                set_color(ctx, &sib, pc)?;
                set_color(ctx, &xp, BLACK)?;
                let sr = right_of(ctx, &sib)?;
                set_color(ctx, &sr, BLACK)?;
                rotate_left(ctx, this, &xp)?;
                x = ctx.get(this, "root");
            }
        } else {
            let mut sib = left_of(ctx, &xp)?;
            if color_of(ctx, &sib)? == RED {
                set_color(ctx, &sib, BLACK)?;
                set_color(ctx, &xp, RED)?;
                rotate_right(ctx, this, &xp)?;
                let xp = parent_of(ctx, &x)?;
                sib = left_of(ctx, &xp)?;
            }
            let sr = right_of(ctx, &sib)?;
            let sl = left_of(ctx, &sib)?;
            if color_of(ctx, &sr)? == BLACK && color_of(ctx, &sl)? == BLACK {
                set_color(ctx, &sib, RED)?;
                x = parent_of(ctx, &x)?;
            } else {
                if color_of(ctx, &sl)? == BLACK {
                    set_color(ctx, &sr, BLACK)?;
                    set_color(ctx, &sib, RED)?;
                    rotate_left(ctx, this, &sib)?;
                    let xp = parent_of(ctx, &x)?;
                    sib = left_of(ctx, &xp)?;
                }
                let xp = parent_of(ctx, &x)?;
                let pc = color_of(ctx, &xp)?;
                set_color(ctx, &sib, pc)?;
                set_color(ctx, &xp, BLACK)?;
                let sl = left_of(ctx, &sib)?;
                set_color(ctx, &sl, BLACK)?;
                rotate_right(ctx, this, &xp)?;
                x = ctx.get(this, "root");
            }
        }
    }
    set_color(ctx, &x, BLACK)?;
    Ok(())
}

/// Finds the node with key `k` (descends through accessor calls).
pub(crate) fn get_node(ctx: &mut Ctx<'_>, this: ObjId, k: i64) -> MethodResult {
    let mut cur = ctx.get(this, "root");
    while !cur.is_null() {
        let ck = key_of(ctx, &cur)?;
        if k == ck {
            return Ok(cur);
        }
        cur = if k < ck {
            left_of(ctx, &cur)?
        } else {
            right_of(ctx, &cur)?
        };
    }
    Ok(Value::Null)
}

/// Leftmost node of the subtree rooted at `n`.
pub(crate) fn min_node(ctx: &mut Ctx<'_>, n: Value) -> MethodResult {
    let mut cur = n;
    loop {
        let l = left_of(ctx, &cur)?;
        if l.is_null() {
            return Ok(cur);
        }
        cur = l;
    }
}

/// TreeMap's `deleteEntry`, starting from the node to remove.
pub(crate) fn delete_entry(
    ctx: &mut Ctx<'_>,
    this: ObjId,
    mut p: Value,
) -> Result<(), atomask_mor::Exception> {
    let l = left_of(ctx, &p)?;
    let r = right_of(ctx, &p)?;
    if !l.is_null() && !r.is_null() {
        let s = min_node(ctx, r)?;
        let sk = ctx.call_value(&s, "key", &[])?;
        let sv = ctx.call_value(&s, "value", &[])?;
        ctx.call_value(&p, "setKey", &[sk])?;
        ctx.call_value(&p, "setValue", &[sv])?;
        p = s;
    }
    let pl = left_of(ctx, &p)?;
    let replacement = if pl.is_null() { right_of(ctx, &p)? } else { pl };
    if !replacement.is_null() {
        let pp = parent_of(ctx, &p)?;
        ctx.call_value(&replacement, "setParent", &[pp.clone()])?;
        if pp.is_null() {
            ctx.set(this, "root", replacement.clone());
        } else if p == left_of(ctx, &pp)? {
            ctx.call_value(&pp, "setLeft", &[replacement.clone()])?;
        } else {
            ctx.call_value(&pp, "setRight", &[replacement.clone()])?;
        }
        ctx.call_value(&p, "setLeft", &[Value::Null])?;
        ctx.call_value(&p, "setRight", &[Value::Null])?;
        ctx.call_value(&p, "setParent", &[Value::Null])?;
        if color_of(ctx, &p)? == BLACK {
            fix_after_deletion(ctx, this, replacement)?;
        }
    } else {
        let pp = parent_of(ctx, &p)?;
        if pp.is_null() {
            ctx.set(this, "root", Value::Null);
        } else {
            if color_of(ctx, &p)? == BLACK {
                fix_after_deletion(ctx, this, p.clone())?;
            }
            let pp = parent_of(ctx, &p)?;
            if !pp.is_null() {
                if p == left_of(ctx, &pp)? {
                    ctx.call_value(&pp, "setLeft", &[Value::Null])?;
                } else if p == right_of(ctx, &pp)? {
                    ctx.call_value(&pp, "setRight", &[Value::Null])?;
                }
                ctx.call_value(&p, "setParent", &[Value::Null])?;
            }
        }
    }
    Ok(())
}

/// Host-side read-only invariant check (no guest calls): red-black
/// properties plus BST order. Returns `false` on any violation.
pub(crate) fn rb_invariant(vm: &Vm, map: ObjId, node_class: &str) -> bool {
    fn check(
        vm: &Vm,
        node: &Value,
        min: Option<i64>,
        max: Option<i64>,
        node_class: &str,
    ) -> Option<i64> {
        let id = match node {
            Value::Null => return Some(1),
            Value::Ref(id) => *id,
            _ => return None,
        };
        let heap = vm.heap();
        let obj = heap.get(id)?;
        let class = vm.registry().class(obj.class_id());
        if class.name != node_class {
            return None;
        }
        let key = heap.field(id, "key")?.as_int()?;
        if min.is_some_and(|m| key <= m) || max.is_some_and(|m| key >= m) {
            return None;
        }
        let color = heap.field(id, "color")?.as_int()?;
        let left = heap.field(id, "left")?;
        let right = heap.field(id, "right")?;
        if color == RED {
            for child in [&left, &right] {
                if let Value::Ref(c) = child {
                    if heap.field(*c, "color")?.as_int()? == RED {
                        return None; // red-red violation
                    }
                }
            }
        }
        let bl = check(vm, &left, min, Some(key), node_class)?;
        let br = check(vm, &right, Some(key), max, node_class)?;
        if bl != br {
            return None;
        }
        Some(bl + i64::from(color == BLACK))
    }
    let root = match vm.heap().field(map, "root") {
        Some(v) => v,
        None => return false,
    };
    if let Value::Ref(r) = &root {
        // Root must be black.
        if vm.heap().field(*r, "color").and_then(|c| c.as_int()) != Some(BLACK) {
            return false;
        }
    }
    check(vm, &root, None, None, node_class).is_some()
}

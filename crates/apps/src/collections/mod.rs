//! Java-flavoured collection applications, in the style of Doug Lea's
//! `collections` package: state lives in cell/entry objects manipulated
//! through accessor methods, so mutation sequences interleave with many
//! injectable calls.

pub mod circular_list;
pub mod dynarray;
pub mod hashed_map;
pub mod hashed_set;
pub mod linked_buffer;
pub mod linked_list;
pub mod llmap;
pub(crate) mod rbcore;
pub mod rbmap;
pub mod rbtree;

//! Shared helpers for application drivers and method bodies.

use atomask_mor::{MethodResult, Value, Vm};

/// Shorthand for `Value::Int`.
pub fn int(v: i64) -> Value {
    Value::Int(v)
}

/// Shorthand for `Value::Str`.
pub fn s(v: &str) -> Value {
    Value::from(v)
}

/// Runs a driver step whose guest exceptions are part of the scripted
/// workload (expected failures and, during campaigns, injected exceptions
/// that the driver absorbs and carries on — the exception handling path the
/// paper stresses).
pub fn absorb(result: MethodResult) -> Value {
    result.unwrap_or(Value::Null)
}

/// Constructs an instance and roots it for the rest of the driver.
///
/// # Errors
///
/// Propagates constructor exceptions (e.g. injected ones).
pub fn rooted(vm: &mut Vm, class: &str, args: &[Value]) -> MethodResult {
    let id = vm.construct(class, args)?;
    vm.root(id);
    Ok(Value::Ref(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorthands() {
        assert_eq!(int(3), Value::Int(3));
        assert_eq!(s("a"), Value::Str("a".into()));
    }

    #[test]
    fn absorb_swallows_errors() {
        assert_eq!(absorb(Ok(Value::Int(1))), Value::Int(1));
        let mut rb = atomask_mor::RegistryBuilder::new(atomask_mor::Profile::java());
        let e = rb.exception("E");
        assert_eq!(
            absorb(Err(atomask_mor::Exception::new(e, "x"))),
            Value::Null
        );
    }
}

//! The `RegExp` application: a regular-expression engine in the style of
//! Jakarta RegExp.
//!
//! * A recursive-descent `Parser` compiles a pattern string into an AST of
//!   node objects on the managed heap (`RxChar`, `RxAny`, `RxSeq`, `RxAlt`,
//!   `RxStar`, `RxOpt`, `RxEnd`). The parser keeps its cursor in a field,
//!   so its methods are genuinely failure non-atomic — but compilation runs
//!   once per pattern, so those methods are *rarely called*, matching the
//!   paper's observation that non-atomic methods receive proportionally
//!   fewer calls.
//! * Matching walks the AST with an explicit continuation chain (`RxCont`),
//!   giving full backtracking semantics. Matching methods are read-only
//!   (fuel is threaded as an argument), hence failure atomic.
//! * `CharOps` is registered as a **core** class: under the Java profile it
//!   cannot be instrumented, reproducing the §5.2 limitation that core
//!   classes (strings, boxed integers) receive neither injections nor
//!   wrappers.
//!
//! Supported syntax: literals, `.`, `*`, `?`, `|`, and `(...)` grouping.

use crate::util::{absorb, int, rooted, s};
use atomask_mor::{Ctx, FnProgram, MethodResult, Profile, Registry, RegistryBuilder, Value, Vm};

/// Exception thrown on malformed patterns.
pub const SYNTAX_ERROR: &str = "RESyntaxException";
/// Exception thrown when the backtracking budget is exhausted.
pub const OVERFLOW: &str = "REOverflowException";

/// Matches the continuation chain: empty chain accepts.
fn cont_match(ctx: &mut Ctx<'_>, input: &Value, pos: i64, cont: &Value, fuel: i64) -> MethodResult {
    if cont.is_null() {
        return Ok(Value::Bool(true));
    }
    let node = ctx.call_value(cont, "node", &[])?;
    let next = ctx.call_value(cont, "next", &[])?;
    ctx.call_value(
        &node,
        "matchAt",
        &[input.clone(), int(pos), next, int(fuel)],
    )
}

fn burn(ctx: &mut Ctx<'_>, fuel: i64) -> Result<i64, atomask_mor::Exception> {
    if fuel <= 0 {
        return Err(ctx.exception(OVERFLOW, "backtracking budget exhausted"));
    }
    Ok(fuel - 1)
}

fn register(rb: &mut RegistryBuilder) {
    // Core class (not instrumentable under the Java profile).
    rb.class("CharOps", |c| {
        c.core();
        c.field("dummy", Value::Null);
        c.method("charAt", |_, _, args| {
            let text = args[0].as_str().unwrap_or("");
            let i = args[1].as_int().unwrap_or(-1);
            match text.chars().nth(i.max(0) as usize) {
                Some(ch) if i >= 0 => Ok(Value::from(&*ch.encode_utf8(&mut [0u8; 4]))),
                _ => Ok(Value::Null),
            }
        });
        c.method("len", |_, _, args| {
            Ok(int(
                args[0].as_str().map(|t| t.chars().count()).unwrap_or(0) as i64,
            ))
        });
    });
    rb.class("RxCont", |c| {
        c.field("node", Value::Null);
        c.field("next", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "node", args[0].clone());
            ctx.set(this, "next", args[1].clone());
            Ok(Value::Null)
        });
        c.method("node", |ctx, this, _| Ok(ctx.get(this, "node")));
        c.method("next", |ctx, this, _| Ok(ctx.get(this, "next")));
    });
    rb.class("RxChar", |c| {
        c.field("ch", Value::from(""));
        c.field("ops", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "ch", args[0].clone());
            ctx.set(this, "ops", args[1].clone());
            Ok(Value::Null)
        });
        c.method("matchAt", |ctx, this, args| {
            let fuel = burn(ctx, args[3].as_int().unwrap_or(0))?;
            let ops = ctx.get(this, "ops");
            let got = ctx.call_value(&ops, "charAt", &[args[0].clone(), args[1].clone()])?;
            let want = ctx.get(this, "ch");
            if got.is_null() || got != want {
                return Ok(Value::Bool(false));
            }
            let pos = args[1].as_int().unwrap_or(0);
            cont_match(ctx, &args[0], pos + 1, &args[2], fuel)
        })
        .throws(OVERFLOW);
    });
    rb.class("RxAny", |c| {
        c.field("ops", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "ops", args[0].clone());
            Ok(Value::Null)
        });
        c.method("matchAt", |ctx, this, args| {
            let fuel = burn(ctx, args[3].as_int().unwrap_or(0))?;
            let ops = ctx.get(this, "ops");
            let got = ctx.call_value(&ops, "charAt", &[args[0].clone(), args[1].clone()])?;
            if got.is_null() {
                return Ok(Value::Bool(false));
            }
            let pos = args[1].as_int().unwrap_or(0);
            cont_match(ctx, &args[0], pos + 1, &args[2], fuel)
        })
        .throws(OVERFLOW);
    });
    rb.class("RxSeq", |c| {
        c.field("first", Value::Null);
        c.field("second", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "first", args[0].clone());
            ctx.set(this, "second", args[1].clone());
            Ok(Value::Null)
        });
        c.method("matchAt", |ctx, this, args| {
            let fuel = burn(ctx, args[3].as_int().unwrap_or(0))?;
            let first = ctx.get(this, "first");
            let second = ctx.get(this, "second");
            let cont = ctx.new_object("RxCont", &[second, args[2].clone()])?;
            ctx.call_value(
                &first,
                "matchAt",
                &[
                    args[0].clone(),
                    args[1].clone(),
                    Value::Ref(cont),
                    int(fuel),
                ],
            )
        })
        .throws(OVERFLOW);
    });
    rb.class("RxAlt", |c| {
        c.field("left", Value::Null);
        c.field("right", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "left", args[0].clone());
            ctx.set(this, "right", args[1].clone());
            Ok(Value::Null)
        });
        c.method("matchAt", |ctx, this, args| {
            let fuel = burn(ctx, args[3].as_int().unwrap_or(0))?;
            let left = ctx.get(this, "left");
            let hit = ctx.call_value(
                &left,
                "matchAt",
                &[args[0].clone(), args[1].clone(), args[2].clone(), int(fuel)],
            )?;
            if hit == Value::Bool(true) {
                return Ok(hit);
            }
            let right = ctx.get(this, "right");
            ctx.call_value(
                &right,
                "matchAt",
                &[args[0].clone(), args[1].clone(), args[2].clone(), int(fuel)],
            )
        })
        .throws(OVERFLOW);
    });
    rb.class("RxStar", |c| {
        c.field("inner", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "inner", args[0].clone());
            Ok(Value::Null)
        });
        // Greedy with backtracking: try one more repetition, else the
        // continuation.
        c.method("matchAt", |ctx, this, args| {
            let fuel = burn(ctx, args[3].as_int().unwrap_or(0))?;
            let inner = ctx.get(this, "inner");
            let again = ctx.new_object("RxCont", &[Value::Ref(this), args[2].clone()])?;
            let hit = ctx.call_value(
                &inner,
                "matchAt",
                &[
                    args[0].clone(),
                    args[1].clone(),
                    Value::Ref(again),
                    int(fuel),
                ],
            )?;
            if hit == Value::Bool(true) {
                return Ok(hit);
            }
            let pos = args[1].as_int().unwrap_or(0);
            cont_match(ctx, &args[0], pos, &args[2], fuel)
        })
        .throws(OVERFLOW);
    });
    rb.class("RxOpt", |c| {
        c.field("inner", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "inner", args[0].clone());
            Ok(Value::Null)
        });
        c.method("matchAt", |ctx, this, args| {
            let fuel = burn(ctx, args[3].as_int().unwrap_or(0))?;
            let inner = ctx.get(this, "inner");
            let hit = ctx.call_value(
                &inner,
                "matchAt",
                &[args[0].clone(), args[1].clone(), args[2].clone(), int(fuel)],
            )?;
            if hit == Value::Bool(true) {
                return Ok(hit);
            }
            let pos = args[1].as_int().unwrap_or(0);
            cont_match(ctx, &args[0], pos, &args[2], fuel)
        })
        .throws(OVERFLOW);
    });
    rb.class("RxEmpty", |c| {
        c.field("dummy", Value::Null);
        c.method("matchAt", |ctx, this, args| {
            let fuel = burn(ctx, args[3].as_int().unwrap_or(0))?;
            let pos = args[1].as_int().unwrap_or(0);
            let _ = this;
            cont_match(ctx, &args[0], pos, &args[2], fuel)
        })
        .throws(OVERFLOW);
    });
    rb.class("RxEnd", |c| {
        c.field("ops", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "ops", args[0].clone());
            Ok(Value::Null)
        });
        c.method("matchAt", |ctx, this, args| {
            let fuel = burn(ctx, args[3].as_int().unwrap_or(0))?;
            let ops = ctx.get(this, "ops");
            let len = ctx.call_value(&ops, "len", &[args[0].clone()])?;
            if args[1] != len {
                return Ok(Value::Bool(false));
            }
            let pos = args[1].as_int().unwrap_or(0);
            cont_match(ctx, &args[0], pos, &args[2], fuel)
        })
        .throws(OVERFLOW);
    });

    // The recursive-descent pattern parser: its cursor lives in a field,
    // so a mid-parse exception leaves the parser visibly dirty.
    rb.class("Parser", |c| {
        c.field("pattern", Value::from(""));
        c.field("pos", int(0));
        c.field("ops", Value::Null);
        c.ctor(|ctx, this, args| {
            ctx.set(this, "pattern", args[0].clone());
            ctx.set(this, "ops", args[1].clone());
            Ok(Value::Null)
        });
        c.method("peek", |ctx, this, _| {
            let pattern = ctx.get(this, "pattern");
            let pos = ctx.get(this, "pos");
            let ops = ctx.get(this, "ops");
            ctx.call_value(&ops, "charAt", &[pattern, pos])
        });
        c.method("advance", |ctx, this, _| {
            let pos = ctx.get_int(this, "pos");
            ctx.set(this, "pos", int(pos + 1));
            Ok(Value::Null)
        });
        c.method("parseAlt", |ctx, this, _| {
            let mut node = ctx.call(this, "parseSeq", &[])?;
            loop {
                let ch = ctx.call(this, "peek", &[])?;
                if ch != s("|") {
                    return Ok(node);
                }
                ctx.call(this, "advance", &[])?;
                let right = ctx.call(this, "parseSeq", &[])?;
                let alt = ctx.new_object("RxAlt", &[node, right])?;
                node = Value::Ref(alt);
            }
        })
        .throws(SYNTAX_ERROR);
        c.method("parseSeq", |ctx, this, _| {
            let mut node: Option<Value> = None;
            loop {
                let ch = ctx.call(this, "peek", &[])?;
                let stop = ch.is_null() || ch == s("|") || ch == s(")");
                if stop {
                    return match node {
                        Some(n) => Ok(n),
                        None => Ok(Value::Ref(ctx.alloc("RxEmpty"))),
                    };
                }
                let atom = ctx.call(this, "parseAtom", &[])?;
                node = Some(match node {
                    None => atom,
                    Some(prev) => {
                        let seq = ctx.new_object("RxSeq", &[prev, atom])?;
                        Value::Ref(seq)
                    }
                });
            }
        })
        .throws(SYNTAX_ERROR);
        c.method("parseAtom", |ctx, this, _| {
            let ch = ctx.call(this, "peek", &[])?;
            if ch.is_null() {
                return Err(ctx.exception(SYNTAX_ERROR, "unexpected end of pattern"));
            }
            let ops = ctx.get(this, "ops");
            let base = if ch == s("(") {
                ctx.call(this, "advance", &[])?;
                let inner = ctx.call(this, "parseAlt", &[])?;
                let close = ctx.call(this, "peek", &[])?;
                if close != s(")") {
                    return Err(ctx.exception(SYNTAX_ERROR, "expected `)`"));
                }
                ctx.call(this, "advance", &[])?;
                inner
            } else if ch == s(".") {
                ctx.call(this, "advance", &[])?;
                Value::Ref(ctx.new_object("RxAny", &[ops.clone()])?)
            } else if ch == s("*") || ch == s("?") || ch == s(")") || ch == s("|") {
                return Err(ctx.exception(SYNTAX_ERROR, "misplaced operator"));
            } else {
                ctx.call(this, "advance", &[])?;
                Value::Ref(ctx.new_object("RxChar", &[ch, ops.clone()])?)
            };
            // Postfix operators.
            let post = ctx.call(this, "peek", &[])?;
            if post == s("*") {
                ctx.call(this, "advance", &[])?;
                return Ok(Value::Ref(ctx.new_object("RxStar", &[base])?));
            }
            if post == s("?") {
                ctx.call(this, "advance", &[])?;
                return Ok(Value::Ref(ctx.new_object("RxOpt", &[base])?));
            }
            Ok(base)
        })
        .throws(SYNTAX_ERROR);
    });

    rb.class("RegExp", |c| {
        c.field("root", Value::Null);
        c.field("ops", Value::Null);
        c.field("budget", int(20_000));
        c.field("compiled", Value::Bool(false));
        c.ctor(|ctx, this, args| {
            let ops = Value::Ref(ctx.alloc("CharOps"));
            ctx.set(this, "ops", ops.clone());
            let parser = ctx.new_object("Parser", &[args[0].clone(), ops])?;
            let root = ctx.call(parser, "parseAlt", &[])?;
            let rest = ctx.call(parser, "peek", &[])?;
            if !rest.is_null() {
                return Err(ctx.exception(SYNTAX_ERROR, "trailing characters in pattern"));
            }
            ctx.set(this, "root", root);
            ctx.set(this, "compiled", Value::Bool(true));
            Ok(Value::Null)
        })
        .throws(SYNTAX_ERROR);
        // Anchored full match.
        c.method("matches", |ctx, this, args| {
            let root = ctx.get(this, "root");
            let ops = ctx.get(this, "ops");
            let budget = ctx.get(this, "budget");
            let end = ctx.new_object("RxEnd", &[ops])?;
            let cont = ctx.new_object("RxCont", &[Value::Ref(end), Value::Null])?;
            ctx.call_value(
                &root,
                "matchAt",
                &[args[0].clone(), int(0), Value::Ref(cont), budget],
            )
        })
        .throws(OVERFLOW);
        // First match position, or -1.
        c.method("search", |ctx, this, args| {
            let root = ctx.get(this, "root");
            let ops = ctx.get(this, "ops");
            let budget = ctx.get(this, "budget");
            let len = ctx.call_value(&ops, "len", &[args[0].clone()])?;
            let len = len.as_int().unwrap_or(0);
            for start in 0..=len {
                let hit = ctx.call_value(
                    &root,
                    "matchAt",
                    &[args[0].clone(), int(start), Value::Null, budget.clone()],
                )?;
                if hit == Value::Bool(true) {
                    return Ok(int(start));
                }
            }
            Ok(int(-1))
        })
        .throws(OVERFLOW);
        c.method("setBudget", |ctx, this, args| {
            ctx.set(this, "budget", args[0].clone());
            Ok(Value::Null)
        });
    });
}

fn driver(vm: &mut Vm) -> MethodResult {
    // Compile a handful of patterns.
    let ab_star = rooted(vm, "RegExp", &[s("a(b|c)*d?")])?;
    let re1 = ab_star.as_ref_id().expect("ref");
    for input in ["ad", "abcbd", "a", "abx", ""] {
        absorb(vm.call(re1, "matches", &[s(input)]));
    }
    let any = rooted(vm, "RegExp", &[s("x.z")])?;
    let re2 = any.as_ref_id().expect("ref");
    for input in ["xyz", "xz", "xaz"] {
        absorb(vm.call(re2, "matches", &[s(input)]));
        absorb(vm.call(re2, "search", &[s(input)]));
    }
    absorb(vm.call(re2, "search", &[s("prefix-xqz-suffix")]));
    // Malformed patterns exercise the parser's error paths.
    if let Ok(id) = vm.construct("RegExp", &[s("a(b")]) {
        vm.root(id);
    }
    if let Ok(id) = vm.construct("RegExp", &[s("*oops")]) {
        vm.root(id);
    }
    // A tight budget exercises the overflow path.
    let tight = rooted(vm, "RegExp", &[s("(a*)*b")])?;
    let re3 = tight.as_ref_id().expect("ref");
    vm.call(re3, "setBudget", &[int(50)])?;
    absorb(vm.call(re3, "matches", &[s("aaaaaaaaaaaaaaaa")]));
    Ok(Value::Null)
}

/// The `RegExp` program.
pub fn program() -> FnProgram {
    FnProgram::new("RegExp", build_registry, driver)
}

/// Builds the program's registry.
pub fn build_registry() -> Registry {
    let mut rb = RegistryBuilder::new(Profile::java());
    register(&mut rb);
    rb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomask_mor::ObjId;
    use atomask_mor::Program;

    fn compile(vm: &mut Vm, pattern: &str) -> ObjId {
        let re = vm.construct("RegExp", &[s(pattern)]).unwrap();
        vm.root(re);
        re
    }

    fn matches(vm: &mut Vm, re: ObjId, input: &str) -> bool {
        vm.call(re, "matches", &[s(input)])
            .unwrap()
            .as_bool()
            .unwrap()
    }

    #[test]
    fn literals_and_any() {
        let mut vm = Vm::new(build_registry());
        let re = compile(&mut vm, "a.c");
        assert!(matches(&mut vm, re, "abc"));
        assert!(matches(&mut vm, re, "axc"));
        assert!(!matches(&mut vm, re, "ac"));
        assert!(!matches(&mut vm, re, "abcd"));
    }

    #[test]
    fn star_backtracks() {
        let mut vm = Vm::new(build_registry());
        let re = compile(&mut vm, "a*a");
        assert!(matches(&mut vm, re, "a"));
        assert!(matches(&mut vm, re, "aaaa"));
        assert!(!matches(&mut vm, re, ""));
        assert!(!matches(&mut vm, re, "ab"));
    }

    #[test]
    fn alternation_and_groups() {
        let mut vm = Vm::new(build_registry());
        let re = compile(&mut vm, "(ab|cd)*e");
        assert!(matches(&mut vm, re, "e"));
        assert!(matches(&mut vm, re, "abe"));
        assert!(matches(&mut vm, re, "abcdabe"));
        assert!(!matches(&mut vm, re, "abce"));
    }

    #[test]
    fn optional() {
        let mut vm = Vm::new(build_registry());
        let re = compile(&mut vm, "colou?r");
        assert!(matches(&mut vm, re, "color"));
        assert!(matches(&mut vm, re, "colour"));
        assert!(!matches(&mut vm, re, "colouur"));
    }

    #[test]
    fn search_finds_first_position() {
        let mut vm = Vm::new(build_registry());
        let re = compile(&mut vm, "na");
        let hit = vm.call(re, "search", &[s("banana")]).unwrap();
        assert_eq!(hit, int(2));
        let miss = vm.call(re, "search", &[s("zzz")]).unwrap();
        assert_eq!(miss, int(-1));
    }

    #[test]
    fn syntax_errors_are_reported() {
        let mut vm = Vm::new(build_registry());
        for bad in ["a(b", "*x", "a|*", "(", ")"] {
            let err = vm.construct("RegExp", &[s(bad)]).unwrap_err();
            assert_eq!(
                vm.registry().exceptions().name(err.ty),
                SYNTAX_ERROR,
                "pattern {bad:?}"
            );
        }
    }

    #[test]
    fn budget_overflow_throws() {
        let mut vm = Vm::new(build_registry());
        let re = compile(&mut vm, "(a*)*b");
        vm.call(re, "setBudget", &[int(30)]).unwrap();
        let err = vm.call(re, "matches", &[s("aaaaaaaaaa")]).unwrap_err();
        assert_eq!(vm.registry().exceptions().name(err.ty), OVERFLOW);
    }

    #[test]
    fn char_ops_is_core() {
        let vm = Vm::new(build_registry());
        let ops = vm.registry().class_by_name("CharOps").unwrap();
        assert!(ops.is_core);
        let char_at = ops.methods[ops.method_slot("charAt").unwrap()].gid;
        assert!(!vm.registry().instrumentable(char_at));
    }

    #[test]
    fn driver_is_clean() {
        let p = program();
        let mut vm = Vm::new(p.build_registry());
        p.run(&mut vm).unwrap();
    }
}

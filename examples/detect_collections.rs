//! Runs the detection phase over the ten Java collection applications of
//! the paper's evaluation and prints the Figure 3 style classification,
//! plus the §6.1 LinkedList case study.
//!
//! Run with `cargo run --release --example detect_collections`.

use atomask_suite::report::{evaluate, render_case_study, render_method_classification};
use atomask_suite::{classify, Campaign, Lang, MarkFilter};

fn main() {
    let rows: Vec<_> = atomask_suite::apps::java_apps()
        .iter()
        .map(|spec| {
            eprintln!("campaigning {} ...", spec.name);
            evaluate(spec, None)
        })
        .collect();
    println!("{}", render_method_classification(&rows, Lang::Java));

    eprintln!("case study: LinkedList original vs fixed ...");
    let buggy = atomask_suite::apps::collections::linked_list::program();
    let fixed = atomask_suite::apps::collections::linked_list::fixed_program();
    let buggy_c = classify(&Campaign::new(&buggy).run(), &MarkFilter::default());
    let fixed_c = classify(&Campaign::new(&fixed).run(), &MarkFilter::default());
    println!("{}", render_case_study(&buggy_c, &fixed_c));
}

//! A close look at one application: the RegExp engine.
//!
//! Shows (1) using the engine itself through the managed runtime, (2) the
//! injection campaign's view of it — the mutable-cursor parser methods are
//! failure non-atomic while the continuation-based matcher is atomic — and
//! (3) that the Java profile's core-class limitation (§5.2) exempts
//! `CharOps` from instrumentation.
//!
//! Run with `cargo run --release --example regexp_campaign`.

use atomask_suite::{classify, Campaign, MarkFilter, Value, Verdict, Vm};

fn main() {
    // 1. Use the engine directly.
    let program = atomask_suite::apps::regexp::program();
    use atomask_suite::Program;
    let mut vm = Vm::new(program.build_registry());
    let re = vm
        .construct("RegExp", &[Value::Str("a(b|c)*d".into())])
        .expect("pattern compiles");
    vm.root(re);
    for input in ["ad", "abcbcd", "axd"] {
        let hit = vm.call(re, "matches", &[Value::Str(input.into())]).unwrap();
        println!("pattern a(b|c)*d vs {input:?}: {hit}");
    }

    // 2. Campaign.
    eprintln!("\ncampaigning RegExp ...");
    let result = Campaign::new(&program).run();
    let c = classify(&result, &MarkFilter::default());
    println!(
        "\n{} injections over {} used methods",
        result.total_points,
        c.method_counts.total()
    );
    for verdict in [
        Verdict::PureNonAtomic,
        Verdict::ConditionalNonAtomic,
        Verdict::FailureAtomic,
    ] {
        let names: Vec<&str> = c
            .methods
            .iter()
            .filter(|m| m.verdict == Some(verdict))
            .map(|m| m.name.as_str())
            .collect();
        println!("{verdict}: {names:?}");
    }

    // 3. Core classes are invisible to the campaign.
    let registry = &result.registry;
    let char_ops = registry.class_by_name("CharOps").expect("registered");
    let char_at = char_ops.methods[char_ops.method_slot("charAt").unwrap()].gid;
    println!(
        "\nCharOps::charAt instrumentable: {} (Java core-class limitation, §5.2)",
        registry.instrumentable(char_at)
    );
}

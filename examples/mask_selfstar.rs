//! Runs the full pipeline (detect → mask → verify) over the six Self\*
//! C++ applications, showing that every corrected program is failure
//! atomic and how few methods needed wrapping.
//!
//! Run with `cargo run --release --example mask_selfstar`.

use atomask_suite::{Pipeline, Policy};

fn main() {
    for spec in atomask_suite::apps::cpp_apps() {
        let program = spec.program();
        let report = Pipeline::new(&program).policy(Policy::default()).run();
        let c = &report.classification;
        println!(
            "{:<14} methods: {:>2} atomic / {:>2} conditional / {:>2} pure non-atomic",
            spec.name,
            c.method_counts.atomic,
            c.method_counts.conditional,
            c.method_counts.pure_nonatomic,
        );
        println!("    wrapped: {:?}", report.wrapped_names());
        println!(
            "    corrected program: {}",
            if report.corrected_is_atomic() {
                "failure atomic"
            } else {
                "STILL NON-ATOMIC"
            }
        );
        assert!(report.corrected_is_atomic(), "{} failed", spec.name);
    }
}

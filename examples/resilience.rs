//! Campaign resilience demo: a program whose reaction to injected
//! failures is pathological — one injection point leaks a lock that an
//! application-level retry loop spins on forever, another trips a
//! host-level panic. The fuel budget cuts the spin off, panic isolation
//! confines the crash, and the journal lets an interrupted sweep resume
//! bit-for-bit.
//!
//! Run with: `cargo run --release --example resilience`

use atomask_suite::{
    classify, Budget, Campaign, CampaignConfig, CampaignJournal, FnProgram, MarkFilter, Profile,
    RegistryBuilder, RetryPolicy, RunOutcome, Value,
};

fn pathological_program() -> FnProgram {
    FnProgram::new(
        "resilience-demo",
        || {
            let mut profile = Profile::cpp();
            profile.runtime_exceptions = vec!["Fault".to_owned()];
            let mut rb = RegistryBuilder::new(profile);
            rb.exception("StateError");
            rb.class("P", |c| {
                c.field("locked", Value::Bool(false));
                c.field("done", Value::Int(0));
                c.method("transact", |ctx, this, _| {
                    if ctx.get_bool(this, "locked") {
                        return Err(ctx.exception("StateError", "still locked"));
                    }
                    ctx.set(this, "locked", Value::Bool(true));
                    // Non-atomic: an exception here leaks the lock.
                    ctx.call(this, "commit", &[])?;
                    ctx.set(this, "locked", Value::Bool(false));
                    Ok(Value::Null)
                });
                c.method("commit", |_, _, _| Ok(Value::Null));
                c.method("strict", |ctx, this, _| {
                    if ctx.call(this, "probe", &[]).is_err() {
                        panic!("invariant violated: probe can never fail");
                    }
                    Ok(Value::Null)
                });
                c.method("probe", |_, _, _| Ok(Value::Null));
                c.method("calm", |ctx, this, _| {
                    let d = ctx.get_int(this, "done");
                    ctx.set(this, "done", Value::Int(d + 1));
                    Ok(Value::Null)
                });
            });
            rb.build()
        },
        |vm| {
            let p = vm.construct("P", &[])?;
            vm.root(p);
            // Application-level retry loop: swallows failures and tries
            // again; the leaked lock turns it into an infinite loop that
            // only the fuel budget can end.
            loop {
                match vm.call(p, "transact", &[]) {
                    Ok(_) => break,
                    Err(_) => continue,
                }
            }
            let _ = vm.call(p, "strict", &[]);
            vm.call(p, "calm", &[])
        },
    )
}

fn main() {
    let program = pathological_program();
    let config = CampaignConfig {
        budget: Budget::fuel(20_000),
        retry: RetryPolicy::none(),
        max_failures: None,
        ..CampaignConfig::default()
    };

    let full = Campaign::new(&program).config(config).run();
    println!("full sweep over {} injection points", full.total_points);
    println!("run health: {}", full.health());
    for run in &full.runs {
        if run.outcome != RunOutcome::Completed {
            let site = run
                .injected
                .map(|(m, _)| full.registry.method_display(m))
                .unwrap_or_else(|| "baseline".to_owned());
            println!(
                "  {:?} at {site}: {}",
                run.outcome,
                run.top_error.as_deref().unwrap_or("-")
            );
        }
    }

    let c = classify(&full, &MarkFilter::default());
    println!(
        "classification still covers {} methods ({} unhealthy runs set aside)",
        c.methods.len(),
        c.health.unhealthy()
    );

    // Interrupt the sweep halfway, round-trip the journal through its text
    // format, and resume: the result must be bit-for-bit identical.
    let mut journal = full.journal();
    journal.truncate_runs(full.runs.len() / 2);
    let text = journal.serialize();
    let mut reloaded = CampaignJournal::parse(&text).expect("journal text round-trips");
    let resumed = Campaign::new(&program).config(config).resume(&mut reloaded);
    assert_eq!(resumed.runs, full.runs, "resume is bit-for-bit");
    println!(
        "resumed from a {}-run journal prefix: identical to the full sweep",
        full.runs.len() / 2
    );
}
